//! A small scoped thread pool with work-stealing deques, vendored because
//! the registry mirror this environment points at is unreachable (same
//! arrangement as the `proptest`/`criterion` stand-ins). Std-only: no
//! `rayon`, no global registry, no lock-free machinery — just
//! `std::thread` workers, one index deque per worker, and two condvars.
//!
//! ## Shape
//!
//! [`Pool::new(n)`](Pool::new) spawns `n` long-lived workers.
//! [`Pool::run`] submits a batch of `jobs` tasks identified by index
//! `0..jobs`; each task is one call of the shared closure `f(i)`. The call
//! blocks until every task has finished, which is what makes the pool
//! *scoped*: `f` may borrow from the caller's stack even though the
//! workers are `'static` threads, because the borrow provably outlives
//! every use (see the safety argument on [`Pool::run_order`]).
//!
//! Task indices are dealt round-robin into per-worker deques at submit
//! time. A worker pops its own deque from the back (LIFO, cache-warm) and,
//! when empty, steals from the fronts of the other deques (FIFO, the
//! classic stealing discipline). All deque traffic goes through one mutex —
//! contention is bounded by batch bookkeeping, not task execution, which
//! happens outside the lock.
//!
//! ## Determinism contract
//!
//! The pool guarantees *only* that every index in `0..jobs` is executed
//! exactly once, on some worker, before `run` returns. Callers needing a
//! deterministic result must make each task write to its own slot (indexed
//! by task id) and combine slots in index order after `run` returns —
//! never accumulate in submission or completion order.
//! [`Pool::run_order`] additionally lets tests permute the *deal* order to
//! stress that contract under different interleavings.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Type-erased batch closure: a raw pointer to the caller's `&F` plus a
/// monomorphized trampoline that calls it with a task index.
#[derive(Clone, Copy)]
struct Job {
    ctx: *const (),
    call: unsafe fn(*const (), usize),
}

// Safety: `ctx` points at an `F: Sync` owned by the thread blocked inside
// `run_order`, so sharing the pointer across workers is exactly `&F: Send`.
unsafe impl Send for Job {}

struct State {
    shutdown: bool,
    /// The active batch, if any. `None` between batches.
    job: Option<Job>,
    /// One index deque per worker, dealt at submit time.
    deques: Vec<VecDeque<usize>>,
    /// Tasks of the active batch not yet finished.
    remaining: usize,
    /// A task of the active batch panicked.
    panicked: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for a new batch (or shutdown).
    work_cv: Condvar,
    /// `run_order` waits here for batch completion.
    done_cv: Condvar,
}

fn lock(m: &Mutex<State>) -> MutexGuard<'_, State> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A fixed-size pool of worker threads executing indexed task batches.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.workers.len())
            .finish()
    }
}

impl Pool {
    /// Spawn a pool of `threads` workers (at least one).
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                shutdown: false,
                job: None,
                deques: (0..threads).map(|_| VecDeque::new()).collect(),
                remaining: 0,
                panicked: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("scoped-pool-{w}"))
                    .spawn(move || worker_loop(w, &shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool { shared, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Run tasks `0..jobs` on the pool; blocks until all complete.
    /// Panics if any task panicked.
    pub fn run<F: Fn(usize) + Sync>(&self, jobs: usize, f: &F) {
        let order: Vec<usize> = (0..jobs).collect();
        self.run_order(&order, f);
    }

    /// Run the task indices in `order` (each executed exactly once),
    /// dealing them to worker deques in the given order. Semantically
    /// identical to [`Pool::run`] for any permutation of `0..jobs`; tests
    /// use a seeded shuffle to stress scheduling-independence.
    ///
    /// # Safety argument
    ///
    /// `f` is passed to `'static` worker threads as a raw pointer, which
    /// is sound because this call does not return until `remaining == 0`
    /// and the batch slot is cleared — every dereference of the pointer
    /// happens-before the return, so the `&F` borrow outlives all uses.
    /// `F: Sync` makes the concurrent sharing itself legal.
    pub fn run_order<F: Fn(usize) + Sync>(&self, order: &[usize], f: &F) {
        if order.is_empty() {
            return;
        }
        unsafe fn trampoline<F: Fn(usize)>(ctx: *const (), i: usize) {
            let f = unsafe { &*(ctx as *const F) };
            f(i);
        }
        let n = self.threads();
        {
            let mut st = lock(&self.shared.state);
            // not reentrant from the submitting side: wait out any batch
            // a previous caller left behind (defensive; the engine only
            // ever submits from one thread)
            while st.job.is_some() {
                st = self
                    .shared
                    .done_cv
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
            for (pos, &i) in order.iter().enumerate() {
                st.deques[pos % n].push_back(i);
            }
            st.remaining = order.len();
            st.panicked = false;
            st.job = Some(Job {
                ctx: f as *const F as *const (),
                call: trampoline::<F>,
            });
            self.shared.work_cv.notify_all();
        }
        let mut st = lock(&self.shared.state);
        while st.remaining > 0 {
            st = self
                .shared
                .done_cv
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
        let panicked = st.panicked;
        drop(st);
        if panicked {
            panic!("scoped-pool: a pooled task panicked");
        }
    }

    /// Run `jobs` tasks and collect their results **in task-index order**
    /// (deterministic regardless of scheduling).
    pub fn map<T, F>(&self, jobs: usize, f: F) -> Vec<T>
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
    {
        let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
        self.run(jobs, &|i| {
            *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(f(i));
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("every task index ran exactly once")
            })
            .collect()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(me: usize, shared: &Shared) {
    loop {
        // claim a task index under the lock: own deque from the back,
        // then steal the fronts of the others in ring order
        let claimed = {
            let mut st = lock(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.job.is_some() {
                    let n = st.deques.len();
                    let mine = st.deques[me].pop_back();
                    let idx =
                        mine.or_else(|| (1..n).find_map(|d| st.deques[(me + d) % n].pop_front()));
                    if let Some(i) = idx {
                        break (st.job.expect("checked above"), i);
                    }
                }
                st = shared.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        let (job, idx) = claimed;
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (job.call)(job.ctx, idx) }));
        let mut st = lock(&shared.state);
        if result.is_err() {
            st.panicked = true;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            st.job = None;
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn map_collects_in_index_order() {
        let pool = Pool::new(4);
        let out = pool.map(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn run_executes_every_index_once() {
        let pool = Pool::new(3);
        let hits: Vec<AtomicU64> = (0..257).map(|_| AtomicU64::new(0)).collect();
        pool.run(hits.len(), &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn run_order_permutation_covers_all_indices() {
        let pool = Pool::new(4);
        // a fixed permutation of 0..64
        let mut order: Vec<usize> = (0..64).collect();
        let mut s = 0x9E3779B9u64;
        for i in (1..order.len()).rev() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            order.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let hits: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
        pool.run_order(&order, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn pool_reusable_across_batches() {
        let pool = Pool::new(2);
        let total = AtomicU64::new(0);
        for _ in 0..50 {
            pool.run(10, &|i| {
                total.fetch_add(i as u64, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 50 * 45);
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = Pool::new(1);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.map(5, |i| i + 1), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn zero_jobs_is_a_noop() {
        let pool = Pool::new(2);
        pool.run(0, &|_| unreachable!("no tasks to run"));
    }

    #[test]
    fn borrows_from_caller_stack() {
        // the 'scoped' in scoped pool: tasks read caller-local data
        let data: Vec<u64> = (0..1000).collect();
        let pool = Pool::new(4);
        let sums = pool.map(4, |w| data.iter().skip(w).step_by(4).sum::<u64>());
        assert_eq!(sums.iter().sum::<u64>(), 1000 * 999 / 2);
    }

    #[test]
    fn panic_in_task_propagates() {
        let pool = Pool::new(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.run(4, &|i| {
                if i == 2 {
                    panic!("boom");
                }
            });
        }));
        assert!(r.is_err());
        // and the pool still works afterwards
        assert_eq!(pool.map(3, |i| i), vec![0, 1, 2]);
    }
}
