//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The workspace's registry mirror is unreachable from the build
//! environment, so the real `criterion` crate cannot be downloaded. This
//! crate implements the API surface our benches use — groups, parametrised
//! benchmarks, `iter`/`iter_custom` — with a small honest harness: each
//! benchmark runs a fixed number of timed iterations and prints
//! min/mean/max wall-clock per iteration. No statistics, plots, or
//! baselines; use `paper_tables` for the publication-quality numbers.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` style id.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{name}/{parameter}"),
        }
    }

    /// Id that is just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over the configured iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Let the closure do its own timing of `iters` iterations.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed = f(self.iters);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark (we run exactly this many).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stub ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub ignores it.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.name);
        let samples = self.sample_size;
        run_samples(&label, samples, |b| f(b, input));
        self
    }

    /// Run one benchmark without inputs.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().name);
        let samples = self.sample_size;
        run_samples(&label, samples, |b| f(b));
        self
    }

    /// End the group (printing happens as benchmarks run).
    pub fn finish(self) {}
}

fn run_samples(label: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    // warm-up pass, then timed samples
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / b.iters.max(1) as f64);
    }
    let n = per_iter.len().max(1) as f64;
    let mean = per_iter.iter().sum::<f64>() / n;
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{label:<50} [{} {} {}]  ({} samples)",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max),
        per_iter.len()
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _parent: self,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_samples(&name.into(), 10, |b| f(b));
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Produce a `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
