//! Offline stand-in for the `proptest` crate.
//!
//! The workspace's registry mirror is unreachable from the build
//! environment, so the real `proptest` cannot be downloaded. This crate
//! implements the slice of the proptest API our test suite uses —
//! deterministic pseudo-random generation behind the same
//! [`Strategy`]/macro surface — so the property tests keep compiling and
//! keep providing randomized coverage.
//!
//! Differences from real proptest, by design:
//! * no shrinking — a failing case reports its inputs' seed, not a minimal
//!   counterexample;
//! * no failure-persistence files;
//! * the regex-string strategy supports only the subset of patterns the
//!   suite uses (character classes, `\P`-style "printable" escapes and
//!   `{m,n}` repetition);
//! * case count defaults to 64 and can be overridden with the
//!   `PROPTEST_CASES` environment variable; `PROPTEST_SEED` perturbs the
//!   per-test seed for exploring different streams.

use std::cell::Cell;
use std::marker::PhantomData;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic xorshift64* generator seeded per test function.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: Cell<u64>,
    /// The seed this generator started from (for failure reports).
    pub seed: u64,
}

impl TestRng {
    /// Seed from the test name (stable across runs) plus the optional
    /// `PROPTEST_SEED` environment perturbation.
    pub fn for_test(name: &str) -> Self {
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(n) = s.parse::<u64>() {
                seed ^= n.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            }
        }
        if seed == 0 {
            seed = 0x9e37_79b9_7f4a_7c15;
        }
        TestRng {
            state: Cell::new(seed),
            seed,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state.get();
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state.set(x);
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// Errors and config
// ---------------------------------------------------------------------------

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fail the current case with a message.
    pub fn fail<S: Into<String>>(msg: S) -> Self {
        TestCaseError(msg.into())
    }

    /// Same as [`TestCaseError::fail`] (real proptest distinguishes
    /// rejections; we treat them identically).
    pub fn reject<S: Into<String>>(msg: S) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Per-`proptest!`-block configuration. Only `cases` is meaningful here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of random values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of the RNG stream.
pub trait Strategy: 'static {
    /// The type of value this strategy generates.
    type Value: 'static;

    /// Draw one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erase into a clonable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        let s = self;
        BoxedStrategy(Rc::new(move |rng| s.gen_value(rng)))
    }

    /// Map generated values through `f`.
    fn prop_map<U: 'static, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + 'static,
    {
        let s = self;
        BoxedStrategy(Rc::new(move |rng| f(s.gen_value(rng))))
    }

    /// Keep only values passing `pred` (regenerating on rejection).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        let s = self;
        BoxedStrategy(Rc::new(move |rng| {
            for _ in 0..10_000 {
                let v = s.gen_value(rng);
                if pred(&v) {
                    return v;
                }
            }
            panic!("prop_filter gave up after 10000 rejections: {reason}");
        }))
    }

    /// Build recursive values: `self` is the leaf strategy, `f` wraps an
    /// inner strategy into a branch strategy, nesting up to `depth` levels.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone,
        R: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut cur = self.clone().boxed();
        for _ in 0..depth {
            let branch = f(cur).boxed();
            // lean towards leaves so expected size stays finite
            cur = Union::new(vec![(3, self.clone().boxed()), (2, branch)]).boxed();
        }
        cur
    }
}

/// A clonable, type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Weighted choice between boxed strategies (the engine of `prop_oneof!`).
#[derive(Clone)]
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms. Weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut k = rng.below(total.max(1));
        for (w, s) in &self.arms {
            let w = *w as u64;
            if k < w {
                return s.gen_value(rng);
            }
            k -= w;
        }
        self.arms[0].1.gen_value(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized + 'static {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy produced by [`any`].
#[derive(Debug)]
pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy(PhantomData)
    }
}

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.gen_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! { (A) (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) }

// ---------------------------------------------------------------------------
// Regex-subset string strategy
// ---------------------------------------------------------------------------

/// `&'static str` acts as a regex-shaped string strategy. Supported
/// syntax: literals, `[...]` classes with ranges, `\P·` (printable ASCII),
/// `\·` escapes, and `{m}` / `{m,n}` repetition.
impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        gen_from_pattern(self, rng)
    }
}

fn gen_from_pattern(pat: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0;
    let mut out = String::new();
    while i < chars.len() {
        // one atom = a set of inclusive char ranges
        let mut choices: Vec<(u32, u32)> = Vec::new();
        match chars[i] {
            '[' => {
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let c = chars[i];
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        choices.push((c as u32, chars[i + 2] as u32));
                        i += 3;
                    } else {
                        choices.push((c as u32, c as u32));
                        i += 1;
                    }
                }
                i += 1; // closing ']'
            }
            '\\' => {
                i += 1;
                if i < chars.len() && (chars[i] == 'P' || chars[i] == 'p') {
                    // \PC / \pC style class: approximate with printable ASCII
                    i += 2.min(chars.len() - i);
                    choices.push((' ' as u32, '~' as u32));
                } else if i < chars.len() {
                    choices.push((chars[i] as u32, chars[i] as u32));
                    i += 1;
                }
            }
            c => {
                choices.push((c as u32, c as u32));
                i += 1;
            }
        }
        // optional {m} / {m,n} quantifier
        let (mut lo, mut hi) = (1usize, 1usize);
        if i < chars.len() && chars[i] == '{' {
            i += 1;
            let mut first = String::new();
            while i < chars.len() && chars[i].is_ascii_digit() {
                first.push(chars[i]);
                i += 1;
            }
            lo = first.parse().unwrap_or(1);
            hi = lo;
            if i < chars.len() && chars[i] == ',' {
                i += 1;
                let mut second = String::new();
                while i < chars.len() && chars[i].is_ascii_digit() {
                    second.push(chars[i]);
                    i += 1;
                }
                hi = second.parse().unwrap_or(lo);
            }
            if i < chars.len() && chars[i] == '}' {
                i += 1;
            }
        }
        let n = lo + rng.below((hi.saturating_sub(lo) + 1) as u64) as usize;
        let total: u64 = choices.iter().map(|(a, b)| (*b - *a + 1) as u64).sum();
        for _ in 0..n {
            let mut k = rng.below(total.max(1));
            for (a, b) in &choices {
                let span = (*b - *a + 1) as u64;
                if k < span {
                    out.push(char::from_u32(a + k as u32).unwrap_or('?'));
                    break;
                }
                k -= span;
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// collection / option modules
// ---------------------------------------------------------------------------

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::*;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    impl<S: Clone> Clone for VecStrategy<S> {
        fn clone(&self) -> Self {
            VecStrategy {
                elem: self.elem.clone(),
                min: self.min,
                max: self.max,
            }
        }
    }

    /// Ways to specify a vec length (usize or usize range).
    pub trait IntoSizeRange {
        /// Return `(min, max_exclusive)`.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    /// `vec(strategy, len_range)` — a vector of independently drawn values.
    pub fn vec<S: Strategy>(elem: S, len: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = len.bounds();
        assert!(min < max, "empty vec length range");
        VecStrategy { elem, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.min + rng.below((self.max - self.min) as u64) as usize;
            (0..n).map(|_| self.elem.gen_value(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::*;

    /// Strategy for `Option<S::Value>` (~75% `Some`).
    pub struct OptionStrategy<S>(S);

    impl<S: Clone> Clone for OptionStrategy<S> {
        fn clone(&self) -> Self {
            OptionStrategy(self.0.clone())
        }
    }

    /// `of(strategy)` — `None` about a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.gen_value(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Weighted or unweighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__pa, __pb) = (&$a, &$b);
        $crate::prop_assert!(
            *__pa == *__pb,
            "assertion failed: `{:?}` != `{:?}`", __pa, __pb
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__pa, __pb) = (&$a, &$b);
        if !(*__pa == *__pb) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} (`{:?}` != `{:?}`)",
                format!($($fmt)+), __pa, __pb
            )));
        }
    }};
}

/// Fail the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__pa, __pb) = (&$a, &$b);
        $crate::prop_assert!(
            *__pa != *__pb,
            "assertion failed: `{:?}` == `{:?}`",
            __pa,
            __pb
        );
    }};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            #[allow(unused_mut, unused_variables)]
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                let __seed = __rng.seed;
                for __case in 0..__cfg.cases {
                    $(let $pat = $crate::Strategy::gen_value(&($strat), &mut __rng);)*
                    let __res: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = __res {
                        panic!(
                            "proptest `{}` failed at case {}/{} (seed {:#x}): {}",
                            stringify!($name), __case + 1, __cfg.cases, __seed, e
                        );
                    }
                }
            }
        )*
    };
}

/// The usual glob import: strategies, macros, config and error types.
pub mod prelude {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{ProptestConfig, TestCaseError, TestRng};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_shapes() {
        let mut rng = TestRng::for_test("regex");
        for _ in 0..200 {
            let s = Strategy::gen_value(&"[a-z][a-z0-9_]{0,6}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            let p = Strategy::gen_value(&"\\PC{0,120}", &mut rng);
            assert!(p.len() <= 120);
            assert!(p.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro surface itself: patterns, weights, tuples, filters.
        #[test]
        fn macro_surface(
            (a, b) in (0i64..10, 5u8..6),
            v in collection::vec(prop_oneof![2 => Just(1u32), 1 => Just(2u32)], 1..8),
            o in option::of(any::<bool>()),
            s in "[a-c]{2,3}",
        ) {
            prop_assert!(a < 10 && b == 5);
            prop_assert!(!v.is_empty() && v.iter().all(|x| *x == 1 || *x == 2));
            if let Some(flag) = o {
                prop_assert_eq!(flag, flag);
            }
            prop_assert!(s.len() >= 2 && s.len() <= 3, "bad len {}", s.len());
        }
    }
}
