//! Inventory reorder monitor: the "active database as application
//! backbone" pattern the paper's introduction motivates — the database
//! reacts to state changes without application polling.
//!
//! Rules:
//! * `reorder` — when stock for an item falls below its reorder point, file
//!   a purchase order with the item's preferred supplier (join);
//! * `expedite` (higher priority) — a stock-out (level = 0) files an
//!   expedited order instead, and `halt`s the cycle so the normal reorder
//!   rule never sees the stock-out;
//! * `audit_orders` — every filed order is logged (rule cascade).
//!
//! Run with `cargo run --example inventory_monitor`.

use ariel::network::VirtualPolicy;
use ariel::{Ariel, EngineOptions};

fn main() {
    // virtual α-memories keep match state small even though the item
    // predicate (level >= 0) is totally unselective
    let mut db = Ariel::with_options(EngineOptions {
        virtual_policy: VirtualPolicy::SelectivityThreshold(0.5),
        ..Default::default()
    });
    db.execute(
        "create item (sku = int, name = string, level = int, reorder_at = int, supplier = int); \
         create supplier (sid = int, name = string); \
         create orders (sku = int, supplier = string, expedited = int); \
         create audit (sku = int, note = string)",
    )
    .expect("schema");

    db.execute(
        r#"append supplier (sid = 1, name = "Acme");
           append supplier (sid = 2, name = "Globex")"#,
    )
    .expect("suppliers");
    let items = [
        (100, "bolt", 500, 50, 1),
        (101, "nut", 80, 100, 1), // already below reorder point
        (102, "gear", 30, 10, 2),
        (103, "spring", 12, 10, 2),
    ];
    for (sku, name, level, at, sup) in items {
        db.execute(&format!(
            r#"append item (sku = {sku}, name = "{name}", level = {level}, reorder_at = {at}, supplier = {sup})"#
        ))
        .expect("item");
    }

    db.execute(
        "define rule expedite priority 10 on replace item(level) \
         if item.level = 0 and supplier.sid = item.supplier \
         then do \
           append to orders(sku = item.sku, supplier = supplier.name, expedited = 1) \
           halt \
         end",
    )
    .expect("expedite");
    db.execute(
        "define rule reorder priority 5 on replace item(level) \
         if item.level > 0 and item.level < item.reorder_at \
            and supplier.sid = item.supplier \
         then append to orders(sku = item.sku, supplier = supplier.name, expedited = 0)",
    )
    .expect("reorder");
    db.execute(
        r#"define rule audit_orders on append orders
           then append to audit(sku = orders.sku, note = "order filed")"#,
    )
    .expect("audit");

    println!("== day 1: normal consumption ==");
    db.execute("replace item (level = item.level - 45) where item.sku = 100")
        .expect("consume"); // 455 left: fine
    db.execute("replace item (level = 8) where item.sku = 102")
        .expect("consume"); // below 10: reorder
    report(&mut db);

    println!("\n== day 2: a stock-out ==");
    db.execute("replace item (level = 0) where item.sku = 103")
        .expect("stockout"); // expedited
    report(&mut db);

    println!("\n== day 3: batch restock inside one transition ==");
    // restocking in a do…end block: the dip to 0 inside the block is
    // invisible — only the net effect (a healthy level) is matched
    db.execute(
        "do replace item (level = 0) where item.sku = 100 \
            replace item (level = 600) where item.sku = 100 \
         end",
    )
    .expect("restock");
    report(&mut db);

    let n = db.network_stats();
    println!(
        "\nnetwork: {} α-nodes ({} virtual), {} bytes of match state",
        n.alpha_nodes,
        n.virtual_alpha_nodes,
        n.alpha_bytes + n.pnode_bytes
    );
}

fn report(db: &mut Ariel) {
    let orders = db.query("retrieve (orders.all)").expect("orders");
    println!("orders on file:");
    for r in &orders.rows {
        let kind = if r[2] == ariel::storage::Value::Int(1) {
            "EXPEDITED"
        } else {
            "normal"
        };
        println!("  sku {} from {} ({kind})", r[0], r[1]);
    }
    let audit = db.query("retrieve (audit.all)").expect("audit");
    println!("audit entries: {}", audit.rows.len());
}
