//! Quickstart: a five-minute tour of the Ariel active DBMS.
//!
//! Run with `cargo run --example quickstart`.

use ariel::Ariel;

fn main() {
    let mut db = Ariel::new();

    // 1. Plain relational DBMS: DDL + DML + queries (POSTQUEL subset).
    db.execute(
        "create emp (name = string, sal = float, dno = int); \
         create dept (dno = int, name = string)",
    )
    .expect("ddl");
    db.execute(
        r#"append dept (dno = 1, name = "Sales");
           append dept (dno = 2, name = "Toy");
           append emp (name = "alice", sal = 42000, dno = 1);
           append emp (name = "bob", sal = 39000, dno = 2)"#,
    )
    .expect("load");

    let out = db
        .query("retrieve (emp.name, dept.name) where emp.dno = dept.dno")
        .expect("join");
    println!("employees and their departments:");
    for row in &out.rows {
        println!("  {} works in {}", row[0], row[1]);
    }

    // 2. Active behaviour: a production rule with an event condition.
    db.execute("create hires (name = string)").expect("ddl");
    db.execute(
        "define rule log_hires on append emp \
         then append to hires(name = emp.name)",
    )
    .expect("rule");
    db.execute(r#"append emp (name = "carol", sal = 50000, dno = 1)"#)
        .expect("hire");
    let hires = db.query("retrieve (hires.all)").expect("query");
    println!("\nhires logged by rule: {:?}", hires.rows);

    // 3. A transition condition using `previous` — the paper's raiselimit.
    db.execute("create salaryerror (name = string, oldsal = float, newsal = float)")
        .expect("ddl");
    db.execute(
        "define rule raiselimit if emp.sal > 1.1 * previous emp.sal \
         then append to salaryerror(name = emp.name, \
                                    oldsal = previous emp.sal, newsal = emp.sal)",
    )
    .expect("rule");
    db.execute(r#"replace emp (sal = 60000) where emp.name = "carol""#)
        .expect("raise");
    let flagged = db.query("retrieve (salaryerror.all)").expect("query");
    println!("\nsuspicious raises:");
    for row in &flagged.rows {
        println!("  {}: {} -> {}", row[0], row[1], row[2]);
    }

    // 4. Engine statistics.
    let s = db.stats();
    println!(
        "\nengine: {} transitions, {} tokens matched, {} rule firings",
        s.transitions, s.tokens, s.firings
    );
    let n = db.network_stats();
    println!(
        "network: {} rules, {} alpha-memory nodes ({} virtual), {} bytes of match state",
        n.rules,
        n.alpha_nodes,
        n.virtual_alpha_nodes,
        n.alpha_bytes + n.pnode_bytes
    );
}
