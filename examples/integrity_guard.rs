//! Integrity constraints as production rules — the classic active-database
//! use case (Stonebraker's query-modification lineage the paper builds on).
//!
//! * domain constraint: nobody named "Bob" may exist (`NoBobs2`, §2.2.2);
//! * value constraint: salaries are capped, violations are clamped;
//! * referential integrity: deleting a department cascades to its
//!   employees; orphaned employees are impossible.
//!
//! Run with `cargo run --example integrity_guard`.

use ariel::Ariel;

fn main() {
    let mut db = Ariel::new();
    db.execute(
        "create emp (name = string, sal = float, dno = int); \
         create dept (dno = int, name = string); \
         create violations (what = string, who = string)",
    )
    .expect("schema");

    // Domain constraint, pure pattern form: fires on append AND on rename.
    db.execute(
        r#"define rule NoBobs2 priority 10 if emp.name = "Bob" then do
             append to violations(what = "forbidden name", who = emp.name)
             delete emp
           end"#,
    )
    .expect("NoBobs2");

    // Value constraint: clamp salaries above 200k, log the violation.
    db.execute(
        r#"define rule salary_cap priority 9 if emp.sal > 200000 then do
             append to violations(what = "salary cap", who = emp.name)
             replace emp (sal = 200000)
           end"#,
    )
    .expect("salary_cap");

    // Referential action: ON DELETE CASCADE for dept -> emp.
    db.execute(
        "define rule cascade_dept on delete dept \
         then delete e from e in emp where e.dno = dept.dno",
    )
    .expect("cascade");

    db.execute(
        r#"append dept (dno = 1, name = "Sales");
           append dept (dno = 2, name = "Toy")"#,
    )
    .expect("depts");

    println!("== inserting employees (one of them violates two constraints) ==");
    db.execute(r#"append emp (name = "Ann", sal = 90000, dno = 1)"#)
        .expect("ok");
    db.execute(r#"append emp (name = "Bob", sal = 50000, dno = 1)"#)
        .expect("bob");
    db.execute(r#"append emp (name = "Cee", sal = 900000, dno = 2)"#)
        .expect("cee");
    dump(&mut db);

    println!("\n== renaming someone to Bob (caught by the pattern rule) ==");
    db.execute(r#"replace emp (name = "Bob") where emp.name = "Ann""#)
        .expect("rename");
    dump(&mut db);

    println!("\n== deleting the Toy department (cascade) ==");
    db.execute(r#"delete dept where dept.name = "Toy""#)
        .expect("cascade");
    dump(&mut db);

    let v = db.query("retrieve (violations.all)").expect("violations");
    println!("\nviolation log:");
    for r in &v.rows {
        println!("  {}: {}", r[0], r[1]);
    }
}

fn dump(db: &mut Ariel) {
    let out = db
        .query("retrieve (emp.name, emp.sal, emp.dno)")
        .expect("emps");
    println!("employees now:");
    if out.rows.is_empty() {
        println!("  (none)");
    }
    for r in &out.rows {
        println!("  {} sal={} dept={}", r[0], r[1], r[2]);
    }
}
