//! Payroll compliance monitor — the paper's motivating scenario (§2.3)
//! scaled up: transition rules flag over-limit raises, a join-scoped rule
//! watches one department, and an event+transition rule logs demotions.
//!
//! Run with `cargo run --example salary_watch`.

use ariel::Ariel;

fn main() {
    let mut db = Ariel::new();
    db.execute(
        "create emp (name = string, age = int, sal = float, dno = int, jno = int); \
         create dept (dno = int, name = string, building = string); \
         create job (jno = int, title = string, paygrade = int, description = string); \
         create salaryerror (name = string, oldsal = float, newsal = float); \
         create toysalaryerror (name = string, oldsal = float, newsal = float); \
         create demotions (name = string, dno = int, oldjno = int, newjno = int)",
    )
    .expect("schema");

    // reference data
    for (dno, name) in [(1, "Sales"), (2, "Toy"), (3, "Shoe")] {
        db.execute(&format!(
            r#"append dept (dno = {dno}, name = "{name}", building = "HQ")"#
        ))
        .expect("dept");
    }
    for (jno, title, grade) in [(1, "Clerk", 3), (2, "Senior", 6), (3, "Boss", 9)] {
        db.execute(&format!(
            r#"append job (jno = {jno}, title = "{title}", paygrade = {grade}, description = "-")"#
        ))
        .expect("job");
    }

    // The three rules from §2.3 of the paper, verbatim semantics:
    db.execute(
        "define rule raiselimit \
         if emp.sal > 1.1 * previous emp.sal \
         then append to salaryerror(name = emp.name, oldsal = previous emp.sal, newsal = emp.sal)",
    )
    .expect("raiselimit");
    db.execute(
        "define rule toyraiselimit \
         if emp.sal > 1.05 * previous emp.sal and emp.dno = dept.dno and dept.name = \"Toy\" \
         then append to toysalaryerror(name = emp.name, oldsal = previous emp.sal, newsal = emp.sal)",
    )
    .expect("toyraiselimit");
    db.execute(
        "define rule finddemotions on replace emp(jno) \
         if newjob.jno = emp.jno and oldjob.jno = previous emp.jno \
            and newjob.paygrade < oldjob.paygrade \
         from oldjob in job, newjob in job \
         then append to demotions (name = emp.name, dno = emp.dno, \
                                   oldjno = oldjob.jno, newjno = newjob.jno)",
    )
    .expect("finddemotions");

    // hire a workforce
    let staff = [
        ("ann", 100_000.0, 1, 3),
        ("ben", 60_000.0, 2, 2),
        ("cal", 45_000.0, 2, 1),
        ("dot", 80_000.0, 3, 2),
        ("eve", 52_000.0, 1, 1),
    ];
    for (name, sal, dno, jno) in staff {
        db.execute(&format!(
            r#"append emp (name = "{name}", age = 35, sal = {sal}, dno = {dno}, jno = {jno})"#
        ))
        .expect("hire");
    }

    println!("== payroll events ==");
    // a quiet cost-of-living round: 3% across the board (no flags)
    db.execute("replace emp (sal = emp.sal * 1.03) where emp.sal > 0")
        .expect("col round");
    // ann gets a 25% raise (flagged), ben in Toy gets 8% (Toy-flagged only)
    db.execute(r#"replace emp (sal = emp.sal * 1.25) where emp.name = "ann""#)
        .expect("ann raise");
    db.execute(r#"replace emp (sal = emp.sal * 1.08) where emp.name = "ben""#)
        .expect("ben raise");
    // dot is demoted from Senior to Clerk
    db.execute(r#"replace emp (jno = 1) where emp.name = "dot""#)
        .expect("dot demotion");

    let general = db.query("retrieve (salaryerror.all)").expect("q");
    println!("\nraises above 10% (company-wide limit):");
    for r in &general.rows {
        println!("  {}: {} -> {}", r[0], r[1], r[2]);
    }

    let toy = db.query("retrieve (toysalaryerror.all)").expect("q");
    println!("\nraises above 5% in the Toy department:");
    for r in &toy.rows {
        println!("  {}: {} -> {}", r[0], r[1], r[2]);
    }

    let demoted = db.query("retrieve (demotions.all)").expect("q");
    println!("\ndemotions:");
    for r in &demoted.rows {
        println!("  {} (dept {}): job {} -> job {}", r[0], r[1], r[2], r[3]);
    }

    let s = db.stats();
    println!(
        "\n{} transitions, {} tokens, {} firings",
        s.transitions, s.tokens, s.firings
    );
}
