//! Stock ticker with asynchronous trigger delivery — §8 of the paper names
//! this exact application as future work: "support for streamlined
//! development of applications that can receive data from database triggers
//! asynchronously (e.g., safety and integrity alert monitors, stock
//! tickers)".
//!
//! The `notify` action command (our extension) emits rows onto a named
//! channel instead of writing a relation; the application drains the
//! channel with [`ariel::Ariel::drain_notifications`].
//!
//! Run with `cargo run --example stock_ticker`.

use ariel::Ariel;

fn main() {
    let mut db = Ariel::new();
    db.execute(
        "create quote (sym = string, price = float, volume = int); \
         create position (sym = string, shares = int, stop_loss = float)",
    )
    .expect("schema");

    // the monitored portfolio
    db.execute(
        r#"append position (sym = "ACME", shares = 1000, stop_loss = 95);
           append position (sym = "GLOBEX", shares = 250, stop_loss = 40)"#,
    )
    .expect("portfolio");

    // ticker rule: every price move on a held symbol is pushed to the app
    db.execute(
        "define rule ticker on replace quote(price) \
         if quote.sym = position.sym \
         then notify ticks (sym = quote.sym, price = quote.price, \
                            was = previous quote.price)",
    )
    .expect("ticker");

    // alert rule: a price below the stop-loss pushes an urgent alert
    db.execute(
        "define rule stop_loss priority 10 on replace quote(price) \
         if quote.sym = position.sym and quote.price < position.stop_loss \
         then notify alerts (sym = quote.sym, price = quote.price, \
                             shares = position.shares)",
    )
    .expect("stop_loss");

    // market opens
    db.execute(
        r#"append quote (sym = "ACME", price = 100, volume = 0);
           append quote (sym = "GLOBEX", price = 50, volume = 0);
           append quote (sym = "UNHELD", price = 10, volume = 0)"#,
    )
    .expect("open");

    // a trading session
    let session = [
        ("ACME", 101.5),
        ("UNHELD", 9.0), // not held: no tick
        ("GLOBEX", 48.0),
        ("ACME", 94.0), // below the 95 stop-loss!
        ("GLOBEX", 52.5),
    ];
    for (sym, price) in session {
        db.execute(&format!(
            r#"replace quote (price = {price}) where quote.sym = "{sym}""#
        ))
        .expect("tick");
    }

    println!("== notifications delivered to the application ==");
    for note in db.drain_notifications() {
        for row in &note.rows {
            match note.channel.as_str() {
                "ticks" => println!("  [tick ] {} {} (was {})", row[0], row[1], row[2]),
                "alerts" => println!(
                    "  [ALERT] {} fell to {} — stop-loss hit on {} shares",
                    row[0], row[1], row[2]
                ),
                other => println!("  [{other}] {row:?}"),
            }
        }
    }

    println!("\nrules as stored in the catalog:");
    for name in ["ticker", "stop_loss"] {
        println!("  {}", db.show_rule(name).expect("rule"));
    }
}
