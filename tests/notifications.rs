//! The `notify` extension: asynchronous trigger delivery (§8 future work).

use ariel::storage::Value;
use ariel::{Ariel, ArielError};

fn db() -> Ariel {
    let mut db = Ariel::new();
    db.execute("create t (x = int, y = int)").unwrap();
    db
}

#[test]
fn rule_action_notify_queues_rows() {
    let mut db = db();
    db.execute("define rule watch on append t then notify chan (x = t.x, twice = t.x * 2)")
        .unwrap();
    db.execute("append t (x = 5, y = 0)").unwrap();
    db.execute("append t (x = 7, y = 0)").unwrap();
    assert_eq!(db.pending_notifications(), 2);
    let notes = db.drain_notifications();
    assert_eq!(notes.len(), 2);
    assert_eq!(notes[0].channel, "chan");
    assert_eq!(notes[0].columns, vec!["x", "twice"]);
    assert_eq!(notes[0].rows, vec![vec![Value::Int(5), Value::Int(10)]]);
    assert_eq!(notes[1].rows, vec![vec![Value::Int(7), Value::Int(14)]]);
    assert_eq!(db.pending_notifications(), 0, "drained");
}

#[test]
fn set_oriented_notify_bundles_rows() {
    let mut db = db();
    db.execute("define rule watch if t.x > 10 then notify big (x = t.x)")
        .unwrap();
    db.execute("do append t (x = 11, y = 0) append t (x = 12, y = 0) end")
        .unwrap();
    let notes = db.drain_notifications();
    assert_eq!(notes.len(), 1, "one firing, one notification");
    assert_eq!(notes[0].rows.len(), 2, "both matches in it");
}

#[test]
fn notify_with_previous_values() {
    let mut db = db();
    db.execute(
        "define rule moved on replace t(x) then notify moves (now = t.x, was = previous t.x)",
    )
    .unwrap();
    db.execute("append t (x = 1, y = 0)").unwrap();
    db.execute("replace t (x = 2) where t.x = 1").unwrap();
    let notes = db.drain_notifications();
    assert_eq!(notes.len(), 1);
    assert_eq!(notes[0].rows, vec![vec![Value::Int(2), Value::Int(1)]]);
}

#[test]
fn notify_with_join_in_action() {
    let mut db = db();
    db.execute("create names (x = int, label = string)")
        .unwrap();
    db.execute(r#"append names (x = 5, label = "five")"#)
        .unwrap();
    db.execute(
        "define rule tagged on append t \
         then notify tags (label = names.label) where names.x = t.x",
    )
    .unwrap();
    db.execute("append t (x = 5, y = 0)").unwrap();
    db.execute("append t (x = 6, y = 0)").unwrap(); // no name: empty → no note
    let notes = db.drain_notifications();
    assert_eq!(notes.len(), 1);
    assert_eq!(notes[0].rows, vec![vec![Value::from("five")]]);
}

#[test]
fn top_level_notify_command() {
    let mut db = db();
    db.execute("append t (x = 1, y = 2)").unwrap();
    db.execute("append t (x = 3, y = 4)").unwrap();
    let out = db.query("notify snapshot (t.all) where t.x > 0").unwrap();
    assert_eq!(out.notifications.len(), 1);
    assert_eq!(out.notifications[0].rows.len(), 2);
    // also queued on the engine
    assert_eq!(db.pending_notifications(), 1);
}

#[test]
fn empty_match_emits_nothing() {
    let mut db = db();
    let out = db.query("notify empty (t.all) where t.x > 100").unwrap();
    assert!(out.notifications.is_empty());
    assert_eq!(db.pending_notifications(), 0);
}

#[test]
fn notifications_survive_errors_elsewhere() {
    let mut db = db();
    db.execute("define rule watch on append t then notify chan (x = t.x)")
        .unwrap();
    db.execute("append t (x = 1, y = 0)").unwrap();
    assert!(matches!(
        db.execute("append nothere (x = 1)"),
        Err(ArielError::Query(_) | ArielError::Storage(_))
    ));
    assert_eq!(db.pending_notifications(), 1);
}

#[test]
fn show_rule_renders_notify() {
    let mut db = db();
    db.execute("define rule watch on append t then notify chan (x = t.x)")
        .unwrap();
    let shown = db.show_rule("watch").unwrap();
    assert!(shown.contains("notify chan"), "{shown}");
    // and the rendering reparses
    let mut db2 = Ariel::new();
    db2.execute("create t (x = int, y = int)").unwrap();
    db2.execute(&shown).unwrap();
    db2.execute("append t (x = 9, y = 0)").unwrap();
    assert_eq!(db2.pending_notifications(), 1);
}
