//! The POSTQUEL-subset query language through the engine: DDL, DML,
//! retrieval, joins, indexes, and blocks — no rules involved.

use ariel::storage::Value;
use ariel::{Ariel, ArielError};

fn sample_db() -> Ariel {
    let mut db = Ariel::new();
    db.execute(
        "create emp (name = string, sal = float, dno = int); \
         create dept (dno = int, name = string)",
    )
    .unwrap();
    for (n, s, d) in [
        ("alice", 40_000.0, 1),
        ("bob", 55_000.0, 1),
        ("carol", 70_000.0, 2),
        ("dan", 35_000.0, 3),
    ] {
        db.execute(&format!(
            r#"append emp (name = "{n}", sal = {s}, dno = {d})"#
        ))
        .unwrap();
    }
    for (d, n) in [(1, "Sales"), (2, "Toy"), (3, "Shoe")] {
        db.execute(&format!(r#"append dept (dno = {d}, name = "{n}")"#))
            .unwrap();
    }
    db
}

#[test]
fn retrieve_with_computed_targets() {
    let mut db = sample_db();
    let out = db
        .query("retrieve (who = emp.name, monthly = emp.sal / 12) where emp.dno = 1")
        .unwrap();
    assert_eq!(out.columns, vec!["who", "monthly"]);
    assert_eq!(out.rows.len(), 2);
}

#[test]
fn retrieve_join_two_relations() {
    let mut db = sample_db();
    let out = db
        .query(
            "retrieve (emp.name, dept.name) \
             where emp.dno = dept.dno and emp.sal > 50000",
        )
        .unwrap();
    assert_eq!(out.rows.len(), 2); // bob/Sales, carol/Toy
}

#[test]
fn retrieve_with_from_aliases() {
    let mut db = sample_db();
    // self-join: pairs of employees in the same department
    let out = db
        .query(
            "retrieve (a.name, b.name) from a in emp, b in emp \
             where a.dno = b.dno and a.name != b.name",
        )
        .unwrap();
    assert_eq!(out.rows.len(), 2); // (alice,bob) and (bob,alice)
}

#[test]
fn retrieve_into_materializes() {
    let mut db = sample_db();
    db.query("retrieve into rich (emp.all) where emp.sal > 50000")
        .unwrap();
    let out = db.query("retrieve (rich.name)").unwrap();
    assert_eq!(out.rows.len(), 2);
    // destination must not pre-exist
    assert!(db.query("retrieve into rich (emp.all)").is_err());
}

#[test]
fn indexes_speed_up_without_changing_results() {
    let mut db = sample_db();
    let before = db
        .query("retrieve (emp.name) where emp.dno = 1")
        .unwrap()
        .rows
        .len();
    db.execute("define index on emp (dno) using hash").unwrap();
    db.execute("define index on emp (sal) using btree").unwrap();
    let after = db
        .query("retrieve (emp.name) where emp.dno = 1")
        .unwrap()
        .rows
        .len();
    assert_eq!(before, after);
    let ranged = db
        .query("retrieve (emp.name) where emp.sal > 40000 and emp.sal <= 70000")
        .unwrap();
    assert_eq!(ranged.rows.len(), 2);
}

#[test]
fn replace_with_join_qualification() {
    let mut db = sample_db();
    db.execute(r#"replace emp (sal = 0) where emp.dno = dept.dno and dept.name = "Sales""#)
        .unwrap();
    let zeroed = db
        .query("retrieve (emp.name) where emp.sal = 0")
        .unwrap()
        .rows
        .len();
    assert_eq!(zeroed, 2);
}

#[test]
fn delete_everything_with_always_true() {
    let mut db = sample_db();
    db.execute("delete emp where emp.sal > 0").unwrap();
    assert!(db.query("retrieve (emp.name)").unwrap().rows.is_empty());
}

#[test]
fn block_is_atomic_unit_of_commands() {
    let mut db = sample_db();
    db.execute(
        "do append dept (dno = 9, name = \"New\") \
            replace dept (name = \"Newer\") where dept.dno = 9 \
         end",
    )
    .unwrap();
    let out = db.query("retrieve (dept.name) where dept.dno = 9").unwrap();
    assert_eq!(out.rows[0][0], Value::from("Newer"));
}

#[test]
fn ddl_inside_block_rejected() {
    let mut db = sample_db();
    let err = db.execute("do create t (x = int) end").unwrap_err();
    assert!(matches!(err, ArielError::Query(_)));
}

#[test]
fn destroy_and_recreate_relation() {
    let mut db = sample_db();
    db.execute("destroy dept").unwrap();
    assert!(db.query("retrieve (dept.name)").is_err());
    db.execute("create dept (dno = int, name = string)")
        .unwrap();
    assert!(db.query("retrieve (dept.name)").unwrap().rows.is_empty());
}

#[test]
fn arithmetic_and_boolean_expressions() {
    let mut db = sample_db();
    let out = db
        .query(
            "retrieve (emp.name) \
             where emp.sal * 2 > 100000 and not emp.dno = 3 or emp.name = \"dan\"",
        )
        .unwrap();
    let mut names: Vec<_> = out
        .rows
        .iter()
        .map(|r| r[0].as_str().unwrap().to_string())
        .collect();
    names.sort();
    assert_eq!(names, vec!["bob", "carol", "dan"]);
}

#[test]
fn append_computed_from_join() {
    let mut db = sample_db();
    db.execute("create payroll (dept = string, cost = float)")
        .unwrap();
    db.execute(r#"append payroll (dept = dept.name, cost = emp.sal) where emp.dno = dept.dno"#)
        .unwrap();
    assert_eq!(db.query("retrieve (payroll.all)").unwrap().rows.len(), 4);
}

#[test]
fn errors_are_reported_not_panics() {
    let mut db = sample_db();
    assert!(db.execute("retrieve (nothere.x)").is_err());
    assert!(db.execute("append emp (bogus = 1)").is_err());
    assert!(db.execute("this is not a command").is_err());
    assert!(
        db.execute("create emp (x = int)").is_err(),
        "duplicate relation"
    );
    assert!(db
        .execute("retrieve (emp.name) where emp.name > 5")
        .is_err());
    // the engine stays usable after errors
    assert_eq!(db.query("retrieve (emp.name)").unwrap().rows.len(), 4);
}

#[test]
fn script_returns_one_output_per_command() {
    let mut db = Ariel::new();
    let outs = db
        .execute("create t (x = int); append t (x = 1); retrieve (t.x)")
        .unwrap();
    assert_eq!(outs.len(), 3);
    assert_eq!(outs[2].rows.len(), 1);
}

#[test]
fn null_semantics_in_queries() {
    let mut db = Ariel::new();
    db.execute("create t (x = int, y = int)").unwrap();
    db.execute("append t (x = 1)").unwrap(); // y is null
    let out = db.query("retrieve (t.x) where t.y = t.y").unwrap();
    assert!(out.rows.is_empty(), "null never equals anything");
    let out = db.query("retrieve (t.x) where t.x = 1").unwrap();
    assert_eq!(out.rows.len(), 1);
}

#[test]
fn explain_shows_plan_without_executing() {
    let db = sample_db();
    let before = db.stats().transitions;
    let plan = db
        .explain("retrieve (emp.name) where emp.dno = dept.dno")
        .unwrap();
    assert!(plan.contains("NestedLoopJoin") || plan.contains("SortMergeJoin"));
    // nothing was executed
    assert_eq!(db.stats().transitions, before);
}

#[test]
fn explain_rule_action_reproduces_figure8_shape() {
    // Fig. 8: the rule-action plan scans the P-node and joins dept
    let mut db = sample_db();
    db.execute(
        r#"define rule cap if emp.sal > 100 then
           replace emp (sal = 100) where emp.dno = dept.dno and dept.name = "Sales""#,
    )
    .unwrap();
    let plan = db.explain_rule_action("cap").unwrap();
    assert!(plan.contains("PnodeScan"), "{plan}");
    assert!(plan.contains("Join"), "{plan}");
    // inactive rules cannot be explained
    db.execute("deactivate rule cap").unwrap();
    assert!(db.explain_rule_action("cap").is_err());
}
