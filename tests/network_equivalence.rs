//! Equivalence of discrimination-network configurations: whatever mix of
//! stored and virtual α-memories (and whichever network algorithm) is used,
//! rule behaviour must be identical. Runs a randomized command stream
//! against engines configured differently and compares final database
//! states.

use ariel::network::{ReteMode, VirtualPolicy};
use ariel::storage::Value;
use ariel::{Ariel, EngineOptions};

/// Deterministic xorshift for workload generation.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 16
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn build(policy: VirtualPolicy) -> Ariel {
    build_with_indexing(policy, true)
}

fn build_with_indexing(policy: VirtualPolicy, join_indexing: bool) -> Ariel {
    build_with(EngineOptions {
        virtual_policy: policy,
        join_indexing,
        ..Default::default()
    })
}

fn build_with(options: EngineOptions) -> Ariel {
    let mut db = Ariel::with_options(options);
    db.execute(
        "create emp (id = int, sal = float, dno = int); \
         create dept (dno = int, floor = int); \
         create audit (id = int, kind = int)",
    )
    .unwrap();
    // a mix of rule shapes: selection, join, transition, event
    db.execute("define rule r_sel if emp.sal > 5000 then append to audit(id = emp.id, kind = 1)")
        .unwrap();
    db.execute(
        "define rule r_join if emp.sal > 1000 and emp.dno = dept.dno and dept.floor < 3 \
         then append to audit(id = emp.id, kind = 2)",
    )
    .unwrap();
    db.execute(
        "define rule r_trans if emp.sal > 2 * previous emp.sal \
         then append to audit(id = emp.id, kind = 3)",
    )
    .unwrap();
    db.execute("define rule r_event on delete emp then append to audit(id = emp.id, kind = 4)")
        .unwrap();
    db
}

fn apply_stream(db: &mut Ariel, seed: u64, steps: usize) {
    let mut rng = Rng(seed | 1);
    let mut next_id = 0i64;
    for _ in 0..steps {
        match rng.below(10) {
            0..=3 => {
                let id = next_id;
                next_id += 1;
                let sal = rng.below(9000);
                let dno = rng.below(5);
                db.execute(&format!("append emp (id = {id}, sal = {sal}, dno = {dno})"))
                    .unwrap();
            }
            4..=5 => {
                let dno = rng.below(5);
                let floor = rng.below(6);
                db.execute(&format!("append dept (dno = {dno}, floor = {floor})"))
                    .unwrap();
            }
            6..=7 => {
                let id = rng.below(next_id.max(1) as u64);
                let sal = rng.below(12_000);
                db.execute(&format!("replace emp (sal = {sal}) where emp.id = {id}"))
                    .unwrap();
            }
            _ => {
                let id = rng.below(next_id.max(1) as u64);
                db.execute(&format!("delete emp where emp.id = {id}"))
                    .unwrap();
            }
        }
    }
}

type Rows = Vec<Vec<Value>>;

fn snapshot(db: &mut Ariel, rel: &str) -> Rows {
    let mut rows = db.query(&format!("retrieve ({rel}.all)")).unwrap().rows;
    rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    rows
}

#[test]
fn virtual_policies_produce_identical_states() {
    let policies = [
        VirtualPolicy::AllStored,
        VirtualPolicy::AllVirtual,
        VirtualPolicy::SelectivityThreshold(0.3),
        VirtualPolicy::SelectivityThreshold(0.8),
    ];
    let mut reference: Option<(Rows, Rows)> = None;
    for policy in policies {
        let mut db = build(policy.clone());
        apply_stream(&mut db, 0xDECAF, 150);
        let emp = snapshot(&mut db, "emp");
        let audit = snapshot(&mut db, "audit");
        assert!(!audit.is_empty(), "the stream must exercise the rules");
        match &reference {
            None => reference = Some((emp, audit)),
            Some((ref_emp, ref_audit)) => {
                assert_eq!(&emp, ref_emp, "emp diverged under {policy:?}");
                assert_eq!(&audit, ref_audit, "audit diverged under {policy:?}");
            }
        }
    }
}

#[test]
fn plan_caching_matches_always_reoptimize() {
    for cache in [false, true] {
        let mut db = Ariel::with_options(EngineOptions {
            cache_action_plans: cache,
            ..Default::default()
        });
        db.execute(
            "create emp (id = int, sal = float, dno = int); \
                    create dept (dno = int, floor = int); \
                    create audit (id = int, kind = int)",
        )
        .unwrap();
        db.execute(
            "define rule r if emp.sal > 100 and emp.dno = dept.dno \
             then append to audit(id = emp.id, kind = 1)",
        )
        .unwrap();
        db.execute("append dept (dno = 1, floor = 1)").unwrap();
        for i in 0..20 {
            db.execute(&format!("append emp (id = {i}, sal = 200, dno = 1)"))
                .unwrap();
        }
        assert_eq!(
            db.query("retrieve (audit.all)").unwrap().rows.len(),
            20,
            "cache={cache}"
        );
    }
}

/// Indexed-vs-nested-loop oracle: the hash join indexes are a pure
/// optimization, so with indexing on or off — and under every virtual
/// policy — the same rule set and token stream must produce the same
/// final database state.
#[test]
fn join_indexing_produces_identical_states() {
    let policies = [
        VirtualPolicy::AllStored,
        VirtualPolicy::AllVirtual,
        VirtualPolicy::SelectivityThreshold(0.3),
    ];
    let mut reference: Option<(Rows, Rows)> = None;
    for policy in policies {
        for indexing in [true, false] {
            let mut db = build_with_indexing(policy.clone(), indexing);
            apply_stream(&mut db, 0xDECAF, 150);
            let emp = snapshot(&mut db, "emp");
            let audit = snapshot(&mut db, "audit");
            assert!(!audit.is_empty(), "the stream must exercise the rules");
            if indexing {
                let s = db.network_stats();
                assert_eq!(
                    s.indexed_candidates + s.scanned_candidates,
                    s.stored_join_candidates + s.virtual_join_candidates,
                    "every join candidate comes from a probe or a scan"
                );
            }
            match &reference {
                None => reference = Some((emp, audit)),
                Some((ref_emp, ref_audit)) => {
                    assert_eq!(&emp, ref_emp, "emp diverged: {policy:?}/{indexing}");
                    assert_eq!(&audit, ref_audit, "audit diverged: {policy:?}/{indexing}");
                }
            }
        }
    }
}

/// Build an engine exercising the composite-key and band-join access
/// paths: two-conjunct equi-joins (pure `Int` keys and mixed `Float`/`Int`
/// keys) plus an interval-shaped band join against a `band` relation whose
/// bounds mix `Int` (`lo`) and `Float` (`hi`) columns.
fn build_composite_band(policy: VirtualPolicy, join_indexing: bool, composite: bool) -> Ariel {
    let mut db = Ariel::with_options(EngineOptions {
        virtual_policy: policy,
        join_indexing,
        composite_join_keys: composite,
        ..Default::default()
    });
    db.execute(
        "create emp (id = int, sal = float, dno = int, jno = int); \
         create dept (dno = int, floor = int); \
         create band (lo = int, hi = float); \
         create audit (id = int, kind = int)",
    )
    .unwrap();
    db.execute(
        "define rule r_comp if emp.dno = dept.dno and emp.jno = dept.floor \
         then append to audit(id = emp.id, kind = 1)",
    )
    .unwrap();
    db.execute(
        "define rule r_band if band.lo < emp.sal and emp.sal <= band.hi \
         then append to audit(id = emp.id, kind = 2)",
    )
    .unwrap();
    db.execute(
        "define rule r_mixed if emp.sal = dept.floor and emp.dno = dept.dno \
         then append to audit(id = emp.id, kind = 3)",
    )
    .unwrap();
    db
}

/// Randomized stream over emp/dept/band that regularly leaves join-key
/// attributes null (omitted from the append) — null keys must join nothing
/// on both the indexed and the nested-loop path.
fn apply_composite_band_stream(db: &mut Ariel, seed: u64, steps: usize) {
    let mut rng = Rng(seed | 1);
    let mut next_id = 0i64;
    for _ in 0..steps {
        match rng.below(12) {
            0..=4 => {
                let id = next_id;
                next_id += 1;
                let sal = rng.below(50);
                let dno = rng.below(6);
                let jno = rng.below(6);
                let cmd = match rng.below(8) {
                    0 => format!("append emp (id = {id}, sal = {sal}, jno = {jno})"),
                    1 => format!("append emp (id = {id}, dno = {dno}, jno = {jno})"),
                    _ => format!("append emp (id = {id}, sal = {sal}, dno = {dno}, jno = {jno})"),
                };
                db.execute(&cmd).unwrap();
            }
            5..=6 => {
                let dno = rng.below(6);
                let floor = rng.below(6);
                let cmd = if rng.below(6) == 0 {
                    format!("append dept (dno = {dno})")
                } else {
                    format!("append dept (dno = {dno}, floor = {floor})")
                };
                db.execute(&cmd).unwrap();
            }
            7..=8 => {
                let lo = rng.below(40);
                let hi = lo + 15;
                let cmd = if rng.below(6) == 0 {
                    format!("append band (lo = {lo})")
                } else {
                    format!("append band (lo = {lo}, hi = {hi})")
                };
                db.execute(&cmd).unwrap();
            }
            9 => {
                let id = rng.below(next_id.max(1) as u64);
                let sal = rng.below(50);
                db.execute(&format!("replace emp (sal = {sal}) where emp.id = {id}"))
                    .unwrap();
            }
            _ => {
                let id = rng.below(next_id.max(1) as u64);
                db.execute(&format!("delete emp where emp.id = {id}"))
                    .unwrap();
            }
        }
    }
}

/// Composite-key and band-join oracle: hash-composite and interval-index
/// access paths are pure optimizations, so every (policy, indexing,
/// composite-keys) configuration must converge to the same database state
/// — including null join keys and mixed Int/Float key components.
#[test]
fn composite_and_band_joins_produce_identical_states() {
    let policies = [
        VirtualPolicy::AllStored,
        VirtualPolicy::AllVirtual,
        VirtualPolicy::SelectivityThreshold(0.3),
        VirtualPolicy::SelectivityThreshold(0.8),
    ];
    let mut reference: Option<(Rows, Rows)> = None;
    for policy in policies {
        for (indexing, composite) in [(false, true), (true, true), (true, false)] {
            let mut db = build_composite_band(policy.clone(), indexing, composite);
            apply_composite_band_stream(&mut db, 0xBA5EBA11, 140);
            let emp = snapshot(&mut db, "emp");
            let audit = snapshot(&mut db, "audit");
            for kind in 1..=3 {
                assert!(
                    audit.iter().any(|r| r[1] == Value::Int(kind)),
                    "rule kind {kind} must fire under {policy:?}"
                );
            }
            if indexing {
                let s = db.network_stats();
                assert_eq!(
                    s.indexed_candidates + s.scanned_candidates,
                    s.stored_join_candidates + s.virtual_join_candidates,
                    "every join candidate comes from a probe or a scan"
                );
                if matches!(policy, VirtualPolicy::AllStored) {
                    assert!(
                        s.range_probes > 0 && s.range_hits > 0,
                        "stored band memories must serve stabbing queries"
                    );
                    assert!(s.index_probes > 0, "equi joins must probe hash buckets");
                }
            }
            match &reference {
                None => reference = Some((emp, audit)),
                Some((ref_emp, ref_audit)) => {
                    assert_eq!(
                        &emp, ref_emp,
                        "emp diverged: {policy:?}/indexing={indexing}/composite={composite}"
                    );
                    assert_eq!(
                        &audit, ref_audit,
                        "audit diverged: {policy:?}/indexing={indexing}/composite={composite}"
                    );
                }
            }
        }
    }
}

/// Build an engine on a chosen network backend with the composite/band/
/// null-key rule set, but pattern-only (the Rete baseline rejects event
/// and transition conditions).
fn build_backend(policy: VirtualPolicy, rete: Option<ReteMode>) -> Ariel {
    let mut db = Ariel::with_options(EngineOptions {
        virtual_policy: policy,
        rete_mode: rete,
        ..Default::default()
    });
    db.execute(
        "create emp (id = int, sal = float, dno = int, jno = int); \
         create dept (dno = int, floor = int); \
         create band (lo = int, hi = float); \
         create audit (id = int, kind = int)",
    )
    .unwrap();
    db.execute(
        "define rule r_comp if emp.dno = dept.dno and emp.jno = dept.floor \
         then append to audit(id = emp.id, kind = 1)",
    )
    .unwrap();
    db.execute(
        "define rule r_band if band.lo < emp.sal and emp.sal <= band.hi \
         then append to audit(id = emp.id, kind = 2)",
    )
    .unwrap();
    db.execute(
        "define rule r_sel if emp.sal > 40 \
         then append to audit(id = emp.id, kind = 3)",
    )
    .unwrap();
    db
}

/// Three-way network oracle: the A-TREAT network, the indexed Rete network
/// and the nested-loop Rete network must all converge to the same database
/// state — on band joins, composite equi-joins and null join keys, under
/// append/delete/replace churn, for every virtual policy. (The Rete
/// backend maps `SelectivityThreshold` to all-stored; behaviour must still
/// be identical, only memory differs.)
#[test]
fn treat_and_both_rete_modes_produce_identical_states() {
    let policies = [
        VirtualPolicy::AllStored,
        VirtualPolicy::AllVirtual,
        VirtualPolicy::SelectivityThreshold(0.3),
        VirtualPolicy::SelectivityThreshold(0.8),
    ];
    let backends = [None, Some(ReteMode::Indexed), Some(ReteMode::Nested)];
    let mut reference: Option<(Rows, Rows)> = None;
    for policy in policies {
        for backend in backends {
            let mut db = build_backend(policy.clone(), backend);
            apply_composite_band_stream(&mut db, 0xC0FFEE, 140);
            let emp = snapshot(&mut db, "emp");
            let audit = snapshot(&mut db, "audit");
            for kind in 1..=3 {
                assert!(
                    audit.iter().any(|r| r[1] == Value::Int(kind)),
                    "rule kind {kind} must fire under {policy:?}/{backend:?}"
                );
            }
            let s = db.network_stats();
            match backend {
                Some(ReteMode::Indexed) => {
                    assert!(s.beta_bytes > 0, "Rete holds β state ({policy:?})");
                    assert!(
                        s.beta_probes > 0,
                        "indexed Rete probes β indexes ({policy:?})"
                    );
                    assert!(s.beta_hits <= s.beta_probes);
                }
                Some(ReteMode::Nested) => {
                    assert!(s.beta_bytes > 0, "Rete holds β state ({policy:?})");
                    assert_eq!(s.beta_probes, 0, "nested Rete never probes");
                }
                None => {
                    assert_eq!(s.beta_bytes, 0, "TREAT materializes no β state");
                    assert_eq!(s.beta_probes, 0);
                }
            }
            match &reference {
                None => reference = Some((emp, audit)),
                Some((ref_emp, ref_audit)) => {
                    assert_eq!(&emp, ref_emp, "emp diverged: {policy:?}/{backend:?}");
                    assert_eq!(&audit, ref_audit, "audit diverged: {policy:?}/{backend:?}");
                }
            }
        }
    }
}

/// A stream that lands several appends per transition (`do … end`), so
/// the parallel match path sees multi-token *runs* — the case where its
/// visibility stamps, not the pending set, keep self-joins correct.
fn apply_batched_stream(db: &mut Ariel, seed: u64, rounds: usize) {
    let mut rng = Rng(seed | 1);
    let mut next_id = 1000i64;
    for _ in 0..rounds {
        let mut cmds = Vec::new();
        for _ in 0..(2 + rng.below(6)) {
            let id = next_id;
            next_id += 1;
            let sal = rng.below(9000);
            let dno = rng.below(5);
            cmds.push(format!("append emp (id = {id}, sal = {sal}, dno = {dno})"));
        }
        db.execute(&format!("do {} end", cmds.join(" "))).unwrap();
        if rng.below(3) == 0 {
            let dno = rng.below(5);
            let floor = rng.below(6);
            db.execute(&format!("append dept (dno = {dno}, floor = {floor})"))
                .unwrap();
        }
        if rng.below(4) == 0 {
            let id = 1000 + rng.below((next_id - 1000).max(1) as u64);
            db.execute(&format!("delete emp where emp.id = {id}"))
                .unwrap();
        }
    }
}

/// Parallel-match oracle: with β-join probes fanned across 1, 2 or 4
/// workers, every virtual policy must converge to the same final state as
/// the sequential reference — under the per-command churn stream (runs of
/// length 1, exercising the run boundaries and sequential fallbacks) and
/// the batched stream (long runs, exercising the visibility stamps).
#[test]
fn parallel_match_produces_identical_states() {
    let policies = [
        VirtualPolicy::AllStored,
        VirtualPolicy::AllVirtual,
        VirtualPolicy::SelectivityThreshold(0.3),
    ];
    for policy in policies {
        let mut seq = build(policy.clone());
        apply_stream(&mut seq, 0xFEED, 120);
        apply_batched_stream(&mut seq, 0xABBA, 30);
        let ref_emp = snapshot(&mut seq, "emp");
        let ref_audit = snapshot(&mut seq, "audit");
        assert!(!ref_audit.is_empty(), "the stream must exercise the rules");
        for threads in [1usize, 2, 4] {
            let mut par = build_with(EngineOptions {
                virtual_policy: policy.clone(),
                parallel_match: true,
                match_threads: threads,
                ..Default::default()
            });
            assert!(par.parallel_match());
            apply_stream(&mut par, 0xFEED, 120);
            apply_batched_stream(&mut par, 0xABBA, 30);
            assert_eq!(
                snapshot(&mut par, "emp"),
                ref_emp,
                "emp diverged: {policy:?}/{threads} threads"
            );
            assert_eq!(
                snapshot(&mut par, "audit"),
                ref_audit,
                "audit diverged: {policy:?}/{threads} threads"
            );
        }
    }
}

/// Parallel match against all three backends: the A-TREAT network runs
/// the parallel path, the Rete baselines ignore the flag and stay
/// sequential — every (backend, thread-count) combination must converge
/// to the same state the sequential three-way oracle already pins down.
#[test]
fn parallel_match_across_backends_produces_identical_states() {
    let backends = [None, Some(ReteMode::Indexed), Some(ReteMode::Nested)];
    let mut reference: Option<(Rows, Rows)> = None;
    for backend in backends {
        for threads in [1usize, 2, 4] {
            let mut db = Ariel::with_options(EngineOptions {
                rete_mode: backend,
                parallel_match: backend.is_none(),
                match_threads: threads,
                ..Default::default()
            });
            db.execute(
                "create emp (id = int, sal = float, dno = int, jno = int); \
                 create dept (dno = int, floor = int); \
                 create band (lo = int, hi = float); \
                 create audit (id = int, kind = int)",
            )
            .unwrap();
            db.execute(
                "define rule r_comp if emp.dno = dept.dno and emp.jno = dept.floor \
                 then append to audit(id = emp.id, kind = 1)",
            )
            .unwrap();
            db.execute(
                "define rule r_band if band.lo < emp.sal and emp.sal <= band.hi \
                 then append to audit(id = emp.id, kind = 2)",
            )
            .unwrap();
            db.execute(
                "define rule r_sel if emp.sal > 40 \
                 then append to audit(id = emp.id, kind = 3)",
            )
            .unwrap();
            apply_composite_band_stream(&mut db, 0xC0FFEE, 140);
            let emp = snapshot(&mut db, "emp");
            let audit = snapshot(&mut db, "audit");
            match &reference {
                None => reference = Some((emp, audit)),
                Some((ref_emp, ref_audit)) => {
                    assert_eq!(&emp, ref_emp, "emp diverged: {backend:?}/{threads}");
                    assert_eq!(&audit, ref_audit, "audit diverged: {backend:?}/{threads}");
                }
            }
        }
    }
}

/// Scheduling-independence stress: permuting how join seeds are dealt to
/// worker deques (seeded shuffles standing in for adversarial schedules)
/// must not change any result, because each seed's computation is
/// self-contained and the merge runs in token order.
#[test]
fn parallel_match_shard_order_stress() {
    let mut reference: Option<(Rows, Rows)> = None;
    for shard_seed in [
        None,
        Some(0x5EED_0001u64),
        Some(0x5EED_0002),
        Some(u64::MAX),
    ] {
        let mut db = build_with(EngineOptions {
            parallel_match: true,
            match_threads: 3,
            ..Default::default()
        });
        db.set_match_shard_seed(shard_seed);
        apply_batched_stream(&mut db, 0xD15EA5E, 40);
        apply_stream(&mut db, 0xD15EA5E, 60);
        let emp = snapshot(&mut db, "emp");
        let audit = snapshot(&mut db, "audit");
        assert!(!audit.is_empty(), "the stream must exercise the rules");
        match &reference {
            None => reference = Some((emp, audit)),
            Some((ref_emp, ref_audit)) => {
                assert_eq!(
                    &emp, ref_emp,
                    "emp diverged under shard seed {shard_seed:?}"
                );
                assert_eq!(
                    &audit, ref_audit,
                    "audit diverged under shard seed {shard_seed:?}"
                );
            }
        }
    }
}

/// Build an engine over a string-keyed schema on a chosen backend, with
/// string interning on or off — the memory-layout dimension. Rules cover
/// a string equi-join, a string selection predicate and a numeric band.
fn build_interning(rete: Option<ReteMode>, intern: bool) -> Ariel {
    let mut db = Ariel::with_options(EngineOptions {
        rete_mode: rete,
        intern_strings: intern,
        ..Default::default()
    });
    db.execute(
        "create emp (id = int, name = string, dept = string, sal = float); \
         create dept (dname = string, floor = int); \
         create audit (id = int, kind = int)",
    )
    .unwrap();
    db.execute(
        "define rule r_sjoin if emp.dept = dept.dname and dept.floor < 4 \
         then append to audit(id = emp.id, kind = 1)",
    )
    .unwrap();
    db.execute(
        "define rule r_ssel if emp.name = \"hot\" \
         then append to audit(id = emp.id, kind = 2)",
    )
    .unwrap();
    db.execute(
        "define rule r_band if emp.sal > 30 and emp.sal <= 60 \
         then append to audit(id = emp.id, kind = 3)",
    )
    .unwrap();
    db
}

/// Randomized stream over the string-keyed schema: pooled names (so
/// interning dedupes), occasional null join keys, churn on both sides of
/// the string join.
fn apply_string_stream(db: &mut Ariel, seed: u64, steps: usize) {
    let mut rng = Rng(seed | 1);
    let mut next_id = 0i64;
    for _ in 0..steps {
        match rng.below(10) {
            0..=4 => {
                let id = next_id;
                next_id += 1;
                let name = if rng.below(5) == 0 {
                    "hot".to_string()
                } else {
                    format!("n{}", rng.below(8))
                };
                let sal = rng.below(80);
                let cmd = if rng.below(6) == 0 {
                    format!("append emp (id = {id}, name = \"{name}\", sal = {sal})")
                } else {
                    format!(
                        "append emp (id = {id}, name = \"{name}\", \
                         dept = \"d{}\", sal = {sal})",
                        rng.below(6)
                    )
                };
                db.execute(&cmd).unwrap();
            }
            5..=6 => {
                let cmd = format!(
                    "append dept (dname = \"d{}\", floor = {})",
                    rng.below(6),
                    rng.below(8)
                );
                db.execute(&cmd).unwrap();
            }
            7 => {
                let id = rng.below(next_id.max(1) as u64);
                db.execute(&format!(
                    "replace emp (dept = \"d{}\") where emp.id = {id}",
                    rng.below(6)
                ))
                .unwrap();
            }
            _ => {
                let id = rng.below(next_id.max(1) as u64);
                db.execute(&format!("delete emp where emp.id = {id}"))
                    .unwrap();
            }
        }
    }
}

/// Like [`snapshot`], but normalizes interned symbols back to plain
/// strings first: `Sym` and `Str` compare equal by content, yet their
/// `Debug` sort keys differ, so the interned and legacy layouts would
/// order rows differently without this.
fn snapshot_normalized(db: &mut Ariel, rel: &str) -> Rows {
    let mut rows: Rows = db
        .query(&format!("retrieve ({rel}.all)"))
        .unwrap()
        .rows
        .into_iter()
        .map(|row| {
            row.into_iter()
                .map(|v| match v {
                    Value::Sym(s) => Value::Str(s.as_str().to_string()),
                    other => other,
                })
                .collect()
        })
        .collect();
    rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    rows
}

/// Interning oracle: symbol interning is a pure representation change, so
/// every (backend, interning) combination — A-TREAT, indexed Rete, nested
/// Rete, each with interning on and off — must converge to the same
/// database state on a string-keyed workload with pooled names, string
/// join keys and null-key churn.
#[test]
fn interning_on_and_off_produce_identical_states() {
    let backends = [None, Some(ReteMode::Indexed), Some(ReteMode::Nested)];
    let mut reference: Option<(Rows, Rows)> = None;
    for backend in backends {
        for intern in [true, false] {
            let mut db = build_interning(backend, intern);
            assert_eq!(db.catalog().intern_strings(), intern);
            apply_string_stream(&mut db, 0x1D10_7BEE, 150);
            let emp = snapshot_normalized(&mut db, "emp");
            let audit = snapshot_normalized(&mut db, "audit");
            for kind in 1..=3 {
                assert!(
                    audit.iter().any(|r| r[1] == Value::Int(kind)),
                    "rule kind {kind} must fire under {backend:?}/intern={intern}"
                );
            }
            match &reference {
                None => reference = Some((emp, audit)),
                Some((ref_emp, ref_audit)) => {
                    assert_eq!(&emp, ref_emp, "emp diverged: {backend:?}/intern={intern}");
                    assert_eq!(
                        &audit, ref_audit,
                        "audit diverged: {backend:?}/intern={intern}"
                    );
                }
            }
        }
    }
}

#[test]
fn long_stream_with_two_seeds() {
    for seed in [7u64, 99] {
        let mut a = build(VirtualPolicy::AllStored);
        let mut b = build(VirtualPolicy::AllVirtual);
        apply_stream(&mut a, seed, 100);
        apply_stream(&mut b, seed, 100);
        assert_eq!(
            snapshot(&mut a, "audit"),
            snapshot(&mut b, "audit"),
            "seed {seed}"
        );
        assert_eq!(
            snapshot(&mut a, "emp"),
            snapshot(&mut b, "emp"),
            "seed {seed}"
        );
    }
}
