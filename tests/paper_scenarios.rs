//! Every worked example from the paper, end to end through the engine.

use ariel::network::VirtualPolicy;
use ariel::storage::Value;
use ariel::{Ariel, EngineOptions};

/// The paper's three example relations (§2.2.2).
fn paper_db() -> Ariel {
    let mut db = Ariel::new();
    db.execute(
        "create emp (name = string, age = int, sal = float, dno = int, jno = int); \
         create dept (dno = int, name = string, building = string); \
         create job (jno = int, title = string, paygrade = int, description = string)",
    )
    .unwrap();
    db
}

fn names(db: &mut Ariel, rel: &str) -> Vec<String> {
    let out = db.query(&format!("retrieve ({rel}.name)")).unwrap();
    let mut v: Vec<String> = out
        .rows
        .iter()
        .map(|r| r[0].as_str().unwrap().to_string())
        .collect();
    v.sort();
    v
}

#[test]
fn nobobs_on_append() {
    // §2.2.2: "never let anyone named Bob be appended to emp"
    let mut db = paper_db();
    db.execute(r#"define rule NoBobs on append emp if emp.name = "Bob" then delete emp"#)
        .unwrap();
    db.execute(r#"append emp (name = "Bob", age = 30, sal = 1000, dno = 1, jno = 1)"#)
        .unwrap();
    db.execute(r#"append emp (name = "Alice", age = 30, sal = 1000, dno = 1, jno = 1)"#)
        .unwrap();
    assert_eq!(names(&mut db, "emp"), vec!["Alice"]);
}

#[test]
fn nobobs_logical_events_in_block() {
    // §2.2.2's block: append Sue, then rename her Bob, inside one do…end.
    // The logical event is a single append of Bob, so NoBobs fires.
    let mut db = paper_db();
    db.execute(r#"define rule NoBobs on append emp if emp.name = "Bob" then delete emp"#)
        .unwrap();
    db.execute(
        r#"do
             append emp (name = "Sue", age = 27, sal = 55000, dno = 12, jno = 1)
             replace emp (name = "Bob") where emp.name = "Sue"
           end"#,
    )
    .unwrap();
    assert!(
        names(&mut db, "emp").is_empty(),
        "logical append of Bob was caught"
    );
}

#[test]
fn nobobs_physical_events_without_block() {
    // The same two commands as two separate transitions: the append is of
    // "Sue" (no trigger) and the rename is a replace, not an append — the
    // on-append rule does NOT fire. This is exactly why §2.2.2 recommends
    // the pattern-based NoBobs2.
    let mut db = paper_db();
    db.execute(r#"define rule NoBobs on append emp if emp.name = "Bob" then delete emp"#)
        .unwrap();
    db.execute(r#"append emp (name = "Sue", age = 27, sal = 55000, dno = 12, jno = 1)"#)
        .unwrap();
    db.execute(r#"replace emp (name = "Bob") where emp.name = "Sue""#)
        .unwrap();
    assert_eq!(
        names(&mut db, "emp"),
        vec!["Bob"],
        "on-append misses the rename"
    );
}

#[test]
fn nobobs2_pattern_based_catches_everything() {
    let mut db = paper_db();
    db.execute(r#"define rule NoBobs2 if emp.name = "Bob" then delete emp"#)
        .unwrap();
    // append path
    db.execute(r#"append emp (name = "Bob", age = 1, sal = 1, dno = 1, jno = 1)"#)
        .unwrap();
    assert!(names(&mut db, "emp").is_empty());
    // replace path
    db.execute(r#"append emp (name = "Sue", age = 1, sal = 1, dno = 1, jno = 1)"#)
        .unwrap();
    db.execute(r#"replace emp (name = "Bob") where emp.name = "Sue""#)
        .unwrap();
    assert!(
        names(&mut db, "emp").is_empty(),
        "pattern rule catches the rename"
    );
}

#[test]
fn raiselimit_transition_rule() {
    // §2.3: flag raises of more than ten percent.
    let mut db = paper_db();
    db.execute("create salaryerror (name = string, oldsal = float, newsal = float)")
        .unwrap();
    db.execute(
        "define rule raiselimit if emp.sal > 1.1 * previous emp.sal \
         then append to salaryerror(name = emp.name, oldsal = previous emp.sal, newsal = emp.sal)",
    )
    .unwrap();
    db.execute(r#"append emp (name = "amy", age = 1, sal = 100000, dno = 1, jno = 1)"#)
        .unwrap();
    // +5%: fine
    db.execute(r#"replace emp (sal = 105000) where emp.name = "amy""#)
        .unwrap();
    assert_eq!(
        db.query("retrieve (salaryerror.all)").unwrap().rows.len(),
        0
    );
    // +20%: flagged with old and new values
    db.execute(r#"replace emp (sal = 126000) where emp.name = "amy""#)
        .unwrap();
    let out = db.query("retrieve (salaryerror.all)").unwrap();
    assert_eq!(out.rows.len(), 1);
    assert_eq!(out.rows[0][1], Value::Float(105000.0));
    assert_eq!(out.rows[0][2], Value::Float(126000.0));
}

#[test]
fn toyraiselimit_join_plus_transition() {
    // §2.3: the raise limit scoped to the Toy department via a join.
    let mut db = paper_db();
    db.execute("create toysalaryerror (name = string, oldsal = float, newsal = float)")
        .unwrap();
    db.execute(r#"append dept (dno = 1, name = "Toy", building = "B1")"#)
        .unwrap();
    db.execute(r#"append dept (dno = 2, name = "Shoe", building = "B2")"#)
        .unwrap();
    db.execute(
        "define rule toyraiselimit \
         if emp.sal > 1.1 * previous emp.sal and emp.dno = dept.dno and dept.name = \"Toy\" \
         then append to toysalaryerror(name = emp.name, oldsal = previous emp.sal, newsal = emp.sal)",
    )
    .unwrap();
    db.execute(r#"append emp (name = "toyer", age = 1, sal = 100, dno = 1, jno = 1)"#)
        .unwrap();
    db.execute(r#"append emp (name = "shoer", age = 1, sal = 100, dno = 2, jno = 1)"#)
        .unwrap();
    // both get 50% raises; only the Toy employee is flagged
    db.execute("replace emp (sal = 150) where emp.sal = 100")
        .unwrap();
    let out = db.query("retrieve (toysalaryerror.all)").unwrap();
    assert_eq!(out.rows.len(), 1);
    assert_eq!(out.rows[0][0], Value::from("toyer"));
}

#[test]
fn finddemotions_event_pattern_transition() {
    // §2.3: log demotions — event (on replace emp(jno)), pattern (job
    // lookups) and transition (previous emp.jno) conditions combined.
    let mut db = paper_db();
    db.execute("create demotions (name = string, dno = int, oldjno = int, newjno = int)")
        .unwrap();
    db.execute(r#"append job (jno = 1, title = "Clerk", paygrade = 3, description = "d")"#)
        .unwrap();
    db.execute(r#"append job (jno = 2, title = "Boss", paygrade = 9, description = "d")"#)
        .unwrap();
    db.execute(
        "define rule finddemotions on replace emp(jno) \
         if newjob.jno = emp.jno and oldjob.jno = previous emp.jno \
            and newjob.paygrade < oldjob.paygrade \
         from oldjob in job, newjob in job \
         then append to demotions (name = emp.name, dno = emp.dno, \
                                   oldjno = oldjob.jno, newjno = newjob.jno)",
    )
    .unwrap();
    db.execute(r#"append emp (name = "mel", age = 1, sal = 1, dno = 7, jno = 2)"#)
        .unwrap();
    // demotion: Boss (paygrade 9) → Clerk (paygrade 3)
    db.execute(r#"replace emp (jno = 1) where emp.name = "mel""#)
        .unwrap();
    let out = db.query("retrieve (demotions.all)").unwrap();
    assert_eq!(out.rows.len(), 1);
    assert_eq!(out.rows[0][2], Value::Int(2), "old job");
    assert_eq!(out.rows[0][3], Value::Int(1), "new job");
    // promotion back: no new row
    db.execute(r#"replace emp (jno = 2) where emp.name = "mel""#)
        .unwrap();
    assert_eq!(db.query("retrieve (demotions.all)").unwrap().rows.len(), 1);
    // a replace NOT touching jno never wakes the rule
    db.execute(r#"replace emp (sal = 2) where emp.name = "mel""#)
        .unwrap();
    assert_eq!(db.query("retrieve (demotions.all)").unwrap().rows.len(), 1);
}

#[test]
fn salesclerkrule2_query_modification() {
    // Fig. 6/7: shared emp becomes replace'; unshared dept joins normally.
    let mut db = paper_db();
    db.execute("create salarywatch (name = string)").unwrap();
    db.execute(r#"append dept (dno = 1, name = "Sales", building = "B")"#)
        .unwrap();
    db.execute(r#"append dept (dno = 2, name = "Toy", building = "B")"#)
        .unwrap();
    db.execute(r#"append job (jno = 7, title = "Clerk", paygrade = 1, description = "d")"#)
        .unwrap();
    db.execute(
        r#"define rule SalesClerkRule2
           if emp.sal > 30000 and emp.jno = job.jno and job.title = "Clerk"
           then do
             append to salarywatch(name = emp.name)
             replace emp (sal = 30000) where emp.dno = dept.dno and dept.name = "Sales"
             replace emp (sal = 25000) where emp.dno = dept.dno and dept.name != "Sales"
           end"#,
    )
    .unwrap();
    db.execute(r#"append emp (name = "s1", age = 1, sal = 90000, dno = 1, jno = 7)"#)
        .unwrap();
    db.execute(r#"append emp (name = "t1", age = 1, sal = 80000, dno = 2, jno = 7)"#)
        .unwrap();
    // both logged
    let mut watch = db
        .query("retrieve (salarywatch.all)")
        .unwrap()
        .rows
        .iter()
        .map(|r| r[0].as_str().unwrap().to_string())
        .collect::<Vec<_>>();
    watch.sort();
    assert_eq!(watch, vec!["s1", "t1"]);
    // Sales clerk capped to 30000, non-Sales to 25000
    let out = db
        .query("retrieve (emp.name, emp.sal) where emp.name = \"s1\"")
        .unwrap();
    assert_eq!(out.rows[0][1], Value::Float(30000.0));
    let out = db
        .query("retrieve (emp.name, emp.sal) where emp.name = \"t1\"")
        .unwrap();
    assert_eq!(out.rows[0][1], Value::Float(25000.0));
}

#[test]
fn salesclerkrule_all_virtual_policies_agree() {
    // Fig. 3 vs Fig. 4: the A-TREAT network with virtual α-memories
    // behaves identically to the all-stored TREAT network.
    let run = |policy: VirtualPolicy| -> (Vec<String>, usize) {
        let mut db = Ariel::with_options(EngineOptions {
            virtual_policy: policy,
            ..Default::default()
        });
        db.execute(
            "create emp (name = string, age = int, sal = float, dno = int, jno = int); \
             create dept (dno = int, name = string, building = string); \
             create job (jno = int, title = string, paygrade = int, description = string); \
             create hits (name = string)",
        )
        .unwrap();
        db.execute(r#"append dept (dno = 1, name = "Sales", building = "B")"#)
            .unwrap();
        db.execute(r#"append job (jno = 7, title = "Clerk", paygrade = 1, description = "d")"#)
            .unwrap();
        db.execute(
            r#"define rule SalesClerkRule
               if emp.sal > 30000 and emp.dno = dept.dno and dept.name = "Sales"
                  and emp.jno = job.jno and job.title = "Clerk"
               then append to hits(name = emp.name)"#,
        )
        .unwrap();
        for i in 0..30 {
            let sal = 20_000 + i * 1000;
            let dno = 1 + (i % 2);
            let jno = if i % 3 == 0 { 7 } else { 8 };
            db.execute(&format!(
                r#"append emp (name = "e{i}", age = 1, sal = {sal}, dno = {dno}, jno = {jno})"#
            ))
            .unwrap();
        }
        let mut hits: Vec<String> = db
            .query("retrieve (hits.all)")
            .unwrap()
            .rows
            .iter()
            .map(|r| r[0].as_str().unwrap().to_string())
            .collect();
        hits.sort();
        let bytes = db.network_stats().alpha_bytes;
        (hits, bytes)
    };
    let (stored_hits, stored_bytes) = run(VirtualPolicy::AllStored);
    let (virtual_hits, virtual_bytes) = run(VirtualPolicy::AllVirtual);
    let (thresh_hits, thresh_bytes) = run(VirtualPolicy::SelectivityThreshold(0.5));
    assert!(!stored_hits.is_empty());
    assert_eq!(stored_hits, virtual_hits);
    assert_eq!(stored_hits, thresh_hits);
    // §4.2's claim: virtual memories save storage
    assert!(virtual_bytes < stored_bytes);
    assert!(thresh_bytes <= stored_bytes);
}

#[test]
fn new_predicate_matches_any_value() {
    // §2.1: `new(tuple-variable)` is a selection condition that is always
    // true — the rule wakes on any new tuple value.
    let mut db = paper_db();
    db.execute("create log (name = string)").unwrap();
    db.execute("define rule anynew if new(emp) then append to log(name = emp.name)")
        .unwrap();
    db.execute(r#"append emp (name = "x", age = 1, sal = 1, dno = 1, jno = 1)"#)
        .unwrap();
    assert_eq!(db.query("retrieve (log.all)").unwrap().rows.len(), 1);
    db.execute(r#"replace emp (name = "y") where emp.name = "x""#)
        .unwrap();
    assert_eq!(db.query("retrieve (log.all)").unwrap().rows.len(), 2);
}
