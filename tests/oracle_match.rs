//! The fundamental discrimination-network invariant, property-tested:
//! after ANY sequence of inserts, deletes and updates, a pattern rule's
//! P-node must hold exactly the rows a from-scratch evaluation of its
//! condition produces (incremental match ≡ recompute). Checked for every
//! virtual-memory policy and for the Rete baseline.

use ariel::network::{Network, ReteNetwork, RuleId, Token, VirtualPolicy};
use ariel::query::Change;
use ariel::query::{parse_expr, ExecCtx, Optimizer, Pnode, ResolvedCondition, Resolver};
use ariel::storage::{AttrType, Catalog, Schema, Tid, Value};
use ariel::DeltaTracker;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert { rel: u8, a: i64, b: i64 },
    Delete { pick: usize },
    Update { pick: usize, a: i64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u8..2, 0i64..20, 0i64..6).prop_map(|(rel, a, b)| Op::Insert { rel, a, b }),
        2 => (0usize..64).prop_map(|pick| Op::Delete { pick }),
        2 => (0usize..64, 0i64..20).prop_map(|(pick, a)| Op::Update { pick, a }),
    ]
}

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.create(
        "r1",
        Schema::of(&[("a", AttrType::Int), ("b", AttrType::Int)]),
    )
    .unwrap();
    c.create(
        "r2",
        Schema::of(&[("b", AttrType::Int), ("c", AttrType::Int)]),
    )
    .unwrap();
    c
}

fn conditions(cat: &Catalog) -> Vec<ResolvedCondition> {
    let make = |qual: &str, from: &[(&str, &str)]| {
        let e = parse_expr(qual).unwrap();
        let from: Vec<ariel::query::FromItem> = from
            .iter()
            .map(|(v, r)| ariel::query::FromItem {
                var: v.to_string(),
                rel: r.to_string(),
            })
            .collect();
        Resolver::new(cat)
            .resolve_condition(None, Some(&e), &from)
            .unwrap()
    };
    vec![
        make("r1.a > 10", &[]),
        make("r1.a > 3 and r1.b = r2.b and r2.c < 4", &[]),
        make("x.b = y.b and x.a < y.a", &[("x", "r1"), ("y", "r1")]),
        make("r1.a > 1 and r1.a <= 15 and r1.b = r2.b", &[]),
    ]
}

/// Canonical form of a P-node: sorted TID combinations.
fn pnode_tids(p: &Pnode) -> Vec<Vec<Option<u64>>> {
    let mut out: Vec<Vec<Option<u64>>> = p
        .rows()
        .iter()
        .map(|r| r.iter().map(|b| b.tid.map(|t| t.0)).collect())
        .collect();
    out.sort();
    out
}

/// From-scratch evaluation of a condition through the query optimizer.
fn oracle(cat: &Catalog, cond: &ResolvedCondition) -> Vec<Vec<Option<u64>>> {
    let plan = Optimizer::new(cat).plan(&cond.spec).unwrap();
    let ctx = ExecCtx {
        catalog: cat,
        pnode: None,
        nvars: cond.spec.vars.len(),
    };
    let rows = ariel::query::run_plan(&plan, &ctx).unwrap();
    let mut out: Vec<Vec<Option<u64>>> = rows
        .iter()
        .map(|r| {
            r.slots
                .iter()
                .map(|s| s.as_ref().and_then(|b| b.tid).map(|t| t.0))
                .collect()
        })
        .collect();
    out.sort();
    out
}

/// Apply one op to the catalog and return the physical change.
fn apply(cat: &Catalog, live: &mut Vec<(String, Tid)>, op: &Op) -> Option<Change> {
    match op {
        Op::Insert { rel, a, b } => {
            let name = if *rel == 0 { "r1" } else { "r2" };
            let r = cat.get(name).unwrap();
            let tid = r
                .borrow_mut()
                .insert(vec![Value::Int(*a), Value::Int(*b)])
                .unwrap();
            let t = r.borrow().get(tid).cloned().unwrap();
            live.push((name.to_string(), tid));
            Some(Change::Inserted {
                rel: name.to_string(),
                tid,
                new: t,
            })
        }
        Op::Delete { pick } => {
            if live.is_empty() {
                return None;
            }
            let (name, tid) = live.swap_remove(pick % live.len());
            let r = cat.get(&name).unwrap();
            let old = r.borrow_mut().delete(tid).unwrap();
            Some(Change::Deleted {
                rel: name,
                tid,
                old,
            })
        }
        Op::Update { pick, a } => {
            if live.is_empty() {
                return None;
            }
            let (name, tid) = live[pick % live.len()].clone();
            let r = cat.get(&name).unwrap();
            let old = r.borrow().get(tid).cloned().unwrap();
            let new_vals = vec![Value::Int(*a), old.get(1).clone()];
            let old = r.borrow_mut().update(tid, new_vals).unwrap();
            let new = r.borrow().get(tid).cloned().unwrap();
            Some(Change::Updated {
                rel: name,
                tid,
                old,
                new,
                attrs: vec![0],
            })
        }
    }
}

/// Which matcher configuration a stream runs against.
#[derive(Debug, Clone)]
enum Config {
    Treat(VirtualPolicy),
    Rete(VirtualPolicy),
}

fn run_stream(config: Config, ops: &[Op]) -> Result<(), TestCaseError> {
    let cat = catalog();
    let conds = conditions(&cat);
    enum Net {
        Treat(Box<Network>),
        Rete(Box<ReteNetwork>),
    }
    let mut net = match &config {
        Config::Treat(p) => {
            let mut n = Network::new();
            for (i, c) in conds.iter().enumerate() {
                n.add_rule(RuleId(i as u64), c, p, &cat).unwrap();
                n.prime(RuleId(i as u64), &cat).unwrap();
            }
            Net::Treat(Box::new(n))
        }
        Config::Rete(p) => {
            let mut n = ReteNetwork::with_policy(p.clone());
            for (i, c) in conds.iter().enumerate() {
                n.add_rule(RuleId(i as u64), c, &cat).unwrap();
                n.prime(RuleId(i as u64), &cat).unwrap();
            }
            Net::Rete(Box::new(n))
        }
    };
    let mut live: Vec<(String, Tid)> = Vec::new();
    let mut delta = DeltaTracker::new();
    for (step, op) in ops.iter().enumerate() {
        // each op = one transition (Δ-sets reset per transition)
        delta.reset();
        let Some(change) = apply(&cat, &mut live, op) else {
            continue;
        };
        let tokens: Vec<Token> = delta.tokens_for(&change);
        match &mut net {
            Net::Treat(n) => n.process_batch(&tokens, &cat).unwrap(),
            Net::Rete(n) => n.process_batch(&tokens, &cat).unwrap(),
        }
        for (i, cond) in conds.iter().enumerate() {
            let got = match &net {
                Net::Treat(n) => pnode_tids(n.pnode(RuleId(i as u64)).unwrap()),
                Net::Rete(n) => pnode_tids(n.pnode(RuleId(i as u64)).unwrap()),
            };
            let want = oracle(&cat, cond);
            prop_assert_eq!(
                &got,
                &want,
                "rule {} diverged from recompute at step {} ({:?}, config {:?})",
                i,
                step,
                op,
                config
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn treat_all_stored_matches_oracle(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        run_stream(Config::Treat(VirtualPolicy::AllStored), &ops)?;
    }

    #[test]
    fn treat_all_virtual_matches_oracle(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        run_stream(Config::Treat(VirtualPolicy::AllVirtual), &ops)?;
    }

    #[test]
    fn treat_threshold_matches_oracle(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        run_stream(Config::Treat(VirtualPolicy::SelectivityThreshold(0.4)), &ops)?;
    }

    #[test]
    fn rete_matches_oracle(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        run_stream(Config::Rete(VirtualPolicy::AllStored), &ops)?;
    }

    #[test]
    fn rete_all_virtual_matches_oracle(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        run_stream(Config::Rete(VirtualPolicy::AllVirtual), &ops)?;
    }
}

// Δ-token path as well: several updates inside one transition (no reset).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn multi_op_transitions_match_oracle(
        ops in proptest::collection::vec(op_strategy(), 1..30),
        chunk in 2usize..5,
    ) {
        let cat = catalog();
        let conds = conditions(&cat);
        let mut net = Network::new();
        for (i, c) in conds.iter().enumerate() {
            net.add_rule(RuleId(i as u64), c, &VirtualPolicy::AllStored, &cat).unwrap();
            net.prime(RuleId(i as u64), &cat).unwrap();
        }
        let mut live: Vec<(String, Tid)> = Vec::new();
        let mut delta = DeltaTracker::new();
        for (t, ops_chunk) in ops.chunks(chunk).enumerate() {
            // one transition = several commands (a do…end block)
            delta.reset();
            let mut tokens = Vec::new();
            for op in ops_chunk {
                if let Some(change) = apply(&cat, &mut live, op) {
                    tokens.extend(delta.tokens_for(&change));
                }
            }
            net.process_batch(&tokens, &cat).unwrap();
            for (i, cond) in conds.iter().enumerate() {
                let got = pnode_tids(net.pnode(RuleId(i as u64)).unwrap());
                let want = oracle(&cat, cond);
                prop_assert_eq!(&got, &want, "rule {} diverged at transition {}", i, t);
            }
        }
    }
}
