//! Rule-execution semantics: the recognize-act cycle, conflict resolution,
//! cascades, halt, runaway protection, set-oriented firing, and rule
//! lifecycle management.

use ariel::storage::Value;
use ariel::{Ariel, ArielError, EngineOptions};

fn db_with_log() -> Ariel {
    let mut db = Ariel::new();
    db.execute("create items (x = int); create log (who = string, x = int)")
        .unwrap();
    db
}

fn log_entries(db: &mut Ariel) -> Vec<(String, i64)> {
    db.query("retrieve (log.all)")
        .unwrap()
        .rows
        .iter()
        .map(|r| (r[0].as_str().unwrap().to_string(), r[1].as_i64().unwrap()))
        .collect()
}

#[test]
fn priority_orders_firing() {
    let mut db = db_with_log();
    // both rules match the same insert; high must fire before low
    db.execute(
        r#"define rule low priority 1 on append items then append to log(who = "low", x = 0)"#,
    )
    .unwrap();
    db.execute(
        r#"define rule high priority 9 on append items then append to log(who = "high", x = 0)"#,
    )
    .unwrap();
    db.execute("append items (x = 1)").unwrap();
    let log = log_entries(&mut db);
    assert_eq!(log.len(), 2);
    assert_eq!(log[0].0, "high");
    assert_eq!(log[1].0, "low");
}

#[test]
fn set_oriented_firing_processes_whole_pnode() {
    // one firing handles every matched tuple: the rule logs each matched
    // item, and the engine fires it once for the three-row transition
    let mut db = db_with_log();
    db.execute("define rule all if items.x > 10 then append to log(who = \"r\", x = items.x)")
        .unwrap();
    db.execute("do append items (x = 11) append items (x = 12) append items (x = 13) end")
        .unwrap();
    assert_eq!(log_entries(&mut db).len(), 3);
    assert_eq!(db.stats().firings, 1, "one set-oriented firing");
}

#[test]
fn cascading_rules() {
    // rule A's action triggers rule B
    let mut db = db_with_log();
    db.execute("create stage2 (x = int)").unwrap();
    db.execute("define rule a on append items then append to stage2(x = items.x)")
        .unwrap();
    db.execute("define rule b on append stage2 then append to log(who = \"b\", x = stage2.x)")
        .unwrap();
    db.execute("append items (x = 7)").unwrap();
    assert_eq!(log_entries(&mut db), vec![("b".to_string(), 7)]);
    assert_eq!(db.stats().firings, 2);
}

#[test]
fn halt_stops_the_cycle() {
    let mut db = db_with_log();
    db.execute(
        r#"define rule stopper priority 10 on append items then do
             append to log(who = "stopper", x = 0)
             halt
           end"#,
    )
    .unwrap();
    db.execute(
        r#"define rule never priority 1 on append items then append to log(who = "never", x = 0)"#,
    )
    .unwrap();
    db.execute("append items (x = 1)").unwrap();
    let log = log_entries(&mut db);
    assert_eq!(log.len(), 1);
    assert_eq!(
        log[0].0, "stopper",
        "halt prevented the lower-priority rule"
    );
}

#[test]
fn runaway_cascade_detected() {
    // a rule that re-triggers itself forever: every append spawns another
    let mut db = Ariel::with_options(EngineOptions {
        max_firings: 25,
        ..Default::default()
    });
    db.execute("create items (x = int)").unwrap();
    db.execute("define rule loopy on append items then append to items(x = items.x + 1)")
        .unwrap();
    let err = db.execute("append items (x = 0)").unwrap_err();
    assert!(matches!(err, ArielError::RunawayRules { limit: 25 }));
}

#[test]
fn refraction_no_refire_on_same_data() {
    // a pattern rule must not re-fire on data it already processed
    let mut db = db_with_log();
    db.execute("define rule watch if items.x > 0 then append to log(who = \"w\", x = items.x)")
        .unwrap();
    db.execute("append items (x = 5)").unwrap();
    assert_eq!(log_entries(&mut db).len(), 1);
    // an unrelated transition must not re-fire it
    db.execute("append items (x = -1)").unwrap();
    assert_eq!(log_entries(&mut db).len(), 1);
}

#[test]
fn pattern_rule_fires_on_preexisting_data_after_activation() {
    let mut db = db_with_log();
    db.execute("append items (x = 42)").unwrap();
    // activation loads the P-node from existing data (§6); the rule fires
    // at the next recognize-act opportunity
    db.execute("define rule seed if items.x > 0 then append to log(who = \"s\", x = items.x)")
        .unwrap();
    assert_eq!(db.pending_matches("seed").unwrap(), 1);
    db.run_rules().unwrap();
    assert_eq!(log_entries(&mut db), vec![("s".to_string(), 42)]);
}

#[test]
fn deactivate_and_reactivate() {
    let mut db = db_with_log();
    db.execute("define rule r on append items then append to log(who = \"r\", x = items.x)")
        .unwrap();
    db.execute("append items (x = 1)").unwrap();
    assert_eq!(log_entries(&mut db).len(), 1);
    db.execute("deactivate rule r").unwrap();
    db.execute("append items (x = 2)").unwrap();
    assert_eq!(log_entries(&mut db).len(), 1, "inactive rule is silent");
    db.execute("activate rule r").unwrap();
    db.execute("append items (x = 3)").unwrap();
    assert_eq!(log_entries(&mut db).len(), 2);
    // lifecycle errors
    assert!(matches!(
        db.activate_rule("r"),
        Err(ArielError::AlreadyActive(_))
    ));
    db.execute("deactivate rule r").unwrap();
    assert!(matches!(
        db.deactivate_rule("r"),
        Err(ArielError::NotActive(_))
    ));
}

#[test]
fn drop_rule_removes_it() {
    let mut db = db_with_log();
    db.execute("define rule r on append items then append to log(who = \"r\", x = 0)")
        .unwrap();
    db.execute("destroy rule r").unwrap();
    db.execute("append items (x = 1)").unwrap();
    assert!(log_entries(&mut db).is_empty());
    assert!(matches!(
        db.execute("destroy rule r"),
        Err(ArielError::UnknownRule(_))
    ));
}

#[test]
fn duplicate_rule_name_rejected() {
    let mut db = db_with_log();
    db.execute("define rule r if items.x > 0 then halt")
        .unwrap();
    assert!(matches!(
        db.execute("define rule r if items.x > 1 then halt"),
        Err(ArielError::DuplicateRule(_))
    ));
}

#[test]
fn destroy_relation_in_use_rejected() {
    let mut db = db_with_log();
    db.execute("define rule r if items.x > 0 then append to log(who = \"r\", x = 0)")
        .unwrap();
    let err = db.execute("destroy items").unwrap_err();
    assert!(matches!(err, ArielError::RelationInUse { .. }));
    // deactivating frees the relation
    db.execute("deactivate rule r").unwrap();
    db.execute("destroy items").unwrap();
}

#[test]
fn rulesets_group_rules() {
    let mut db = db_with_log();
    db.execute("define rule a in payroll if items.x > 0 then halt")
        .unwrap();
    db.execute("define rule b if items.x > 0 then halt")
        .unwrap();
    let in_payroll: Vec<_> = db
        .rules()
        .in_ruleset("payroll")
        .map(|r| r.name.clone())
        .collect();
    assert_eq!(in_payroll, vec!["a"]);
    let default: Vec<_> = db
        .rules()
        .in_ruleset(ariel::DEFAULT_RULESET)
        .map(|r| r.name.clone())
        .collect();
    assert_eq!(default, vec!["b"]);
}

#[test]
fn rule_action_error_names_the_rule() {
    let mut db = db_with_log();
    // the action divides by zero at fire time
    db.execute("define rule bad if items.x > 0 then append to log(who = \"b\", x = items.x / 0)")
        .unwrap();
    let err = db.execute("append items (x = 1)").unwrap_err();
    match err {
        ArielError::RuleAction { rule, .. } => assert_eq!(rule, "bad"),
        other => panic!("expected RuleAction, got {other:?}"),
    }
}

#[test]
fn on_delete_rule_logs_dead_tuples() {
    let mut db = db_with_log();
    db.execute("define rule obit on delete items then append to log(who = \"gone\", x = items.x)")
        .unwrap();
    db.execute("append items (x = 9)").unwrap();
    db.execute("delete items where items.x = 9").unwrap();
    assert_eq!(log_entries(&mut db), vec![("gone".to_string(), 9)]);
}

#[test]
fn mutual_rules_with_converging_values_terminate() {
    // two rules that fight but converge: cap at 10 and floor at 5
    let mut db = Ariel::new();
    db.execute("create v (x = int)").unwrap();
    db.execute("define rule cap if v.x > 10 then replace v (x = 10)")
        .unwrap();
    db.execute("define rule floor if v.x < 5 then replace v (x = 5)")
        .unwrap();
    db.execute("append v (x = 100)").unwrap();
    let out = db.query("retrieve (v.all)").unwrap();
    assert_eq!(out.rows[0][0], Value::Int(10));
    db.execute("replace v (x = -3) where v.x = 10").unwrap();
    let out = db.query("retrieve (v.all)").unwrap();
    assert_eq!(out.rows[0][0], Value::Int(5));
}

#[test]
fn engine_stats_accumulate() {
    let mut db = db_with_log();
    db.execute("define rule r on append items then append to log(who = \"r\", x = 0)")
        .unwrap();
    db.execute("append items (x = 1)").unwrap();
    let s = db.stats();
    assert!(s.transitions >= 2, "user command + rule action");
    assert!(s.tokens >= 2);
    assert_eq!(s.firings, 1);
}

#[test]
fn ruleset_activation_toggles_groups() {
    let mut db = db_with_log();
    db.execute("define rule a in audit on append items then append to log(who = \"a\", x = 0)")
        .unwrap();
    db.execute("define rule b in audit on append items then append to log(who = \"b\", x = 0)")
        .unwrap();
    db.execute("define rule c on append items then append to log(who = \"c\", x = 0)")
        .unwrap();
    // turn the whole audit ruleset off
    let off = db.deactivate_ruleset("audit").unwrap();
    assert_eq!(off.len(), 2);
    db.execute("append items (x = 1)").unwrap();
    let log = log_entries(&mut db);
    assert_eq!(log.len(), 1);
    assert_eq!(log[0].0, "c");
    // and back on
    let on = db.activate_ruleset("audit").unwrap();
    assert_eq!(on.len(), 2);
    db.execute("append items (x = 2)").unwrap();
    assert_eq!(log_entries(&mut db).len(), 4);
    // toggling an already-consistent set is a no-op
    assert!(db.activate_ruleset("audit").unwrap().is_empty());
    assert!(db.activate_ruleset("no_such_set").unwrap().is_empty());
}
