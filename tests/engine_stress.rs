//! Engine-level stress: long deterministic pseudo-random workloads mixing
//! DDL, rule lifecycle and DML must never panic, never corrupt state, and
//! keep engine invariants (catalog/network consistency, monotone stats).

use ariel::network::VirtualPolicy;
use ariel::{Ariel, EngineOptions};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn stress(seed: u64, steps: usize, policy: VirtualPolicy) {
    let mut db = Ariel::with_options(EngineOptions {
        virtual_policy: policy,
        max_firings: 200,
        ..Default::default()
    });
    db.execute(
        "create a (x = int, y = int); create b (y = int, z = int); \
         create log (x = int)",
    )
    .unwrap();
    let mut rng = Rng(seed | 1);
    let mut rules = 0usize;
    for step in 0..steps {
        let r = rng.below(100);
        let result = match r {
            // DML (most common)
            0..=39 => db.execute(&format!(
                "append a (x = {}, y = {})",
                rng.below(50),
                rng.below(8)
            )),
            40..=54 => db.execute(&format!(
                "append b (y = {}, z = {})",
                rng.below(8),
                rng.below(50)
            )),
            55..=69 => db.execute(&format!(
                "replace a (x = {}) where a.y = {}",
                rng.below(50),
                rng.below(8)
            )),
            70..=79 => db.execute(&format!("delete a where a.x = {}", rng.below(50))),
            // blocks
            80..=84 => db.execute(&format!(
                "do append a (x = {}, y = {}) \
                    replace a (x = a.x + 1) where a.y = {} \
                 end",
                rng.below(50),
                rng.below(8),
                rng.below(8)
            )),
            // rule lifecycle
            85..=92 => {
                rules += 1;
                let name = format!("r{rules}");
                let kind = rng.below(4);
                let src = match kind {
                    0 => format!(
                        "define rule {name} if a.x > {} then append to log(x = a.x)",
                        20 + rng.below(30)
                    ),
                    1 => format!(
                        "define rule {name} on append a if a.y = b.y and b.z < {} \
                         then append to log(x = a.x)",
                        rng.below(50)
                    ),
                    2 => format!(
                        "define rule {name} if a.x > 2 * previous a.x \
                         then append to log(x = a.x)"
                    ),
                    _ => format!("define rule {name} on delete a then notify gone (x = a.x)"),
                };
                db.execute(&src)
            }
            93..=95 => {
                if rules == 0 {
                    continue;
                }
                let pick = 1 + rng.below(rules as u64);
                db.execute(&format!("deactivate rule r{pick}"))
            }
            96..=97 => {
                if rules == 0 {
                    continue;
                }
                let pick = 1 + rng.below(rules as u64);
                db.execute(&format!("activate rule r{pick}"))
            }
            _ => {
                if rules == 0 {
                    continue;
                }
                let pick = 1 + rng.below(rules as u64);
                db.execute(&format!("destroy rule r{pick}"))
            }
        };
        // lifecycle races (already active / unknown rule) are expected;
        // anything must be an Err, never a panic
        let _ = result;
        if step % 25 == 0 {
            // invariants: queries still work, stats are sane
            let out = db.query("retrieve (a.all)").unwrap();
            let live = db.catalog().get("a").unwrap().borrow().len();
            assert_eq!(out.rows.len(), live, "query/catalog divergence at {step}");
            let n = db.network_stats();
            assert!(n.rules <= db.rules().len());
        }
    }
    // final sanity: engine still fully operational
    db.execute("append a (x = 999, y = 0)").unwrap();
    let out = db.query("retrieve (a.x) where a.x = 999").unwrap();
    assert_eq!(out.rows.len(), 1);
    db.drain_notifications();
}

#[test]
fn stress_all_stored() {
    stress(0xA11CE, 400, VirtualPolicy::AllStored);
}

#[test]
fn stress_all_virtual() {
    stress(0xB0B, 400, VirtualPolicy::AllVirtual);
}

#[test]
fn stress_threshold() {
    stress(0xC0FFEE, 400, VirtualPolicy::SelectivityThreshold(0.5));
}

#[test]
fn stress_with_plan_cache() {
    let mut db = Ariel::with_options(EngineOptions {
        cache_action_plans: true,
        max_firings: 200,
        ..Default::default()
    });
    db.execute("create a (x = int, y = int); create log (x = int)")
        .unwrap();
    db.execute("define rule r on append a then append to log(x = a.x)")
        .unwrap();
    let mut rng = Rng(0xDEED);
    for _ in 0..200 {
        db.execute(&format!("append a (x = {}, y = 0)", rng.below(100)))
            .unwrap();
        if rng.below(10) == 0 {
            // deactivate/reactivate invalidates the plan cache
            db.execute("deactivate rule r").unwrap();
            db.execute("activate rule r").unwrap();
        }
    }
    let logged = db.query("retrieve (log.all)").unwrap().rows.len();
    assert_eq!(logged, 200);
}
