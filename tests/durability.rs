//! Durability: checkpoint / write-ahead-log / recovery semantics, and the
//! transition-merge and flight-recorder regressions fixed alongside them.
//!
//! The heart of the suite is the crash oracle: an engine that checkpoints,
//! keeps running with the WAL attached, and is then dropped mid-flight
//! must — after [`Ariel::recover`] — be *behaviourally indistinguishable*
//! from an engine that never crashed: same relation contents, same pending
//! matches (consumed instantiations stay consumed), same α-memory
//! footprint, and the same response to any further command stream. The
//! three-backend equivalence machinery from `network_equivalence.rs`
//! supplies the distinguishing power.

use ariel::network::ReteMode;
use ariel::storage::Value;
use ariel::{Ariel, Durability, EngineOptions, TraceEventKind};
use std::path::PathBuf;

/// Deterministic xorshift for workload generation.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 16
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Fresh scratch directory for one test.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ariel-durability-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn build(options: EngineOptions) -> Ariel {
    let mut db = Ariel::with_options(options);
    db.execute(
        "create emp (id = int, sal = float, dno = int); \
         create dept (dno = int, floor = int); \
         create audit (id = int, kind = int)",
    )
    .unwrap();
    db.execute("define rule r_sel if emp.sal > 5000 then append to audit(id = emp.id, kind = 1)")
        .unwrap();
    db.execute(
        "define rule r_join if emp.sal > 1000 and emp.dno = dept.dno and dept.floor < 3 \
         then append to audit(id = emp.id, kind = 2)",
    )
    .unwrap();
    db.execute(
        "define rule r_trans if emp.sal > 2 * previous emp.sal \
         then append to audit(id = emp.id, kind = 3)",
    )
    .unwrap();
    db.execute("define rule r_event on delete emp then append to audit(id = emp.id, kind = 4)")
        .unwrap();
    db
}

fn apply_stream(db: &mut Ariel, seed: u64, steps: usize, next_id: &mut i64) {
    let mut rng = Rng(seed | 1);
    for _ in 0..steps {
        match rng.below(10) {
            0..=3 => {
                let id = *next_id;
                *next_id += 1;
                let sal = rng.below(9000);
                let dno = rng.below(5);
                db.execute(&format!("append emp (id = {id}, sal = {sal}, dno = {dno})"))
                    .unwrap();
            }
            4..=5 => {
                let dno = rng.below(5);
                let floor = rng.below(6);
                db.execute(&format!("append dept (dno = {dno}, floor = {floor})"))
                    .unwrap();
            }
            6..=7 => {
                let id = rng.below((*next_id).max(1) as u64);
                let sal = rng.below(12_000);
                db.execute(&format!("replace emp (sal = {sal}) where emp.id = {id}"))
                    .unwrap();
            }
            _ => {
                let id = rng.below((*next_id).max(1) as u64);
                db.execute(&format!("delete emp where emp.id = {id}"))
                    .unwrap();
            }
        }
    }
}

type Rows = Vec<Vec<Value>>;

fn snapshot(db: &mut Ariel, rel: &str) -> Rows {
    let mut rows = db.query(&format!("retrieve ({rel}.all)")).unwrap().rows;
    rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    rows
}

/// Everything the oracle compares: relation contents, per-rule pending
/// matches, α/P-node footprint, and the engine counters conflict
/// resolution depends on.
type Fingerprint = (Vec<(String, Rows)>, Vec<(String, usize)>, usize, usize);

fn fingerprint(db: &mut Ariel) -> Fingerprint {
    let rels: Vec<(String, Rows)> = db
        .catalog()
        .names()
        .into_iter()
        .map(|n| {
            let rows = snapshot(db, &n);
            (n, rows)
        })
        .collect();
    let pending: Vec<(String, usize)> = db
        .rules()
        .iter()
        .map(|r| r.name.clone())
        .collect::<Vec<_>>()
        .into_iter()
        .map(|n| {
            let p = db.pending_matches(&n).unwrap_or(0);
            (n, p)
        })
        .collect();
    let mem = db.memory_stats();
    (rels, pending, mem.alpha_entries, mem.pnode_rows)
}

/// The crash oracle, parameterized by backend and fsync mode: a crashed-
/// and-recovered engine must be indistinguishable from one that never
/// crashed — including under a continued command stream after recovery.
fn crash_recover_equivalence(name: &str, rete: Option<ReteMode>, durability: Durability) {
    let dir = scratch(name);
    let options = EngineOptions {
        rete_mode: rete,
        durability,
        ..Default::default()
    };
    // Rete compiles pattern conditions only: restrict the rule set
    let build_for = |options: EngineOptions| -> Ariel {
        if rete.is_some() {
            let mut db = Ariel::with_options(options);
            db.execute(
                "create emp (id = int, sal = float, dno = int); \
                 create dept (dno = int, floor = int); \
                 create audit (id = int, kind = int)",
            )
            .unwrap();
            db.execute(
                "define rule r_sel if emp.sal > 5000 then append to audit(id = emp.id, kind = 1)",
            )
            .unwrap();
            db.execute(
                "define rule r_join if emp.sal > 1000 and emp.dno = dept.dno and dept.floor < 3 \
                 then append to audit(id = emp.id, kind = 2)",
            )
            .unwrap();
            db
        } else {
            build(options)
        }
    };

    // the uncrashed reference runs the identical stream, no durability
    let mut reference = build_for(EngineOptions {
        durability: Durability::Off,
        ..options.clone()
    });
    let mut ref_id = 0i64;
    apply_stream(&mut reference, 0xC4A54, 80, &mut ref_id);
    apply_stream(&mut reference, 0xAF7E4, 60, &mut ref_id);

    // the crashing engine: checkpoint mid-stream, keep going, then "crash"
    let mut db = build_for(options.clone());
    let mut next_id = 0i64;
    apply_stream(&mut db, 0xC4A54, 80, &mut next_id);
    db.checkpoint(&dir).unwrap();
    apply_stream(&mut db, 0xAF7E4, 60, &mut next_id);
    assert!(db.wal_records() > 0, "post-checkpoint work must be logged");
    drop(db); // the crash (nothing is flushed beyond what the mode fsynced)

    let (mut recovered, report) = Ariel::recover(&dir, options).unwrap();
    assert!(!report.torn_tail, "clean shutdown leaves no torn tail");
    assert!(report.replayed > 0, "the WAL tail must replay");
    assert!(
        report.replay_errors.is_empty(),
        "unexpected replay errors: {:?}",
        report.replay_errors
    );
    assert_eq!(next_id, ref_id);

    assert_eq!(
        fingerprint(&mut recovered),
        fingerprint(&mut reference),
        "{name}: recovered state diverged from the uncrashed reference"
    );

    // the decisive probe: both engines must respond identically to more work
    apply_stream(&mut recovered, 0xF00D, 60, &mut next_id);
    apply_stream(&mut reference, 0xF00D, 60, &mut ref_id);
    assert_eq!(
        fingerprint(&mut recovered),
        fingerprint(&mut reference),
        "{name}: divergence after continued stream post-recovery"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_recovery_equivalence_treat_commit() {
    crash_recover_equivalence("treat-commit", None, Durability::Commit);
}

#[test]
fn crash_recovery_equivalence_treat_batch() {
    crash_recover_equivalence("treat-batch", None, Durability::Batch);
}

#[test]
fn crash_recovery_equivalence_rete_indexed() {
    crash_recover_equivalence("rete-indexed", Some(ReteMode::Indexed), Durability::Commit);
}

#[test]
fn crash_recovery_equivalence_rete_nested() {
    crash_recover_equivalence("rete-nested", Some(ReteMode::Nested), Durability::Commit);
}

/// A snapshot taken on one backend must recover onto another: the
/// snapshot stores relations and rule *sources*, and recovery rebuilds
/// the network through normal activation.
#[test]
fn snapshot_recovers_across_backends() {
    let dir = scratch("cross-backend");
    let treat = EngineOptions {
        durability: Durability::Commit,
        ..Default::default()
    };
    let mut db = Ariel::with_options(treat.clone());
    db.execute(
        "create emp (id = int, sal = float, dno = int); \
         create audit (id = int, kind = int)",
    )
    .unwrap();
    db.execute("define rule r if emp.sal > 50 then append to audit(id = emp.id, kind = 1)")
        .unwrap();
    for i in 0..20 {
        db.execute(&format!("append emp (id = {i}, sal = {}, dno = 0)", i * 10))
            .unwrap();
    }
    db.checkpoint(&dir).unwrap();
    db.execute("append emp (id = 100, sal = 900, dno = 1)")
        .unwrap();
    let want_emp = snapshot(&mut db, "emp");
    let want_audit = snapshot(&mut db, "audit");
    drop(db);
    for rete in [Some(ReteMode::Indexed), Some(ReteMode::Nested), None] {
        let (mut back, report) = Ariel::recover(
            &dir,
            EngineOptions {
                rete_mode: rete,
                durability: Durability::Off,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.relations, 2, "{rete:?}");
        assert_eq!(report.rules, 1, "{rete:?}");
        assert_eq!(snapshot(&mut back, "emp"), want_emp, "{rete:?}");
        assert_eq!(snapshot(&mut back, "audit"), want_audit, "{rete:?}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Consumed instantiations stay consumed: recovery must not re-fire rules
/// whose matches were drained before the checkpoint, and must preserve
/// matches that were still pending.
#[test]
fn recovery_does_not_refire_consumed_matches() {
    let dir = scratch("no-refire");
    let options = EngineOptions {
        durability: Durability::Commit,
        ..Default::default()
    };
    let mut db = Ariel::with_options(options.clone());
    db.execute("create emp (id = int, sal = float); create audit (id = int, kind = int)")
        .unwrap();
    db.execute("define rule r if emp.sal > 50 then append to audit(id = emp.id, kind = 1)")
        .unwrap();
    db.execute("append emp (id = 1, sal = 100)").unwrap();
    assert_eq!(db.query("retrieve (audit.all)").unwrap().rows.len(), 1);
    assert_eq!(db.pending_matches("r").unwrap(), 0, "match consumed");
    // install (but do not activate) a second rule, then leave one rule
    // with a *pending* match by activating after the data arrived
    db.install_rule_src(
        "define rule pending if emp.sal > 10 then append to audit(id = emp.id, kind = 2)",
    )
    .unwrap();
    db.activate_rule("pending").unwrap();
    assert_eq!(db.pending_matches("pending").unwrap(), 1, "primed, unfired");
    db.checkpoint(&dir).unwrap();
    drop(db);
    let (mut back, _report) = Ariel::recover(&dir, options).unwrap();
    assert_eq!(
        back.pending_matches("r").unwrap(),
        0,
        "a consumed match must not resurrect (priming alone would)"
    );
    assert_eq!(
        back.pending_matches("pending").unwrap(),
        1,
        "a pending match must survive"
    );
    assert_eq!(
        back.query("retrieve (audit.all)").unwrap().rows.len(),
        1,
        "recovery itself fires nothing"
    );
    // the preserved pending match fires at the next transition
    back.execute("append emp (id = 2, sal = 5)").unwrap();
    let audit = snapshot(&mut back, "audit");
    assert!(
        audit.iter().any(|r| r[1] == Value::Int(2)),
        "the recovered pending match fires: {audit:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A crash mid-append leaves a torn final record: recovery keeps every
/// whole record, reports the tear, and truncates it away.
#[test]
fn torn_wal_tail_is_tolerated_and_truncated() {
    let dir = scratch("torn-tail");
    let options = EngineOptions {
        durability: Durability::Commit,
        ..Default::default()
    };
    let mut db = Ariel::with_options(options.clone());
    db.execute("create emp (id = int, sal = float)").unwrap();
    db.checkpoint(&dir).unwrap();
    db.execute("append emp (id = 1, sal = 10)").unwrap();
    db.execute("append emp (id = 2, sal = 20)").unwrap();
    drop(db);
    // tear the tail: chop half of the final record off
    let wal = dir.join("wal.log");
    let data = std::fs::read(&wal).unwrap();
    let torn_len = data.len() - 7;
    std::fs::write(&wal, &data[..torn_len]).unwrap();
    let (mut back, report) = Ariel::recover(&dir, options.clone()).unwrap();
    assert!(report.torn_tail, "the tear must be reported");
    assert_eq!(report.replayed, 1, "the whole record replays");
    assert_eq!(
        snapshot(&mut back, "emp"),
        vec![vec![Value::Int(1), Value::Float(10.0)]],
        "the torn record's append is lost, the earlier one survives"
    );
    drop(back);
    assert!(
        std::fs::metadata(&wal).unwrap().len() < torn_len as u64,
        "the torn tail is truncated from the log"
    );
    // a second recovery sees a clean log
    let (_again, report) = Ariel::recover(&dir, options).unwrap();
    assert!(!report.torn_tail);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A logged command that failed when first executed fails identically on
/// replay; recovery reports it and carries on.
#[test]
fn failed_commands_replay_deterministically() {
    let dir = scratch("replay-errors");
    let options = EngineOptions {
        durability: Durability::Commit,
        ..Default::default()
    };
    let mut db = Ariel::with_options(options.clone());
    db.execute("create emp (id = int)").unwrap();
    db.checkpoint(&dir).unwrap();
    assert!(db.execute("create emp (id = int)").is_err(), "duplicate");
    db.execute("append emp (id = 7)").unwrap();
    drop(db);
    let (mut back, report) = Ariel::recover(&dir, options).unwrap();
    assert_eq!(report.replay_errors.len(), 1, "{:?}", report.replay_errors);
    assert!(report.replay_errors[0].contains("already exists"));
    assert_eq!(
        snapshot(&mut back, "emp"),
        vec![vec![Value::Int(7)]],
        "replay continues past the failing record"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Pure reads leave no state behind, so an interactive session's
/// retrieves must not grow the log — only mutations are records.
#[test]
fn retrieves_are_not_logged() {
    let dir = scratch("read-only");
    let mut db = Ariel::with_options(EngineOptions {
        durability: Durability::Commit,
        ..Default::default()
    });
    db.execute("create emp (id = int)").unwrap();
    db.checkpoint(&dir).unwrap();
    db.execute("append emp (id = 1)").unwrap();
    let logged = db.wal_records();
    assert_eq!(logged, 1);
    db.query("retrieve (emp.all)").unwrap();
    db.execute("do retrieve (emp.id) retrieve (emp.all) end")
        .unwrap();
    assert_eq!(db.wal_records(), logged, "reads must not be logged");
    // a mixed block mutates, so it is logged whole
    db.execute("do retrieve (emp.all) append emp (id = 2) end")
        .unwrap();
    assert_eq!(db.wal_records(), logged + 1);
    drop(db);
    let (mut back, report) = Ariel::recover(&dir, EngineOptions::default()).unwrap();
    assert_eq!(report.replayed, 2);
    assert_eq!(snapshot(&mut back, "emp").len(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Durability off is literally free: no writer is attached, nothing is
/// written after the checkpoint.
#[test]
fn durability_off_attaches_no_writer() {
    let dir = scratch("off-mode");
    let mut db = Ariel::new(); // durability: Off
    db.execute("create emp (id = int)").unwrap();
    db.checkpoint(&dir).unwrap();
    for i in 0..10 {
        db.execute(&format!("append emp (id = {i})")).unwrap();
    }
    assert_eq!(db.wal_records(), 0);
    assert_eq!(db.wal_bytes(), 0);
    assert_eq!(
        std::fs::metadata(dir.join("wal.log")).unwrap().len(),
        0,
        "no records hit the disk with durability off"
    );
    // recovery then restores the checkpoint state (the 10 appends are lost
    // by construction)
    drop(db);
    let (mut back, report) = Ariel::recover(&dir, EngineOptions::default()).unwrap();
    assert_eq!(report.replayed, 0);
    assert!(snapshot(&mut back, "emp").is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Rule ids survive recovery exactly — including gaps left by dropped
/// rules — so recency bookkeeping and later installs stay consistent.
#[test]
fn rule_ids_and_gaps_survive_recovery() {
    let dir = scratch("rule-ids");
    let options = EngineOptions {
        durability: Durability::Commit,
        ..Default::default()
    };
    let mut db = Ariel::with_options(options.clone());
    db.execute("create emp (id = int)").unwrap();
    db.execute("define rule a if emp.id > 100 then delete emp")
        .unwrap();
    db.execute("define rule b if emp.id > 200 then delete emp")
        .unwrap();
    db.execute("destroy rule a").unwrap();
    let b_id = db.rules().require("b").unwrap().id;
    db.checkpoint(&dir).unwrap();
    drop(db);
    let (mut back, _) = Ariel::recover(&dir, options).unwrap();
    assert_eq!(back.rules().require("b").unwrap().id, b_id);
    // a fresh install lands past every restored id
    back.execute("define rule c if emp.id > 300 then delete emp")
        .unwrap();
    assert!(back.rules().require("c").unwrap().id.0 > b_id.0);
    let _ = std::fs::remove_dir_all(&dir);
}

// ----- satellite regressions -------------------------------------------------

/// Satellite (PR 10): string literals holding quotes, backslashes and
/// control characters round-trip through the WAL now that the lexer
/// decodes escapes and the display layer re-encodes them. Before, a value
/// containing `"` rendered as an unparseable record and was lost on
/// replay.
#[test]
fn escaped_strings_survive_replay() {
    let dir = scratch("escapes");
    let options = EngineOptions {
        durability: Durability::Commit,
        ..Default::default()
    };
    let mut db = Ariel::with_options(options.clone());
    db.execute("create note (id = int, text = string)").unwrap();
    // a rule whose action copies the string keeps the escape path honest
    // through query modification and transition logging, not just REC_CMD
    db.execute(
        "define rule echo if note.id > 10 \
         then append to note(id = note.id - 100, text = note.text)",
    )
    .unwrap();
    db.checkpoint(&dir).unwrap();
    db.execute(r#"append note (id = 1, text = "says \"hi\"")"#)
        .unwrap();
    db.execute(r#"append note (id = 2, text = "back\\slash")"#)
        .unwrap();
    db.execute(r#"append note (id = 13, text = "line\none\ttab")"#)
        .unwrap();
    let live = snapshot(&mut db, "note");
    assert_eq!(live.len(), 4, "rule fired once: {live:?}");
    drop(db);
    let (mut back, report) = Ariel::recover(&dir, options).unwrap();
    assert!(
        report.replay_errors.is_empty(),
        "escape-bearing records must replay clean: {:?}",
        report.replay_errors
    );
    let recovered = snapshot(&mut back, "note");
    assert_eq!(recovered, live, "values survive replay byte-for-byte");
    // the exact escaped value is still reachable by equality predicate
    let hit = back
        .query(r#"retrieve (note.id) where note.text = "says \"hi\"""#)
        .unwrap();
    assert_eq!(hit.rows, vec![vec![Value::Int(1)]], "{:?}", hit.rows);
    // original row plus the rule's copy — both carry the control chars
    let hit = back
        .query(r#"retrieve (note.id) where note.text = "line\none\ttab""#)
        .unwrap();
    assert_eq!(hit.rows.len(), 2, "{:?}", hit.rows);
    let _ = std::fs::remove_dir_all(&dir);
}

/// WAL telemetry (PR 10): `wal_metrics` reports engine-lifetime totals —
/// fsyncs are counted and timed, and figures survive the writer being
/// dropped and recreated at a checkpoint, unlike `wal_records()`.
#[test]
fn wal_metrics_accumulate_across_checkpoints() {
    let dir = scratch("wal-metrics");
    let options = EngineOptions {
        durability: Durability::Commit,
        ..Default::default()
    };
    let mut db = Ariel::with_options(options.clone());
    db.execute("create emp (id = int)").unwrap();
    let m = db.wal_metrics();
    assert!(!m.attached);
    assert_eq!((m.records, m.bytes, m.fsyncs), (0, 0, 0));
    db.checkpoint(&dir).unwrap();
    for i in 0..5 {
        db.execute(&format!("append emp (id = {i})")).unwrap();
    }
    let m1 = db.wal_metrics();
    assert!(m1.attached);
    assert_eq!(m1.records, 5);
    assert_eq!(m1.fsyncs, 5, "Commit mode syncs every append");
    assert_eq!(m1.fsync_ns.count(), m1.fsyncs, "every fsync is timed");
    assert!(m1.bytes > 0);
    // a second checkpoint resets the live writer but not the totals
    db.checkpoint(&dir).unwrap();
    assert_eq!(db.wal_records(), 0, "live-writer view resets");
    let m2 = db.wal_metrics();
    assert_eq!(m2.records, 5, "lifetime view survives the checkpoint");
    assert!(m2.fsyncs >= m1.fsyncs);
    db.execute("append emp (id = 99)").unwrap();
    assert_eq!(db.wal_metrics().records, 6, "live writer folds in");
    // the metrics snapshot carries the wal section
    let json = db.metrics_json();
    assert!(json.contains("\"wal\":{\"attached\":true"), "{json}");
    assert!(json.contains("\"fsyncs\":"), "{json}");
    // and the Prometheus exposition carries the families
    let prom = db.metrics_prometheus();
    assert!(prom.contains("ariel_wal_records_total 6"), "{prom}");
    assert!(prom.contains("ariel_wal_fsync_duration_ns_count"), "{prom}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression (PR 9): the second `retrieve` in a `do…end` block used to
/// overwrite the first one's rows in the merged output.
#[test]
fn do_block_merges_multiple_retrieves() {
    let mut db = Ariel::new();
    db.execute("create emp (id = int)").unwrap();
    db.execute("append emp (id = 1)").unwrap();
    db.execute("append emp (id = 2)").unwrap();
    let out = db
        .execute("do retrieve (emp.id) where emp.id = 1 retrieve (emp.id) where emp.id = 2 end")
        .unwrap();
    assert_eq!(out.len(), 1);
    let mut rows = out[0].rows.clone();
    rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    assert_eq!(
        rows,
        vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        "both retrieves' rows survive the merge"
    );
}

/// Regression (PR 9): a mid-transition error left a dangling
/// `TransitionBegin` in the flight recorder (unclosed span in the Chrome
/// trace export).
#[test]
fn failed_transition_closes_its_trace_span() {
    let mut db = Ariel::with_options(EngineOptions {
        tracing: true,
        ..Default::default()
    });
    db.execute("create emp (id = int)").unwrap();
    let err = db.execute("do append emp (id = 1) append ghost (id = 2) end");
    assert!(err.is_err(), "the second command hits a missing relation");
    let events = db.trace_events();
    let begins = events
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::TransitionBegin { .. }))
        .count();
    let ends = events
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::TransitionEnd { .. }))
        .count();
    assert_eq!(begins, ends, "every TransitionBegin is closed: {events:#?}");
}
