//! End-to-end observability: always-on counters, gated timing histograms,
//! the metrics snapshot, `explain analyze`, and the flight-recorder trace
//! tier (causal events, `why` provenance, Chrome export).

use ariel::{Ariel, EngineOptions};

/// Engine with the timing tier on, a 2-variable paper-style rule
/// (`emp.sal` band joined to `dept` on `dno`), and some dept rows.
fn observed_db() -> Ariel {
    let mut db = Ariel::with_options(EngineOptions {
        observability: true,
        ..Default::default()
    });
    db.execute(
        "create emp (name = string, sal = float, dno = int); \
         create dept (dno = int, name = string); \
         create log (name = string)",
    )
    .unwrap();
    db.execute("append dept (dno = 1, name = \"eng\")").unwrap();
    db.execute("append dept (dno = 2, name = \"ops\")").unwrap();
    db.execute(
        "define rule watch if emp.sal > 1000 and emp.dno = dept.dno \
         then append to log(name = emp.name)",
    )
    .unwrap();
    db
}

fn feed(db: &mut Ariel, n: usize) {
    for i in 0..n {
        db.execute(&format!(
            "append emp (name = \"e{i}\", sal = {}, dno = {})",
            500 + i * 300,
            1 + (i % 2)
        ))
        .unwrap();
    }
}

#[test]
fn per_rule_token_counts_are_nonzero() {
    let mut db = observed_db();
    feed(&mut db, 10);
    let rs = db.rule_stats("watch").unwrap();
    assert!(rs.tokens_in > 0, "rule saw tokens: {rs:?}");
    assert!(rs.alpha_tests > 0 && rs.alpha_passes > 0, "{rs:?}");
    assert!(rs.alpha_passes <= rs.alpha_tests, "{rs:?}");
    assert!(rs.join_probes > 0 && rs.pnode_inserts > 0, "{rs:?}");
    assert!(rs.join_fanout() > 0.0);
    assert!(rs.stored_join_candidates > 0, "{rs:?}");
    assert_eq!(rs.virtual_join_candidates, 0, "AllStored policy: {rs:?}");
    assert_eq!(rs.virtual_hit_ratio(), 0.0);

    let ns = db.network_stats();
    assert!(ns.tokens_processed > 0 && ns.selnet_probes > 0, "{ns:?}");
    assert!(ns.selnet_candidates > 0 && ns.islist_stabs > 0, "{ns:?}");
    assert_eq!(ns.alpha_tests, rs.alpha_tests, "single rule owns all tests");
    assert_eq!(ns.join_probes, rs.join_probes);
    assert_eq!(ns.pnode_inserts, rs.pnode_inserts);
}

#[test]
fn histogram_bucket_totals_equal_event_counts() {
    let mut db = observed_db();
    feed(&mut db, 8);
    let obs = db.network().obs().expect("observability on");
    let (alpha, vscan, join, pins) = obs.phase_histograms();
    for (name, h) in [
        ("alpha_test", &alpha),
        ("virtual_scan", &vscan),
        ("beta_join", &join),
        ("pnode_insert", &pins),
        ("selnet_probe", &obs.selnet_probe),
    ] {
        assert_eq!(
            h.buckets().iter().sum::<u64>(),
            h.count(),
            "{name}: bucket total must equal sample count"
        );
    }
    // the timing tier saw exactly what the always-on counters saw
    let ns = db.network_stats();
    assert_eq!(alpha.count(), ns.alpha_tests);
    assert_eq!(join.count(), ns.join_probes);
    assert_eq!(obs.selnet_probe.count(), ns.selnet_probes);
    assert_eq!(obs.tokens.get(), ns.tokens_processed);
    assert!(pins.count() > 0, "P-node inserts were timed");
}

#[test]
fn explain_analyze_names_every_node_of_a_two_variable_rule() {
    let mut db = observed_db();
    let out = db
        .explain_analyze("append emp (name = \"bob\", sal = 5000, dno = 1)")
        .unwrap();
    // every node of the rule's network appears by name…
    assert!(out.contains("selection network:"), "{out}");
    assert!(out.contains("rule watch:"), "{out}");
    assert!(out.contains("α[emp: emp]"), "{out}");
    assert!(out.contains("α[dept: dept]"), "{out}");
    assert!(out.contains("β-join"), "{out}");
    assert!(out.contains("P-node"), "{out}");
    assert!(out.contains("action"), "{out}");
    // …with token counts and timings
    assert!(
        out.contains("in 1, out 1"),
        "emp α-node saw the token: {out}"
    );
    assert!(out.contains("fan-out"), "{out}");
    assert!(out.contains("/test") || out.contains("/probe"), "{out}");
    assert!(out.contains("token(s) through the network"), "{out}");
}

#[test]
fn explain_analyze_works_with_flag_off_and_preserves_capture_scoping() {
    let mut db = observed_db();
    db.set_observability(false);
    assert!(!db.observing());
    let out = db
        .explain_analyze("append emp (name = \"carol\", sal = 2000, dno = 2)")
        .unwrap();
    assert!(out.contains("rule watch:"), "{out}");
    assert!(out.contains("in 1, out 1"), "{out}");
    // the scoped capture did not re-enable the timing tier
    assert!(!db.observing());
    assert!(db.network().obs().is_none());
}

#[test]
fn metrics_json_reflects_observability_flag() {
    let mut db = observed_db();
    feed(&mut db, 4);
    let on = db.metrics_json();
    assert!(on.starts_with('{') && on.ends_with('}'), "{on}");
    assert!(on.contains("\"name\":\"watch\""), "{on}");
    assert!(on.contains("\"timing\":{"), "{on}");
    assert!(on.contains("\"match_batch\""), "{on}");
    assert!(on.contains("\"action_exec\""), "{on}");
    assert!(
        on.contains("\"watch\""),
        "action histogram labeled by rule name"
    );
    db.set_observability(false);
    let off = db.metrics_json();
    assert!(off.contains("\"timing\":null"), "{off}");
    assert!(off.contains("\"tokens_processed\""), "counters stay: {off}");
}

// ----- flight recorder -------------------------------------------------------

/// A two-level cascade on pattern rules (so every backend can run it):
/// `append src` joins `dim` and fires r1 (depth 0), whose action appends
/// `mid` and fires r2 (depth 1), whose action appends `sink` (depth 2,
/// quiescent). Tracing is enabled before any data arrives.
fn cascade_db(rete: Option<ariel::network::ReteMode>) -> Ariel {
    let mut db = Ariel::with_options(EngineOptions {
        rete_mode: rete,
        ..Default::default()
    });
    db.execute(
        "create src (x = int); create dim (x = int, y = int); \
         create mid (x = int); create sink (x = int)",
    )
    .unwrap();
    db.execute("define rule r1 if src.x > 0 and src.x = dim.x then append to mid(x = src.x)")
        .unwrap();
    db.execute("define rule r2 if mid.x > 0 then append to sink(x = mid.x)")
        .unwrap();
    db.set_tracing(true);
    db.execute("append dim (x = 1, y = 10)").unwrap();
    db.execute("append dim (x = 2, y = 20)").unwrap();
    db.execute("append src (x = 1)").unwrap();
    db
}

#[test]
fn why_chain_is_identical_across_backends() {
    use ariel::network::ReteMode;
    let mut treat = cascade_db(None);
    assert_eq!(treat.query("retrieve (sink.x)").unwrap().rows.len(), 1);
    let why1 = treat.why("r1").unwrap();
    let why2 = treat.why("r2").unwrap();
    // the full causal chain, with correct cascade depths
    assert!(why1.contains("firing #1 of r1 — transition"), "{why1}");
    assert!(why1.contains("depth 0"), "{why1}");
    assert!(
        why1.contains("command `append to src (x = 1)` → r1 fired (depth 0)"),
        "{why1}"
    );
    assert!(why1.contains("instantiation tids ["), "{why1}");
    assert!(why1.contains("← token +src"), "{why1}");
    assert!(why1.contains("cascade → transition"), "{why1}");
    assert!(why1.contains("(depth 1): 1 token"), "{why1}");
    assert!(
        why2.contains("r1 fired (depth 0) → r2 fired (depth 1)"),
        "{why2}"
    );
    assert!(why2.contains("← token"), "{why2}");
    assert!(why2.contains("(depth 2): 1 token"), "{why2}");
    // the rendered chains are byte-identical on every backend
    for mode in [ReteMode::Indexed, ReteMode::Nested] {
        let mut db = cascade_db(Some(mode));
        assert_eq!(db.query("retrieve (sink.x)").unwrap().rows.len(), 1);
        assert_eq!(db.why("r1").unwrap(), why1, "r1 chain differs on {mode:?}");
        assert_eq!(db.why("r2").unwrap(), why2, "r2 chain differs on {mode:?}");
    }
}

#[test]
fn why_reports_missing_rule_and_empty_ring() {
    let mut db = cascade_db(None);
    assert!(db.why("nope").is_err(), "unknown rule is an error");
    db.clear_trace();
    let why = db.why("r1").unwrap();
    assert!(why.contains("no firing of r1"), "{why}");
    db.set_tracing(false);
    let why = db.why("r1").unwrap();
    assert!(why.contains("tracing is off"), "{why}");
}

#[test]
fn trace_ring_is_bounded_and_wraps() {
    let mut db = observed_db();
    db.set_tracing(true);
    db.set_trace_limit(16);
    assert_eq!(db.trace_limit(), 16);
    feed(&mut db, 20);
    let events = db.trace_events();
    assert_eq!(events.len(), 16, "retention bounded by the capacity");
    assert!(db.trace_dropped() > 0, "older events were evicted");
    for w in events.windows(2) {
        assert_eq!(w[1].seq, w[0].seq + 1, "sequence numbers contiguous");
        assert!(w[1].ts_ns >= w[0].ts_ns, "timestamps monotone");
    }
    // shrinking a live recorder trims the oldest events immediately
    db.set_trace_limit(4);
    let trimmed = db.trace_events();
    assert_eq!(trimmed.len(), 4);
    assert_eq!(trimmed[0].seq, events[12].seq);
    // and more traffic still never exceeds the new bound
    feed(&mut db, 5);
    assert!(db.trace_events().len() <= 4);
}

#[test]
fn tracing_off_allocates_nothing_and_records_nothing() {
    let mut db = observed_db();
    assert!(!db.tracing(), "off by default");
    assert!(db.network().trace().is_none(), "no recorder allocated");
    feed(&mut db, 5);
    assert!(db.trace_events().is_empty());
    assert_eq!(db.trace_dropped(), 0);
    // enabling records; disabling discards the recorder entirely
    db.set_tracing(true);
    feed(&mut db, 2);
    assert!(!db.trace_events().is_empty());
    db.set_tracing(false);
    assert!(db.network().trace().is_none());
    assert!(db.trace_events().is_empty());
}

#[test]
fn chrome_trace_json_is_valid_and_monotone_per_track() {
    // observability on: firings carry measured durations and become spans
    let mut db = observed_db();
    db.set_tracing(true);
    feed(&mut db, 6);
    let json = db.chrome_trace_json();
    // format pins
    assert!(json.starts_with("{\"traceEvents\":["), "{json}");
    assert!(json.ends_with("]}"), "{json}");
    assert!(json.contains("\"ph\":\"X\""), "spans present: {json}");
    assert!(json.contains("\"ph\":\"i\""), "instants present: {json}");
    assert!(json.contains("\"cat\":\"transition\""), "{json}");
    assert!(json.contains("\"name\":\"fire watch\""), "{json}");
    assert!(json.contains("\"pid\":1"), "{json}");
    // the firing span carries its duration (timing tier was on)
    let fire = json.find("\"name\":\"fire watch\"").unwrap();
    assert!(
        json[fire..].starts_with("\"name\":\"fire watch\",\"cat\":\"firing\",\"ph\":\"X\""),
        "timed firings are spans: {}",
        &json[fire..fire + 80]
    );
    // minimal validity scan: balanced braces/brackets outside strings,
    // every string closed, no raw control characters
    let (mut obj, mut arr, mut in_str, mut esc) = (0i64, 0i64, false, false);
    for c in json.chars() {
        if in_str {
            if esc {
                esc = false;
            } else if c == '\\' {
                esc = true;
            } else if c == '"' {
                in_str = false;
            } else {
                assert!(!c.is_control(), "raw control character in JSON string");
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => obj += 1,
            '}' => obj -= 1,
            '[' => arr += 1,
            ']' => arr -= 1,
            _ => {}
        }
        assert!(obj >= 0 && arr >= 0, "unbalanced structure");
    }
    assert!(!in_str && obj == 0 && arr == 0, "document not closed");
    // `ts` is monotone within each track (`tid` = cascade depth); every
    // event renders ts before tid, and args carry neither key
    let mut last: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    let mut pos = 0usize;
    let mut seen = 0usize;
    while let Some(i) = json[pos..].find("\"ts\":") {
        let start = pos + i + 5;
        let end = start + json[start..].find(',').unwrap();
        let ts: f64 = json[start..end].parse().unwrap();
        let ti = end + json[end..].find("\"tid\":").unwrap() + 6;
        let te = ti + json[ti..].find(|c: char| !c.is_ascii_digit()).unwrap();
        let tid: u64 = json[ti..te].parse().unwrap();
        let prev = last.entry(tid).or_insert(0.0);
        assert!(ts >= *prev, "ts regressed on track {tid}: {ts} < {prev}");
        *prev = ts;
        pos = te;
        seen += 1;
    }
    assert!(seen > 10, "expected many events, saw {seen}");
}

#[test]
fn trace_survives_both_rete_modes_with_bounded_ring() {
    use ariel::network::ReteMode;
    for mode in [ReteMode::Indexed, ReteMode::Nested] {
        let mut db = cascade_db(Some(mode));
        db.set_trace_limit(8);
        for i in 3..10 {
            db.execute(&format!("append src (x = {i})")).unwrap();
        }
        assert!(db.trace_events().len() <= 8, "{mode:?}");
        assert!(db.trace_dropped() > 0, "{mode:?}");
        let json = db.chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\":["), "{mode:?}");
    }
}

// ----- metrics-schema stability ----------------------------------------------
//
// The shapes below are documented in docs/OBSERVABILITY.md and scraped by
// external tooling (the Prometheus exposition via the server's `/metrics`
// shim); renaming a key or family is a breaking change these tests pin.

/// Extract the integer value of `"key":<n>` after `section` in a JSON
/// metrics snapshot (good enough for the flat snapshots the engine emits).
fn json_counter(json: &str, section: &str, key: &str) -> u64 {
    let at = json.find(section).unwrap_or_else(|| {
        panic!("metrics_json lost its \"{section}\" section: {json}");
    });
    let pat = format!("\"{key}\":");
    let start = at + json[at..].find(&pat).expect("documented key present") + pat.len();
    json[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("counter value")
}

#[test]
fn metrics_json_schema_is_stable_and_counters_monotone() {
    let mut db = observed_db();
    feed(&mut db, 4);
    let before = db.metrics_json();
    // the documented top-level sections, in their documented order
    assert!(
        before.starts_with("{\"engine\":{\"transitions\":"),
        "{before}"
    );
    let mut at = 0;
    for section in [
        "\"engine\":",
        "\"network\":",
        "\"rules\":",
        "\"wal\":",
        "\"timing\":",
    ] {
        let pos = before[at..]
            .find(section)
            .unwrap_or_else(|| panic!("section {section} missing/reordered: {before}"));
        at += pos;
    }
    // documented per-section counters
    for key in ["transitions", "tokens", "firings"] {
        json_counter(&before, "\"engine\":", key);
    }
    for key in [
        "tokens_processed",
        "alpha_tests",
        "join_probes",
        "pnode_inserts",
    ] {
        json_counter(&before, "\"network\":", key);
    }
    assert!(before.contains("\"name\":\"watch\""), "{before}");
    json_counter(&before, "\"name\":\"watch\"", "firings");
    assert!(
        before.contains("\"wal\":{\"attached\":false"),
        "no WAL here: {before}"
    );
    json_counter(&before, "\"wal\":", "records");
    json_counter(&before, "\"wal\":", "fsyncs");

    // counters are monotone across more workload
    feed(&mut db, 6);
    let after = db.metrics_json();
    for (section, key) in [
        ("\"engine\":", "transitions"),
        ("\"engine\":", "tokens"),
        ("\"engine\":", "firings"),
        ("\"network\":", "tokens_processed"),
        ("\"name\":\"watch\"", "firings"),
    ] {
        let (b, a) = (
            json_counter(&before, section, key),
            json_counter(&after, section, key),
        );
        assert!(a > b, "{section}{key} must grow with workload: {b} -> {a}");
    }
}

/// The value of the single unlabeled sample `name <value>` in a
/// Prometheus exposition.
fn prom_value(text: &str, name: &str) -> f64 {
    let line = text
        .lines()
        .find(|l| l.strip_prefix(name).is_some_and(|r| r.starts_with(' ')))
        .unwrap_or_else(|| panic!("family {name} missing from exposition"));
    line[name.len() + 1..].trim().parse().expect("sample value")
}

#[test]
fn prometheus_exposition_is_well_formed_and_counters_monotone() {
    let mut db = observed_db();
    feed(&mut db, 4);
    let before = db.metrics_prometheus();
    // the documented families, each declared before use
    for family in [
        "ariel_engine_transitions_total counter",
        "ariel_engine_tokens_total counter",
        "ariel_engine_firings_total counter",
        "ariel_network_tokens_processed_total counter",
        "ariel_network_alpha_bytes gauge",
        "ariel_rule_firings_total counter",
        "ariel_wal_attached gauge",
        "ariel_wal_records_total counter",
        "ariel_wal_fsyncs_total counter",
        "ariel_wal_fsync_duration_ns histogram",
        "ariel_match_batch_duration_ns histogram",
        "ariel_action_duration_ns histogram",
    ] {
        assert!(before.contains(&format!("# TYPE {family}")), "{family}");
    }
    // per-rule labels and histogram completeness
    assert!(
        before.contains("ariel_rule_firings_total{rule=\"watch\"}"),
        "{before}"
    );
    assert!(before.contains("ariel_action_duration_ns_bucket{rule=\"watch\",le=\"+Inf\"}"));
    assert!(before.contains("ariel_match_batch_duration_ns_count "));
    assert_eq!(prom_value(&before, "ariel_wal_attached"), 0.0);
    // every line is a comment or a `name[{labels}] value` sample whose
    // value parses as a number
    for line in before.lines() {
        if line.is_empty() || line.starts_with("# ") {
            continue;
        }
        let (name, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line must be `name value`: {line}");
        });
        assert!(!name.is_empty() && value.parse::<f64>().is_ok(), "{line}");
    }

    feed(&mut db, 6);
    let after = db.metrics_prometheus();
    for name in [
        "ariel_engine_transitions_total",
        "ariel_engine_tokens_total",
        "ariel_engine_firings_total",
        "ariel_network_tokens_processed_total",
    ] {
        let (b, a) = (prom_value(&before, name), prom_value(&after, name));
        assert!(a > b, "{name} must grow with workload: {b} -> {a}");
    }
}

#[test]
fn virtual_nodes_report_scan_work() {
    let mut db = Ariel::with_options(EngineOptions {
        observability: true,
        virtual_policy: ariel::network::VirtualPolicy::AllVirtual,
        ..Default::default()
    });
    db.execute(
        "create emp (name = string, sal = float, dno = int); \
         create dept (dno = int, name = string); \
         create log (name = string)",
    )
    .unwrap();
    db.execute("append dept (dno = 1, name = \"eng\")").unwrap();
    db.execute(
        "define rule v if emp.sal > 0 and emp.dno = dept.dno \
         then append to log(name = emp.name)",
    )
    .unwrap();
    db.execute("append emp (name = \"a\", sal = 10, dno = 1)")
        .unwrap();
    let rs = db.rule_stats("v").unwrap();
    assert!(
        rs.virtual_scans > 0,
        "dept joined through the base relation: {rs:?}"
    );
    assert!(rs.virtual_join_candidates > 0, "{rs:?}");
    assert!(rs.virtual_hit_ratio() > 0.0);
}
