//! End-to-end observability: always-on counters, gated timing histograms,
//! the metrics snapshot, and `explain analyze`.

use ariel::{Ariel, EngineOptions};

/// Engine with the timing tier on, a 2-variable paper-style rule
/// (`emp.sal` band joined to `dept` on `dno`), and some dept rows.
fn observed_db() -> Ariel {
    let mut db = Ariel::with_options(EngineOptions {
        observability: true,
        ..Default::default()
    });
    db.execute(
        "create emp (name = string, sal = float, dno = int); \
         create dept (dno = int, name = string); \
         create log (name = string)",
    )
    .unwrap();
    db.execute("append dept (dno = 1, name = \"eng\")").unwrap();
    db.execute("append dept (dno = 2, name = \"ops\")").unwrap();
    db.execute(
        "define rule watch if emp.sal > 1000 and emp.dno = dept.dno \
         then append to log(name = emp.name)",
    )
    .unwrap();
    db
}

fn feed(db: &mut Ariel, n: usize) {
    for i in 0..n {
        db.execute(&format!(
            "append emp (name = \"e{i}\", sal = {}, dno = {})",
            500 + i * 300,
            1 + (i % 2)
        ))
        .unwrap();
    }
}

#[test]
fn per_rule_token_counts_are_nonzero() {
    let mut db = observed_db();
    feed(&mut db, 10);
    let rs = db.rule_stats("watch").unwrap();
    assert!(rs.tokens_in > 0, "rule saw tokens: {rs:?}");
    assert!(rs.alpha_tests > 0 && rs.alpha_passes > 0, "{rs:?}");
    assert!(rs.alpha_passes <= rs.alpha_tests, "{rs:?}");
    assert!(rs.join_probes > 0 && rs.pnode_inserts > 0, "{rs:?}");
    assert!(rs.join_fanout() > 0.0);
    assert!(rs.stored_join_candidates > 0, "{rs:?}");
    assert_eq!(rs.virtual_join_candidates, 0, "AllStored policy: {rs:?}");
    assert_eq!(rs.virtual_hit_ratio(), 0.0);

    let ns = db.network_stats();
    assert!(ns.tokens_processed > 0 && ns.selnet_probes > 0, "{ns:?}");
    assert!(ns.selnet_candidates > 0 && ns.islist_stabs > 0, "{ns:?}");
    assert_eq!(ns.alpha_tests, rs.alpha_tests, "single rule owns all tests");
    assert_eq!(ns.join_probes, rs.join_probes);
    assert_eq!(ns.pnode_inserts, rs.pnode_inserts);
}

#[test]
fn histogram_bucket_totals_equal_event_counts() {
    let mut db = observed_db();
    feed(&mut db, 8);
    let obs = db.network().obs().expect("observability on");
    let (alpha, vscan, join, pins) = obs.phase_histograms();
    for (name, h) in [
        ("alpha_test", &alpha),
        ("virtual_scan", &vscan),
        ("beta_join", &join),
        ("pnode_insert", &pins),
        ("selnet_probe", &obs.selnet_probe),
    ] {
        assert_eq!(
            h.buckets().iter().sum::<u64>(),
            h.count(),
            "{name}: bucket total must equal sample count"
        );
    }
    // the timing tier saw exactly what the always-on counters saw
    let ns = db.network_stats();
    assert_eq!(alpha.count(), ns.alpha_tests);
    assert_eq!(join.count(), ns.join_probes);
    assert_eq!(obs.selnet_probe.count(), ns.selnet_probes);
    assert_eq!(obs.tokens.get(), ns.tokens_processed);
    assert!(pins.count() > 0, "P-node inserts were timed");
}

#[test]
fn explain_analyze_names_every_node_of_a_two_variable_rule() {
    let mut db = observed_db();
    let out = db
        .explain_analyze("append emp (name = \"bob\", sal = 5000, dno = 1)")
        .unwrap();
    // every node of the rule's network appears by name…
    assert!(out.contains("selection network:"), "{out}");
    assert!(out.contains("rule watch:"), "{out}");
    assert!(out.contains("α[emp: emp]"), "{out}");
    assert!(out.contains("α[dept: dept]"), "{out}");
    assert!(out.contains("β-join"), "{out}");
    assert!(out.contains("P-node"), "{out}");
    assert!(out.contains("action"), "{out}");
    // …with token counts and timings
    assert!(
        out.contains("in 1, out 1"),
        "emp α-node saw the token: {out}"
    );
    assert!(out.contains("fan-out"), "{out}");
    assert!(out.contains("/test") || out.contains("/probe"), "{out}");
    assert!(out.contains("token(s) through the network"), "{out}");
}

#[test]
fn explain_analyze_works_with_flag_off_and_preserves_capture_scoping() {
    let mut db = observed_db();
    db.set_observability(false);
    assert!(!db.observing());
    let out = db
        .explain_analyze("append emp (name = \"carol\", sal = 2000, dno = 2)")
        .unwrap();
    assert!(out.contains("rule watch:"), "{out}");
    assert!(out.contains("in 1, out 1"), "{out}");
    // the scoped capture did not re-enable the timing tier
    assert!(!db.observing());
    assert!(db.network().obs().is_none());
}

#[test]
fn metrics_json_reflects_observability_flag() {
    let mut db = observed_db();
    feed(&mut db, 4);
    let on = db.metrics_json();
    assert!(on.starts_with('{') && on.ends_with('}'), "{on}");
    assert!(on.contains("\"name\":\"watch\""), "{on}");
    assert!(on.contains("\"timing\":{"), "{on}");
    assert!(on.contains("\"match_batch\""), "{on}");
    assert!(on.contains("\"action_exec\""), "{on}");
    assert!(
        on.contains("\"watch\""),
        "action histogram labeled by rule name"
    );
    db.set_observability(false);
    let off = db.metrics_json();
    assert!(off.contains("\"timing\":null"), "{off}");
    assert!(off.contains("\"tokens_processed\""), "counters stay: {off}");
}

#[test]
fn virtual_nodes_report_scan_work() {
    let mut db = Ariel::with_options(EngineOptions {
        observability: true,
        virtual_policy: ariel::network::VirtualPolicy::AllVirtual,
        ..Default::default()
    });
    db.execute(
        "create emp (name = string, sal = float, dno = int); \
         create dept (dno = int, name = string); \
         create log (name = string)",
    )
    .unwrap();
    db.execute("append dept (dno = 1, name = \"eng\")").unwrap();
    db.execute(
        "define rule v if emp.sal > 0 and emp.dno = dept.dno \
         then append to log(name = emp.name)",
    )
    .unwrap();
    db.execute("append emp (name = \"a\", sal = 10, dno = 1)")
        .unwrap();
    let rs = db.rule_stats("v").unwrap();
    assert!(
        rs.virtual_scans > 0,
        "dept joined through the base relation: {rs:?}"
    );
    assert!(rs.virtual_join_candidates > 0, "{rs:?}");
    assert!(rs.virtual_hit_ratio() > 0.0);
}
