//! Logical-event semantics at the engine level: the four cases of §4.3.1
//! observed through rule behaviour, and block vs per-command transitions.

use ariel::storage::Value;
use ariel::Ariel;

fn db() -> Ariel {
    let mut db = Ariel::new();
    db.execute(
        "create t (x = int, y = int); \
         create appended (x = int); create deleted (x = int); \
         create modified (oldx = int, newx = int)",
    )
    .unwrap();
    db.execute("define rule on_a on append t then append to appended(x = t.x)")
        .unwrap();
    db.execute("define rule on_d on delete t then append to deleted(x = t.x)")
        .unwrap();
    db.execute(
        "define rule on_m on replace t if new(t) \
         then append to modified(oldx = previous t.x, newx = t.x)",
    )
    .unwrap();
    db
}

fn count(db: &mut Ariel, rel: &str) -> usize {
    db.query(&format!("retrieve ({rel}.all)"))
        .unwrap()
        .rows
        .len()
}

fn rows(db: &mut Ariel, rel: &str) -> Vec<Vec<Value>> {
    db.query(&format!("retrieve ({rel}.all)")).unwrap().rows
}

#[test]
fn case1_insert_then_modify_nets_to_insert() {
    let mut db = db();
    db.execute("do append t (x = 1, y = 0) replace t (x = 2) where t.x = 1 end")
        .unwrap();
    // net effect: one insertion of the FINAL value; no modify event
    assert_eq!(rows(&mut db, "appended"), vec![vec![Value::Int(2)]]);
    assert_eq!(count(&mut db, "modified"), 0);
    assert_eq!(count(&mut db, "deleted"), 0);
}

#[test]
fn case2_insert_modify_delete_nets_to_nothing() {
    let mut db = db();
    db.execute(
        "do append t (x = 1, y = 0) \
            replace t (x = 2) where t.x = 1 \
            delete t where t.x = 2 \
         end",
    )
    .unwrap();
    assert_eq!(count(&mut db, "appended"), 0, "no net insert");
    assert_eq!(count(&mut db, "modified"), 0);
    assert_eq!(count(&mut db, "deleted"), 0, "no net delete either");
}

#[test]
fn case3_modify_modify_nets_to_one_modify() {
    let mut db = db();
    db.execute("append t (x = 1, y = 0)").unwrap();
    // two replaces inside one transition → ONE logical modify with
    // previous = the value at the start of the transition
    db.execute(
        "do replace t (x = 2) where t.x = 1 \
            replace t (x = 3) where t.x = 2 \
         end",
    )
    .unwrap();
    assert_eq!(
        rows(&mut db, "modified"),
        vec![vec![Value::Int(1), Value::Int(3)]],
        "old = start of transition, new = end of transition"
    );
}

#[test]
fn case4_modify_then_delete_nets_to_delete() {
    let mut db = db();
    db.execute("append t (x = 1, y = 0)").unwrap();
    db.execute(
        "do replace t (x = 2) where t.x = 1 \
            delete t where t.x = 2 \
         end",
    )
    .unwrap();
    assert_eq!(count(&mut db, "modified"), 0, "the modify was superseded");
    assert_eq!(rows(&mut db, "deleted"), vec![vec![Value::Int(2)]]);
}

#[test]
fn separate_commands_are_separate_transitions() {
    let mut db = db();
    db.execute("append t (x = 1, y = 0)").unwrap();
    db.execute("replace t (x = 2) where t.x = 1").unwrap();
    db.execute("replace t (x = 3) where t.x = 2").unwrap();
    // without a block, each replace is its own transition → two modifies
    let m = rows(&mut db, "modified");
    assert_eq!(
        m,
        vec![
            vec![Value::Int(1), Value::Int(2)],
            vec![Value::Int(2), Value::Int(3)],
        ]
    );
}

#[test]
fn multi_tuple_transition_tracks_each_tuple() {
    let mut db = db();
    db.execute("do append t (x = 1, y = 0) append t (x = 2, y = 0) end")
        .unwrap();
    assert_eq!(count(&mut db, "appended"), 2);
    // modify both in one command (set-oriented): two logical modifies
    db.execute("replace t (y = 1) where t.x > 0").unwrap();
    assert_eq!(count(&mut db, "modified"), 2);
}

#[test]
fn replace_target_list_scoping() {
    let mut db = Ariel::new();
    db.execute("create t (x = int, y = int); create xlog (v = int)")
        .unwrap();
    db.execute("define rule watch_x on replace t(x) then append to xlog(v = t.x)")
        .unwrap();
    db.execute("append t (x = 1, y = 1)").unwrap();
    // replacing y does not wake the rule
    db.execute("replace t (y = 2) where t.x = 1").unwrap();
    assert_eq!(count(&mut db, "xlog"), 0);
    // replacing x does
    db.execute("replace t (x = 5) where t.x = 1").unwrap();
    assert_eq!(count(&mut db, "xlog"), 1);
}

#[test]
fn transition_binding_broken_after_cycle() {
    // §4.3.2: data matching an event condition is relevant only during the
    // transition; afterwards the binding is broken. A later unrelated
    // transition must not re-fire the on-append rule for old appends.
    let mut db = db();
    db.execute("append t (x = 1, y = 0)").unwrap();
    assert_eq!(count(&mut db, "appended"), 1);
    db.execute("replace t (y = 9) where t.x = 1").unwrap();
    assert_eq!(count(&mut db, "appended"), 1, "append binding was flushed");
}

#[test]
fn delete_of_never_modified_tuple() {
    let mut db = db();
    db.execute("append t (x = 7, y = 0)").unwrap();
    db.execute("delete t where t.x = 7").unwrap();
    assert_eq!(rows(&mut db, "deleted"), vec![vec![Value::Int(7)]]);
    assert_eq!(count(&mut db, "modified"), 0);
}

#[test]
fn previous_reflects_transition_start_not_command_start() {
    // two commands in one block each bump x; the transition rule sees the
    // pre-block value as `previous`
    let mut db = Ariel::new();
    db.execute("create t (x = int); create log (oldx = int, newx = int)")
        .unwrap();
    db.execute(
        "define rule trace if t.x > previous t.x \
         then append to log(oldx = previous t.x, newx = t.x)",
    )
    .unwrap();
    db.execute("append t (x = 10)").unwrap();
    db.execute(
        "do replace t (x = 20) where t.x = 10 \
            replace t (x = 30) where t.x = 20 \
         end",
    )
    .unwrap();
    let out = db.query("retrieve (log.all)").unwrap();
    assert_eq!(out.rows, vec![vec![Value::Int(10), Value::Int(30)]]);
}
