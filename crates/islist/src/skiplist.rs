//! The interval skip list (Hanson, WADS 1991).
//!
//! A dynamic set of intervals supporting *stabbing queries*: given a point
//! `x`, report every stored interval containing `x`. This is the data
//! structure Ariel's top-level selection network uses to find, in time
//! logarithmic in the number of rules, which rule selection predicates a
//! token satisfies (§4.1 of the SIGMOD '92 paper; the paper notes the
//! interval skip list "is much easier to implement than the IBS tree and
//! performs as well").
//!
//! Structure: a probabilistic skip list over the distinct finite interval
//! endpoints. Every stored interval is represented by *markers* on a
//! maximal-level chain of edges covering its range, plus *eq-markers* on
//! chain nodes whose key the interval contains. A stabbing query walks the
//! ordinary skip-list search path for `x` and unions the markers of the one
//! edge per level that spans `x`, plus the eq-markers of `x`'s node if `x`
//! is itself an endpoint.
//!
//! Structural changes (inserting or deleting an endpoint node) re-place the
//! markers of exactly the intervals whose marker chains touch the edges
//! being split or merged. Re-placement costs O(log n) expected per affected
//! interval; only intervals overlapping the changed key are affected.

use crate::interval::Interval;
use crate::stats::StabStats;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Maximum node height. 2^24 endpoints is far beyond any realistic rule set.
const MAX_LEVEL: usize = 24;
/// Probability numerator for promoting a node one level (p = 1/4).
const P_NUM: u32 = 1;
const P_DEN: u32 = 4;

/// Opaque handle identifying a stored interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IntervalId(pub u64);

impl fmt::Display for IntervalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "iv{}", self.0)
    }
}

/// Reference to a position in the list: the -inf header or an arena node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pos {
    Header,
    Node(usize),
}

struct Node<T> {
    key: T,
    /// Number of stored intervals with a finite endpoint at this key.
    owners: usize,
    /// `forward[i]` = next node at level `i`; `None` = +inf.
    forward: Vec<Option<usize>>,
    /// `markers[i]` = interval markers on the outgoing level-`i` edge
    /// (meaningful even when `forward[i]` is `None`: the edge to +inf).
    markers: Vec<HashSet<IntervalId>>,
    /// Intervals that contain this node's key and whose marker chain
    /// passes through this node.
    eq_markers: HashSet<IntervalId>,
}

impl<T> Node<T> {
    fn new(key: T, level: usize) -> Self {
        Node {
            key,
            owners: 0,
            forward: vec![None; level],
            markers: vec![HashSet::new(); level],
            eq_markers: HashSet::new(),
        }
    }

    fn level(&self) -> usize {
        self.forward.len()
    }
}

/// A simple xorshift PRNG for node levels: deterministic, dependency-free,
/// and more than random enough for skip-list balancing.
#[derive(Debug, Clone)]
struct LevelRng(u64);

impl LevelRng {
    fn next_u32(&mut self) -> u32 {
        // xorshift64*
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) as u32
    }
}

/// An interval skip list over an ordered key domain `T`.
///
/// ```
/// use ariel_islist::{Interval, IntervalSkipList};
///
/// let mut index = IntervalSkipList::new();
/// let band = index.insert(Interval::open_closed(30_000, 40_000).unwrap());
/// let cap = index.insert(Interval::at_most(35_000, true));
///
/// let mut hits = index.stab(&32_000);
/// hits.sort();
/// assert_eq!(hits, vec![band, cap]);
/// assert_eq!(index.stab(&30_000), vec![cap], "open lower endpoint");
///
/// index.remove(band);
/// assert_eq!(index.stab(&32_000), vec![cap]);
/// ```
pub struct IntervalSkipList<T> {
    head_forward: Vec<Option<usize>>,
    head_markers: Vec<HashSet<IntervalId>>,
    nodes: Vec<Option<Node<T>>>,
    free: Vec<usize>,
    intervals: HashMap<IntervalId, Interval<T>>,
    next_id: u64,
    rng: LevelRng,
    stats: StabStats,
}

impl<T: Ord + Clone> Default for IntervalSkipList<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Ord + Clone> IntervalSkipList<T> {
    /// New empty list with a fixed RNG seed (deterministic layout).
    pub fn new() -> Self {
        Self::with_seed(0x000A_51E1_157A_B1E5)
    }

    /// New empty list with an explicit level-RNG seed.
    pub fn with_seed(seed: u64) -> Self {
        IntervalSkipList {
            head_forward: vec![None; MAX_LEVEL],
            head_markers: vec![HashSet::new(); MAX_LEVEL],
            nodes: Vec::new(),
            free: Vec::new(),
            intervals: HashMap::new(),
            next_id: 0,
            rng: LevelRng(seed | 1),
            stats: StabStats::new(),
        }
    }

    /// Always-on counters describing the stabbing queries this list has
    /// answered (see [`StabStats`]). Reset with [`StabStats::reset`].
    pub fn stab_stats(&self) -> &StabStats {
        &self.stats
    }

    /// Number of stored intervals.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// True iff no intervals are stored.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// The interval stored under `id`, if present.
    pub fn get(&self, id: IntervalId) -> Option<&Interval<T>> {
        self.intervals.get(&id)
    }

    /// Iterate over all stored `(id, interval)` pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (IntervalId, &Interval<T>)> {
        self.intervals.iter().map(|(id, iv)| (*id, iv))
    }

    /// Number of endpoint nodes currently in the skip list.
    pub fn node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_some()).count()
    }

    // ----- node/pos helpers ------------------------------------------------

    fn node(&self, idx: usize) -> &Node<T> {
        self.nodes[idx].as_ref().expect("live node")
    }

    fn node_mut(&mut self, idx: usize) -> &mut Node<T> {
        self.nodes[idx].as_mut().expect("live node")
    }

    fn level_of(&self, p: Pos) -> usize {
        match p {
            Pos::Header => MAX_LEVEL,
            Pos::Node(i) => self.node(i).level(),
        }
    }

    fn key_of(&self, p: Pos) -> Option<&T> {
        match p {
            Pos::Header => None,
            Pos::Node(i) => Some(&self.node(i).key),
        }
    }

    fn forward(&self, p: Pos, lvl: usize) -> Option<usize> {
        match p {
            Pos::Header => self.head_forward[lvl],
            Pos::Node(i) => self.node(i).forward[lvl],
        }
    }

    fn set_forward(&mut self, p: Pos, lvl: usize, to: Option<usize>) {
        match p {
            Pos::Header => self.head_forward[lvl] = to,
            Pos::Node(i) => self.node_mut(i).forward[lvl] = to,
        }
    }

    fn markers(&self, p: Pos, lvl: usize) -> &HashSet<IntervalId> {
        match p {
            Pos::Header => &self.head_markers[lvl],
            Pos::Node(i) => &self.node(i).markers[lvl],
        }
    }

    fn markers_mut(&mut self, p: Pos, lvl: usize) -> &mut HashSet<IntervalId> {
        match p {
            Pos::Header => &mut self.head_markers[lvl],
            Pos::Node(i) => &mut self.node_mut(i).markers[lvl],
        }
    }

    fn random_level(&mut self) -> usize {
        let mut lvl = 1;
        while lvl < MAX_LEVEL && self.rng.next_u32() % P_DEN < P_NUM {
            lvl += 1;
        }
        lvl
    }

    /// For each level, the last position whose key is `< key`.
    fn find_update(&self, key: &T) -> Vec<Pos> {
        let mut update = vec![Pos::Header; MAX_LEVEL];
        let mut cur = Pos::Header;
        for lvl in (0..MAX_LEVEL).rev() {
            while let Some(nxt) = self.forward(cur, lvl) {
                if &self.node(nxt).key < key {
                    cur = Pos::Node(nxt);
                } else {
                    break;
                }
            }
            update[lvl] = cur;
        }
        update
    }

    /// Find the node holding exactly `key`, if any.
    fn find_node(&self, key: &T) -> Option<usize> {
        let update = self.find_update(key);
        let cand = self.forward(update[0], 0)?;
        (&self.node(cand).key == key).then_some(cand)
    }

    // ----- marker chain walk ----------------------------------------------

    /// Whether the open span between two positions is inside `iv`.
    fn span_contained(&self, iv: &Interval<T>, a: Pos, b: Option<usize>) -> bool {
        let bk = b.map(|i| &self.node(i).key);
        iv.contains_open_span(self.key_of(a), bk)
    }

    /// Walk the maximal-level marker chain for `iv`, invoking `visit_edge`
    /// for every chain edge `(pos, lvl)` and `visit_node` for every chain
    /// node whose key `iv` contains. Both endpoints of the interval must
    /// already exist as nodes (when finite).
    fn walk_chain(
        &mut self,
        id: IntervalId,
        iv: &Interval<T>,
        add: bool, // true = place markers, false = remove them
    ) {
        let mut x = match iv.lo_value() {
            Some(v) => Pos::Node(self.find_node(v).expect("lo endpoint node exists")),
            None => Pos::Header,
        };
        // eq-marker on the left endpoint node itself.
        let lo_contained = self.key_of(x).is_some_and(|k| iv.contains(k));
        if lo_contained {
            self.touch_eq(x, id, add);
        }
        let right_is = |me: &Self, p: Pos| -> bool {
            match (iv.hi_value(), me.key_of(p)) {
                (Some(h), Some(k)) => h == k,
                _ => false,
            }
        };
        if right_is(self, x) {
            return; // point interval: eq-marker only
        }
        let mut lvl = 0usize;
        loop {
            // Ascend to the highest outgoing edge still contained in iv.
            while lvl + 1 < self.level_of(x) && self.span_contained(iv, x, self.forward(x, lvl + 1))
            {
                lvl += 1;
            }
            if self.span_contained(iv, x, self.forward(x, lvl)) {
                self.touch_edge(x, lvl, id, add);
                match self.forward(x, lvl) {
                    None => break, // marked the edge to +inf (hi unbounded)
                    Some(nxt) => {
                        x = Pos::Node(nxt);
                        let contains = iv.contains(&self.node(nxt).key);
                        if contains {
                            self.touch_eq(x, id, add);
                        }
                        if right_is(self, x) {
                            break;
                        }
                    }
                }
            } else {
                debug_assert!(
                    lvl > 0,
                    "level-0 edges between interval endpoints are always contained"
                );
                lvl -= 1;
            }
        }
    }

    fn touch_edge(&mut self, p: Pos, lvl: usize, id: IntervalId, add: bool) {
        let set = self.markers_mut(p, lvl);
        if add {
            set.insert(id);
        } else {
            let removed = set.remove(&id);
            debug_assert!(removed, "marker chain must match placement");
        }
    }

    fn touch_eq(&mut self, p: Pos, id: IntervalId, add: bool) {
        if let Pos::Node(i) = p {
            let set = &mut self.node_mut(i).eq_markers;
            if add {
                set.insert(id);
            } else {
                set.remove(&id);
            }
        }
    }

    // ----- structural changes ----------------------------------------------

    /// Ensure a node exists for `key`, re-placing markers of every interval
    /// whose chain crosses the new node. Returns the node index.
    fn ensure_node(&mut self, key: &T) -> usize {
        if let Some(idx) = self.find_node(key) {
            return idx;
        }
        let update = self.find_update(key);
        let level = self.random_level();
        // Intervals with markers on any edge being split must be re-placed.
        let mut affected: HashSet<IntervalId> = HashSet::new();
        for (lvl, &pos) in update.iter().enumerate().take(level) {
            affected.extend(self.markers(pos, lvl).iter().copied());
        }
        let affected: Vec<IntervalId> = affected.into_iter().collect();
        for &id in &affected {
            let iv = self.intervals[&id].clone();
            self.walk_chain(id, &iv, false);
        }
        // Link the new node in.
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = Some(Node::new(key.clone(), level));
                i
            }
            None => {
                self.nodes.push(Some(Node::new(key.clone(), level)));
                self.nodes.len() - 1
            }
        };
        for (lvl, &up) in update.iter().enumerate().take(level) {
            let next = self.forward(up, lvl);
            self.node_mut(idx).forward[lvl] = next;
            self.set_forward(up, lvl, Some(idx));
        }
        for &id in &affected {
            let iv = self.intervals[&id].clone();
            self.walk_chain(id, &iv, true);
        }
        idx
    }

    /// Unlink a node with zero owners, re-placing markers of every interval
    /// whose chain touches its adjacent edges.
    fn delete_node(&mut self, idx: usize) {
        let key = self.node(idx).key.clone();
        debug_assert_eq!(self.node(idx).owners, 0);
        let update = self.find_update(&key);
        let level = self.node(idx).level();
        let mut affected: HashSet<IntervalId> = self.node(idx).eq_markers.clone();
        for (lvl, &up) in update.iter().enumerate().take(level) {
            affected.extend(self.node(idx).markers[lvl].iter().copied());
            // incoming edge at this level
            affected.extend(self.markers(up, lvl).iter().copied());
        }
        let affected: Vec<IntervalId> = affected.into_iter().collect();
        for &id in &affected {
            let iv = self.intervals[&id].clone();
            self.walk_chain(id, &iv, false);
        }
        for (lvl, &up) in update.iter().enumerate().take(level) {
            debug_assert_eq!(self.forward(up, lvl), Some(idx));
            let next = self.node(idx).forward[lvl];
            self.set_forward(up, lvl, next);
        }
        debug_assert!(
            self.node(idx).eq_markers.is_empty()
                && self.node(idx).markers.iter().all(HashSet::is_empty),
            "all markers on the dying node were re-homed"
        );
        self.nodes[idx] = None;
        self.free.push(idx);
        for &id in &affected {
            let iv = self.intervals[&id].clone();
            self.walk_chain(id, &iv, true);
        }
    }

    // ----- public interval API ----------------------------------------------

    /// Insert an interval; returns its handle.
    pub fn insert(&mut self, iv: Interval<T>) -> IntervalId {
        let id = IntervalId(self.next_id);
        self.next_id += 1;
        if let Some(lo) = iv.lo_value().cloned() {
            let n = self.ensure_node(&lo);
            self.node_mut(n).owners += 1;
        }
        if let Some(hi) = iv.hi_value().cloned() {
            let n = self.ensure_node(&hi);
            self.node_mut(n).owners += 1;
        }
        self.intervals.insert(id, iv.clone());
        self.walk_chain(id, &iv, true);
        id
    }

    /// Remove an interval by handle; returns it if it was present.
    pub fn remove(&mut self, id: IntervalId) -> Option<Interval<T>> {
        let iv = self.intervals.remove(&id)?;
        self.walk_chain(id, &iv, false);
        for ep in [iv.lo_value().cloned(), iv.hi_value().cloned()]
            .into_iter()
            .flatten()
        {
            let n = self.find_node(&ep).expect("endpoint node exists");
            self.node_mut(n).owners -= 1;
            if self.node(n).owners == 0 {
                self.delete_node(n);
            }
        }
        Some(iv)
    }

    /// Stabbing query: ids of every stored interval containing `x`.
    /// Expected time O(log n + k) where k is the number of hits.
    pub fn stab(&self, x: &T) -> Vec<IntervalId> {
        let mut out: HashSet<IntervalId> = HashSet::new();
        self.stab_with(x, |id| {
            out.insert(id);
        });
        out.into_iter().collect()
    }

    /// Stabbing query invoking `f` for each hit. Hits are not repeated.
    pub fn stab_with(&self, x: &T, mut f: impl FnMut(IntervalId)) {
        let mut visited = 0u64;
        let mut hits = 0u64;
        let mut cur = Pos::Header;
        for lvl in (0..MAX_LEVEL).rev() {
            while let Some(nxt) = self.forward(cur, lvl) {
                visited += 1;
                if &self.node(nxt).key < x {
                    cur = Pos::Node(nxt);
                } else {
                    break;
                }
            }
            // The outgoing edge at this level spans x strictly unless the
            // next node's key equals x (handled below via eq-markers).
            let strictly_spans = match self.forward(cur, lvl) {
                None => true,
                Some(nxt) => &self.node(nxt).key > x,
            };
            if strictly_spans {
                for &id in self.markers(cur, lvl) {
                    hits += 1;
                    f(id);
                }
            }
        }
        if let Some(nxt) = self.forward(cur, 0) {
            if &self.node(nxt).key == x {
                for &id in &self.node(nxt).eq_markers {
                    hits += 1;
                    f(id);
                }
            }
        }
        self.stats.stabs.add(1);
        self.stats.nodes_visited.add(visited);
        self.stats.hits.add(hits);
    }

    /// Approximate heap footprint in bytes. Alias of
    /// [`Self::approx_size_bytes`] under the name the network layer's
    /// memory accounting expects.
    pub fn bytes(&self) -> usize {
        self.approx_size_bytes()
    }

    /// Approximate heap footprint in bytes, for the benchmark harness.
    pub fn approx_size_bytes(&self) -> usize {
        let per_marker = std::mem::size_of::<IntervalId>();
        let mut total = std::mem::size_of::<Self>();
        for n in self.nodes.iter().flatten() {
            total += std::mem::size_of::<Node<T>>();
            total += n.forward.len() * std::mem::size_of::<Option<usize>>();
            total += n
                .markers
                .iter()
                .map(|m| m.len() * per_marker)
                .sum::<usize>();
            total += n.eq_markers.len() * per_marker;
        }
        total += self.intervals.len() * std::mem::size_of::<Interval<T>>();
        total
    }

    /// Validate internal invariants (test/debug helper): keys strictly
    /// ascending at level 0, every level-`i` node linked at `i-1`, and every
    /// stored marker id refers to a live interval.
    pub fn check_invariants(&self) -> Result<(), String> {
        // level-0 order
        let mut cur = self.head_forward[0];
        let mut prev_key: Option<&T> = None;
        let mut seen = 0usize;
        while let Some(idx) = cur {
            let n = self.node(idx);
            if let Some(p) = prev_key {
                if p >= &n.key {
                    return Err("level-0 keys not strictly ascending".into());
                }
            }
            prev_key = Some(&n.key);
            if n.owners == 0 {
                return Err("ownerless node retained".into());
            }
            seen += 1;
            cur = n.forward[0];
        }
        if seen != self.node_count() {
            return Err("unreachable nodes exist".into());
        }
        // marker ids must be live
        let live = |id: &IntervalId| self.intervals.contains_key(id);
        for lvl in 0..MAX_LEVEL {
            if !self.head_markers[lvl].iter().all(live) {
                return Err("dangling marker id on header edge".into());
            }
        }
        for n in self.nodes.iter().flatten() {
            if !n.eq_markers.iter().all(live) {
                return Err("dangling eq-marker id".into());
            }
            for m in &n.markers {
                if !m.iter().all(live) {
                    return Err("dangling marker id".into());
                }
            }
        }
        Ok(())
    }
}

impl<T: Ord + Clone + fmt::Debug> fmt::Debug for IntervalSkipList<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "IntervalSkipList {{ intervals: {}, nodes: {} }}",
            self.intervals.len(),
            self.node_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::ops::Bound;

    fn sorted(mut v: Vec<IntervalId>) -> Vec<IntervalId> {
        v.sort();
        v
    }

    #[test]
    fn empty_list_stabs_nothing() {
        let l: IntervalSkipList<i64> = IntervalSkipList::new();
        assert!(l.stab(&5).is_empty());
        assert!(l.is_empty());
        l.check_invariants().unwrap();
    }

    #[test]
    fn single_closed_interval() {
        let mut l = IntervalSkipList::new();
        let id = l.insert(Interval::closed(10, 20).unwrap());
        assert_eq!(l.stab(&10), vec![id]);
        assert_eq!(l.stab(&15), vec![id]);
        assert_eq!(l.stab(&20), vec![id]);
        assert!(l.stab(&9).is_empty());
        assert!(l.stab(&21).is_empty());
        l.check_invariants().unwrap();
    }

    #[test]
    fn open_endpoints_respected() {
        let mut l = IntervalSkipList::new();
        let id = l.insert(Interval::open_closed(10, 20).unwrap());
        assert!(l.stab(&10).is_empty(), "lo is excluded");
        assert_eq!(l.stab(&11), vec![id]);
        assert_eq!(l.stab(&20), vec![id]);
    }

    #[test]
    fn point_interval() {
        let mut l = IntervalSkipList::new();
        let id = l.insert(Interval::point(7));
        assert_eq!(l.stab(&7), vec![id]);
        assert!(l.stab(&6).is_empty());
        assert!(l.stab(&8).is_empty());
    }

    #[test]
    fn unbounded_intervals() {
        let mut l = IntervalSkipList::new();
        let ge = l.insert(Interval::at_least(100, false)); // (100, +inf)
        let le = l.insert(Interval::at_most(0, true)); // (-inf, 0]
        let all = l.insert(Interval::all());
        assert_eq!(sorted(l.stab(&-5)), sorted(vec![le, all]));
        assert_eq!(sorted(l.stab(&0)), sorted(vec![le, all]));
        assert_eq!(l.stab(&50), vec![all]);
        assert_eq!(sorted(l.stab(&101)), sorted(vec![ge, all]));
        assert!(l.stab(&100).contains(&all) && !l.stab(&100).contains(&ge));
        l.check_invariants().unwrap();
    }

    #[test]
    fn overlapping_intervals_all_reported() {
        let mut l = IntervalSkipList::new();
        let ids: Vec<_> = (0..10)
            .map(|i| l.insert(Interval::closed(i, i + 10).unwrap()))
            .collect();
        // x = 9 is inside [0,10] .. [9,19]
        let hits = sorted(l.stab(&9));
        assert_eq!(hits, sorted(ids.clone()));
        // x = 5 is inside [0,10] .. [5,15]
        assert_eq!(l.stab(&5).len(), 6);
        l.check_invariants().unwrap();
    }

    #[test]
    fn remove_restores_previous_answers() {
        let mut l = IntervalSkipList::new();
        let a = l.insert(Interval::closed(0, 100).unwrap());
        let b = l.insert(Interval::closed(40, 60).unwrap());
        assert_eq!(sorted(l.stab(&50)), sorted(vec![a, b]));
        assert_eq!(l.remove(b), Interval::closed(40, 60));
        assert_eq!(l.stab(&50), vec![a]);
        assert_eq!(l.stab(&40), vec![a]);
        l.check_invariants().unwrap();
        assert_eq!(l.remove(a), Interval::closed(0, 100));
        assert!(l.stab(&50).is_empty());
        assert_eq!(l.node_count(), 0);
        l.check_invariants().unwrap();
    }

    #[test]
    fn remove_unknown_id_is_none() {
        let mut l: IntervalSkipList<i64> = IntervalSkipList::new();
        assert!(l.remove(IntervalId(99)).is_none());
    }

    #[test]
    fn duplicate_intervals_are_distinct() {
        let mut l = IntervalSkipList::new();
        let a = l.insert(Interval::closed(1, 5).unwrap());
        let b = l.insert(Interval::closed(1, 5).unwrap());
        assert_eq!(sorted(l.stab(&3)), sorted(vec![a, b]));
        l.remove(a);
        assert_eq!(l.stab(&3), vec![b]);
        l.check_invariants().unwrap();
    }

    #[test]
    fn shared_endpoints_owner_counting() {
        let mut l = IntervalSkipList::new();
        let a = l.insert(Interval::closed(10, 20).unwrap());
        let b = l.insert(Interval::closed(20, 30).unwrap());
        assert_eq!(sorted(l.stab(&20)), sorted(vec![a, b]));
        l.remove(a);
        // node 20 still owned by b
        assert_eq!(l.stab(&20), vec![b]);
        assert_eq!(l.stab(&25), vec![b]);
        l.check_invariants().unwrap();
    }

    #[test]
    fn paper_band_predicates() {
        // The benchmark rules of Figs. 9-11: bands Ci < sal <= Ci + 10000,
        // Ci = i * 1000. A salary stabs exactly the bands containing it.
        let mut l = IntervalSkipList::new();
        let ids: Vec<_> = (0..200)
            .map(|i| {
                let lo = i * 1000;
                l.insert(Interval::open_closed(lo, lo + 10_000).unwrap())
            })
            .collect();
        let x = 55_500i64;
        let expect: Vec<_> = (0..200)
            .filter(|&i| {
                let lo = i * 1000;
                x > lo && x <= lo + 10_000
            })
            .map(|i| ids[i as usize])
            .collect();
        assert_eq!(sorted(l.stab(&x)), sorted(expect));
        l.check_invariants().unwrap();
    }

    #[test]
    fn interleaved_inserts_and_removes() {
        let mut l = IntervalSkipList::new();
        let mut live: Vec<(IntervalId, Interval<i64>)> = Vec::new();
        let mut seed = 123u64;
        let mut rnd = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as i64
        };
        for step in 0..300 {
            if step % 3 == 2 && !live.is_empty() {
                let k = (rnd() as usize) % live.len();
                let (id, _) = live.swap_remove(k);
                l.remove(id).unwrap();
            } else {
                let a = rnd() % 100;
                let b = a + 1 + rnd() % 50;
                let iv = Interval::closed(a, b).unwrap();
                let id = l.insert(iv.clone());
                live.push((id, iv));
            }
            l.check_invariants().unwrap();
            // spot-check three stab points
            for x in [-10i64, 25, 75] {
                let got = sorted(l.stab(&x));
                let mut want: Vec<_> = live
                    .iter()
                    .filter(|(_, iv)| iv.contains(&x))
                    .map(|(id, _)| *id)
                    .collect();
                want.sort();
                assert_eq!(got, want, "step {step}, stab {x}");
            }
        }
    }

    #[test]
    fn mixed_bound_kinds_exhaustive_small_domain() {
        // All bound combinations over a tiny domain, exhaustively stabbed.
        let mut l = IntervalSkipList::new();
        let mut live: Vec<(IntervalId, Interval<i64>)> = Vec::new();
        let bounds: Vec<Bound<i64>> = vec![Bound::Unbounded]
            .into_iter()
            .chain((0..6).flat_map(|v| [Bound::Included(v), Bound::Excluded(v)]))
            .collect();
        for lo in &bounds {
            for hi in &bounds {
                if let Some(iv) = Interval::new(*lo, *hi) {
                    let id = l.insert(iv.clone());
                    live.push((id, iv));
                }
            }
        }
        l.check_invariants().unwrap();
        for x in -1..7 {
            let got = sorted(l.stab(&x));
            let mut want: Vec<_> = live
                .iter()
                .filter(|(_, iv)| iv.contains(&x))
                .map(|(id, _)| *id)
                .collect();
            want.sort();
            assert_eq!(got, want, "stab {x}");
        }
        // now remove half and re-verify
        for (id, _) in live.drain(..live.len() / 2).collect::<Vec<_>>() {
            l.remove(id).unwrap();
        }
        l.check_invariants().unwrap();
        for x in -1..7 {
            let got = sorted(l.stab(&x));
            let mut want: Vec<_> = live
                .iter()
                .filter(|(_, iv)| iv.contains(&x))
                .map(|(id, _)| *id)
                .collect();
            want.sort();
            assert_eq!(got, want, "stab {x} after removals");
        }
    }

    #[test]
    fn approx_size_grows_with_content() {
        let mut l = IntervalSkipList::new();
        let empty = l.approx_size_bytes();
        for i in 0..50 {
            l.insert(Interval::closed(i, i + 5).unwrap());
        }
        assert!(l.approx_size_bytes() > empty);
    }

    #[test]
    fn works_with_string_keys() {
        let mut l: IntervalSkipList<String> = IntervalSkipList::new();
        let id = l.insert(Interval::closed("apple".to_string(), "mango".to_string()).unwrap());
        assert_eq!(l.stab(&"banana".to_string()), vec![id]);
        assert!(l.stab(&"zebra".to_string()).is_empty());
    }
}
