//! An augmented interval tree (treap-balanced BST with max-upper-endpoint
//! augmentation) answering the same stabbing queries as the interval skip
//! list.
//!
//! The paper compares the interval skip list against the **IBS tree**
//! (Hanson & Chaabouni [10, 11]) and reports that the skip list "is much
//! easier to implement … and performs as well". The IBS tree's technical
//! report is not available, so this module provides the closest standard
//! equivalent — a balanced binary search tree over interval lower
//! endpoints, augmented with each subtree's maximum upper endpoint (CLRS
//! §14.3) — as the tree-shaped comparison point for the ISL ablation.
//! Stabbing cost is O(min(n, k·log n)); insert/remove are O(log n)
//! expected (treap balancing with deterministic pseudo-random priorities).

use crate::interval::Interval;
use crate::skiplist::IntervalId;
use std::cmp::Ordering;
use std::ops::Bound;

/// Ordering of lower bounds: `Unbounded` first; at equal values an
/// `Included` bound starts before an `Excluded` one.
fn cmp_lo<T: Ord>(a: &Bound<T>, b: &Bound<T>) -> Ordering {
    match (a, b) {
        (Bound::Unbounded, Bound::Unbounded) => Ordering::Equal,
        (Bound::Unbounded, _) => Ordering::Less,
        (_, Bound::Unbounded) => Ordering::Greater,
        (Bound::Included(x), Bound::Included(y)) | (Bound::Excluded(x), Bound::Excluded(y)) => {
            x.cmp(y)
        }
        (Bound::Included(x), Bound::Excluded(y)) => x.cmp(y).then(Ordering::Less),
        (Bound::Excluded(x), Bound::Included(y)) => x.cmp(y).then(Ordering::Greater),
    }
}

/// Ordering of upper bounds: `Unbounded` last; at equal values an
/// `Excluded` bound ends before an `Included` one.
fn cmp_hi<T: Ord>(a: &Bound<T>, b: &Bound<T>) -> Ordering {
    match (a, b) {
        (Bound::Unbounded, Bound::Unbounded) => Ordering::Equal,
        (Bound::Unbounded, _) => Ordering::Greater,
        (_, Bound::Unbounded) => Ordering::Less,
        (Bound::Included(x), Bound::Included(y)) | (Bound::Excluded(x), Bound::Excluded(y)) => {
            x.cmp(y)
        }
        (Bound::Included(x), Bound::Excluded(y)) => x.cmp(y).then(Ordering::Greater),
        (Bound::Excluded(x), Bound::Included(y)) => x.cmp(y).then(Ordering::Less),
    }
}

/// Can an interval whose upper bound is `hi` contain `x`?
fn hi_admits<T: Ord>(hi: &Bound<T>, x: &T) -> bool {
    match hi {
        Bound::Unbounded => true,
        Bound::Included(h) => h >= x,
        Bound::Excluded(h) => h > x,
    }
}

/// Can an interval whose lower bound is `lo` contain `x`?
fn lo_admits<T: Ord>(lo: &Bound<T>, x: &T) -> bool {
    match lo {
        Bound::Unbounded => true,
        Bound::Included(l) => l <= x,
        Bound::Excluded(l) => l < x,
    }
}

struct Node<T> {
    id: IntervalId,
    iv: Interval<T>,
    prio: u64,
    /// Maximum upper bound in this subtree (by [`cmp_hi`]).
    max_hi: Bound<T>,
    left: Option<Box<Node<T>>>,
    right: Option<Box<Node<T>>>,
}

impl<T: Ord + Clone> Node<T> {
    fn new(id: IntervalId, iv: Interval<T>, prio: u64) -> Box<Self> {
        let max_hi = iv.hi().clone();
        Box::new(Node {
            id,
            iv,
            prio,
            max_hi,
            left: None,
            right: None,
        })
    }

    /// Recompute `max_hi` from children (call after structure changes).
    fn update(&mut self) {
        let mut best = self.iv.hi().clone();
        for child in [&self.left, &self.right].into_iter().flatten() {
            if cmp_hi(&child.max_hi, &best) == Ordering::Greater {
                best = child.max_hi.clone();
            }
        }
        self.max_hi = best;
    }

    /// Key ordering: lower bound, tie-broken by id (keys are unique).
    fn key_cmp(&self, lo: &Bound<T>, id: IntervalId) -> Ordering {
        cmp_lo(self.iv.lo(), lo).then(self.id.cmp(&id))
    }
}

fn rotate_left<T: Ord + Clone>(mut n: Box<Node<T>>) -> Box<Node<T>> {
    let mut r = n.right.take().expect("rotate_left needs a right child");
    n.right = r.left.take();
    n.update();
    r.left = Some(n);
    r.update();
    r
}

fn rotate_right<T: Ord + Clone>(mut n: Box<Node<T>>) -> Box<Node<T>> {
    let mut l = n.left.take().expect("rotate_right needs a left child");
    n.left = l.right.take();
    n.update();
    l.right = Some(n);
    l.update();
    l
}

fn insert_node<T: Ord + Clone>(root: Option<Box<Node<T>>>, node: Box<Node<T>>) -> Box<Node<T>> {
    let Some(mut r) = root else { return node };
    match r.key_cmp(node.iv.lo(), node.id) {
        Ordering::Greater | Ordering::Equal => {
            r.left = Some(insert_node(r.left.take(), node));
            r.update();
            if r.left.as_ref().unwrap().prio > r.prio {
                r = rotate_right(r);
            }
        }
        Ordering::Less => {
            r.right = Some(insert_node(r.right.take(), node));
            r.update();
            if r.right.as_ref().unwrap().prio > r.prio {
                r = rotate_left(r);
            }
        }
    }
    r
}

fn remove_node<T: Ord + Clone>(
    root: Option<Box<Node<T>>>,
    lo: &Bound<T>,
    id: IntervalId,
) -> (Option<Box<Node<T>>>, bool) {
    let Some(mut r) = root else {
        return (None, false);
    };
    if r.id == id {
        // rotate the victim down until it is a leaf-ish node
        return match (r.left.take(), r.right.take()) {
            (None, None) => (None, true),
            (Some(l), None) => (Some(l), true),
            (None, Some(rt)) => (Some(rt), true),
            (Some(l), Some(rt)) => {
                let (mut n, promoted_left) = if l.prio > rt.prio {
                    r.left = Some(l);
                    r.right = Some(rt);
                    (rotate_right(r), true)
                } else {
                    r.left = Some(l);
                    r.right = Some(rt);
                    (rotate_left(r), false)
                };
                if promoted_left {
                    let (sub, removed) = remove_node(n.right.take(), lo, id);
                    n.right = sub;
                    n.update();
                    (Some(n), removed)
                } else {
                    let (sub, removed) = remove_node(n.left.take(), lo, id);
                    n.left = sub;
                    n.update();
                    (Some(n), removed)
                }
            }
        };
    }
    let removed = match r.key_cmp(lo, id) {
        Ordering::Greater | Ordering::Equal => {
            let (sub, removed) = remove_node(r.left.take(), lo, id);
            r.left = sub;
            removed
        }
        Ordering::Less => {
            let (sub, removed) = remove_node(r.right.take(), lo, id);
            r.right = sub;
            removed
        }
    };
    r.update();
    (Some(r), removed)
}

fn stab_node<T: Ord + Clone>(node: &Option<Box<Node<T>>>, x: &T, out: &mut Vec<IntervalId>) {
    let Some(n) = node else { return };
    // prune: nothing in this subtree reaches up to x
    if !hi_admits(&n.max_hi, x) {
        return;
    }
    stab_node(&n.left, x, out);
    if n.iv.contains(x) {
        out.push(n.id);
    }
    // lower bounds to the right are ≥ this one: prune when it already
    // starts after x
    if lo_admits(n.iv.lo(), x) {
        stab_node(&n.right, x, out);
    }
}

/// A treap-balanced augmented interval tree.
pub struct IntervalTree<T> {
    root: Option<Box<Node<T>>>,
    len: usize,
    next_id: u64,
    prio_state: u64,
}

impl<T: Ord + Clone> Default for IntervalTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Ord + Clone> IntervalTree<T> {
    /// New empty tree (deterministic treap priorities).
    pub fn new() -> Self {
        IntervalTree {
            root: None,
            len: 0,
            next_id: 0,
            prio_state: 0x1B57_BEE5 | 1,
        }
    }

    fn next_prio(&mut self) -> u64 {
        let mut x = self.prio_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.prio_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Insert an interval; returns its handle.
    pub fn insert(&mut self, iv: Interval<T>) -> IntervalId {
        let id = IntervalId(self.next_id);
        self.next_id += 1;
        let prio = self.next_prio();
        let node = Node::new(id, iv, prio);
        self.root = Some(insert_node(self.root.take(), node));
        self.len += 1;
        id
    }

    /// Remove an interval by handle; `true` if it was present.
    pub fn remove(&mut self, id: IntervalId, iv: &Interval<T>) -> bool {
        let (root, removed) = remove_node(self.root.take(), iv.lo(), id);
        self.root = root;
        if removed {
            self.len -= 1;
        }
        removed
    }

    /// Stabbing query: ids of every stored interval containing `x`.
    pub fn stab(&self, x: &T) -> Vec<IntervalId> {
        let mut out = Vec::new();
        stab_node(&self.root, x, &mut out);
        out
    }

    /// Number of stored intervals.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no intervals are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Depth of the tree (test/diagnostic helper; expected O(log n)).
    pub fn depth(&self) -> usize {
        fn d<T>(n: &Option<Box<Node<T>>>) -> usize {
            n.as_ref().map_or(0, |n| 1 + d(&n.left).max(d(&n.right)))
        }
        d(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted(mut v: Vec<IntervalId>) -> Vec<IntervalId> {
        v.sort();
        v
    }

    #[test]
    fn basic_stab_and_remove() {
        let mut t = IntervalTree::new();
        let a = t.insert(Interval::closed(0, 10).unwrap());
        let b = t.insert(Interval::open_closed(5, 20).unwrap());
        let c = t.insert(Interval::point(7));
        assert_eq!(sorted(t.stab(&7)), sorted(vec![a, b, c]));
        assert_eq!(sorted(t.stab(&5)), vec![a], "open lower bound excluded");
        assert_eq!(t.stab(&20), vec![b]);
        assert!(t.stab(&21).is_empty());
        let iv_b = Interval::open_closed(5, 20).unwrap();
        assert!(t.remove(b, &iv_b));
        assert!(!t.remove(b, &iv_b), "double remove");
        assert_eq!(sorted(t.stab(&7)), sorted(vec![a, c]));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn unbounded_intervals() {
        let mut t = IntervalTree::new();
        let all = t.insert(Interval::all());
        let ray = t.insert(Interval::at_least(100, false));
        assert_eq!(t.stab(&0), vec![all]);
        assert_eq!(sorted(t.stab(&101)), sorted(vec![all, ray]));
        assert_eq!(t.stab(&100), vec![all]);
    }

    #[test]
    fn treap_stays_balanced_on_sorted_inserts() {
        let mut t = IntervalTree::new();
        for i in 0..4096i64 {
            t.insert(Interval::closed(i, i + 10).unwrap());
        }
        assert!(
            t.depth() < 64,
            "treap depth {} should be O(log n) even for sorted input",
            t.depth()
        );
    }

    #[test]
    fn agrees_with_skiplist_and_naive() {
        use crate::{IntervalSkipList, NaiveIntervalSet};
        let mut tree = IntervalTree::new();
        let mut isl = IntervalSkipList::new();
        let mut naive = NaiveIntervalSet::new();
        let mut live: Vec<(IntervalId, IntervalId, IntervalId, Interval<i64>)> = Vec::new();
        let mut seed = 7u64;
        let mut rnd = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 33) as i64
        };
        for step in 0..400 {
            if step % 3 == 2 && !live.is_empty() {
                let k = (rnd() as usize) % live.len();
                let (t_id, i_id, n_id, iv) = live.swap_remove(k);
                assert!(tree.remove(t_id, &iv));
                isl.remove(i_id).unwrap();
                naive.remove(n_id).unwrap();
            } else {
                let a = rnd() % 200;
                let b = a + rnd() % 80;
                let iv = match rnd() % 3 {
                    0 => Interval::closed(a, b).unwrap(),
                    1 => Interval::point(a),
                    _ => Interval::at_most(a, true),
                };
                let t_id = tree.insert(iv.clone());
                let i_id = isl.insert(iv.clone());
                let n_id = naive.insert(iv.clone());
                live.push((t_id, i_id, n_id, iv));
            }
            for x in [-10i64, 0, 50, 150, 250] {
                let got = tree.stab(&x).len();
                let want = naive.stab(&x).len();
                assert_eq!(got, want, "tree diverged at step {step}, stab {x}");
                assert_eq!(isl.stab(&x).len(), want, "isl diverged at step {step}");
            }
        }
    }

    #[test]
    fn bound_orderings() {
        use std::cmp::Ordering::*;
        assert_eq!(cmp_lo::<i64>(&Bound::Unbounded, &Bound::Included(0)), Less);
        assert_eq!(cmp_lo(&Bound::Included(5), &Bound::Excluded(5)), Less);
        assert_eq!(cmp_lo(&Bound::Excluded(5), &Bound::Included(6)), Less);
        assert_eq!(
            cmp_hi::<i64>(&Bound::Unbounded, &Bound::Included(100)),
            Greater
        );
        assert_eq!(cmp_hi(&Bound::Excluded(5), &Bound::Included(5)), Less);
        assert!(hi_admits(&Bound::Included(5), &5));
        assert!(!hi_admits(&Bound::Excluded(5), &5));
        assert!(lo_admits(&Bound::Included(5), &5));
        assert!(!lo_admits(&Bound::Excluded(5), &5));
    }
}
