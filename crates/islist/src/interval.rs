//! Intervals over an ordered domain, with open / closed / unbounded ends.
//!
//! These are the predicate shapes the Ariel selection network indexes
//! (§4.1 of the paper): closed intervals `c1 < R.a <= c2`, open intervals
//! `c < R.a`, and points `c = R.a`.

use std::fmt;
use std::ops::Bound;

/// An interval over `T` with independently open, closed or unbounded ends.
///
/// Invariant (enforced by [`Interval::new`]): the interval is non-empty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interval<T> {
    lo: Bound<T>,
    hi: Bound<T>,
}

impl<T: Ord + Clone> Interval<T> {
    /// Build an interval; returns `None` if the bounds describe an empty set
    /// (e.g. `lo > hi`, or `lo == hi` unless both ends are included).
    pub fn new(lo: Bound<T>, hi: Bound<T>) -> Option<Self> {
        let nonempty = match (&lo, &hi) {
            (Bound::Unbounded, _) | (_, Bound::Unbounded) => true,
            (Bound::Included(a), Bound::Included(b)) => a <= b,
            (Bound::Included(a), Bound::Excluded(b))
            | (Bound::Excluded(a), Bound::Included(b))
            | (Bound::Excluded(a), Bound::Excluded(b)) => a < b,
        };
        nonempty.then_some(Interval { lo, hi })
    }

    /// Closed interval `[lo, hi]`.
    pub fn closed(lo: T, hi: T) -> Option<Self> {
        Self::new(Bound::Included(lo), Bound::Included(hi))
    }

    /// Half-open interval `(lo, hi]` — the paper's canonical selection
    /// predicate shape `C1 < R.a <= C2`.
    pub fn open_closed(lo: T, hi: T) -> Option<Self> {
        Self::new(Bound::Excluded(lo), Bound::Included(hi))
    }

    /// Degenerate point interval `[v, v]` — an equality predicate.
    pub fn point(v: T) -> Self {
        Interval {
            lo: Bound::Included(v.clone()),
            hi: Bound::Included(v),
        }
    }

    /// The whole domain `(-inf, +inf)` — a `new(R)` always-true predicate.
    pub fn all() -> Self {
        Interval {
            lo: Bound::Unbounded,
            hi: Bound::Unbounded,
        }
    }

    /// Ray `(v, +inf)` or `[v, +inf)`.
    pub fn at_least(v: T, inclusive: bool) -> Self {
        Interval {
            lo: if inclusive {
                Bound::Included(v)
            } else {
                Bound::Excluded(v)
            },
            hi: Bound::Unbounded,
        }
    }

    /// Ray `(-inf, v)` or `(-inf, v]`.
    pub fn at_most(v: T, inclusive: bool) -> Self {
        Interval {
            lo: Bound::Unbounded,
            hi: if inclusive {
                Bound::Included(v)
            } else {
                Bound::Excluded(v)
            },
        }
    }

    /// Lower bound.
    pub fn lo(&self) -> &Bound<T> {
        &self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> &Bound<T> {
        &self.hi
    }

    /// Whether the interval contains the point `x`.
    pub fn contains(&self, x: &T) -> bool {
        let lo_ok = match &self.lo {
            Bound::Unbounded => true,
            Bound::Included(l) => l <= x,
            Bound::Excluded(l) => l < x,
        };
        let hi_ok = match &self.hi {
            Bound::Unbounded => true,
            Bound::Included(h) => x <= h,
            Bound::Excluded(h) => x < h,
        };
        lo_ok && hi_ok
    }

    /// Whether the interval contains the *open* span `(a, b)`, where `None`
    /// endpoints denote -inf / +inf sentinels (the skip-list header and the
    /// nil forward pointer). This is the edge-containment test of the
    /// interval skip list: an edge from node `a` to node `b` covers query
    /// points strictly between the two keys, so `Excluded` interval ends
    /// that coincide with `a` or `b` still qualify.
    pub fn contains_open_span(&self, a: Option<&T>, b: Option<&T>) -> bool {
        let lo_ok = match (&self.lo, a) {
            (Bound::Unbounded, _) => true,
            (_, None) => false, // bounded below cannot cover a span from -inf
            (Bound::Included(l), Some(a)) | (Bound::Excluded(l), Some(a)) => l <= a,
        };
        let hi_ok = match (&self.hi, b) {
            (Bound::Unbounded, _) => true,
            (_, None) => false, // bounded above cannot cover a span to +inf
            (Bound::Included(h), Some(b)) | (Bound::Excluded(h), Some(b)) => h >= b,
        };
        lo_ok && hi_ok
    }

    /// The finite lower endpoint value, if any.
    pub fn lo_value(&self) -> Option<&T> {
        match &self.lo {
            Bound::Included(v) | Bound::Excluded(v) => Some(v),
            Bound::Unbounded => None,
        }
    }

    /// The finite upper endpoint value, if any.
    pub fn hi_value(&self) -> Option<&T> {
        match &self.hi {
            Bound::Included(v) | Bound::Excluded(v) => Some(v),
            Bound::Unbounded => None,
        }
    }
}

impl<T: fmt::Display> fmt::Display for Interval<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.lo {
            Bound::Unbounded => write!(f, "(-inf")?,
            Bound::Included(v) => write!(f, "[{v}")?,
            Bound::Excluded(v) => write!(f, "({v}")?,
        }
        write!(f, ", ")?;
        match &self.hi {
            Bound::Unbounded => write!(f, "+inf)"),
            Bound::Included(v) => write!(f, "{v}]"),
            Bound::Excluded(v) => write!(f, "{v})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_intervals_rejected() {
        assert!(Interval::closed(5, 4).is_none());
        assert!(Interval::open_closed(5, 5).is_none());
        assert!(Interval::new(Bound::Excluded(5), Bound::Excluded(5)).is_none());
        assert!(Interval::closed(5, 5).is_some());
    }

    #[test]
    fn contains_respects_bound_kinds() {
        let oc = Interval::open_closed(10, 20).unwrap();
        assert!(!oc.contains(&10));
        assert!(oc.contains(&11));
        assert!(oc.contains(&20));
        assert!(!oc.contains(&21));

        let pt = Interval::point(7);
        assert!(pt.contains(&7));
        assert!(!pt.contains(&6));

        let all = Interval::<i32>::all();
        assert!(all.contains(&i32::MIN) && all.contains(&i32::MAX));
    }

    #[test]
    fn rays() {
        let ge = Interval::at_least(5, true);
        assert!(ge.contains(&5) && ge.contains(&1000) && !ge.contains(&4));
        let lt = Interval::at_most(5, false);
        assert!(lt.contains(&4) && !lt.contains(&5));
    }

    #[test]
    fn open_span_containment() {
        let iv = Interval::open_closed(10, 20).unwrap();
        // span (10, 15): excluded-lo at exactly 10 still covers the open span
        assert!(iv.contains_open_span(Some(&10), Some(&15)));
        assert!(iv.contains_open_span(Some(&10), Some(&20)));
        assert!(!iv.contains_open_span(Some(&9), Some(&15)));
        assert!(!iv.contains_open_span(Some(&10), Some(&21)));
        // spans touching infinity need unbounded ends
        assert!(!iv.contains_open_span(None, Some(&15)));
        assert!(!iv.contains_open_span(Some(&15), None));
        let ray = Interval::at_least(10, false);
        assert!(ray.contains_open_span(Some(&10), None));
        assert!(Interval::<i32>::all().contains_open_span(None, None));
    }

    #[test]
    fn endpoint_values() {
        let iv = Interval::open_closed(1, 2).unwrap();
        assert_eq!(iv.lo_value(), Some(&1));
        assert_eq!(iv.hi_value(), Some(&2));
        assert_eq!(Interval::<i32>::all().lo_value(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Interval::open_closed(1, 2).unwrap().to_string(), "(1, 2]");
        assert_eq!(Interval::<i32>::all().to_string(), "(-inf, +inf)");
        assert_eq!(Interval::point(3).to_string(), "[3, 3]");
    }
}
