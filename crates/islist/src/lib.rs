//! # ariel-islist
//!
//! The **interval skip list** (Hanson, *The interval skip list: a data
//! structure for finding all intervals that overlap a point*, WADS 1991),
//! plus two comparison baselines: a naive linear-scan set and a
//! treap-balanced augmented [`IntervalTree`] (stand-in for the IBS tree the
//! paper cites).
//!
//! Ariel's top-level discrimination network stores one interval per rule
//! selection predicate, keyed on the constrained attribute; a token's
//! attribute value is then *stabbed* through the index to find every rule
//! predicate it satisfies in O(log n + answers) expected time — regardless
//! of whether the relation has any index on that attribute (§4.1 of the
//! SIGMOD '92 Ariel paper).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod interval;
pub mod naive;
pub mod skiplist;
pub mod stats;
pub mod tree;

pub use interval::Interval;
pub use naive::NaiveIntervalSet;
pub use skiplist::{IntervalId, IntervalSkipList};
pub use stats::{Counter, Histogram, StabStats, HISTOGRAM_BUCKETS};
pub use tree::IntervalTree;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::ops::Bound;

    #[derive(Debug, Clone)]
    enum Op {
        Insert { lo: i64, len: i64, kind: u8 },
        Remove(usize),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => (-50i64..50, 0i64..40, 0u8..6).prop_map(|(lo, len, kind)| Op::Insert { lo, len, kind }),
            1 => (0usize..64).prop_map(Op::Remove),
        ]
    }

    fn make_interval(lo: i64, len: i64, kind: u8) -> Option<Interval<i64>> {
        match kind {
            0 => Interval::closed(lo, lo + len),
            1 => Interval::open_closed(lo, lo + len),
            2 => Interval::new(Bound::Included(lo), Bound::Excluded(lo + len)),
            3 => Some(Interval::point(lo)),
            4 => Some(Interval::at_least(lo, len % 2 == 0)),
            _ => Some(Interval::at_most(lo, len % 2 == 0)),
        }
    }

    proptest! {
        /// The skip list and the naive set agree on every stab point after
        /// any interleaving of inserts and removes.
        #[test]
        fn skiplist_matches_naive(ops in proptest::collection::vec(op_strategy(), 1..80)) {
            let mut isl = IntervalSkipList::new();
            let mut naive = NaiveIntervalSet::new();
            // id pairing: isl id -> naive id
            let mut live: Vec<(IntervalId, IntervalId)> = Vec::new();
            for op in ops {
                match op {
                    Op::Insert { lo, len, kind } => {
                        if let Some(iv) = make_interval(lo, len, kind) {
                            let a = isl.insert(iv.clone());
                            let b = naive.insert(iv);
                            live.push((a, b));
                        }
                    }
                    Op::Remove(k) => {
                        if !live.is_empty() {
                            let (a, b) = live.swap_remove(k % live.len());
                            prop_assert!(isl.remove(a).is_some());
                            prop_assert!(naive.remove(b).is_some());
                        }
                    }
                }
                isl.check_invariants().map_err(TestCaseError::fail)?;
            }
            let id_map: std::collections::HashMap<IntervalId, IntervalId> =
                live.iter().copied().collect();
            for x in -60..=100 {
                let mut got: Vec<IntervalId> =
                    isl.stab(&x).into_iter().map(|a| id_map[&a]).collect();
                got.sort();
                let mut want = naive.stab(&x);
                want.sort();
                prop_assert_eq!(&got, &want, "stab({}) mismatch", x);
            }
        }

        /// Stabbing an endpoint respects open/closed semantics exactly.
        #[test]
        fn endpoint_semantics(lo in -100i64..100, len in 1i64..50) {
            let mut isl = IntervalSkipList::new();
            let closed = isl.insert(Interval::closed(lo, lo + len).unwrap());
            let oc = isl.insert(Interval::open_closed(lo, lo + len).unwrap());
            let hits_lo = isl.stab(&lo);
            prop_assert!(hits_lo.contains(&closed));
            prop_assert!(!hits_lo.contains(&oc));
            let hits_hi = isl.stab(&(lo + len));
            prop_assert!(hits_hi.contains(&closed));
            prop_assert!(hits_hi.contains(&oc));
        }
    }
}
