//! Lightweight measurement primitives shared by the whole match path.
//!
//! This module lives at the bottom of the crate stack so every layer above
//! (`ariel-network`, `ariel`, the benches) can record into the same
//! dependency-free types:
//!
//! * [`Counter`] — a relaxed atomic `u64` with the `Cell` API (`get`/`set`)
//!   plus `add`. Every always-on counter in the match path is one of these.
//! * [`Histogram`] — a fixed-bucket log₂ histogram of `u64` samples
//!   (typically nanoseconds from a monotonic clock, sometimes counts).
//!   Recording is a handful of relaxed atomic increments; no allocation,
//!   no locking, no floating point.
//! * [`StabStats`] — always-on counters the interval skip list keeps about
//!   its stabbing queries (probe count, nodes visited, marker hits).
//!
//! All three use *atomic* interior mutability so shared-reference code
//! paths — `IntervalSkipList::stab` takes `&self` — can record without
//! threading `&mut` through the search routines, **and** so the structures
//! that embed them are `Sync`: the parallel match path (see
//! `docs/CONCURRENCY.md`) shares the discrimination network across scoped
//! worker threads by `&`-reference. All accesses are `Relaxed`; the
//! counters are statistics whose totals are sums, which are independent of
//! the order increments land in.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A shared `u64` counter: a relaxed [`AtomicU64`] exposing the `Cell` API.
///
/// `get`/`set` mirror `Cell<u64>` so single-threaded call sites read the
/// same as before the match path went parallel; `add` is the one-word
/// increment hot paths use. `Clone` snapshots the current value.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// New counter holding `v`.
    pub fn new(v: u64) -> Self {
        Counter(AtomicU64::new(v))
    }

    /// Current value (relaxed load).
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrite the value (relaxed store).
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `v` (relaxed fetch-add).
    #[inline]
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }
}

impl Clone for Counter {
    fn clone(&self) -> Self {
        Counter::new(self.get())
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.get())
    }
}

/// Number of log₂ buckets. Bucket 63 absorbs everything ≥ 2⁶².
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-size log₂ histogram of `u64` samples.
///
/// Bucket `i` counts samples `v` with `bucket_floor(i) <= v < 2 *
/// bucket_floor(i)` where `bucket_floor(0) = 0` and `bucket_floor(i) =
/// 2^(i-1)` — i.e. bucket index is the sample's bit length. The histogram
/// also tracks the exact sum, count, min and max, so means are exact and
/// only quantiles are bucket-approximate.
///
/// ```
/// use ariel_islist::Histogram;
/// let h = Histogram::new();
/// for v in [3, 5, 900] { h.record(v); }
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.sum(), 908);
/// assert_eq!(h.buckets().iter().sum::<u64>(), h.count());
/// ```
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    /// `u64::MAX` until the first sample lands, so concurrent recorders can
    /// use `fetch_min` without an is-empty check; [`Histogram::min`] maps
    /// the empty state back to 0.
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Clone for Histogram {
    fn clone(&self) -> Self {
        Histogram {
            buckets: std::array::from_fn(|i| {
                AtomicU64::new(self.buckets[i].load(Ordering::Relaxed))
            }),
            count: AtomicU64::new(self.count.load(Ordering::Relaxed)),
            sum: AtomicU64::new(self.sum.load(Ordering::Relaxed)),
            min: AtomicU64::new(self.min.load(Ordering::Relaxed)),
            max: AtomicU64::new(self.max.load(Ordering::Relaxed)),
        }
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a sample: its bit length (0 for 0).
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Smallest sample value that lands in bucket `i`.
    pub fn bucket_floor(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact mean, or 0 when empty.
    pub fn mean(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.sum() / self.count()
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.min.load(Ordering::Relaxed)
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Copy of the bucket counts (index = sample bit length).
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (o, b) in out.iter_mut().zip(self.buckets.iter()) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Bucket-resolution quantile: the floor value of the bucket containing
    /// the `q`-quantile sample (`q` in 0..=100). 0 when empty.
    pub fn approx_quantile(&self, q: u8) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = (n.saturating_mul(q.min(100) as u64)).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_floor(i);
            }
        }
        self.max()
    }

    /// Fold another histogram's samples into this one.
    pub fn merge(&self, other: &Histogram) {
        if other.count() == 0 {
            return;
        }
        for (a, b) in self.buckets.iter().zip(other.buckets.iter()) {
            a.fetch_add(b.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Forget all samples.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// Hand-rolled JSON object: `{"count":…,"sum":…,"min":…,"mean":…,
    /// "p50":…,"p99":…,"max":…,"buckets":{"<floor>":count,…}}`.
    /// Empty buckets are omitted to keep snapshots small.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"mean\":{},\"p50\":{},\"p99\":{},\"max\":{},\"buckets\":{{",
            self.count(),
            self.sum(),
            self.min(),
            self.mean(),
            self.approx_quantile(50),
            self.approx_quantile(99),
            self.max(),
        );
        let mut first = true;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                if !first {
                    s.push(',');
                }
                first = false;
                s.push_str(&format!("\"{}\":{}", Self::bucket_floor(i), n));
            }
        }
        s.push_str("}}");
        s
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Histogram {{ count: {}, mean: {}, p50: {}, p99: {}, max: {} }}",
            self.count(),
            self.mean(),
            self.approx_quantile(50),
            self.approx_quantile(99),
            self.max()
        )
    }
}

/// Always-on counters for interval-skip-list stabbing queries.
///
/// Kept by every [`crate::IntervalSkipList`]; incrementing three relaxed
/// atomics per probe is cheap enough to leave unconditionally enabled,
/// which is what lets `NetworkStats` report selection-network probe work
/// without an observability flag.
#[derive(Clone, Default)]
pub struct StabStats {
    /// Number of stabbing queries answered.
    pub stabs: Counter,
    /// Skip-list nodes examined while descending the search path.
    pub nodes_visited: Counter,
    /// Interval markers reported (before de-duplication).
    pub hits: Counter,
}

impl StabStats {
    /// New zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Zero every counter.
    pub fn reset(&self) {
        self.stabs.set(0);
        self.nodes_visited.set(0);
        self.hits.set(0);
    }

    /// Fold `other` into `self`.
    pub fn merge(&self, other: &StabStats) {
        self.stabs.add(other.stabs.get());
        self.nodes_visited.add(other.nodes_visited.get());
        self.hits.add(other.hits.get());
    }
}

impl fmt::Debug for StabStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "StabStats {{ stabs: {}, nodes_visited: {}, hits: {} }}",
            self.stabs.get(),
            self.nodes_visited.get(),
            self.hits.get()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        for i in 1..HISTOGRAM_BUCKETS {
            assert_eq!(Histogram::bucket_index(Histogram::bucket_floor(i)), i);
        }
    }

    #[test]
    fn totals_match_counts() {
        let h = Histogram::new();
        let samples = [0u64, 1, 1, 7, 100, 100_000, 5_000_000_000];
        for &v in &samples {
            h.record(v);
        }
        assert_eq!(h.count(), samples.len() as u64);
        assert_eq!(h.buckets().iter().sum::<u64>(), h.count());
        assert_eq!(h.sum(), samples.iter().sum::<u64>());
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 5_000_000_000);
        assert!(h.approx_quantile(100) <= h.max());
        assert!(h.approx_quantile(0) >= h.min());
    }

    #[test]
    fn merge_and_reset() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        b.record(1000);
        b.record(2);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 1012);
        assert_eq!(a.min(), 2);
        assert_eq!(a.max(), 1000);
        a.reset();
        assert!(a.is_empty());
        assert_eq!(a.min(), 0, "empty histogram reports min 0");
        assert_eq!(a.buckets().iter().sum::<u64>(), 0);
    }

    #[test]
    fn json_shape() {
        let h = Histogram::new();
        h.record(5);
        h.record(5);
        let j = h.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        assert!(j.contains("\"count\":2"), "{j}");
        assert!(j.contains("\"buckets\":{\"4\":2}"), "{j}");
    }

    #[test]
    fn counter_cell_api() {
        let c = Counter::new(3);
        c.add(4);
        assert_eq!(c.get(), 7);
        c.set(1);
        assert_eq!(c.get(), 1);
        let d = c.clone();
        c.add(1);
        assert_eq!(d.get(), 1, "clone snapshots, not shares");
    }

    #[test]
    fn shared_across_threads() {
        let h = Histogram::new();
        let s = StabStats::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for v in 0..100u64 {
                        h.record(v);
                        s.stabs.add(1);
                    }
                });
            }
        });
        assert_eq!(h.count(), 400);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 99);
        assert_eq!(s.stabs.get(), 400);
    }
}
