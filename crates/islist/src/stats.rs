//! Lightweight measurement primitives shared by the whole match path.
//!
//! This module lives at the bottom of the crate stack so every layer above
//! (`ariel-network`, `ariel`, the benches) can record into the same
//! dependency-free types:
//!
//! * [`Histogram`] — a fixed-bucket log₂ histogram of `u64` samples
//!   (typically nanoseconds from a monotonic clock, sometimes counts).
//!   Recording is two `Cell` increments; no allocation, no locking, no
//!   floating point.
//! * [`StabStats`] — always-on counters the interval skip list keeps about
//!   its stabbing queries (probe count, nodes visited, marker hits).
//!
//! Both types use interior mutability (`Cell`) so shared-reference code
//! paths — `IntervalSkipList::stab` takes `&self` — can record without
//! threading `&mut` through the search routines.

use std::cell::Cell;
use std::fmt;

/// Number of log₂ buckets. Bucket 63 absorbs everything ≥ 2⁶².
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-size log₂ histogram of `u64` samples.
///
/// Bucket `i` counts samples `v` with `bucket_floor(i) <= v < 2 *
/// bucket_floor(i)` where `bucket_floor(0) = 0` and `bucket_floor(i) =
/// 2^(i-1)` — i.e. bucket index is the sample's bit length. The histogram
/// also tracks the exact sum, count, min and max, so means are exact and
/// only quantiles are bucket-approximate.
///
/// ```
/// use ariel_islist::Histogram;
/// let h = Histogram::new();
/// for v in [3, 5, 900] { h.record(v); }
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.sum(), 908);
/// assert_eq!(h.buckets().iter().sum::<u64>(), h.count());
/// ```
#[derive(Clone)]
pub struct Histogram {
    buckets: [Cell<u64>; HISTOGRAM_BUCKETS],
    count: Cell<u64>,
    sum: Cell<u64>,
    min: Cell<u64>,
    max: Cell<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| Cell::new(0)),
            count: Cell::new(0),
            sum: Cell::new(0),
            min: Cell::new(0),
            max: Cell::new(0),
        }
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a sample: its bit length (0 for 0).
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Smallest sample value that lands in bucket `i`.
    pub fn bucket_floor(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let b = &self.buckets[Self::bucket_index(v)];
        b.set(b.get() + 1);
        let n = self.count.get();
        self.count.set(n + 1);
        self.sum.set(self.sum.get().saturating_add(v));
        if n == 0 || v < self.min.get() {
            self.min.set(v);
        }
        if v > self.max.get() {
            self.max.set(v);
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.get()
    }

    /// Exact sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum.get()
    }

    /// Exact mean, or 0 when empty.
    pub fn mean(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.sum() / self.count()
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.min.get()
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.get()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Copy of the bucket counts (index = sample bit length).
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (o, b) in out.iter_mut().zip(self.buckets.iter()) {
            *o = b.get();
        }
        out
    }

    /// Bucket-resolution quantile: the floor value of the bucket containing
    /// the `q`-quantile sample (`q` in 0..=100). 0 when empty.
    pub fn approx_quantile(&self, q: u8) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = (n.saturating_mul(q.min(100) as u64)).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.get();
            if seen >= rank {
                return Self::bucket_floor(i);
            }
        }
        self.max()
    }

    /// Fold another histogram's samples into this one.
    pub fn merge(&self, other: &Histogram) {
        if other.count() == 0 {
            return;
        }
        for (a, b) in self.buckets.iter().zip(other.buckets.iter()) {
            a.set(a.get() + b.get());
        }
        let n = self.count.get();
        if n == 0 || other.min.get() < self.min.get() {
            self.min.set(other.min.get());
        }
        if other.max.get() > self.max.get() {
            self.max.set(other.max.get());
        }
        self.count.set(n + other.count.get());
        self.sum.set(self.sum.get().saturating_add(other.sum.get()));
    }

    /// Forget all samples.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.set(0);
        }
        self.count.set(0);
        self.sum.set(0);
        self.min.set(0);
        self.max.set(0);
    }

    /// Hand-rolled JSON object: `{"count":…,"sum":…,"min":…,"mean":…,
    /// "p50":…,"p99":…,"max":…,"buckets":{"<floor>":count,…}}`.
    /// Empty buckets are omitted to keep snapshots small.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"mean\":{},\"p50\":{},\"p99\":{},\"max\":{},\"buckets\":{{",
            self.count(),
            self.sum(),
            self.min(),
            self.mean(),
            self.approx_quantile(50),
            self.approx_quantile(99),
            self.max(),
        );
        let mut first = true;
        for (i, b) in self.buckets.iter().enumerate() {
            if b.get() > 0 {
                if !first {
                    s.push(',');
                }
                first = false;
                s.push_str(&format!("\"{}\":{}", Self::bucket_floor(i), b.get()));
            }
        }
        s.push_str("}}");
        s
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Histogram {{ count: {}, mean: {}, p50: {}, p99: {}, max: {} }}",
            self.count(),
            self.mean(),
            self.approx_quantile(50),
            self.approx_quantile(99),
            self.max()
        )
    }
}

/// Always-on counters for interval-skip-list stabbing queries.
///
/// Kept by every [`crate::IntervalSkipList`]; incrementing three `Cell`s
/// per probe is cheap enough to leave unconditionally enabled, which is
/// what lets `NetworkStats` report selection-network probe work without an
/// observability flag.
#[derive(Clone, Default)]
pub struct StabStats {
    /// Number of stabbing queries answered.
    pub stabs: Cell<u64>,
    /// Skip-list nodes examined while descending the search path.
    pub nodes_visited: Cell<u64>,
    /// Interval markers reported (before de-duplication).
    pub hits: Cell<u64>,
}

impl StabStats {
    /// New zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Zero every counter.
    pub fn reset(&self) {
        self.stabs.set(0);
        self.nodes_visited.set(0);
        self.hits.set(0);
    }

    /// Fold `other` into `self`.
    pub fn merge(&self, other: &StabStats) {
        self.stabs.set(self.stabs.get() + other.stabs.get());
        self.nodes_visited
            .set(self.nodes_visited.get() + other.nodes_visited.get());
        self.hits.set(self.hits.get() + other.hits.get());
    }
}

impl fmt::Debug for StabStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "StabStats {{ stabs: {}, nodes_visited: {}, hits: {} }}",
            self.stabs.get(),
            self.nodes_visited.get(),
            self.hits.get()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        for i in 1..HISTOGRAM_BUCKETS {
            assert_eq!(Histogram::bucket_index(Histogram::bucket_floor(i)), i);
        }
    }

    #[test]
    fn totals_match_counts() {
        let h = Histogram::new();
        let samples = [0u64, 1, 1, 7, 100, 100_000, 5_000_000_000];
        for &v in &samples {
            h.record(v);
        }
        assert_eq!(h.count(), samples.len() as u64);
        assert_eq!(h.buckets().iter().sum::<u64>(), h.count());
        assert_eq!(h.sum(), samples.iter().sum::<u64>());
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 5_000_000_000);
        assert!(h.approx_quantile(100) <= h.max());
        assert!(h.approx_quantile(0) >= h.min());
    }

    #[test]
    fn merge_and_reset() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        b.record(1000);
        b.record(2);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 1012);
        assert_eq!(a.min(), 2);
        assert_eq!(a.max(), 1000);
        a.reset();
        assert!(a.is_empty());
        assert_eq!(a.buckets().iter().sum::<u64>(), 0);
    }

    #[test]
    fn json_shape() {
        let h = Histogram::new();
        h.record(5);
        h.record(5);
        let j = h.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        assert!(j.contains("\"count\":2"), "{j}");
        assert!(j.contains("\"buckets\":{\"4\":2}"), "{j}");
    }
}
