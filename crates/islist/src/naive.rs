//! Naive interval set: linear-scan stabbing.
//!
//! This is the comparison baseline for the ISL ablation (DESIGN.md §3): a
//! rule-condition tester with no discrimination index must evaluate every
//! stored predicate against every token, which is exactly what this does.

use crate::interval::Interval;
use crate::skiplist::IntervalId;
use std::collections::HashMap;

/// A set of intervals answering stabbing queries by scanning all of them.
#[derive(Debug, Default)]
pub struct NaiveIntervalSet<T> {
    intervals: HashMap<IntervalId, Interval<T>>,
    next_id: u64,
}

impl<T: Ord + Clone> NaiveIntervalSet<T> {
    /// New empty set.
    pub fn new() -> Self {
        NaiveIntervalSet {
            intervals: HashMap::new(),
            next_id: 0,
        }
    }

    /// Insert an interval; returns its handle.
    pub fn insert(&mut self, iv: Interval<T>) -> IntervalId {
        let id = IntervalId(self.next_id);
        self.next_id += 1;
        self.intervals.insert(id, iv);
        id
    }

    /// Remove an interval by handle.
    pub fn remove(&mut self, id: IntervalId) -> Option<Interval<T>> {
        self.intervals.remove(&id)
    }

    /// Ids of every interval containing `x`; O(n) per query.
    pub fn stab(&self, x: &T) -> Vec<IntervalId> {
        self.intervals
            .iter()
            .filter(|(_, iv)| iv.contains(x))
            .map(|(id, _)| *id)
            .collect()
    }

    /// Number of stored intervals.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// True iff no intervals are stored.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stab() {
        let mut s = NaiveIntervalSet::new();
        let a = s.insert(Interval::closed(0, 10).unwrap());
        let _b = s.insert(Interval::closed(20, 30).unwrap());
        assert_eq!(s.stab(&5), vec![a]);
        assert_eq!(s.stab(&15), vec![]);
        assert_eq!(s.len(), 2);
        s.remove(a);
        assert!(s.stab(&5).is_empty());
    }
}
