//! SCALE: §6's scaling claim — token-test time should stay near-flat as
//! rules grow, thanks to the selection-predicate index; a naive
//! all-predicates matcher grows linearly.

use ariel::network::VirtualPolicy;
use ariel_bench::{
    activate_rules, emp_plus_token, install_rules, paper_db, probe_tuple, undo_emp_token,
    NaiveMatcher, PROBE_SAL,
};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::{Duration, Instant};

fn bench_scale(c: &mut Criterion) {
    let mut g = c.benchmark_group("scale_token_test");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(500));
    for n in [200usize, 800, 3200] {
        let mut db = paper_db(VirtualPolicy::AllStored);
        install_rules(&mut db, 1, n);
        activate_rules(&mut db, 1, n);
        g.bench_with_input(BenchmarkId::new("selnet", n), &n, |b, _| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let token = emp_plus_token(&mut db, PROBE_SAL);
                    let t0 = Instant::now();
                    db.match_tokens(std::slice::from_ref(&token)).unwrap();
                    total += t0.elapsed();
                    undo_emp_token(&mut db, &token);
                }
                total
            });
        });
        let naive = NaiveMatcher::with_rules(n);
        let probe = probe_tuple(PROBE_SAL);
        g.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| black_box(naive.matches(black_box(&probe))));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);
