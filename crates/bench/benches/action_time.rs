//! ACT: rule-action execution time for type 1/2/3 rules (§6 reports
//! ~0.06 s for all three on the SPARCstation 1).

use ariel::network::VirtualPolicy;
use ariel_bench::{
    activate_rules, emp_plus_token, install_rules, paper_db, undo_emp_token, PROBE_SAL,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::{Duration, Instant};

fn bench_action(c: &mut Criterion) {
    let mut g = c.benchmark_group("action_time");
    g.sample_size(20)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(500));
    for vars in [1usize, 2, 3] {
        let mut db = paper_db(VirtualPolicy::AllStored);
        install_rules(&mut db, vars, 25);
        activate_rules(&mut db, vars, 25);
        db.run_rules().unwrap(); // consume activation-primed matches
        g.bench_with_input(BenchmarkId::new("type", vars), &vars, |b, _| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let token = emp_plus_token(&mut db, PROBE_SAL);
                    db.match_tokens(std::slice::from_ref(&token)).unwrap();
                    let t0 = Instant::now();
                    db.run_rules().unwrap();
                    total += t0.elapsed();
                    undo_emp_token(&mut db, &token);
                }
                total
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_action);
criterion_main!(benches);
