//! PLAN: always-reoptimize (§5.3, the paper's strategy) vs cached
//! rule-action plans, measured over repeated firings of a join-action rule.

use ariel::{Ariel, EngineOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn setup(cache: bool) -> Ariel {
    let mut db = Ariel::with_options(EngineOptions {
        cache_action_plans: cache,
        ..Default::default()
    });
    db.execute(
        "create emp (id = int, sal = float, dno = int); \
         create dept (dno = int, name = string); \
         create audit (id = int, dept = string)",
    )
    .unwrap();
    for i in 0..50 {
        db.execute(&format!(r#"append dept (dno = {i}, name = "d{i}")"#))
            .unwrap();
    }
    db.execute(
        "define rule log_hire on append emp \
         then append to audit(id = emp.id, dept = dept.name) \
              where dept.dno = emp.dno",
    )
    .unwrap();
    db
}

fn bench_plans(c: &mut Criterion) {
    let mut g = c.benchmark_group("action_planning");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    for (name, cache) in [("always_reoptimize", false), ("cached_plans", true)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &cache, |b, &cache| {
            b.iter_custom(|iters| {
                let mut db = setup(cache);
                let t0 = std::time::Instant::now();
                for i in 0..iters {
                    db.execute(&format!(
                        "append emp (id = {i}, sal = 100, dno = {})",
                        i % 50
                    ))
                    .unwrap();
                }
                t0.elapsed()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_plans);
criterion_main!(benches);
