//! ISL: interval skip list vs naive interval set — stabbing throughput as
//! the number of stored intervals grows (§4.1's selection-predicate index
//! substrate).

use ariel::islist::{Interval, IntervalSkipList, IntervalTree, NaiveIntervalSet};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn build(
    n: usize,
) -> (
    IntervalSkipList<i64>,
    IntervalTree<i64>,
    NaiveIntervalSet<i64>,
    i64,
) {
    let mut isl = IntervalSkipList::new();
    let mut tree = IntervalTree::new();
    let mut naive = NaiveIntervalSet::new();
    for i in 0..n as i64 {
        let iv = Interval::open_closed(i * 10, i * 10 + 500).unwrap();
        isl.insert(iv.clone());
        tree.insert(iv.clone());
        naive.insert(iv);
    }
    let probe = (n as i64 * 10) / 2;
    (isl, tree, naive, probe)
}

fn bench_stab(c: &mut Criterion) {
    let mut g = c.benchmark_group("islist_stab");
    g.sample_size(20)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(500));
    for n in [100usize, 1_000, 10_000] {
        let (isl, tree, naive, probe) = build(n);
        g.bench_with_input(BenchmarkId::new("islist", n), &n, |b, _| {
            b.iter(|| black_box(isl.stab(black_box(&probe))));
        });
        g.bench_with_input(BenchmarkId::new("interval_tree", n), &n, |b, _| {
            b.iter(|| black_box(tree.stab(black_box(&probe))));
        });
        g.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| black_box(naive.stab(black_box(&probe))));
        });
    }
    g.finish();
}

fn bench_insert_remove(c: &mut Criterion) {
    let mut g = c.benchmark_group("islist_update");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(500));
    g.bench_function("insert_remove_1000", |b| {
        b.iter(|| {
            let mut isl = IntervalSkipList::new();
            let ids: Vec<_> = (0..1000i64)
                .map(|i| isl.insert(Interval::closed(i, i + 500).unwrap()))
                .collect();
            for id in ids {
                isl.remove(id);
            }
        });
    });
    g.finish();
}

criterion_group!(benches, bench_stab, bench_insert_remove);
criterion_main!(benches);
