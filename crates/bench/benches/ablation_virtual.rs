//! VIRT: virtual α-memory ablation — token-join time when a dept token
//! must join against the (stored | virtual | virtual+indexed) emp memory.
//! Pair with the `alpha bytes` column of `paper_tables -- virt` for the
//! space half of the trade.

use ariel::network::VirtualPolicy;
use ariel_bench::{dept_plus_token, scaled_sales_db, undo_dept_token};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::{Duration, Instant};

fn bench_virtual(c: &mut Criterion) {
    let mut g = c.benchmark_group("virtual_alpha_join");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(500));
    let configs: [(&str, VirtualPolicy, bool); 3] = [
        ("stored", VirtualPolicy::AllStored, false),
        ("virtual", VirtualPolicy::AllVirtual, false),
        ("virtual+index", VirtualPolicy::AllVirtual, true),
    ];
    for rows in [1_000usize, 10_000] {
        for (name, policy, index) in &configs {
            let mut db = scaled_sales_db(policy.clone(), rows, *index);
            g.bench_with_input(BenchmarkId::new(*name, rows), &rows, |b, _| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let token = dept_plus_token(&mut db, 0, "Sales");
                        let t0 = Instant::now();
                        db.match_tokens(std::slice::from_ref(&token)).unwrap();
                        total += t0.elapsed();
                        undo_dept_token(&mut db, &token);
                    }
                    total
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_virtual);
criterion_main!(benches);
