//! Criterion bench regenerating Figure 11: three-tuple-variable rules —
//! installation, activation and token-test time vs number of rules.

use ariel::network::VirtualPolicy;
use ariel_bench::{
    activate_rules, emp_plus_token, install_rules, paper_db, undo_emp_token, PROBE_SAL,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::{Duration, Instant};

const VARS: usize = 3;

fn bench_install(c: &mut Criterion) {
    let mut g = c.benchmark_group(format!("fig{}_install", 8 + VARS));
    g.sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(500));
    for n in [25usize, 50, 100, 150, 200] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let mut db = paper_db(VirtualPolicy::AllStored);
                    let t0 = Instant::now();
                    install_rules(&mut db, VARS, n);
                    total += t0.elapsed();
                }
                total
            });
        });
    }
    g.finish();
}

fn bench_activate(c: &mut Criterion) {
    let mut g = c.benchmark_group(format!("fig{}_activate", 8 + VARS));
    g.sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(500));
    for n in [25usize, 50, 100, 150, 200] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let mut db = paper_db(VirtualPolicy::AllStored);
                    install_rules(&mut db, VARS, n);
                    let t0 = Instant::now();
                    activate_rules(&mut db, VARS, n);
                    total += t0.elapsed();
                }
                total
            });
        });
    }
    g.finish();
}

fn bench_token_test(c: &mut Criterion) {
    let mut g = c.benchmark_group(format!("fig{}_token_test", 8 + VARS));
    g.sample_size(20)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(500));
    for n in [25usize, 50, 100, 150, 200] {
        let mut db = paper_db(VirtualPolicy::AllStored);
        install_rules(&mut db, VARS, n);
        activate_rules(&mut db, VARS, n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let token = emp_plus_token(&mut db, PROBE_SAL);
                    let t0 = Instant::now();
                    db.match_tokens(std::slice::from_ref(&token)).unwrap();
                    total += t0.elapsed();
                    undo_emp_token(&mut db, &token);
                }
                total
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_install, bench_activate, bench_token_test);
criterion_main!(benches);
