//! NET: A-TREAT (stored / virtual) vs Rete on an insert/delete token
//! stream over two-variable join rules. Pair with the `state bytes`
//! column of `paper_tables -- net` for the memory comparison.

use ariel_bench::measure;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_networks(c: &mut Criterion) {
    let mut g = c.benchmark_group("network_stream");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    g.bench_function("treat_vs_atreat_vs_rete_50rules_1000tokens", |b| {
        b.iter(|| measure::net_table(50, 1000));
    });
    g.finish();
}

criterion_group!(benches, bench_networks);
criterion_main!(benches);
