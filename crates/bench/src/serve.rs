//! Load generator for the TCP server: N client threads hammering an
//! in-process [`ariel_server::Server`] over loopback with a mixed
//! append/replace/retrieve workload against an active rule, measuring
//! per-request latency (p50/p99), commands per second, and how much
//! cross-session write batching the executor stage achieved.
//!
//! `paper_tables -- serve` renders the table and writes
//! `BENCH_serve.json`, which `bench_gate serve` checks against the
//! checked-in `BENCH_serve_baseline.json`.

use ariel::{Ariel, EngineOptions};
use ariel_server::{Client, Server, ServerOptions};
use std::time::{Duration, Instant};

/// Requests each client issues per run.
pub const COMMANDS_PER_CLIENT: usize = 200;

/// One row of the serve benchmark: a run at a fixed client count.
#[derive(Debug, Clone)]
pub struct ServeRow {
    /// Concurrent client connections.
    pub clients: usize,
    /// Total requests issued across all clients (commands + queries).
    pub requests: u64,
    /// Wall-clock for the whole run (connect → last reply).
    pub total: Duration,
    /// Median per-request latency.
    pub p50: Duration,
    /// 99th-percentile per-request latency.
    pub p99: Duration,
    /// Engine-level errors the server reported (must be 0).
    pub cmd_errors: u64,
    /// Protocol-level errors the server reported (must be 0).
    pub protocol_errors: u64,
    /// Groups the executor stage ran (one transition each).
    pub batches: u64,
    /// Requests that rode in a group of ≥ 2 sessions' appends.
    pub batched_requests: u64,
    /// Largest group, in requests.
    pub max_batch: u64,
}

/// The served schema: a keyed relation plus an active rule mirroring
/// above-threshold rows into an audit log, so every append exercises the
/// discrimination network and not just the heap.
fn serve_db() -> Ariel {
    let mut db = Ariel::with_options(EngineOptions::default());
    db.execute("create kv (k = int, v = int)").unwrap();
    db.execute("create audit (k = int, v = int)").unwrap();
    db.execute("define rule audit_big if kv.v >= 900 then append to audit (k = kv.k, v = kv.v)")
        .unwrap();
    db
}

/// The per-client request mix, chosen request-by-request: 7 appends, one
/// replace, two retrieves per 10 requests. Appends dominate so the
/// cross-session batcher has material to work with; the replace and the
/// retrieves break up the append runs the way a real mixed load would.
fn request(c: &mut Client, client: usize, i: usize) -> Result<(), ariel_server::ClientError> {
    let k = (client * COMMANDS_PER_CLIENT + i) as i64;
    match i % 10 {
        7 => c
            .command(&format!("replace kv (v = {i}) where kv.k = {}", k - 1))
            .map(drop),
        8 | 9 => c.query("retrieve (kv.k) where kv.v >= 900").map(drop),
        _ => c
            .command(&format!("append kv (k = {k}, v = {})", (i * 13) % 1000))
            .map(drop),
    }
}

/// Run one client-count configuration against a fresh in-process server
/// and collect latency + batching numbers.
pub fn serve_row(clients: usize) -> ServeRow {
    let server =
        Server::bind("127.0.0.1:0", serve_db(), ServerOptions::default()).expect("bind loopback");
    let addr = server.local_addr();
    let handle = server.spawn();

    let start = Instant::now();
    let mut threads = Vec::new();
    for client in 0..clients {
        threads.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).expect("connect");
            let mut lat = Vec::with_capacity(COMMANDS_PER_CLIENT);
            let mut errors = 0u64;
            for i in 0..COMMANDS_PER_CLIENT {
                let t = Instant::now();
                if request(&mut c, client, i).is_err() {
                    errors += 1;
                }
                lat.push(t.elapsed());
            }
            (lat, errors)
        }));
    }
    let mut latencies = Vec::with_capacity(clients * COMMANDS_PER_CLIENT);
    let mut client_errors = 0u64;
    for t in threads {
        let (lat, errors) = t.join().expect("client thread");
        latencies.extend(lat);
        client_errors += errors;
    }
    let total = start.elapsed();
    let (stats, _engine) = handle.shutdown();
    assert_eq!(
        client_errors, stats.engine_errors,
        "client and server agree on errors"
    );

    latencies.sort_unstable();
    let pct = |p: f64| -> Duration {
        let idx = ((latencies.len() as f64 * p).ceil() as usize).saturating_sub(1);
        latencies[idx.min(latencies.len() - 1)]
    };
    ServeRow {
        clients,
        requests: latencies.len() as u64,
        total,
        p50: pct(0.50),
        p99: pct(0.99),
        cmd_errors: stats.engine_errors,
        protocol_errors: stats.protocol_errors,
        batches: stats.batches,
        batched_requests: stats.batched_requests,
        max_batch: stats.max_batch,
    }
}

/// The full table: one row per client count.
pub fn serve_table(client_counts: &[usize]) -> Vec<ServeRow> {
    client_counts.iter().map(|&c| serve_row(c)).collect()
}

/// One row of the telemetry-overhead benchmark (`paper_tables -- obs`):
/// the serve workload with the server's telemetry layer on or off.
#[derive(Debug, Clone)]
pub struct ObsRow {
    /// `"telemetry_off"` or `"telemetry_on"`.
    pub config: &'static str,
    /// Concurrent client connections.
    pub clients: usize,
    /// Total requests issued (deterministic for a client count).
    pub requests: u64,
    /// `command` frames answered.
    pub commands: u64,
    /// `query` frames answered.
    pub queries: u64,
    /// Best (minimum) wall-clock over the measured repetitions.
    pub total: Duration,
}

/// Drive the standard serve workload once under `options` and return the
/// wall clock plus the server's counters.
fn serve_once(options: ServerOptions, clients: usize) -> (Duration, ariel_server::ServerStats) {
    let server = Server::bind("127.0.0.1:0", serve_db(), options).expect("bind loopback");
    let addr = server.local_addr();
    let handle = server.spawn();
    let start = Instant::now();
    let mut threads = Vec::new();
    for client in 0..clients {
        threads.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).expect("connect");
            for i in 0..COMMANDS_PER_CLIENT {
                request(&mut c, client, i).expect("all-valid workload");
            }
        }));
    }
    for t in threads {
        t.join().expect("client thread");
    }
    let total = start.elapsed();
    let (stats, _engine) = handle.shutdown();
    (total, stats)
}

/// Measure the telemetry overhead: the same workload with telemetry off
/// and on, `reps` repetitions each, keeping the *minimum* wall clock per
/// config (the least-noise estimate — `bench_gate obs` holds the on/off
/// ratio under 10%).
pub fn obs_overhead_table(clients: usize, reps: usize) -> Vec<ObsRow> {
    [("telemetry_off", false), ("telemetry_on", true)]
        .iter()
        .map(|&(config, telemetry)| {
            let mut best: Option<(Duration, ariel_server::ServerStats)> = None;
            for _ in 0..reps.max(1) {
                let options = ServerOptions {
                    telemetry,
                    ..Default::default()
                };
                let (total, stats) = serve_once(options, clients);
                if best.as_ref().map_or(true, |(b, _)| total < *b) {
                    best = Some((total, stats));
                }
            }
            let (total, stats) = best.expect("reps >= 1");
            ObsRow {
                config,
                clients,
                requests: stats.commands + stats.queries,
                commands: stats.commands,
                queries: stats.queries,
                total,
            }
        })
        .collect()
}

/// Render obs rows as the flat JSON array `bench_gate obs` parses.
pub fn obs_json(rows: &[ObsRow]) -> String {
    let mut json = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"config\":\"{}\",\"clients\":{},\"requests\":{},\"commands\":{},\
             \"queries\":{},\"total_ms\":{:.3},\"cps\":{:.1}}}",
            r.config,
            r.clients,
            r.requests,
            r.commands,
            r.queries,
            r.total.as_secs_f64() * 1e3,
            r.requests as f64 / r.total.as_secs_f64().max(1e-12),
        ));
    }
    json.push(']');
    json
}

/// Commands per second for a row.
pub fn cps(r: &ServeRow) -> f64 {
    r.requests as f64 / r.total.as_secs_f64().max(1e-12)
}

/// Render rows as the flat JSON array `bench_gate serve` parses.
pub fn serve_json(rows: &[ServeRow]) -> String {
    let mut json = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"clients\":{},\"requests\":{},\"total_ms\":{:.3},\"cps\":{:.1},\
             \"p50_us\":{:.1},\"p99_us\":{:.1},\"cmd_errors\":{},\"protocol_errors\":{},\
             \"batches\":{},\"batched_requests\":{},\"max_batch\":{}}}",
            r.clients,
            r.requests,
            r.total.as_secs_f64() * 1e3,
            cps(r),
            r.p50.as_secs_f64() * 1e6,
            r.p99.as_secs_f64() * 1e6,
            r.cmd_errors,
            r.protocol_errors,
            r.batches,
            r.batched_requests,
            r.max_batch,
        ));
    }
    json.push(']');
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_overhead_rows_shape() {
        let rows = obs_overhead_table(2, 1);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].config, "telemetry_off");
        assert_eq!(rows[1].config, "telemetry_on");
        for r in &rows {
            assert_eq!(r.requests, (2 * COMMANDS_PER_CLIENT) as u64);
            // 8 of every 10 requests are commands, 2 are queries
            assert_eq!(r.commands, (2 * COMMANDS_PER_CLIENT * 8 / 10) as u64);
            assert_eq!(r.queries, (2 * COMMANDS_PER_CLIENT * 2 / 10) as u64);
            assert!(r.total > Duration::ZERO);
        }
        let json = obs_json(&rows);
        assert!(
            json.starts_with("[{\"config\":\"telemetry_off\","),
            "{json}"
        );
        assert!(json.contains("\"cps\":"), "{json}");
    }

    #[test]
    fn serve_row_shape() {
        let r = serve_row(2);
        assert_eq!(r.clients, 2);
        assert_eq!(r.requests, (2 * COMMANDS_PER_CLIENT) as u64);
        assert_eq!(r.cmd_errors, 0, "the mixed workload is all-valid");
        assert_eq!(r.protocol_errors, 0);
        assert!(r.p99 >= r.p50);
        assert!(r.p50 > Duration::ZERO);
        let json = serve_json(&[r]);
        assert!(json.starts_with("[{\"clients\":2,"), "{json}");
        assert!(json.contains("\"p99_us\":"), "{json}");
    }
}
