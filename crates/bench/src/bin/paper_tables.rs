//! Regenerate every table and figure of the paper's evaluation (§6), plus
//! the ablations from DESIGN.md, as printed tables.
//!
//! ```text
//! cargo run --release -p ariel-bench --bin paper_tables            # everything
//! cargo run --release -p ariel-bench --bin paper_tables -- fig9    # one experiment
//! ```
//!
//! Experiments: fig9 fig10 fig11 act scale virt isl net plan obs joins mem trace par serve wal

use ariel_bench::measure;
use std::time::Duration;

fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

fn us(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e6)
}

// Paper values transcribed from Figures 9-11 are not machine-readable in
// the source text; §6 states installation takes "a fraction of a second",
// activation "just under a second" (per rule) and token tests "2 to 3
// milliseconds" at 25-200 rules on a ~12 MIPS SPARCstation 1. We print
// those anchors alongside for shape comparison.
const PAPER_NS: [usize; 5] = [25, 50, 100, 150, 200];

fn fig(vars: usize, label: &str) {
    println!("== {label}: {vars}-tuple-variable rules ==");
    println!("(paper anchors per rule count: install <0.5 s, activate ~1 s, token test 2-3 ms)");
    println!(
        "{:>9} | {:>12} {:>12} {:>14}",
        "rules", "install ms", "activate ms", "token test us"
    );
    let rows = measure::fig_table(vars, &PAPER_NS, 200);
    for row in &rows {
        println!(
            "{:>9} | {:>12} {:>12} {:>14}",
            row.rules,
            ms(row.install),
            ms(row.activate),
            us(row.token_test),
        );
    }
    println!();
}

fn run_act() {
    println!("== ACT: rule-action execution time (§6: ~0.06 s for all types) ==");
    println!("{:>6} | {:>14}", "vars", "action time us");
    for (vars, d) in measure::action_times(100) {
        println!("{vars:>6} | {:>14}", us(d));
    }
    println!();
}

fn run_scale() {
    println!("== SCALE: token test vs rule count — selection network vs naive ==");
    println!(
        "{:>7} | {:>14} {:>14} {:>9}",
        "rules", "selnet us", "naive us", "speedup"
    );
    for (n, sel, naive) in measure::scale_table(&[200, 400, 800, 1600, 3200], 300) {
        let speedup = naive.as_secs_f64() / sel.as_secs_f64().max(1e-12);
        println!("{n:>7} | {:>14} {:>14} {speedup:>8.1}x", us(sel), us(naive));
    }
    println!();
}

fn run_virt() {
    println!("== VIRT: virtual α-memories — storage vs token-join time ==");
    println!("(SalesClerkRule over scaled emp; dept token joins into the emp memory)");
    println!(
        "{:>9} {:>16} | {:>13} {:>15}",
        "emp rows", "config", "alpha bytes", "token join us"
    );
    for row in measure::virt_table(&[1_000, 10_000, 50_000], 20) {
        println!(
            "{:>9} {:>16} | {:>13} {:>15}",
            row.emp_rows,
            row.config,
            row.alpha_bytes,
            us(row.token_time)
        );
    }
    println!();
}

fn run_isl() {
    println!("== ISL: stabbing queries — skip list vs interval tree vs naive ==");
    println!(
        "{:>10} | {:>12} {:>12} {:>12} {:>9}",
        "intervals", "islist us", "tree us", "naive us", "speedup"
    );
    for (n, isl, tree, naive) in measure::islist_table(&[100, 1_000, 10_000, 100_000], 200) {
        let speedup = naive.as_secs_f64() / isl.as_secs_f64().max(1e-12);
        println!(
            "{n:>10} | {:>12} {:>12} {:>12} {speedup:>8.1}x",
            us(isl),
            us(tree),
            us(naive)
        );
    }
    println!();
}

fn run_net() {
    println!(
        "== NET: TREAT vs A-TREAT vs Rete (indexed/nested) — \
         50 three-variable rules, churn on all relations =="
    );
    println!(
        "{:>22} | {:>12} {:>14} {:>14}",
        "network", "total ms", "alpha bytes", "beta bytes"
    );
    for row in measure::net_table(50, 1000) {
        println!(
            "{:>22} | {:>12} {:>14} {:>14}",
            row.network,
            ms(row.total),
            row.alpha_bytes,
            row.beta_bytes
        );
    }
    println!();
}

fn run_plan() {
    println!("== PLAN: always-reoptimize vs cached action plans — 2000 firings ==");
    println!("{:>20} | {:>10}", "strategy", "total ms");
    for (name, d) in measure::plan_table(2000) {
        println!("{name:>20} | {:>10}", ms(d));
    }
    println!();
}

fn run_obs() {
    println!("== OBS: server telemetry overhead (on vs off) → BENCH_obs.json ==");
    println!("(8-client serve workload, min of 3 runs per config; gate holds on/off ≤ 1.10)");
    println!(
        "{:>15} | {:>9} {:>10} {:>10}",
        "config", "requests", "total ms", "cps"
    );
    let rows = ariel_bench::serve::obs_overhead_table(8, 3);
    for r in &rows {
        println!(
            "{:>15} | {:>9} {:>10} {:>10.1}",
            r.config,
            r.requests,
            ms(r.total),
            r.requests as f64 / r.total.as_secs_f64().max(1e-12),
        );
    }
    let off = rows[0].total.as_secs_f64();
    let on = rows[1].total.as_secs_f64();
    println!("overhead: {:+.1}%", (on / off.max(1e-12) - 1.0) * 100.0);
    let json = ariel_bench::serve::obs_json(&rows);
    let path = "BENCH_obs.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path} ({} bytes)", json.len()),
        Err(e) => println!("cannot write {path}: {e}"),
    }
    println!();
}

fn run_trace() {
    println!("== TRACE: flight-recorder overhead & event counts → BENCH_trace.json ==");
    println!("(fig11-style 3-variable workload, full engine path, recorder off vs on)");
    let json = measure::trace_snapshot(25, 200);
    let path = "BENCH_trace.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path} ({} bytes)", json.len()),
        Err(e) => println!("cannot write {path}: {e}"),
    }
    println!();
}

fn run_par() {
    println!("== PAR: parallel match speedup vs threads → BENCH_par.json ==");
    println!("(fig11 churn batched into runs; threads 0 = sequential path; Rete stays sequential)");
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("(host parallelism: {host} — speedup saturates at the core count)");
    println!(
        "{:>22} {:>8} | {:>10} {:>8} {:>14}",
        "config", "threads", "total ms", "speedup", "pnode inserts"
    );
    let rows = measure::par_table(50, 30, 32);
    for r in &rows {
        let seq = rows
            .iter()
            .find(|s| s.config == r.config && s.threads == 0)
            .unwrap();
        let speedup = seq.total.as_secs_f64() / r.total.as_secs_f64().max(1e-12);
        println!(
            "{:>22} {:>8} | {:>10} {:>7.2}x {:>14}",
            r.config,
            r.threads,
            ms(r.total),
            speedup,
            r.pnode_inserts
        );
    }
    let json = measure::par_json(&rows);
    let path = "BENCH_par.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path} ({} bytes)", json.len()),
        Err(e) => println!("cannot write {path}: {e}"),
    }
    println!();
}

fn run_mem() {
    println!("== MEM: memory layout — interned symbols vs legacy heap strings → BENCH_mem.json ==");
    println!(
        "(string-keyed fig10 shape: band rules joining emp.dept_name = dept.dname, emp churn)"
    );
    println!(
        "{:>10} | {:>10} {:>9} {:>13} {:>13} {:>9} {:>12} {:>12} {:>12}",
        "config",
        "total ms",
        "entries",
        "alpha bytes",
        "bytes/entry",
        "symbols",
        "sym bytes",
        "arena reuse",
        "peak scratch"
    );
    let rows = measure::mem_table(25, 2000, 200);
    for r in &rows {
        let per_entry = if r.alpha_entries == 0 {
            0.0
        } else {
            r.alpha_bytes as f64 / r.alpha_entries as f64
        };
        println!(
            "{:>10} | {:>10} {:>9} {:>13} {per_entry:>13.1} {:>9} {:>12} {:>11}/{} {:>12}",
            r.config,
            ms(r.total),
            r.alpha_entries,
            r.alpha_bytes,
            r.symbols,
            r.symbol_bytes,
            r.arena_reuses,
            r.arena_takes,
            r.arena_high_water_bytes
        );
    }
    let json = measure::mem_json(&rows);
    let path = "BENCH_mem.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path} ({} bytes)", json.len()),
        Err(e) => println!("cannot write {path}: {e}"),
    }
    println!();
}

fn run_joins() {
    println!("== JOINS: indexed α-memories vs nested-loop → BENCH_join.json ==");
    println!("(fig10-fig13 workloads, 25 band rules, 400 emp tokens, 200 dim rows)");
    println!(
        "{:>15} {:>8} | {:>10} {:>16} {:>13} {:>11} {:>12} {:>11}",
        "workload",
        "indexed",
        "total ms",
        "join candidates",
        "index probes",
        "index hits",
        "range probes",
        "range hits"
    );
    let rows = measure::joins_table(25, 400, 200);
    let mut json = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        println!(
            "{:>15} {:>8} | {:>10} {:>16} {:>13} {:>11} {:>12} {:>11}",
            r.workload,
            r.indexed,
            ms(r.total),
            r.join_candidates,
            r.index_probes,
            r.index_hits,
            r.range_probes,
            r.range_hits
        );
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"workload\":\"{}\",\"indexed\":{},\"total_ms\":{:.3},\
             \"join_candidates\":{},\"index_probes\":{},\"index_hits\":{},\
             \"range_probes\":{},\"range_hits\":{}}}",
            r.workload,
            r.indexed,
            r.total.as_secs_f64() * 1e3,
            r.join_candidates,
            r.index_probes,
            r.index_hits,
            r.range_probes,
            r.range_hits
        ));
    }
    json.push(']');
    let path = "BENCH_join.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path} ({} bytes)", json.len()),
        Err(e) => println!("cannot write {path}: {e}"),
    }
    println!();
}

fn run_serve() {
    use ariel_bench::serve;
    println!("== SERVE: TCP server latency/throughput vs client count → BENCH_serve.json ==");
    println!(
        "(in-process server over loopback; {} mixed requests per client — 70% append, \
         10% replace, 20% retrieve — against an active rule)",
        serve::COMMANDS_PER_CLIENT
    );
    println!(
        "{:>8} | {:>9} {:>9} {:>10} {:>8} {:>14} {:>10}",
        "clients", "cps", "p50 us", "p99 us", "groups", "batched reqs", "max batch"
    );
    let rows = serve::serve_table(&[1, 4, 16]);
    for r in &rows {
        println!(
            "{:>8} | {:>9.1} {:>9.1} {:>10.1} {:>8} {:>14} {:>10}",
            r.clients,
            serve::cps(r),
            r.p50.as_secs_f64() * 1e6,
            r.p99.as_secs_f64() * 1e6,
            r.batches,
            r.batched_requests,
            r.max_batch,
        );
    }
    let json = serve::serve_json(&rows);
    let path = "BENCH_serve.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path} ({} bytes)", json.len()),
        Err(e) => println!("cannot write {path}: {e}"),
    }
    println!();
}

fn run_wal() {
    println!("== WAL: write-ahead-log overhead per durability mode → BENCH_wal.json ==");
    println!(
        "(fig10 churn through the full engine path: 25 band rules, \
         500 append+delete rounds, one WAL record per committed command)"
    );
    println!(
        "{:>8} | {:>10} {:>13} {:>11}",
        "mode", "total ms", "wal records", "wal bytes"
    );
    let rows = measure::wal_table(25, 500);
    for r in &rows {
        println!(
            "{:>8} | {:>10} {:>13} {:>11}",
            r.mode,
            ms(r.total),
            r.wal_records,
            r.wal_bytes
        );
    }
    let json = measure::wal_json(&rows);
    let path = "BENCH_wal.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path} ({} bytes)", json.len()),
        Err(e) => println!("cannot write {path}: {e}"),
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |k: &str| all || args.iter().any(|a| a == k);
    if want("fig9") {
        fig(1, "Figure 9");
    }
    if want("fig10") {
        fig(2, "Figure 10");
    }
    if want("fig11") {
        fig(3, "Figure 11");
    }
    if want("act") {
        run_act();
    }
    if want("scale") {
        run_scale();
    }
    if want("virt") {
        run_virt();
    }
    if want("isl") {
        run_isl();
    }
    if want("net") {
        run_net();
    }
    if want("plan") {
        run_plan();
    }
    if want("obs") {
        run_obs();
    }
    if want("joins") {
        run_joins();
    }
    if want("mem") {
        run_mem();
    }
    if want("trace") {
        run_trace();
    }
    if want("par") {
        run_par();
    }
    if want("serve") {
        run_serve();
    }
    if want("wal") {
        run_wal();
    }
}
