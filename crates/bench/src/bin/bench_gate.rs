//! CI benchmark regression gate.
//!
//! Diffs a fresh `BENCH_join.json` (written by `paper_tables -- joins`)
//! against the checked-in `BENCH_baseline.json` and exits nonzero when the
//! join engine regressed:
//!
//! * an **indexed** workload's `total_ms` grew by more than 50% over the
//!   baseline, or
//! * any workload's `join_candidates` count grew at all — candidate counts
//!   are deterministic, so *any* growth means an index stopped being used
//!   (or started serving wider buckets), and
//! * a baseline workload is missing from the fresh run.
//!
//! ```text
//! cargo run --release -p ariel-bench --bin bench_gate            # default paths
//! cargo run --release -p ariel-bench --bin bench_gate -- fresh.json baseline.json
//! cargo run --release -p ariel-bench --bin bench_gate -- --bless # accept fresh as baseline
//! ```
//!
//! `--bless` replaces the baseline file with the fresh results instead of
//! gating, printing the old → new change per row first — the sanctioned
//! way to accept a legitimate shift (new workload, deliberate join-order
//! change). A missing or unreadable baseline blesses from scratch.
//!
//! Two subcommands ride along:
//!
//! * `bench_gate par [fresh [baseline]]` gates `BENCH_par.json` (written
//!   by `paper_tables -- par`): the parallel path at **one worker** must
//!   not cost more than 50% over the sequential path, every thread count
//!   of a config must produce the **same** `pnode_inserts` as sequential
//!   (match work is deterministic), and counts must not move against
//!   `BENCH_par_baseline.json`. Wall clock is *not* compared against the
//!   baseline — CI hosts differ in core count, so absolute speedups are
//!   reported, never gated. `--bless` updates the par baseline.
//! * `bench_gate mem [fresh [baseline]]` gates `BENCH_mem.json` (written
//!   by `paper_tables -- mem`): the **interned** layout must hold fewer
//!   α-memory bytes than the **legacy** heap-string layout within the
//!   fresh file, per-config `alpha_entries` must match the baseline
//!   exactly (the layout must not change what is matched), per-config
//!   `alpha_bytes` must not grow more than 5% over
//!   `BENCH_mem_baseline.json`, and the interned config's wall clock is
//!   held to the usual 50% tolerance. `--bless` updates the mem baseline.
//! * `bench_gate serve [fresh [baseline]]` gates `BENCH_serve.json`
//!   (written by `paper_tables -- serve`): zero command and protocol
//!   errors in every fresh row, sane latency percentiles (p99 ≥ p50 > 0),
//!   every baseline client count still measured, and one-client
//!   commands/sec within 1/4 of `BENCH_serve_baseline.json` (wide enough
//!   for host variance, narrow enough to catch a Nagle stall; higher
//!   client counts are reported, not gated — they move with the host
//!   scheduler). `--bless` updates the serve baseline.
//! * `bench_gate wal [fresh [baseline]]` gates `BENCH_wal.json` (written
//!   by `paper_tables -- wal`): the `off` row must log **zero** records
//!   and bytes (durability off attaches no writer at all), `commit` and
//!   `batch` must log the **same** nonzero record and byte counts (the
//!   sync policy must not change what is logged), and per-mode counts
//!   must match `BENCH_wal_baseline.json` exactly — record streams are
//!   deterministic, so any drift means the logging hooks moved. Wall
//!   clock is reported, never gated: fsync latency varies wildly across
//!   CI hosts. `--bless` updates the wal baseline.
//! * `bench_gate obs [fresh [baseline]]` gates `BENCH_obs.json` (written
//!   by `paper_tables -- obs`): the serve workload with server telemetry
//!   **on** must cost at most 10% more wall clock than with telemetry
//!   **off** *within the same fresh file* (same host, same minute — so
//!   the band can be narrow), every row's requests must split exactly
//!   into commands + queries, and per-config request counts must match
//!   `BENCH_obs_baseline.json` exactly — the workload is deterministic.
//!   Absolute wall clock is never compared across runs. `--bless`
//!   updates the obs baseline.
//! * `bench_gate links [root]` fails if any relative markdown link in
//!   `README.md` or `docs/*.md` points at a path that does not exist —
//!   the CI docs gate.
//!
//! The schema of the join, par, mem, serve, wal and obs files is
//! documented in `docs/OBSERVABILITY.md` (join, mem, obs),
//! `docs/CONCURRENCY.md` (par), `docs/SERVER.md` (serve) and
//! `docs/DURABILITY.md` (wal).

use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;

/// Wall-clock tolerance: fail only beyond +50% over baseline, so ordinary
/// machine noise passes while a lost index (typically 5-20×) cannot.
const TOTAL_MS_TOLERANCE: f64 = 1.5;

/// One scalar field of a benchmark row.
#[derive(Debug, Clone, PartialEq)]
enum Field {
    Str(String),
    Bool(bool),
    Num(f64),
}

/// Minimal JSON reader for the flat array-of-objects shape `paper_tables`
/// emits. Strings accept the standard JSON escapes (`\" \\ \/ \b \f \n
/// \r \t \uXXXX`); values must be strings, booleans or numbers — exactly
/// the `BENCH_join.json` schema, nothing more.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.bytes.get(self.pos).map(|&c| c as char)
            ))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        let mut out: Option<String> = None;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'\\' {
                let buf = out.get_or_insert_with(|| {
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map(str::to_string)
                        .unwrap_or_default()
                });
                self.pos += 1;
                let esc = self
                    .bytes
                    .get(self.pos)
                    .ok_or("unterminated escape".to_string())?;
                match esc {
                    b'"' => buf.push('"'),
                    b'\\' => buf.push('\\'),
                    b'/' => buf.push('/'),
                    b'b' => buf.push('\u{8}'),
                    b'f' => buf.push('\u{c}'),
                    b'n' => buf.push('\n'),
                    b'r' => buf.push('\r'),
                    b't' => buf.push('\t'),
                    b'u' => {
                        let hex = self
                            .bytes
                            .get(self.pos + 1..self.pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = std::str::from_utf8(hex)
                            .ok()
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                        // surrogate halves are not paired up — the files we
                        // read are our own exports, which never emit them
                        buf.push(char::from_u32(code).ok_or_else(|| {
                            format!("\\u{code:04x} is not a scalar value at byte {}", self.pos)
                        })?);
                        self.pos += 4;
                    }
                    other => {
                        return Err(format!(
                            "unknown escape '\\{}' at byte {}",
                            *other as char, self.pos
                        ))
                    }
                }
                self.pos += 1;
                continue;
            }
            if b == b'"' {
                let s = match out {
                    Some(s) => s,
                    None => std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|e| e.to_string())?
                        .to_string(),
                };
                self.pos += 1;
                return Ok(s);
            }
            if let Some(buf) = out.as_mut() {
                // re-borrow as str to keep multi-byte UTF-8 intact
                let rest =
                    std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                let c = rest
                    .chars()
                    .next()
                    .ok_or("unterminated string".to_string())?;
                buf.push(c);
                self.pos += c.len_utf8();
                continue;
            }
            self.pos += 1;
        }
        Err("unterminated string".into())
    }

    fn value(&mut self) -> Result<Field, String> {
        match self.peek() {
            Some(b'"') => Ok(Field::Str(self.string()?)),
            Some(b't') | Some(b'f') => {
                let rest = &self.bytes[self.pos..];
                if rest.starts_with(b"true") {
                    self.pos += 4;
                    Ok(Field::Bool(true))
                } else if rest.starts_with(b"false") {
                    self.pos += 5;
                    Ok(Field::Bool(false))
                } else {
                    Err(format!("bad literal at byte {}", self.pos))
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => {
                let start = self.pos;
                while self.bytes.get(self.pos).is_some_and(|&b| {
                    b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
                }) {
                    self.pos += 1;
                }
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| e.to_string())?
                    .parse::<f64>()
                    .map(Field::Num)
                    .map_err(|e| format!("bad number at byte {start}: {e}"))
            }
            other => Err(format!(
                "unexpected value start {other:?} at byte {}",
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<BTreeMap<String, Field>, String> {
        self.expect(b'{')?;
        let mut obj = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(obj);
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            obj.insert(key, self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(obj);
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn array_of_objects(&mut self) -> Result<Vec<BTreeMap<String, Field>>, String> {
        self.expect(b'[')?;
        let mut rows = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(rows);
        }
        loop {
            rows.push(self.object()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(rows);
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }
}

/// One benchmark configuration, keyed by `(workload, indexed)`.
#[derive(Debug, Clone, PartialEq)]
struct Row {
    workload: String,
    indexed: bool,
    total_ms: f64,
    join_candidates: u64,
}

fn parse_rows(src: &str, label: &str) -> Result<Vec<Row>, String> {
    let objs = Parser::new(src)
        .array_of_objects()
        .map_err(|e| format!("{label}: {e}"))?;
    objs.into_iter()
        .enumerate()
        .map(|(i, obj)| {
            let str_field = |k: &str| match obj.get(k) {
                Some(Field::Str(s)) => Ok(s.clone()),
                _ => Err(format!("{label}: row {i} missing string \"{k}\"")),
            };
            let bool_field = |k: &str| match obj.get(k) {
                Some(Field::Bool(b)) => Ok(*b),
                _ => Err(format!("{label}: row {i} missing bool \"{k}\"")),
            };
            let num_field = |k: &str| match obj.get(k) {
                Some(Field::Num(n)) => Ok(*n),
                _ => Err(format!("{label}: row {i} missing number \"{k}\"")),
            };
            Ok(Row {
                workload: str_field("workload")?,
                indexed: bool_field("indexed")?,
                total_ms: num_field("total_ms")?,
                join_candidates: num_field("join_candidates")? as u64,
            })
        })
        .collect()
}

/// Compare fresh numbers to the baseline; returns every violation found
/// (empty = gate passes).
fn check(fresh: &[Row], baseline: &[Row]) -> Vec<String> {
    let mut violations = Vec::new();
    for base in baseline {
        let key = format!("{}/indexed={}", base.workload, base.indexed);
        let Some(now) = fresh
            .iter()
            .find(|r| r.workload == base.workload && r.indexed == base.indexed)
        else {
            violations.push(format!("{key}: missing from fresh results"));
            continue;
        };
        if base.indexed && now.total_ms > base.total_ms * TOTAL_MS_TOLERANCE {
            violations.push(format!(
                "{key}: total_ms regressed {:.3} -> {:.3} (>{:.0}% over baseline)",
                base.total_ms,
                now.total_ms,
                (TOTAL_MS_TOLERANCE - 1.0) * 100.0
            ));
        }
        if now.join_candidates > base.join_candidates {
            violations.push(format!(
                "{key}: join_candidates grew {} -> {} (an index stopped pruning)",
                base.join_candidates, now.join_candidates
            ));
        }
    }
    violations
}

/// Render the old → new change per fresh row (plus baseline rows that
/// disappear) for `--bless`.
fn bless_diff(fresh: &[Row], baseline: &[Row]) -> Vec<String> {
    let mut lines = Vec::new();
    for now in fresh {
        let key = format!("{}/indexed={}", now.workload, now.indexed);
        match baseline
            .iter()
            .find(|r| r.workload == now.workload && r.indexed == now.indexed)
        {
            Some(old) => lines.push(format!(
                "  {key}: total_ms {:.3} -> {:.3}, join_candidates {} -> {}",
                old.total_ms, now.total_ms, old.join_candidates, now.join_candidates
            )),
            None => lines.push(format!(
                "  {key}: new row (total_ms {:.3}, join_candidates {})",
                now.total_ms, now.join_candidates
            )),
        }
    }
    for old in baseline {
        if !fresh
            .iter()
            .any(|r| r.workload == old.workload && r.indexed == old.indexed)
        {
            lines.push(format!(
                "  {}/indexed={}: dropped from baseline",
                old.workload, old.indexed
            ));
        }
    }
    lines
}

/// One row of `BENCH_par.json`, keyed by `(config, threads)`.
#[derive(Debug, Clone, PartialEq)]
struct ParRow {
    config: String,
    threads: u64,
    total_ms: f64,
    pnode_inserts: u64,
}

fn parse_par_rows(src: &str, label: &str) -> Result<Vec<ParRow>, String> {
    let objs = Parser::new(src)
        .array_of_objects()
        .map_err(|e| format!("{label}: {e}"))?;
    objs.into_iter()
        .enumerate()
        .map(|(i, obj)| {
            let str_field = |k: &str| match obj.get(k) {
                Some(Field::Str(s)) => Ok(s.clone()),
                _ => Err(format!("{label}: row {i} missing string \"{k}\"")),
            };
            let num_field = |k: &str| match obj.get(k) {
                Some(Field::Num(n)) => Ok(*n),
                _ => Err(format!("{label}: row {i} missing number \"{k}\"")),
            };
            Ok(ParRow {
                config: str_field("config")?,
                threads: num_field("threads")? as u64,
                total_ms: num_field("total_ms")?,
                pnode_inserts: num_field("pnode_inserts")? as u64,
            })
        })
        .collect()
}

/// Gate the parallel-match benchmark; returns every violation found.
///
/// Self-consistency within the fresh file: equal `pnode_inserts` at every
/// thread count of a config, and the one-worker parallel run within
/// [`TOTAL_MS_TOLERANCE`] of the sequential run (pool overhead must be
/// amortized by batching, whatever the host's core count). Against the
/// baseline only the deterministic counts are compared.
fn check_par(fresh: &[ParRow], baseline: &[ParRow]) -> Vec<String> {
    let mut violations = Vec::new();
    let mut configs: Vec<&str> = Vec::new();
    for r in fresh {
        if !configs.contains(&r.config.as_str()) {
            configs.push(&r.config);
        }
    }
    for config in configs {
        let rows: Vec<_> = fresh.iter().filter(|r| r.config == config).collect();
        let Some(seq) = rows.iter().find(|r| r.threads == 0) else {
            violations.push(format!("{config}: missing sequential row (threads=0)"));
            continue;
        };
        for r in &rows {
            if r.pnode_inserts != seq.pnode_inserts {
                violations.push(format!(
                    "{config}/threads={}: pnode_inserts diverged from sequential \
                     ({} vs {}) — parallel match changed the match results",
                    r.threads, r.pnode_inserts, seq.pnode_inserts
                ));
            }
        }
        if let Some(one) = rows.iter().find(|r| r.threads == 1) {
            if one.total_ms > seq.total_ms * TOTAL_MS_TOLERANCE {
                violations.push(format!(
                    "{config}/threads=1: one-worker parallel run costs {:.3} ms vs \
                     {:.3} ms sequential (>{:.0}% overhead)",
                    one.total_ms,
                    seq.total_ms,
                    (TOTAL_MS_TOLERANCE - 1.0) * 100.0
                ));
            }
        }
    }
    for base in baseline {
        let key = format!("{}/threads={}", base.config, base.threads);
        match fresh
            .iter()
            .find(|r| r.config == base.config && r.threads == base.threads)
        {
            None => violations.push(format!("{key}: missing from fresh results")),
            Some(now) if now.pnode_inserts != base.pnode_inserts => {
                violations.push(format!(
                    "{key}: pnode_inserts changed {} -> {} (match work is deterministic)",
                    base.pnode_inserts, now.pnode_inserts
                ));
            }
            _ => {}
        }
    }
    violations
}

fn run_par_gate(fresh_path: &str, base_path: &str, bless: bool) -> ExitCode {
    let load = |path: &str| {
        std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {path}: {e}"))
            .and_then(|src| parse_par_rows(&src, path))
    };
    let fresh = match load(fresh_path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    if bless {
        let baseline = load(base_path).unwrap_or_default();
        println!("bench_gate: blessing {fresh_path} -> {base_path}");
        for now in &fresh {
            let key = format!("{}/threads={}", now.config, now.threads);
            match baseline
                .iter()
                .find(|r| r.config == now.config && r.threads == now.threads)
            {
                Some(old) => println!(
                    "  {key}: pnode_inserts {} -> {}",
                    old.pnode_inserts, now.pnode_inserts
                ),
                None => println!("  {key}: new row (pnode_inserts {})", now.pnode_inserts),
            }
        }
        return match std::fs::copy(fresh_path, base_path) {
            Ok(_) => {
                println!("bench_gate: par baseline updated ({} rows)", fresh.len());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("bench_gate: cannot write {base_path}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let baseline = match load(base_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "bench_gate: par {fresh_path} vs {base_path} ({} baseline rows)",
        baseline.len()
    );
    for r in &fresh {
        println!(
            "  {:>22}/threads={:<2} total_ms {:>9.3}  pnode_inserts {:>9}",
            r.config, r.threads, r.total_ms, r.pnode_inserts
        );
    }
    let violations = check_par(&fresh, &baseline);
    if violations.is_empty() {
        println!("bench_gate: PASS");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("bench_gate: FAIL {v}");
        }
        ExitCode::FAILURE
    }
}

/// Throughput tolerance for the serve gate: one-client commands/sec may
/// drop to 1/4 of baseline before failing. Wider than
/// [`TOTAL_MS_TOLERANCE`] because the baseline is measured on a developer
/// machine while CI hosts differ in syscall latency by small integer
/// factors; the regressions this gate exists for — a lost `TCP_NODELAY`
/// stalling on Nagle/delayed-ACK (~40 ms per round trip), a lock held
/// across a socket write — cost 2-3 orders of magnitude and cannot hide
/// inside any sane band.
const SERVE_CPS_TOLERANCE: f64 = 4.0;

/// One row of `BENCH_serve.json`, keyed by `clients`.
#[derive(Debug, Clone, PartialEq)]
struct ServeRow {
    clients: u64,
    cps: f64,
    p50_us: f64,
    p99_us: f64,
    cmd_errors: u64,
    protocol_errors: u64,
}

fn parse_serve_rows(src: &str, label: &str) -> Result<Vec<ServeRow>, String> {
    let objs = Parser::new(src)
        .array_of_objects()
        .map_err(|e| format!("{label}: {e}"))?;
    objs.into_iter()
        .enumerate()
        .map(|(i, obj)| {
            let num_field = |k: &str| match obj.get(k) {
                Some(Field::Num(n)) => Ok(*n),
                _ => Err(format!("{label}: row {i} missing number \"{k}\"")),
            };
            Ok(ServeRow {
                clients: num_field("clients")? as u64,
                cps: num_field("cps")?,
                p50_us: num_field("p50_us")?,
                p99_us: num_field("p99_us")?,
                cmd_errors: num_field("cmd_errors")? as u64,
                protocol_errors: num_field("protocol_errors")? as u64,
            })
        })
        .collect()
}

/// Gate the server benchmark; returns every violation found.
///
/// Correctness is gated hard: the workload is all-valid, so *any* command
/// or protocol error in a fresh row fails, as do nonsensical latency
/// percentiles (p99 < p50, or a zero p50 — the clock must have moved).
/// Throughput is gated only at **one client** — the uncontended round-trip
/// is the stablest number across hosts, while high-concurrency figures
/// move with the scheduler — and only against [`SERVE_CPS_TOLERANCE`].
/// Every baseline client count must still be measured.
fn check_serve(fresh: &[ServeRow], baseline: &[ServeRow]) -> Vec<String> {
    let mut violations = Vec::new();
    for r in fresh {
        let key = format!("clients={}", r.clients);
        if r.cmd_errors != 0 {
            violations.push(format!(
                "{key}: {} command error(s) — the serve workload is all-valid",
                r.cmd_errors
            ));
        }
        if r.protocol_errors != 0 {
            violations.push(format!(
                "{key}: {} protocol error(s) — framing must be clean",
                r.protocol_errors
            ));
        }
        if r.p50_us <= 0.0 || r.p99_us < r.p50_us {
            violations.push(format!(
                "{key}: nonsensical latency percentiles (p50 {:.1} us, p99 {:.1} us)",
                r.p50_us, r.p99_us
            ));
        }
    }
    for base in baseline {
        let key = format!("clients={}", base.clients);
        let Some(now) = fresh.iter().find(|r| r.clients == base.clients) else {
            violations.push(format!("{key}: missing from fresh results"));
            continue;
        };
        if base.clients == 1 && now.cps < base.cps / SERVE_CPS_TOLERANCE {
            violations.push(format!(
                "{key}: commands/sec regressed {:.1} -> {:.1} (below 1/{:.0} of baseline)",
                base.cps, now.cps, SERVE_CPS_TOLERANCE
            ));
        }
    }
    violations
}

fn run_serve_gate(fresh_path: &str, base_path: &str, bless: bool) -> ExitCode {
    let load = |path: &str| {
        std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {path}: {e}"))
            .and_then(|src| parse_serve_rows(&src, path))
    };
    let fresh = match load(fresh_path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    if bless {
        let baseline = load(base_path).unwrap_or_default();
        println!("bench_gate: blessing {fresh_path} -> {base_path}");
        for now in &fresh {
            let key = format!("clients={}", now.clients);
            match baseline.iter().find(|r| r.clients == now.clients) {
                Some(old) => println!(
                    "  {key}: cps {:.1} -> {:.1}, p99_us {:.1} -> {:.1}",
                    old.cps, now.cps, old.p99_us, now.p99_us
                ),
                None => println!(
                    "  {key}: new row (cps {:.1}, p99_us {:.1})",
                    now.cps, now.p99_us
                ),
            }
        }
        return match std::fs::copy(fresh_path, base_path) {
            Ok(_) => {
                println!("bench_gate: serve baseline updated ({} rows)", fresh.len());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("bench_gate: cannot write {base_path}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let baseline = match load(base_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "bench_gate: serve {fresh_path} vs {base_path} ({} baseline rows)",
        baseline.len()
    );
    for r in &fresh {
        println!(
            "  clients={:<3} cps {:>9.1}  p50_us {:>8.1}  p99_us {:>9.1}  errors {}/{}",
            r.clients, r.cps, r.p50_us, r.p99_us, r.cmd_errors, r.protocol_errors
        );
    }
    let violations = check_serve(&fresh, &baseline);
    if violations.is_empty() {
        println!("bench_gate: PASS");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("bench_gate: FAIL {v}");
        }
        ExitCode::FAILURE
    }
}

/// One row of `BENCH_mem.json`, keyed by `config`.
#[derive(Debug, Clone, PartialEq)]
struct MemRow {
    config: String,
    total_ms: f64,
    alpha_entries: u64,
    alpha_bytes: u64,
}

/// Headroom for `alpha_bytes` drift against the baseline: the figure is
/// deterministic up to container growth patterns, so a 5% band absorbs
/// capacity rounding while a lost layout optimization (2-5×) cannot pass.
const ALPHA_BYTES_TOLERANCE: f64 = 1.05;

fn parse_mem_rows(src: &str, label: &str) -> Result<Vec<MemRow>, String> {
    let objs = Parser::new(src)
        .array_of_objects()
        .map_err(|e| format!("{label}: {e}"))?;
    objs.into_iter()
        .enumerate()
        .map(|(i, obj)| {
            let str_field = |k: &str| match obj.get(k) {
                Some(Field::Str(s)) => Ok(s.clone()),
                _ => Err(format!("{label}: row {i} missing string \"{k}\"")),
            };
            let num_field = |k: &str| match obj.get(k) {
                Some(Field::Num(n)) => Ok(*n),
                _ => Err(format!("{label}: row {i} missing number \"{k}\"")),
            };
            Ok(MemRow {
                config: str_field("config")?,
                total_ms: num_field("total_ms")?,
                alpha_entries: num_field("alpha_entries")? as u64,
                alpha_bytes: num_field("alpha_bytes")? as u64,
            })
        })
        .collect()
}

/// Gate the memory-layout benchmark; returns every violation found.
///
/// Self-consistency within the fresh file: both configs present, and the
/// interned layout strictly smaller than the legacy one. Against the
/// baseline: `alpha_entries` must match exactly (the layout must not
/// change what is matched), `alpha_bytes` must stay within
/// [`ALPHA_BYTES_TOLERANCE`], and the interned config's wall clock within
/// [`TOTAL_MS_TOLERANCE`].
fn check_mem(fresh: &[MemRow], baseline: &[MemRow]) -> Vec<String> {
    let mut violations = Vec::new();
    let find = |rows: &[MemRow], config: &str| -> Option<MemRow> {
        rows.iter().find(|r| r.config == config).cloned()
    };
    match (find(fresh, "interned"), find(fresh, "legacy")) {
        (Some(interned), Some(legacy)) => {
            if interned.alpha_bytes >= legacy.alpha_bytes {
                violations.push(format!(
                    "interned: alpha_bytes {} not below legacy {} — \
                     interning stopped shrinking the α-memories",
                    interned.alpha_bytes, legacy.alpha_bytes
                ));
            }
        }
        (i, l) => {
            if i.is_none() {
                violations.push("interned: missing from fresh results".into());
            }
            if l.is_none() {
                violations.push("legacy: missing from fresh results".into());
            }
        }
    }
    for base in baseline {
        let Some(now) = find(fresh, &base.config) else {
            violations.push(format!("{}: missing from fresh results", base.config));
            continue;
        };
        if now.alpha_entries != base.alpha_entries {
            violations.push(format!(
                "{}: alpha_entries changed {} -> {} (the layout changed what is matched)",
                base.config, base.alpha_entries, now.alpha_entries
            ));
        }
        if now.alpha_bytes as f64 > base.alpha_bytes as f64 * ALPHA_BYTES_TOLERANCE {
            violations.push(format!(
                "{}: alpha_bytes regressed {} -> {} (>{:.0}% over baseline)",
                base.config,
                base.alpha_bytes,
                now.alpha_bytes,
                (ALPHA_BYTES_TOLERANCE - 1.0) * 100.0
            ));
        }
        if base.config == "interned" && now.total_ms > base.total_ms * TOTAL_MS_TOLERANCE {
            violations.push(format!(
                "{}: total_ms regressed {:.3} -> {:.3} (>{:.0}% over baseline)",
                base.config,
                base.total_ms,
                now.total_ms,
                (TOTAL_MS_TOLERANCE - 1.0) * 100.0
            ));
        }
    }
    violations
}

fn run_mem_gate(fresh_path: &str, base_path: &str, bless: bool) -> ExitCode {
    let load = |path: &str| {
        std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {path}: {e}"))
            .and_then(|src| parse_mem_rows(&src, path))
    };
    let fresh = match load(fresh_path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    if bless {
        let baseline = load(base_path).unwrap_or_default();
        println!("bench_gate: blessing {fresh_path} -> {base_path}");
        for now in &fresh {
            match baseline.iter().find(|r| r.config == now.config) {
                Some(old) => println!(
                    "  {}: alpha_bytes {} -> {}, alpha_entries {} -> {}",
                    now.config,
                    old.alpha_bytes,
                    now.alpha_bytes,
                    old.alpha_entries,
                    now.alpha_entries
                ),
                None => println!(
                    "  {}: new row (alpha_bytes {}, alpha_entries {})",
                    now.config, now.alpha_bytes, now.alpha_entries
                ),
            }
        }
        return match std::fs::copy(fresh_path, base_path) {
            Ok(_) => {
                println!("bench_gate: mem baseline updated ({} rows)", fresh.len());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("bench_gate: cannot write {base_path}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let baseline = match load(base_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "bench_gate: mem {fresh_path} vs {base_path} ({} baseline rows)",
        baseline.len()
    );
    for r in &fresh {
        println!(
            "  {:>10} total_ms {:>9.3}  alpha_entries {:>8}  alpha_bytes {:>11}",
            r.config, r.total_ms, r.alpha_entries, r.alpha_bytes
        );
    }
    let violations = check_mem(&fresh, &baseline);
    if violations.is_empty() {
        println!("bench_gate: PASS");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("bench_gate: FAIL {v}");
        }
        ExitCode::FAILURE
    }
}

/// One row of `BENCH_wal.json`, keyed by `mode`.
#[derive(Debug, Clone, PartialEq)]
struct WalRow {
    mode: String,
    total_ms: f64,
    wal_records: u64,
    wal_bytes: u64,
}

fn parse_wal_rows(src: &str, label: &str) -> Result<Vec<WalRow>, String> {
    let objs = Parser::new(src)
        .array_of_objects()
        .map_err(|e| format!("{label}: {e}"))?;
    objs.into_iter()
        .enumerate()
        .map(|(i, obj)| {
            let str_field = |k: &str| match obj.get(k) {
                Some(Field::Str(s)) => Ok(s.clone()),
                _ => Err(format!("{label}: row {i} missing string \"{k}\"")),
            };
            let num_field = |k: &str| match obj.get(k) {
                Some(Field::Num(n)) => Ok(*n),
                _ => Err(format!("{label}: row {i} missing number \"{k}\"")),
            };
            Ok(WalRow {
                mode: str_field("mode")?,
                total_ms: num_field("total_ms")?,
                wal_records: num_field("wal_records")? as u64,
                wal_bytes: num_field("wal_bytes")? as u64,
            })
        })
        .collect()
}

/// Gate the durability benchmark; returns every violation found.
///
/// Self-consistency within the fresh file: `off` logs nothing at all,
/// `commit` and `batch` log identical nonzero record/byte streams.
/// Against the baseline the per-mode counts must match **exactly** —
/// record streams are deterministic. Wall clock is never compared: fsync
/// latency is a property of the host, not the engine.
fn check_wal(fresh: &[WalRow], baseline: &[WalRow]) -> Vec<String> {
    let mut violations = Vec::new();
    let find = |rows: &[WalRow], mode: &str| -> Option<WalRow> {
        rows.iter().find(|r| r.mode == mode).cloned()
    };
    if let Some(off) = find(fresh, "off") {
        if off.wal_records != 0 || off.wal_bytes != 0 {
            violations.push(format!(
                "off: logged {} record(s) / {} byte(s) — durability off \
                 must attach no writer",
                off.wal_records, off.wal_bytes
            ));
        }
    } else {
        violations.push("off: missing from fresh results".into());
    }
    match (find(fresh, "commit"), find(fresh, "batch")) {
        (Some(commit), Some(batch)) => {
            if commit.wal_records == 0 {
                violations.push("commit: zero records logged — the hooks went dead".into());
            }
            if commit.wal_records != batch.wal_records || commit.wal_bytes != batch.wal_bytes {
                violations.push(format!(
                    "commit vs batch: record streams diverged \
                     ({}/{} records, {}/{} bytes) — sync policy must not \
                     change what is logged",
                    commit.wal_records, batch.wal_records, commit.wal_bytes, batch.wal_bytes
                ));
            }
        }
        (c, b) => {
            if c.is_none() {
                violations.push("commit: missing from fresh results".into());
            }
            if b.is_none() {
                violations.push("batch: missing from fresh results".into());
            }
        }
    }
    for base in baseline {
        let Some(now) = find(fresh, &base.mode) else {
            violations.push(format!("{}: missing from fresh results", base.mode));
            continue;
        };
        if now.wal_records != base.wal_records {
            violations.push(format!(
                "{}: wal_records changed {} -> {} (the record stream is deterministic)",
                base.mode, base.wal_records, now.wal_records
            ));
        }
        if now.wal_bytes != base.wal_bytes {
            violations.push(format!(
                "{}: wal_bytes changed {} -> {} (the record encoding moved)",
                base.mode, base.wal_bytes, now.wal_bytes
            ));
        }
    }
    violations
}

fn run_wal_gate(fresh_path: &str, base_path: &str, bless: bool) -> ExitCode {
    let load = |path: &str| {
        std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {path}: {e}"))
            .and_then(|src| parse_wal_rows(&src, path))
    };
    let fresh = match load(fresh_path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    if bless {
        let baseline = load(base_path).unwrap_or_default();
        println!("bench_gate: blessing {fresh_path} -> {base_path}");
        for now in &fresh {
            match baseline.iter().find(|r| r.mode == now.mode) {
                Some(old) => println!(
                    "  {}: wal_records {} -> {}, wal_bytes {} -> {}",
                    now.mode, old.wal_records, now.wal_records, old.wal_bytes, now.wal_bytes
                ),
                None => println!(
                    "  {}: new row (wal_records {}, wal_bytes {})",
                    now.mode, now.wal_records, now.wal_bytes
                ),
            }
        }
        return match std::fs::copy(fresh_path, base_path) {
            Ok(_) => {
                println!("bench_gate: wal baseline updated ({} rows)", fresh.len());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("bench_gate: cannot write {base_path}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let baseline = match load(base_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "bench_gate: wal {fresh_path} vs {base_path} ({} baseline rows)",
        baseline.len()
    );
    for r in &fresh {
        println!(
            "  {:>8} total_ms {:>9.3}  wal_records {:>8}  wal_bytes {:>10}",
            r.mode, r.total_ms, r.wal_records, r.wal_bytes
        );
    }
    let violations = check_wal(&fresh, &baseline);
    if violations.is_empty() {
        println!("bench_gate: PASS");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("bench_gate: FAIL {v}");
        }
        ExitCode::FAILURE
    }
}

/// Telemetry overhead tolerance: the telemetry-on run may cost at most 10%
/// more wall clock than the telemetry-off run *within the same fresh
/// file*. Comparing on vs off from the same host and the same minute
/// cancels machine variance, so the band can be this narrow while absolute
/// wall clock is never compared against the baseline.
const OBS_OVERHEAD_TOLERANCE: f64 = 1.10;

/// One row of `BENCH_obs.json`, keyed by `config`.
#[derive(Debug, Clone, PartialEq)]
struct ObsRow {
    config: String,
    clients: u64,
    requests: u64,
    commands: u64,
    queries: u64,
    total_ms: f64,
}

fn parse_obs_rows(src: &str, label: &str) -> Result<Vec<ObsRow>, String> {
    let objs = Parser::new(src)
        .array_of_objects()
        .map_err(|e| format!("{label}: {e}"))?;
    objs.into_iter()
        .enumerate()
        .map(|(i, obj)| {
            let str_field = |k: &str| match obj.get(k) {
                Some(Field::Str(s)) => Ok(s.clone()),
                _ => Err(format!("{label}: row {i} missing string \"{k}\"")),
            };
            let num_field = |k: &str| match obj.get(k) {
                Some(Field::Num(n)) => Ok(*n),
                _ => Err(format!("{label}: row {i} missing number \"{k}\"")),
            };
            Ok(ObsRow {
                config: str_field("config")?,
                clients: num_field("clients")? as u64,
                requests: num_field("requests")? as u64,
                commands: num_field("commands")? as u64,
                queries: num_field("queries")? as u64,
                total_ms: num_field("total_ms")?,
            })
        })
        .collect()
}

/// Gate the telemetry-overhead benchmark; returns every violation found.
///
/// Self-consistency within the fresh file: both configs present, every
/// row's requests split exactly into commands + queries, and the
/// telemetry-on wall clock within [`OBS_OVERHEAD_TOLERANCE`] of the
/// telemetry-off wall clock measured in the same run. Against the
/// baseline the per-config request/command/query counts must match
/// **exactly** — the workload is deterministic for a client count, so any
/// drift means the request mix (or the server's counting) moved. Absolute
/// wall clock is never compared across runs.
fn check_obs(fresh: &[ObsRow], baseline: &[ObsRow]) -> Vec<String> {
    let mut violations = Vec::new();
    let find = |rows: &[ObsRow], config: &str| -> Option<ObsRow> {
        rows.iter().find(|r| r.config == config).cloned()
    };
    for r in fresh {
        if r.commands + r.queries != r.requests {
            violations.push(format!(
                "{}: {} commands + {} queries != {} requests — the server \
                 lost or double-counted frames",
                r.config, r.commands, r.queries, r.requests
            ));
        }
        if r.total_ms <= 0.0 {
            violations.push(format!(
                "{}: nonsensical wall clock ({} ms)",
                r.config, r.total_ms
            ));
        }
    }
    match (find(fresh, "telemetry_off"), find(fresh, "telemetry_on")) {
        (Some(off), Some(on)) => {
            if on.total_ms > off.total_ms * OBS_OVERHEAD_TOLERANCE {
                violations.push(format!(
                    "telemetry overhead {:.1}% (off {:.3} ms, on {:.3} ms) — \
                     must stay under {:.0}%",
                    (on.total_ms / off.total_ms - 1.0) * 100.0,
                    off.total_ms,
                    on.total_ms,
                    (OBS_OVERHEAD_TOLERANCE - 1.0) * 100.0
                ));
            }
        }
        (off, on) => {
            if off.is_none() {
                violations.push("telemetry_off: missing from fresh results".into());
            }
            if on.is_none() {
                violations.push("telemetry_on: missing from fresh results".into());
            }
        }
    }
    for base in baseline {
        let Some(now) = find(fresh, &base.config) else {
            violations.push(format!("{}: missing from fresh results", base.config));
            continue;
        };
        for (what, old, new) in [
            ("requests", base.requests, now.requests),
            ("commands", base.commands, now.commands),
            ("queries", base.queries, now.queries),
        ] {
            if old != new {
                violations.push(format!(
                    "{}: {what} changed {old} -> {new} (the workload is deterministic)",
                    base.config
                ));
            }
        }
    }
    violations
}

fn run_obs_gate(fresh_path: &str, base_path: &str, bless: bool) -> ExitCode {
    let load = |path: &str| {
        std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {path}: {e}"))
            .and_then(|src| parse_obs_rows(&src, path))
    };
    let fresh = match load(fresh_path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    if bless {
        let baseline = load(base_path).unwrap_or_default();
        println!("bench_gate: blessing {fresh_path} -> {base_path}");
        for now in &fresh {
            match baseline.iter().find(|r| r.config == now.config) {
                Some(old) => println!(
                    "  {}: requests {} -> {}, total_ms {:.3} -> {:.3}",
                    now.config, old.requests, now.requests, old.total_ms, now.total_ms
                ),
                None => println!(
                    "  {}: new row (requests {}, total_ms {:.3})",
                    now.config, now.requests, now.total_ms
                ),
            }
        }
        return match std::fs::copy(fresh_path, base_path) {
            Ok(_) => {
                println!("bench_gate: obs baseline updated ({} rows)", fresh.len());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("bench_gate: cannot write {base_path}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let baseline = match load(base_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "bench_gate: obs {fresh_path} vs {base_path} ({} baseline rows)",
        baseline.len()
    );
    for r in &fresh {
        println!(
            "  {:>15} clients {:>3}  requests {:>6}  total_ms {:>9.3}",
            r.config, r.clients, r.requests, r.total_ms
        );
    }
    let violations = check_obs(&fresh, &baseline);
    if violations.is_empty() {
        println!("bench_gate: PASS");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("bench_gate: FAIL {v}");
        }
        ExitCode::FAILURE
    }
}

/// Extract the targets of inline markdown links (`[text](target)` and
/// `![alt](target)`), dropping external schemes, pure anchors, and any
/// `#fragment` / `"title"` suffix.
fn link_targets(markdown: &str) -> Vec<String> {
    let bytes = markdown.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b']' && bytes[i + 1] == b'(' {
            let start = i + 2;
            if let Some(len) = markdown[start..].find(')') {
                let raw = &markdown[start..start + len];
                // strip an optional "title" and any #fragment
                let target = raw.split_whitespace().next().unwrap_or("");
                let target = target.split('#').next().unwrap_or("");
                let external = target.contains("://") || target.starts_with("mailto:");
                if !target.is_empty() && !external {
                    out.push(target.to_string());
                }
                i = start + len;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Check every relative link in `README.md` and `docs/*.md` under `root`;
/// returns `(files_checked, links_checked, violations)`.
fn check_links(root: &Path) -> Result<(usize, usize, Vec<String>), String> {
    let mut files = vec![root.join("README.md")];
    let docs = root.join("docs");
    if docs.is_dir() {
        let mut md: Vec<_> = std::fs::read_dir(&docs)
            .map_err(|e| format!("cannot read {}: {e}", docs.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "md"))
            .collect();
        md.sort();
        files.extend(md);
    }
    let mut checked = 0;
    let mut violations = Vec::new();
    for file in &files {
        let src = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let dir = file.parent().unwrap_or(root);
        for target in link_targets(&src) {
            checked += 1;
            // a leading '/' means repo-root-relative, everything else is
            // relative to the linking file
            let resolved = match target.strip_prefix('/') {
                Some(rest) => root.join(rest),
                None => dir.join(&target),
            };
            if !resolved.exists() {
                violations.push(format!(
                    "{}: broken link '{}' ({} does not exist)",
                    file.display(),
                    target,
                    resolved.display()
                ));
            }
        }
    }
    Ok((files.len(), checked, violations))
}

fn run_links(root: &str) -> ExitCode {
    match check_links(Path::new(root)) {
        Ok((files, links, violations)) => {
            println!("bench_gate: links — {files} files, {links} relative links");
            if violations.is_empty() {
                println!("bench_gate: PASS");
                ExitCode::SUCCESS
            } else {
                for v in &violations {
                    eprintln!("bench_gate: FAIL {v}");
                }
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("bench_gate: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let bless = args.iter().any(|a| a == "--bless");
    args.retain(|a| a != "--bless");
    match args.first().map(String::as_str) {
        Some("links") => {
            return run_links(args.get(1).map_or(".", String::as_str));
        }
        Some("par") => {
            let fresh = args.get(1).map_or("BENCH_par.json", String::as_str);
            let base = args
                .get(2)
                .map_or("BENCH_par_baseline.json", String::as_str);
            return run_par_gate(fresh, base, bless);
        }
        Some("mem") => {
            let fresh = args.get(1).map_or("BENCH_mem.json", String::as_str);
            let base = args
                .get(2)
                .map_or("BENCH_mem_baseline.json", String::as_str);
            return run_mem_gate(fresh, base, bless);
        }
        Some("serve") => {
            let fresh = args.get(1).map_or("BENCH_serve.json", String::as_str);
            let base = args
                .get(2)
                .map_or("BENCH_serve_baseline.json", String::as_str);
            return run_serve_gate(fresh, base, bless);
        }
        Some("wal") => {
            let fresh = args.get(1).map_or("BENCH_wal.json", String::as_str);
            let base = args
                .get(2)
                .map_or("BENCH_wal_baseline.json", String::as_str);
            return run_wal_gate(fresh, base, bless);
        }
        Some("obs") => {
            let fresh = args.get(1).map_or("BENCH_obs.json", String::as_str);
            let base = args
                .get(2)
                .map_or("BENCH_obs_baseline.json", String::as_str);
            return run_obs_gate(fresh, base, bless);
        }
        _ => {}
    }
    let fresh_path = args.first().map_or("BENCH_join.json", String::as_str);
    let base_path = args.get(1).map_or("BENCH_baseline.json", String::as_str);
    let load = |path: &str| {
        std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {path}: {e}"))
            .and_then(|src| parse_rows(&src, path))
    };
    if bless {
        let fresh = match load(fresh_path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("bench_gate: {e}");
                return ExitCode::FAILURE;
            }
        };
        // a missing baseline just means blessing from scratch
        let baseline = load(base_path).unwrap_or_default();
        println!("bench_gate: blessing {fresh_path} -> {base_path}");
        for line in bless_diff(&fresh, &baseline) {
            println!("{line}");
        }
        return match std::fs::copy(fresh_path, base_path) {
            Ok(_) => {
                println!("bench_gate: baseline updated ({} rows)", fresh.len());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("bench_gate: cannot write {base_path}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let (fresh, baseline) = match (load(fresh_path), load(base_path)) {
        (Ok(f), Ok(b)) => (f, b),
        (f, b) => {
            for e in [f.err(), b.err()].into_iter().flatten() {
                eprintln!("bench_gate: {e}");
            }
            return ExitCode::FAILURE;
        }
    };
    println!(
        "bench_gate: {fresh_path} vs {base_path} ({} baseline rows)",
        baseline.len()
    );
    for base in &baseline {
        if let Some(now) = fresh
            .iter()
            .find(|r| r.workload == base.workload && r.indexed == base.indexed)
        {
            println!(
                "  {:>15}/indexed={:<5} total_ms {:>9.3} -> {:>9.3}  join_candidates {:>9} -> {:>9}",
                base.workload,
                base.indexed,
                base.total_ms,
                now.total_ms,
                base.join_candidates,
                now.join_candidates
            );
        }
    }
    let violations = check(&fresh, &baseline);
    if violations.is_empty() {
        println!("bench_gate: PASS");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("bench_gate: FAIL {v}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serve_row(clients: u64, cps: f64, p50_us: f64, p99_us: f64) -> ServeRow {
        ServeRow {
            clients,
            cps,
            p50_us,
            p99_us,
            cmd_errors: 0,
            protocol_errors: 0,
        }
    }

    #[test]
    fn parses_serve_rows() {
        let src = r#"[{"clients":1,"requests":200,"total_ms":50.0,"cps":4000.0,
            "p50_us":210.5,"p99_us":900.0,"cmd_errors":0,"protocol_errors":0,
            "batches":180,"batched_requests":0,"max_batch":1}]"#;
        let rows = parse_serve_rows(src, "test").unwrap();
        assert_eq!(rows, vec![serve_row(1, 4000.0, 210.5, 900.0)]);
        assert!(parse_serve_rows("[{\"clients\":\"x\"}]", "test").is_err());
    }

    #[test]
    fn serve_gate_passes_clean_run() {
        let fresh = vec![
            serve_row(1, 4000.0, 200.0, 900.0),
            serve_row(4, 9000.0, 300.0, 2000.0),
        ];
        let base = fresh.clone();
        assert!(check_serve(&fresh, &base).is_empty());
        // faster than baseline is fine, and high-concurrency cps is not gated
        let better = vec![
            serve_row(1, 9999.0, 100.0, 400.0),
            serve_row(4, 1.0, 300.0, 2000.0),
        ];
        assert!(check_serve(&better, &base).is_empty());
    }

    #[test]
    fn serve_gate_catches_errors_latency_and_regression() {
        let base = vec![
            serve_row(1, 4000.0, 200.0, 900.0),
            serve_row(4, 9000.0, 300.0, 2000.0),
        ];
        // command/protocol errors fail
        let mut bad = base.clone();
        bad[0].cmd_errors = 1;
        bad[1].protocol_errors = 2;
        assert_eq!(check_serve(&bad, &base).len(), 2);
        // nonsensical percentiles fail
        let upside_down = vec![serve_row(1, 4000.0, 900.0, 200.0), base[1].clone()];
        assert_eq!(check_serve(&upside_down, &base).len(), 1);
        // one-client throughput collapse fails; within tolerance passes
        let slow = vec![serve_row(1, 4000.0 / 5.0, 200.0, 900.0), base[1].clone()];
        assert_eq!(check_serve(&slow, &base).len(), 1);
        let ok = vec![serve_row(1, 4000.0 / 3.0, 200.0, 900.0), base[1].clone()];
        assert!(check_serve(&ok, &base).is_empty());
        // a dropped client count fails
        let missing = vec![base[0].clone()];
        assert_eq!(check_serve(&missing, &base).len(), 1);
    }

    fn row(workload: &str, indexed: bool, total_ms: f64, join_candidates: u64) -> Row {
        Row {
            workload: workload.into(),
            indexed,
            total_ms,
            join_candidates,
        }
    }

    #[test]
    fn parses_paper_tables_output() {
        let src = r#"[{"workload":"fig12-band","indexed":true,"total_ms":100.267,
            "join_candidates":79650,"index_probes":0,"index_hits":0,
            "range_probes":10000,"range_hits":9975}]"#;
        let rows = parse_rows(src, "test").unwrap();
        assert_eq!(rows, vec![row("fig12-band", true, 100.267, 79650)]);
        assert!(parse_rows("[", "test").is_err());
        assert!(parse_rows("[{\"workload\":1}]", "test").is_err());
        assert_eq!(parse_rows("[]", "test").unwrap(), vec![]);
    }

    #[test]
    fn string_escapes_are_decoded() {
        let src = r#"[{"workload":"say \"hi\" \\ \/ \n\té done",
            "indexed":false,"total_ms":1.0,"join_candidates":2}]"#;
        let rows = parse_rows(src, "test").unwrap();
        assert_eq!(rows[0].workload, "say \"hi\" \\ / \n\té done");
        // escaped keys decode too
        let keyed = r#"[{"workload":"w","indexed":true,"total_ms":1.0,"join_candidates":0}]"#;
        assert_eq!(parse_rows(keyed, "test").unwrap()[0].workload, "w");
        // malformed escapes still error
        assert!(parse_rows(
            r#"[{"workload":"bad \x","indexed":true,"total_ms":1,"join_candidates":0}]"#,
            "test"
        )
        .is_err());
        assert!(parse_rows(
            r#"[{"workload":"bad \u12","indexed":true,"total_ms":1,"join_candidates":0}]"#,
            "test"
        )
        .is_err());
        assert!(parse_rows(r#"[{"workload":"bad \"#, "test").is_err());
    }

    #[test]
    fn gate_passes_on_identical_and_on_noise_within_tolerance() {
        let base = vec![row("w", true, 10.0, 100), row("w", false, 50.0, 500)];
        assert!(check(&base, &base).is_empty());
        // +40% wall clock and fewer candidates: still fine
        let fresh = vec![row("w", true, 14.0, 90), row("w", false, 70.0, 500)];
        assert!(check(&fresh, &base).is_empty());
    }

    #[test]
    fn gate_fails_on_injected_time_regression() {
        let base = vec![row("w", true, 10.0, 100)];
        let fresh = vec![row("w", true, 16.0, 100)];
        let v = check(&fresh, &base);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("total_ms regressed"), "{v:?}");
    }

    #[test]
    fn gate_fails_on_candidate_growth_even_unindexed() {
        let base = vec![row("w", false, 50.0, 500)];
        let fresh = vec![row("w", false, 10.0, 501)];
        let v = check(&fresh, &base);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("join_candidates grew"), "{v:?}");
    }

    #[test]
    fn gate_fails_on_missing_workload_and_ignores_unindexed_time() {
        let base = vec![row("gone", true, 10.0, 100), row("w", false, 50.0, 500)];
        // unindexed wall clock may drift freely — only candidates matter
        let fresh = vec![row("w", false, 500.0, 500)];
        let v = check(&fresh, &base);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("missing from fresh"), "{v:?}");
    }

    fn par(config: &str, threads: u64, total_ms: f64, pnode_inserts: u64) -> ParRow {
        ParRow {
            config: config.into(),
            threads,
            total_ms,
            pnode_inserts,
        }
    }

    #[test]
    fn parses_par_snapshot_output() {
        let src = r#"[{"config":"TREAT (indexed)","threads":0,"total_ms":12.5,
            "speedup":1.000,"pnode_inserts":4200}]"#;
        let rows = parse_par_rows(src, "test").unwrap();
        assert_eq!(rows, vec![par("TREAT (indexed)", 0, 12.5, 4200)]);
        assert!(parse_par_rows("[{\"config\":1}]", "test").is_err());
    }

    #[test]
    fn par_gate_passes_on_consistent_rows() {
        let fresh = vec![
            par("t", 0, 10.0, 100),
            par("t", 1, 13.0, 100),
            par("t", 2, 6.0, 100),
            par("rete", 0, 20.0, 100),
        ];
        assert!(check_par(&fresh, &fresh).is_empty());
        // empty baseline (blessing from scratch) also passes
        assert!(check_par(&fresh, &[]).is_empty());
    }

    #[test]
    fn par_gate_fails_on_one_worker_overhead() {
        let fresh = vec![par("t", 0, 10.0, 100), par("t", 1, 15.1, 100)];
        let v = check_par(&fresh, &[]);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("one-worker"), "{v:?}");
    }

    #[test]
    fn par_gate_fails_on_diverged_match_results() {
        let fresh = vec![par("t", 0, 10.0, 100), par("t", 2, 6.0, 99)];
        let v = check_par(&fresh, &[]);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("diverged from sequential"), "{v:?}");
        // and against the baseline, deterministic counts must not move
        let base = vec![par("t", 0, 10.0, 90), par("t", 4, 1.0, 90)];
        let v = check_par(&[par("t", 0, 10.0, 100)], &base);
        assert!(
            v.iter().any(|m| m.contains("pnode_inserts changed")),
            "{v:?}"
        );
        assert!(v.iter().any(|m| m.contains("missing from fresh")), "{v:?}");
    }

    #[test]
    fn par_gate_fails_on_missing_sequential_row() {
        let v = check_par(&[par("t", 2, 6.0, 100)], &[]);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("missing sequential row"), "{v:?}");
    }

    fn mem(config: &str, total_ms: f64, alpha_entries: u64, alpha_bytes: u64) -> MemRow {
        MemRow {
            config: config.into(),
            total_ms,
            alpha_entries,
            alpha_bytes,
        }
    }

    #[test]
    fn parses_mem_snapshot_output() {
        let src = r#"[{"config":"interned","total_ms":8.1,"alpha_entries":1200,
            "alpha_bytes":90000,"bytes_per_entry":75.0,"symbols":225,
            "symbol_bytes":12000,"arena_takes":5000,"arena_reuses":4990,
            "arena_high_water_bytes":8192}]"#;
        let rows = parse_mem_rows(src, "test").unwrap();
        assert_eq!(rows, vec![mem("interned", 8.1, 1200, 90000)]);
        assert!(parse_mem_rows("[{\"config\":1}]", "test").is_err());
    }

    #[test]
    fn mem_gate_passes_when_interning_shrinks_alpha() {
        let fresh = vec![
            mem("interned", 8.0, 1200, 90_000),
            mem("legacy", 10.0, 1200, 150_000),
        ];
        assert!(check_mem(&fresh, &fresh).is_empty());
        // blessing from scratch passes too
        assert!(check_mem(&fresh, &[]).is_empty());
        // noise within tolerance: +4% bytes, +40% interned wall clock
        let noisy = vec![
            mem("interned", 11.0, 1200, 93_000),
            mem("legacy", 25.0, 1200, 155_000),
        ];
        assert!(check_mem(&noisy, &fresh).is_empty());
    }

    #[test]
    fn mem_gate_fails_when_interning_stops_helping() {
        let fresh = vec![
            mem("interned", 8.0, 1200, 150_000),
            mem("legacy", 10.0, 1200, 150_000),
        ];
        let v = check_mem(&fresh, &[]);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("not below legacy"), "{v:?}");
    }

    #[test]
    fn mem_gate_fails_on_regressions_vs_baseline() {
        let base = vec![
            mem("interned", 8.0, 1200, 90_000),
            mem("legacy", 10.0, 1200, 150_000),
        ];
        // bytes +10%, entries drifted, interned wall clock 2x
        let fresh = vec![
            mem("interned", 17.0, 1201, 99_001),
            mem("legacy", 10.0, 1200, 150_000),
        ];
        let v = check_mem(&fresh, &base);
        assert!(
            v.iter().any(|m| m.contains("alpha_entries changed")),
            "{v:?}"
        );
        assert!(
            v.iter().any(|m| m.contains("alpha_bytes regressed")),
            "{v:?}"
        );
        assert!(v.iter().any(|m| m.contains("total_ms regressed")), "{v:?}");
        // missing config rows are flagged both ways
        let v = check_mem(&[mem("legacy", 10.0, 1200, 150_000)], &base);
        assert!(
            v.iter().any(|m| m.contains("interned: missing from fresh")),
            "{v:?}"
        );
    }

    fn wal(mode: &str, total_ms: f64, wal_records: u64, wal_bytes: u64) -> WalRow {
        WalRow {
            mode: mode.into(),
            total_ms,
            wal_records,
            wal_bytes,
        }
    }

    #[test]
    fn parses_wal_snapshot_output() {
        let src = r#"[{"mode":"commit","total_ms":42.125,"wal_records":1000,
            "wal_bytes":65000}]"#;
        let rows = parse_wal_rows(src, "test").unwrap();
        assert_eq!(rows, vec![wal("commit", 42.125, 1000, 65000)]);
        assert!(parse_wal_rows("[{\"mode\":1}]", "test").is_err());
    }

    #[test]
    fn wal_gate_passes_clean_run_and_ignores_wall_clock() {
        let fresh = vec![
            wal("off", 5.0, 0, 0),
            wal("commit", 80.0, 1000, 65000),
            wal("batch", 12.0, 1000, 65000),
        ];
        assert!(check_wal(&fresh, &fresh).is_empty());
        // blessing from scratch passes too
        assert!(check_wal(&fresh, &[]).is_empty());
        // wall clock may drift arbitrarily — fsync cost is the host's
        let slow = vec![
            wal("off", 500.0, 0, 0),
            wal("commit", 8000.0, 1000, 65000),
            wal("batch", 1200.0, 1000, 65000),
        ];
        assert!(check_wal(&slow, &fresh).is_empty());
    }

    #[test]
    fn wal_gate_fails_when_off_logs_or_streams_diverge() {
        let base = vec![
            wal("off", 5.0, 0, 0),
            wal("commit", 80.0, 1000, 65000),
            wal("batch", 12.0, 1000, 65000),
        ];
        // off logging anything means the zero-overhead guarantee broke
        let leaking = vec![wal("off", 5.0, 3, 120), base[1].clone(), base[2].clone()];
        let v = check_wal(&leaking, &base);
        assert!(
            v.iter().any(|m| m.contains("must attach no writer")),
            "{v:?}"
        );
        // commit/batch diverging means the sync policy changed the stream
        let diverged = vec![
            base[0].clone(),
            wal("commit", 80.0, 1000, 65000),
            wal("batch", 12.0, 999, 64930),
        ];
        let v = check_wal(&diverged, &base);
        assert!(
            v.iter().any(|m| m.contains("record streams diverged")),
            "{v:?}"
        );
        // dead hooks: zero commit records
        let dead = vec![
            base[0].clone(),
            wal("commit", 80.0, 0, 0),
            wal("batch", 12.0, 0, 0),
        ];
        let v = check_wal(&dead, &base);
        assert!(v.iter().any(|m| m.contains("hooks went dead")), "{v:?}");
    }

    #[test]
    fn wal_gate_fails_on_count_drift_and_missing_modes() {
        let base = vec![
            wal("off", 5.0, 0, 0),
            wal("commit", 80.0, 1000, 65000),
            wal("batch", 12.0, 1000, 65000),
        ];
        let drifted = vec![
            base[0].clone(),
            wal("commit", 80.0, 1002, 65130),
            wal("batch", 12.0, 1002, 65130),
        ];
        let v = check_wal(&drifted, &base);
        assert!(v.iter().any(|m| m.contains("wal_records changed")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("wal_bytes changed")), "{v:?}");
        let missing = vec![base[0].clone(), base[1].clone()];
        let v = check_wal(&missing, &base);
        assert!(
            v.iter().any(|m| m.contains("batch: missing from fresh")),
            "{v:?}"
        );
    }

    fn obs(config: &str, total_ms: f64) -> ObsRow {
        ObsRow {
            config: config.into(),
            clients: 8,
            requests: 1600,
            commands: 1280,
            queries: 320,
            total_ms,
        }
    }

    #[test]
    fn parses_obs_snapshot_output() {
        let src = r#"[{"config":"telemetry_off","clients":8,"requests":1600,
            "commands":1280,"queries":320,"total_ms":120.500,"cps":13278.0}]"#;
        let rows = parse_obs_rows(src, "test").unwrap();
        assert_eq!(rows, vec![obs("telemetry_off", 120.5)]);
        assert!(parse_obs_rows("[{\"config\":1}]", "test").is_err());
    }

    #[test]
    fn obs_gate_passes_within_overhead_band() {
        let fresh = vec![obs("telemetry_off", 100.0), obs("telemetry_on", 109.0)];
        assert!(check_obs(&fresh, &fresh).is_empty());
        // blessing from scratch passes too
        assert!(check_obs(&fresh, &[]).is_empty());
        // absolute wall clock may drift arbitrarily across runs — only the
        // on/off ratio within the fresh file is held
        let slow = vec![obs("telemetry_off", 900.0), obs("telemetry_on", 950.0)];
        assert!(check_obs(&slow, &fresh).is_empty());
    }

    #[test]
    fn obs_gate_fails_on_overhead_and_inconsistency() {
        let base = vec![obs("telemetry_off", 100.0), obs("telemetry_on", 105.0)];
        // 20% overhead breaches the 10% band
        let costly = vec![obs("telemetry_off", 100.0), obs("telemetry_on", 120.0)];
        let v = check_obs(&costly, &base);
        assert!(v.iter().any(|m| m.contains("telemetry overhead")), "{v:?}");
        // requests must split exactly into commands + queries
        let mut torn = base.clone();
        torn[0].commands = 1279;
        let v = check_obs(&torn, &base);
        assert!(v.iter().any(|m| m.contains("!= 1600 requests")), "{v:?}");
        // both configs must be present
        let v = check_obs(&base[..1], &base);
        assert!(
            v.iter()
                .any(|m| m.contains("telemetry_on: missing from fresh")),
            "{v:?}"
        );
    }

    #[test]
    fn obs_gate_fails_on_count_drift() {
        let base = vec![obs("telemetry_off", 100.0), obs("telemetry_on", 105.0)];
        let mut drifted = base.clone();
        drifted[1].requests = 1590;
        drifted[1].commands = 1270;
        let v = check_obs(&drifted, &base);
        assert!(
            v.iter()
                .any(|m| m.contains("requests changed 1600 -> 1590")),
            "{v:?}"
        );
        assert!(
            v.iter()
                .any(|m| m.contains("commands changed 1280 -> 1270")),
            "{v:?}"
        );
    }

    #[test]
    fn link_targets_are_extracted_and_filtered() {
        let md = "see [arch](docs/ARCHITECTURE.md) and [site](https://x.y/z), \
                  ![img](fig.png \"title\"), [anchor](#top), \
                  [frag](README.md#usage), [root](/LICENSE-MIT)";
        assert_eq!(
            link_targets(md),
            vec![
                "docs/ARCHITECTURE.md",
                "fig.png",
                "README.md",
                "/LICENSE-MIT"
            ]
        );
    }

    #[test]
    fn check_links_flags_broken_relative_links() {
        let root = std::env::temp_dir().join(format!("linkchk-{}", std::process::id()));
        let docs = root.join("docs");
        std::fs::create_dir_all(&docs).unwrap();
        std::fs::write(
            root.join("README.md"),
            "[ok](docs/GOOD.md) [bad](docs/MISSING.md) [ext](https://a.b)",
        )
        .unwrap();
        std::fs::write(docs.join("GOOD.md"), "[up](../README.md) [r](/README.md)").unwrap();
        let (files, links, violations) = check_links(&root).unwrap();
        assert_eq!(files, 2);
        assert_eq!(links, 4);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("docs/MISSING.md"), "{violations:?}");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn bless_diff_covers_changed_new_and_dropped_rows() {
        let base = vec![row("w", true, 10.0, 100), row("gone", false, 5.0, 50)];
        let fresh = vec![row("w", true, 12.0, 90), row("new", true, 1.0, 10)];
        let lines = bless_diff(&fresh, &base);
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("total_ms 10.000 -> 12.000"), "{lines:?}");
        assert!(lines[0].contains("join_candidates 100 -> 90"), "{lines:?}");
        assert!(lines[1].contains("new row"), "{lines:?}");
        assert!(lines[2].contains("dropped from baseline"), "{lines:?}");
        // blessing from scratch: every row is new
        let scratch = bless_diff(&fresh, &[]);
        assert!(scratch.iter().all(|l| l.contains("new row")), "{scratch:?}");
    }
}
