//! CI benchmark regression gate.
//!
//! Diffs a fresh `BENCH_join.json` (written by `paper_tables -- joins`)
//! against the checked-in `BENCH_baseline.json` and exits nonzero when the
//! join engine regressed:
//!
//! * an **indexed** workload's `total_ms` grew by more than 50% over the
//!   baseline, or
//! * any workload's `join_candidates` count grew at all — candidate counts
//!   are deterministic, so *any* growth means an index stopped being used
//!   (or started serving wider buckets), and
//! * a baseline workload is missing from the fresh run.
//!
//! ```text
//! cargo run --release -p ariel-bench --bin bench_gate            # default paths
//! cargo run --release -p ariel-bench --bin bench_gate -- fresh.json baseline.json
//! cargo run --release -p ariel-bench --bin bench_gate -- --bless # accept fresh as baseline
//! ```
//!
//! `--bless` replaces the baseline file with the fresh results instead of
//! gating, printing the old → new change per row first — the sanctioned
//! way to accept a legitimate shift (new workload, deliberate join-order
//! change). A missing or unreadable baseline blesses from scratch.
//!
//! The schema of both files is documented in `docs/OBSERVABILITY.md`.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Wall-clock tolerance: fail only beyond +50% over baseline, so ordinary
/// machine noise passes while a lost index (typically 5-20×) cannot.
const TOTAL_MS_TOLERANCE: f64 = 1.5;

/// One scalar field of a benchmark row.
#[derive(Debug, Clone, PartialEq)]
enum Field {
    Str(String),
    Bool(bool),
    Num(f64),
}

/// Minimal JSON reader for the flat array-of-objects shape `paper_tables`
/// emits. Strings accept the standard JSON escapes (`\" \\ \/ \b \f \n
/// \r \t \uXXXX`); values must be strings, booleans or numbers — exactly
/// the `BENCH_join.json` schema, nothing more.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.bytes.get(self.pos).map(|&c| c as char)
            ))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        let mut out: Option<String> = None;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'\\' {
                let buf = out.get_or_insert_with(|| {
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map(str::to_string)
                        .unwrap_or_default()
                });
                self.pos += 1;
                let esc = self
                    .bytes
                    .get(self.pos)
                    .ok_or("unterminated escape".to_string())?;
                match esc {
                    b'"' => buf.push('"'),
                    b'\\' => buf.push('\\'),
                    b'/' => buf.push('/'),
                    b'b' => buf.push('\u{8}'),
                    b'f' => buf.push('\u{c}'),
                    b'n' => buf.push('\n'),
                    b'r' => buf.push('\r'),
                    b't' => buf.push('\t'),
                    b'u' => {
                        let hex = self
                            .bytes
                            .get(self.pos + 1..self.pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = std::str::from_utf8(hex)
                            .ok()
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                        // surrogate halves are not paired up — the files we
                        // read are our own exports, which never emit them
                        buf.push(char::from_u32(code).ok_or_else(|| {
                            format!("\\u{code:04x} is not a scalar value at byte {}", self.pos)
                        })?);
                        self.pos += 4;
                    }
                    other => {
                        return Err(format!(
                            "unknown escape '\\{}' at byte {}",
                            *other as char, self.pos
                        ))
                    }
                }
                self.pos += 1;
                continue;
            }
            if b == b'"' {
                let s = match out {
                    Some(s) => s,
                    None => std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|e| e.to_string())?
                        .to_string(),
                };
                self.pos += 1;
                return Ok(s);
            }
            if let Some(buf) = out.as_mut() {
                // re-borrow as str to keep multi-byte UTF-8 intact
                let rest =
                    std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                let c = rest
                    .chars()
                    .next()
                    .ok_or("unterminated string".to_string())?;
                buf.push(c);
                self.pos += c.len_utf8();
                continue;
            }
            self.pos += 1;
        }
        Err("unterminated string".into())
    }

    fn value(&mut self) -> Result<Field, String> {
        match self.peek() {
            Some(b'"') => Ok(Field::Str(self.string()?)),
            Some(b't') | Some(b'f') => {
                let rest = &self.bytes[self.pos..];
                if rest.starts_with(b"true") {
                    self.pos += 4;
                    Ok(Field::Bool(true))
                } else if rest.starts_with(b"false") {
                    self.pos += 5;
                    Ok(Field::Bool(false))
                } else {
                    Err(format!("bad literal at byte {}", self.pos))
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => {
                let start = self.pos;
                while self.bytes.get(self.pos).is_some_and(|&b| {
                    b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
                }) {
                    self.pos += 1;
                }
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| e.to_string())?
                    .parse::<f64>()
                    .map(Field::Num)
                    .map_err(|e| format!("bad number at byte {start}: {e}"))
            }
            other => Err(format!(
                "unexpected value start {other:?} at byte {}",
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<BTreeMap<String, Field>, String> {
        self.expect(b'{')?;
        let mut obj = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(obj);
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            obj.insert(key, self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(obj);
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn array_of_objects(&mut self) -> Result<Vec<BTreeMap<String, Field>>, String> {
        self.expect(b'[')?;
        let mut rows = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(rows);
        }
        loop {
            rows.push(self.object()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(rows);
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }
}

/// One benchmark configuration, keyed by `(workload, indexed)`.
#[derive(Debug, Clone, PartialEq)]
struct Row {
    workload: String,
    indexed: bool,
    total_ms: f64,
    join_candidates: u64,
}

fn parse_rows(src: &str, label: &str) -> Result<Vec<Row>, String> {
    let objs = Parser::new(src)
        .array_of_objects()
        .map_err(|e| format!("{label}: {e}"))?;
    objs.into_iter()
        .enumerate()
        .map(|(i, obj)| {
            let str_field = |k: &str| match obj.get(k) {
                Some(Field::Str(s)) => Ok(s.clone()),
                _ => Err(format!("{label}: row {i} missing string \"{k}\"")),
            };
            let bool_field = |k: &str| match obj.get(k) {
                Some(Field::Bool(b)) => Ok(*b),
                _ => Err(format!("{label}: row {i} missing bool \"{k}\"")),
            };
            let num_field = |k: &str| match obj.get(k) {
                Some(Field::Num(n)) => Ok(*n),
                _ => Err(format!("{label}: row {i} missing number \"{k}\"")),
            };
            Ok(Row {
                workload: str_field("workload")?,
                indexed: bool_field("indexed")?,
                total_ms: num_field("total_ms")?,
                join_candidates: num_field("join_candidates")? as u64,
            })
        })
        .collect()
}

/// Compare fresh numbers to the baseline; returns every violation found
/// (empty = gate passes).
fn check(fresh: &[Row], baseline: &[Row]) -> Vec<String> {
    let mut violations = Vec::new();
    for base in baseline {
        let key = format!("{}/indexed={}", base.workload, base.indexed);
        let Some(now) = fresh
            .iter()
            .find(|r| r.workload == base.workload && r.indexed == base.indexed)
        else {
            violations.push(format!("{key}: missing from fresh results"));
            continue;
        };
        if base.indexed && now.total_ms > base.total_ms * TOTAL_MS_TOLERANCE {
            violations.push(format!(
                "{key}: total_ms regressed {:.3} -> {:.3} (>{:.0}% over baseline)",
                base.total_ms,
                now.total_ms,
                (TOTAL_MS_TOLERANCE - 1.0) * 100.0
            ));
        }
        if now.join_candidates > base.join_candidates {
            violations.push(format!(
                "{key}: join_candidates grew {} -> {} (an index stopped pruning)",
                base.join_candidates, now.join_candidates
            ));
        }
    }
    violations
}

/// Render the old → new change per fresh row (plus baseline rows that
/// disappear) for `--bless`.
fn bless_diff(fresh: &[Row], baseline: &[Row]) -> Vec<String> {
    let mut lines = Vec::new();
    for now in fresh {
        let key = format!("{}/indexed={}", now.workload, now.indexed);
        match baseline
            .iter()
            .find(|r| r.workload == now.workload && r.indexed == now.indexed)
        {
            Some(old) => lines.push(format!(
                "  {key}: total_ms {:.3} -> {:.3}, join_candidates {} -> {}",
                old.total_ms, now.total_ms, old.join_candidates, now.join_candidates
            )),
            None => lines.push(format!(
                "  {key}: new row (total_ms {:.3}, join_candidates {})",
                now.total_ms, now.join_candidates
            )),
        }
    }
    for old in baseline {
        if !fresh
            .iter()
            .any(|r| r.workload == old.workload && r.indexed == old.indexed)
        {
            lines.push(format!(
                "  {}/indexed={}: dropped from baseline",
                old.workload, old.indexed
            ));
        }
    }
    lines
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let bless = args.iter().any(|a| a == "--bless");
    args.retain(|a| a != "--bless");
    let fresh_path = args.first().map_or("BENCH_join.json", String::as_str);
    let base_path = args.get(1).map_or("BENCH_baseline.json", String::as_str);
    let load = |path: &str| {
        std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {path}: {e}"))
            .and_then(|src| parse_rows(&src, path))
    };
    if bless {
        let fresh = match load(fresh_path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("bench_gate: {e}");
                return ExitCode::FAILURE;
            }
        };
        // a missing baseline just means blessing from scratch
        let baseline = load(base_path).unwrap_or_default();
        println!("bench_gate: blessing {fresh_path} -> {base_path}");
        for line in bless_diff(&fresh, &baseline) {
            println!("{line}");
        }
        return match std::fs::copy(fresh_path, base_path) {
            Ok(_) => {
                println!("bench_gate: baseline updated ({} rows)", fresh.len());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("bench_gate: cannot write {base_path}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let (fresh, baseline) = match (load(fresh_path), load(base_path)) {
        (Ok(f), Ok(b)) => (f, b),
        (f, b) => {
            for e in [f.err(), b.err()].into_iter().flatten() {
                eprintln!("bench_gate: {e}");
            }
            return ExitCode::FAILURE;
        }
    };
    println!(
        "bench_gate: {fresh_path} vs {base_path} ({} baseline rows)",
        baseline.len()
    );
    for base in &baseline {
        if let Some(now) = fresh
            .iter()
            .find(|r| r.workload == base.workload && r.indexed == base.indexed)
        {
            println!(
                "  {:>15}/indexed={:<5} total_ms {:>9.3} -> {:>9.3}  join_candidates {:>9} -> {:>9}",
                base.workload,
                base.indexed,
                base.total_ms,
                now.total_ms,
                base.join_candidates,
                now.join_candidates
            );
        }
    }
    let violations = check(&fresh, &baseline);
    if violations.is_empty() {
        println!("bench_gate: PASS");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("bench_gate: FAIL {v}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(workload: &str, indexed: bool, total_ms: f64, join_candidates: u64) -> Row {
        Row {
            workload: workload.into(),
            indexed,
            total_ms,
            join_candidates,
        }
    }

    #[test]
    fn parses_paper_tables_output() {
        let src = r#"[{"workload":"fig12-band","indexed":true,"total_ms":100.267,
            "join_candidates":79650,"index_probes":0,"index_hits":0,
            "range_probes":10000,"range_hits":9975}]"#;
        let rows = parse_rows(src, "test").unwrap();
        assert_eq!(rows, vec![row("fig12-band", true, 100.267, 79650)]);
        assert!(parse_rows("[", "test").is_err());
        assert!(parse_rows("[{\"workload\":1}]", "test").is_err());
        assert_eq!(parse_rows("[]", "test").unwrap(), vec![]);
    }

    #[test]
    fn string_escapes_are_decoded() {
        let src = r#"[{"workload":"say \"hi\" \\ \/ \n\té done",
            "indexed":false,"total_ms":1.0,"join_candidates":2}]"#;
        let rows = parse_rows(src, "test").unwrap();
        assert_eq!(rows[0].workload, "say \"hi\" \\ / \n\té done");
        // escaped keys decode too
        let keyed = r#"[{"workload":"w","indexed":true,"total_ms":1.0,"join_candidates":0}]"#;
        assert_eq!(parse_rows(keyed, "test").unwrap()[0].workload, "w");
        // malformed escapes still error
        assert!(parse_rows(
            r#"[{"workload":"bad \x","indexed":true,"total_ms":1,"join_candidates":0}]"#,
            "test"
        )
        .is_err());
        assert!(parse_rows(
            r#"[{"workload":"bad \u12","indexed":true,"total_ms":1,"join_candidates":0}]"#,
            "test"
        )
        .is_err());
        assert!(parse_rows(r#"[{"workload":"bad \"#, "test").is_err());
    }

    #[test]
    fn gate_passes_on_identical_and_on_noise_within_tolerance() {
        let base = vec![row("w", true, 10.0, 100), row("w", false, 50.0, 500)];
        assert!(check(&base, &base).is_empty());
        // +40% wall clock and fewer candidates: still fine
        let fresh = vec![row("w", true, 14.0, 90), row("w", false, 70.0, 500)];
        assert!(check(&fresh, &base).is_empty());
    }

    #[test]
    fn gate_fails_on_injected_time_regression() {
        let base = vec![row("w", true, 10.0, 100)];
        let fresh = vec![row("w", true, 16.0, 100)];
        let v = check(&fresh, &base);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("total_ms regressed"), "{v:?}");
    }

    #[test]
    fn gate_fails_on_candidate_growth_even_unindexed() {
        let base = vec![row("w", false, 50.0, 500)];
        let fresh = vec![row("w", false, 10.0, 501)];
        let v = check(&fresh, &base);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("join_candidates grew"), "{v:?}");
    }

    #[test]
    fn gate_fails_on_missing_workload_and_ignores_unindexed_time() {
        let base = vec![row("gone", true, 10.0, 100), row("w", false, 50.0, 500)];
        // unindexed wall clock may drift freely — only candidates matter
        let fresh = vec![row("w", false, 500.0, 500)];
        let v = check(&fresh, &base);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("missing from fresh"), "{v:?}");
    }

    #[test]
    fn bless_diff_covers_changed_new_and_dropped_rows() {
        let base = vec![row("w", true, 10.0, 100), row("gone", false, 5.0, 50)];
        let fresh = vec![row("w", true, 12.0, 90), row("new", true, 1.0, 10)];
        let lines = bless_diff(&fresh, &base);
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("total_ms 10.000 -> 12.000"), "{lines:?}");
        assert!(lines[0].contains("join_candidates 100 -> 90"), "{lines:?}");
        assert!(lines[1].contains("new row"), "{lines:?}");
        assert!(lines[2].contains("dropped from baseline"), "{lines:?}");
        // blessing from scratch: every row is new
        let scratch = bless_diff(&fresh, &[]);
        assert!(scratch.iter().all(|l| l.contains("new row")), "{scratch:?}");
    }
}
