//! Typed values stored in relation attributes.
//!
//! Ariel supports a small scalar type system (the paper's examples use
//! integers, floats and strings). `Value` is the runtime representation; the
//! declared attribute type is [`crate::schema::AttrType`].

use crate::fx;
use crate::intern::{self, Symbol};
use std::cmp::Ordering;
use std::fmt;

/// A single attribute value.
///
/// `Null` is included for completeness of the relational substrate (missing
/// attribute in an `append`), and sorts before every non-null value.
///
/// Strings come in two runtime representations that are fully
/// interchangeable under `=`, ordering and hashing: an owned [`Value::Str`]
/// (what the parser produces for literals) and an interned [`Value::Sym`]
/// (what relations store when interning is on — see
/// [`crate::Relation::set_intern_strings`]). A `Str` and a `Sym` with the
/// same content are equal, compare equal, and hash alike, so join-index
/// buckets keyed by one are probed correctly by the other.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL-style null / missing value.
    Null,
    /// Boolean value.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// Variable-length string, owned.
    Str(String),
    /// Interned string: a `Copy` handle into the global symbol table
    /// (`storage::intern`). Equality is one id compare, hashing one
    /// integer fold, and no per-value heap allocation.
    Sym(Symbol),
}

impl Value {
    /// Name of the runtime type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) | Value::Sym(_) => "string",
        }
    }

    /// Interned string value: interns `s` into the global symbol table.
    pub fn interned(s: &str) -> Value {
        Value::Sym(intern::intern(s))
    }

    /// Convert an owned `Str` into its interned `Sym` form in place; other
    /// variants are untouched. Used at tuple-construction boundaries when
    /// interning is on.
    pub fn intern_in_place(&mut self) {
        if let Value::Str(s) = self {
            *self = Value::Sym(intern::intern(s));
        }
    }

    /// True iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, if it is `Int` or `Float`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view of the value, if it is `Int`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view of the value, if it is `Str` or `Sym`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Sym(sym) => Some(sym.as_str()),
            _ => None,
        }
    }

    /// Boolean view of the value, if it is `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Approximate heap + inline size of this value in bytes; used by the
    /// benchmark harness to account for α-memory storage (the quantity the
    /// paper's virtual α-memory nodes exist to save).
    pub fn heap_size(&self) -> usize {
        let inline = std::mem::size_of::<Value>();
        match self {
            Value::Str(s) => inline + s.capacity(),
            // a Sym owns no heap: the single canonical copy lives in the
            // global symbol table (counted once, by `intern::stats`)
            _ => inline,
        }
    }

    /// Total ordering used by sort-merge joins, B-tree indexes and interval
    /// bounds. Cross-type numeric comparisons (`Int` vs `Float`) compare
    /// numerically; otherwise ordering is by type rank then value.
    /// `Null` sorts first. NaN floats sort after all other floats.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            // Interned vs interned: equal ids mean equal content; otherwise
            // resolve through the table and compare content, so Sym ordering
            // agrees with Str ordering.
            (Sym(a), Sym(b)) => {
                if a == b {
                    Ordering::Equal
                } else {
                    a.as_str().cmp(b.as_str())
                }
            }
            // Mixed representations compare by content: a literal `Str`
            // probe must order/equal the interned twin a relation stores.
            (Str(a), Sym(b)) => a.as_str().cmp(b.as_str()),
            (Sym(a), Str(b)) => a.as_str().cmp(b.as_str()),
            // Distinct non-comparable types: rank them so the order is total.
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) | Value::Sym(_) => 3,
        }
    }

    /// Equality as used by the query language (`=`). Numeric values compare
    /// numerically across `Int`/`Float`; `Null` never equals anything
    /// (including `Null`), per SQL-style semantics.
    pub fn sql_eq(&self, other: &Value) -> bool {
        if self.is_null() || other.is_null() {
            return false;
        }
        self.total_cmp(other) == Ordering::Equal
    }
}

// Equality must agree with `Ord` (which goes through `total_cmp`) and with
// `Hash` (numerically-equal `Int`/`Float` hash alike): a derived `PartialEq`
// would distinguish `Int(15)` from `Float(15.0)` and break both contracts —
// in particular, hash join-index buckets keyed by `Value` would miss
// cross-type probes that `sql_eq` accepts.
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float that are numerically equal must hash alike,
            // because sql_eq treats them as equal join keys.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            // Str and Sym of equal content must hash alike (they are equal
            // values), so both hash the Fx content hash — a Str pays one
            // pass over its bytes, a Sym just replays the hash cached at
            // intern time.
            Value::Str(s) => {
                3u8.hash(state);
                fx::hash_bytes(s.as_bytes()).hash(state);
            }
            Value::Sym(sym) => {
                3u8.hash(state);
                sym.content_hash().hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Sym(sym) => write!(f, "\"{sym}\""),
        }
    }
}

impl From<Symbol> for Value {
    fn from(v: Symbol) -> Self {
        Value::Sym(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_sorts_first() {
        assert_eq!(Value::Null.total_cmp(&Value::Int(i64::MIN)), Ordering::Less);
        assert_eq!(Value::Int(0).total_cmp(&Value::Null), Ordering::Greater);
        assert_eq!(Value::Null.total_cmp(&Value::Null), Ordering::Equal);
    }

    #[test]
    fn numeric_cross_type_compare() {
        assert_eq!(Value::Int(3).total_cmp(&Value::Float(3.0)), Ordering::Equal);
        assert_eq!(Value::Int(3).total_cmp(&Value::Float(3.5)), Ordering::Less);
        assert_eq!(
            Value::Float(4.0).total_cmp(&Value::Int(3)),
            Ordering::Greater
        );
    }

    #[test]
    fn numeric_cross_type_hash_matches_eq() {
        let a = Value::Int(42);
        let b = Value::Float(42.0);
        assert!(a.sql_eq(&b));
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn null_never_sql_equal() {
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert!(!Value::Null.sql_eq(&Value::Int(0)));
    }

    #[test]
    fn string_ordering() {
        assert!(Value::from("abc") < Value::from("abd"));
        assert!(Value::from("abc") < Value::from("abcd"));
    }

    #[test]
    fn mixed_type_ordering_is_total() {
        let mut vals = [
            Value::from("z"),
            Value::Int(1),
            Value::Null,
            Value::Bool(true),
            Value::Float(0.5),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals.last().unwrap(), &Value::from("z"));
    }

    #[test]
    fn nan_ordering_is_total() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.total_cmp(&nan), Ordering::Equal);
        assert_eq!(Value::Float(1.0).total_cmp(&nan), Ordering::Less);
    }

    #[test]
    fn heap_size_counts_string_capacity() {
        let s = Value::from("hello world");
        assert!(s.heap_size() > Value::Int(1).heap_size());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::from("x").to_string(), "\"x\"");
        assert_eq!(Value::Null.to_string(), "null");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_i64(), Some(5));
        assert_eq!(Value::Int(5).as_f64(), Some(5.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::from("s").as_str(), Some("s"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::from("s").as_i64(), None);
    }

    #[test]
    fn interned_equals_owned() {
        let owned = Value::from("sym-eq-test");
        let interned = Value::interned("sym-eq-test");
        assert!(matches!(interned, Value::Sym(_)));
        assert_eq!(owned, interned);
        assert!(owned.sql_eq(&interned));
        assert_eq!(owned.total_cmp(&interned), Ordering::Equal);
        assert_ne!(interned, Value::interned("sym-eq-other"));
    }

    #[test]
    fn interned_hash_matches_owned() {
        for s in ["", "a", "sym-hash-test", "une chaîne accentuée"] {
            let owned = Value::from(s);
            let interned = Value::interned(s);
            assert_eq!(hash_of(&owned), hash_of(&interned), "content {s:?}");
        }
        assert_ne!(
            hash_of(&Value::interned("sym-hash-a")),
            hash_of(&Value::interned("sym-hash-b"))
        );
    }

    #[test]
    fn interned_ordering_matches_owned() {
        let strs = ["", "a", "ab", "b", "z-sym-ord"];
        for a in strs {
            for b in strs {
                assert_eq!(
                    Value::interned(a).total_cmp(&Value::interned(b)),
                    Value::from(a).total_cmp(&Value::from(b)),
                    "sym/sym {a:?} vs {b:?}"
                );
                assert_eq!(
                    Value::from(a).total_cmp(&Value::interned(b)),
                    Value::from(a).total_cmp(&Value::from(b)),
                    "str/sym {a:?} vs {b:?}"
                );
                assert_eq!(
                    Value::interned(a).total_cmp(&Value::from(b)),
                    Value::from(a).total_cmp(&Value::from(b)),
                    "sym/str {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn interned_type_and_display_match_owned() {
        let interned = Value::interned("disp");
        assert_eq!(interned.type_name(), "string");
        assert_eq!(interned.to_string(), "\"disp\"");
        assert_eq!(interned.as_str(), Some("disp"));
        // a Sym carries no per-value heap payload
        assert!(interned.heap_size() < Value::from("disp-but-on-the-heap").heap_size());
        // mixed-type total order still ranks strings last
        assert!(Value::Int(1) < Value::interned("a"));
        assert!(Value::Null < Value::interned(""));
    }

    #[test]
    fn intern_in_place_converts_strings_only() {
        let mut v = Value::from("in-place");
        v.intern_in_place();
        assert!(matches!(v, Value::Sym(_)));
        assert_eq!(v.as_str(), Some("in-place"));
        let mut n = Value::Int(3);
        n.intern_in_place();
        assert_eq!(n, Value::Int(3));
    }
}
