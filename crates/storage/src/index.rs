//! Secondary indexes over a relation attribute.
//!
//! The 1992 Ariel prototype lacked indexes (the paper calls this out as the
//! reason its measured relations are tiny). Our substrate provides hash and
//! B-tree indexes so the "with large tables and appropriate indexes …
//! similar results are expected" claim, and the virtual-α-memory index-scan
//! optimization (§4.2), can actually be exercised.

use crate::tuple::Tid;
use crate::value::Value;
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

/// Kind of index structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// Hash index: equality probes only.
    Hash,
    /// B-tree index: equality and range probes.
    BTree,
}

/// A secondary index on a single attribute of a relation.
///
/// The relation keeps indexes synchronized on every insert/delete/update.
#[derive(Debug)]
pub struct Index {
    attr: usize,
    kind: IndexKind,
    repr: Repr,
}

#[derive(Debug)]
enum Repr {
    Hash(HashMap<Value, Vec<Tid>>),
    BTree(BTreeMap<Value, Vec<Tid>>),
}

impl Index {
    /// New empty index on attribute position `attr`.
    pub fn new(attr: usize, kind: IndexKind) -> Self {
        let repr = match kind {
            IndexKind::Hash => Repr::Hash(HashMap::new()),
            IndexKind::BTree => Repr::BTree(BTreeMap::new()),
        };
        Index { attr, kind, repr }
    }

    /// Attribute position this index covers.
    pub fn attr(&self) -> usize {
        self.attr
    }

    /// Index kind.
    pub fn kind(&self) -> IndexKind {
        self.kind
    }

    /// Whether this index can answer range probes.
    pub fn supports_range(&self) -> bool {
        self.kind == IndexKind::BTree
    }

    pub(crate) fn insert(&mut self, key: Value, tid: Tid) {
        match &mut self.repr {
            Repr::Hash(m) => m.entry(key).or_default().push(tid),
            Repr::BTree(m) => m.entry(key).or_default().push(tid),
        }
    }

    pub(crate) fn remove(&mut self, key: &Value, tid: Tid) {
        let bucket = match &mut self.repr {
            Repr::Hash(m) => m.get_mut(key),
            Repr::BTree(m) => m.get_mut(key),
        };
        if let Some(b) = bucket {
            if let Some(pos) = b.iter().position(|&t| t == tid) {
                b.swap_remove(pos);
            }
            if b.is_empty() {
                match &mut self.repr {
                    Repr::Hash(m) => {
                        m.remove(key);
                    }
                    Repr::BTree(m) => {
                        m.remove(key);
                    }
                }
            }
        }
    }

    /// All TIDs whose indexed attribute equals `key`.
    pub fn probe_eq(&self, key: &Value) -> Vec<Tid> {
        match &self.repr {
            Repr::Hash(m) => m.get(key).cloned().unwrap_or_default(),
            Repr::BTree(m) => m.get(key).cloned().unwrap_or_default(),
        }
    }

    /// All TIDs whose indexed attribute falls within the given bounds.
    /// Only supported for B-tree indexes; hash indexes return `None`.
    pub fn probe_range(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> Option<Vec<Tid>> {
        match &self.repr {
            Repr::Hash(_) => None,
            Repr::BTree(m) => {
                // BTreeMap panics if lo > hi; normalize empty ranges.
                if let (
                    Bound::Included(l) | Bound::Excluded(l),
                    Bound::Included(h) | Bound::Excluded(h),
                ) = (lo, hi)
                {
                    if l > h {
                        return Some(Vec::new());
                    }
                }
                Some(
                    m.range::<Value, _>((lo, hi))
                        .flat_map(|(_, tids)| tids.iter().copied())
                        .collect(),
                )
            }
        }
    }

    /// Number of distinct keys currently indexed.
    pub fn distinct_keys(&self) -> usize {
        match &self.repr {
            Repr::Hash(m) => m.len(),
            Repr::BTree(m) => m.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated(kind: IndexKind) -> Index {
        let mut ix = Index::new(0, kind);
        for i in 0..10i64 {
            ix.insert(Value::Int(i % 5), Tid(i as u64));
        }
        ix
    }

    #[test]
    fn eq_probe_hash() {
        let ix = populated(IndexKind::Hash);
        let mut tids = ix.probe_eq(&Value::Int(3));
        tids.sort();
        assert_eq!(tids, vec![Tid(3), Tid(8)]);
        assert!(ix.probe_eq(&Value::Int(99)).is_empty());
    }

    #[test]
    fn eq_probe_btree() {
        let ix = populated(IndexKind::BTree);
        let mut tids = ix.probe_eq(&Value::Int(0));
        tids.sort();
        assert_eq!(tids, vec![Tid(0), Tid(5)]);
    }

    #[test]
    fn range_probe_btree() {
        let ix = populated(IndexKind::BTree);
        let v1 = Value::Int(1);
        let v3 = Value::Int(3);
        let tids = ix
            .probe_range(Bound::Included(&v1), Bound::Excluded(&v3))
            .unwrap();
        // keys 1 and 2, two tids each
        assert_eq!(tids.len(), 4);
    }

    #[test]
    fn range_probe_unbounded() {
        let ix = populated(IndexKind::BTree);
        let tids = ix.probe_range(Bound::Unbounded, Bound::Unbounded).unwrap();
        assert_eq!(tids.len(), 10);
    }

    #[test]
    fn range_probe_empty_interval() {
        let ix = populated(IndexKind::BTree);
        let v3 = Value::Int(3);
        let v1 = Value::Int(1);
        let tids = ix
            .probe_range(Bound::Included(&v3), Bound::Included(&v1))
            .unwrap();
        assert!(tids.is_empty());
    }

    #[test]
    fn hash_has_no_range() {
        let ix = populated(IndexKind::Hash);
        assert!(ix.probe_range(Bound::Unbounded, Bound::Unbounded).is_none());
        assert!(!ix.supports_range());
    }

    #[test]
    fn remove_shrinks_bucket_and_map() {
        let mut ix = populated(IndexKind::BTree);
        assert_eq!(ix.distinct_keys(), 5);
        ix.remove(&Value::Int(3), Tid(3));
        assert_eq!(ix.probe_eq(&Value::Int(3)), vec![Tid(8)]);
        ix.remove(&Value::Int(3), Tid(8));
        assert!(ix.probe_eq(&Value::Int(3)).is_empty());
        assert_eq!(ix.distinct_keys(), 4);
    }

    #[test]
    fn remove_missing_is_noop() {
        let mut ix = populated(IndexKind::Hash);
        ix.remove(&Value::Int(3), Tid(999));
        assert_eq!(ix.probe_eq(&Value::Int(3)).len(), 2);
        ix.remove(&Value::Int(77), Tid(0));
    }
}
