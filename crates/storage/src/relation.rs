//! Heap relations: slotted tuple storage with stable TIDs and maintained
//! secondary indexes.

use crate::error::{StorageError, StorageResult};
use crate::index::{Index, IndexKind};
use crate::schema::SchemaRef;
use crate::tuple::{Tid, Tuple};
use crate::value::Value;
use std::collections::HashMap;
use std::ops::Bound;

/// An in-memory relation.
///
/// Storage is a slotted vector: deleted slots go on a free list and are
/// reused, but TIDs are never reused, so a TID held in a P-node or an
/// α-memory either resolves to the same logical tuple or to nothing.
#[derive(Debug)]
pub struct Relation {
    name: String,
    schema: SchemaRef,
    slots: Vec<Option<(Tid, Tuple)>>,
    free: Vec<usize>,
    tid_to_slot: HashMap<u64, usize>,
    next_tid: u64,
    indexes: Vec<Index>,
    intern_strings: bool,
}

impl Relation {
    /// Create an empty relation. String interning is on by default (see
    /// [`Relation::set_intern_strings`]).
    pub fn new(name: impl Into<String>, schema: SchemaRef) -> Self {
        Relation {
            name: name.into(),
            schema,
            slots: Vec::new(),
            free: Vec::new(),
            tid_to_slot: HashMap::new(),
            next_tid: 0,
            indexes: Vec::new(),
            intern_strings: true,
        }
    }

    /// Toggle string interning at the tuple-construction boundary. When on
    /// (the default), `insert`/`update` convert every owned `Value::Str`
    /// into its interned `Value::Sym` twin, so everything downstream —
    /// tokens, α-memories, join keys, P-nodes — tests and hashes strings as
    /// integers. Off keeps the legacy owned-string layout (the `BENCH_mem`
    /// comparison baseline). Affects future writes only; equality semantics
    /// are identical either way.
    pub fn set_intern_strings(&mut self, on: bool) {
        self.intern_strings = on;
    }

    /// Whether writes intern strings (see [`Relation::set_intern_strings`]).
    pub fn intern_strings(&self) -> bool {
        self.intern_strings
    }

    fn intern_row(&self, row: &mut [Value]) {
        if self.intern_strings {
            for v in row {
                v.intern_in_place();
            }
        }
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Schema handle.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Number of live tuples.
    pub fn len(&self) -> usize {
        self.tid_to_slot.len()
    }

    /// True iff the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tid_to_slot.is_empty()
    }

    /// Insert a row, returning the new tuple's TID.
    /// The row is schema-checked and widening-coerced.
    pub fn insert(&mut self, row: Vec<Value>) -> StorageResult<Tid> {
        let mut row = self.schema.check_row(row)?;
        self.intern_row(&mut row);
        let tuple = Tuple::new(row);
        let tid = Tid(self.next_tid);
        self.next_tid += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s] = Some((tid, tuple.clone()));
                s
            }
            None => {
                self.slots.push(Some((tid, tuple.clone())));
                self.slots.len() - 1
            }
        };
        self.tid_to_slot.insert(tid.0, slot);
        for ix in &mut self.indexes {
            ix.insert(tuple.get(ix.attr()).clone(), tid);
        }
        Ok(tid)
    }

    /// Fetch a live tuple by TID.
    pub fn get(&self, tid: Tid) -> Option<&Tuple> {
        let slot = *self.tid_to_slot.get(&tid.0)?;
        self.slots[slot].as_ref().map(|(_, t)| t)
    }

    /// Delete a tuple by TID, returning the removed tuple.
    pub fn delete(&mut self, tid: Tid) -> StorageResult<Tuple> {
        let slot = self
            .tid_to_slot
            .remove(&tid.0)
            .ok_or(StorageError::DanglingTid(tid.0))?;
        let (_, tuple) = self.slots[slot].take().expect("live slot");
        self.free.push(slot);
        for ix in &mut self.indexes {
            ix.remove(tuple.get(ix.attr()), tid);
        }
        Ok(tuple)
    }

    /// Replace a tuple in place (same TID), returning the old tuple.
    /// The new row is schema-checked.
    pub fn update(&mut self, tid: Tid, row: Vec<Value>) -> StorageResult<Tuple> {
        let mut row = self.schema.check_row(row)?;
        self.intern_row(&mut row);
        let slot = *self
            .tid_to_slot
            .get(&tid.0)
            .ok_or(StorageError::DanglingTid(tid.0))?;
        let new_tuple = Tuple::new(row);
        let (_, old) = self.slots[slot].take().expect("live slot");
        for ix in &mut self.indexes {
            ix.remove(old.get(ix.attr()), tid);
            ix.insert(new_tuple.get(ix.attr()).clone(), tid);
        }
        self.slots[slot] = Some((tid, new_tuple));
        Ok(old)
    }

    /// Iterate all live tuples in slot order.
    pub fn scan(&self) -> impl Iterator<Item = (Tid, &Tuple)> + '_ {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|(tid, t)| (*tid, t)))
    }

    /// Create a secondary index on `attr`. Backfills existing tuples.
    pub fn create_index(&mut self, attr: &str, kind: IndexKind) -> StorageResult<()> {
        let pos = self.schema.require(attr)?;
        if self.indexes.iter().any(|ix| ix.attr() == pos) {
            return Err(StorageError::IndexExists {
                relation: self.name.clone(),
                attr: attr.to_string(),
            });
        }
        let mut ix = Index::new(pos, kind);
        for (tid, t) in self
            .slots
            .iter()
            .filter_map(|s| s.as_ref().map(|(tid, t)| (*tid, t)))
        {
            ix.insert(t.get(pos).clone(), tid);
        }
        self.indexes.push(ix);
        Ok(())
    }

    /// Index on attribute position, if one exists.
    pub fn index_on(&self, attr: usize) -> Option<&Index> {
        self.indexes.iter().find(|ix| ix.attr() == attr)
    }

    /// Equality index probe: live tuples whose `attr` equals `key`,
    /// if an index on `attr` exists.
    pub fn probe_eq(&self, attr: usize, key: &Value) -> Option<Vec<(Tid, &Tuple)>> {
        let ix = self.index_on(attr)?;
        Some(
            ix.probe_eq(key)
                .into_iter()
                .filter_map(|tid| self.get(tid).map(|t| (tid, t)))
                .collect(),
        )
    }

    /// Range index probe via a B-tree index on `attr`, if one exists.
    pub fn probe_range(
        &self,
        attr: usize,
        lo: Bound<&Value>,
        hi: Bound<&Value>,
    ) -> Option<Vec<(Tid, &Tuple)>> {
        let ix = self.index_on(attr)?;
        let tids = ix.probe_range(lo, hi)?;
        Some(
            tids.into_iter()
                .filter_map(|tid| self.get(tid).map(|t| (tid, t)))
                .collect(),
        )
    }

    /// Approximate heap footprint of the live tuples, in bytes.
    pub fn heap_size(&self) -> usize {
        self.scan().map(|(_, t)| t.heap_size()).sum()
    }

    // ----- snapshot / restore (crash recovery; see `crate::wal`) ---------

    /// Raw slot vector, holes included — the exact physical layout a
    /// snapshot must preserve so scan order and free-slot reuse are
    /// identical after recovery.
    pub fn snapshot_slots(&self) -> &[Option<(Tid, Tuple)>] {
        &self.slots
    }

    /// The free-slot stack, in reuse order (the last entry is popped
    /// first by the next insert).
    pub fn free_slots(&self) -> &[usize] {
        &self.free
    }

    /// The TID the next insert will allocate. Never decreases; snapshots
    /// must carry it so recovered engines keep allocating fresh TIDs.
    pub fn next_tid(&self) -> u64 {
        self.next_tid
    }

    /// Secondary index definitions as (attribute position, kind) pairs —
    /// index *contents* are a pure function of the live tuples and are
    /// rebuilt on restore.
    pub fn index_defs(&self) -> Vec<(usize, IndexKind)> {
        self.indexes
            .iter()
            .map(|ix| (ix.attr(), ix.kind()))
            .collect()
    }

    /// Rebuild a relation from snapshot parts, byte-for-byte equivalent to
    /// the one snapshotted: the slot vector (holes included), the free
    /// list, and the TID counter are taken as-is, so scan order, slot
    /// reuse and TID allocation continue exactly as they would have; the
    /// TID map and secondary indexes are derived from the slots. Errors
    /// if the parts are inconsistent (duplicate or out-of-range TIDs,
    /// free entries pointing at live slots, index positions outside the
    /// schema).
    pub fn restore(
        name: impl Into<String>,
        schema: SchemaRef,
        slots: Vec<Option<(Tid, Tuple)>>,
        free: Vec<usize>,
        next_tid: u64,
        index_defs: &[(usize, IndexKind)],
        intern_strings: bool,
    ) -> StorageResult<Relation> {
        let name = name.into();
        let corrupt = |msg: String| StorageError::Persist(format!("relation `{name}`: {msg}"));
        let mut tid_to_slot = HashMap::with_capacity(slots.len());
        for (i, slot) in slots.iter().enumerate() {
            if let Some((tid, tuple)) = slot {
                if tid.0 >= next_tid {
                    return Err(corrupt(format!(
                        "live tid {} not below next_tid {next_tid}",
                        tid.0
                    )));
                }
                if tuple.values().len() != schema.attrs().len() {
                    return Err(corrupt(format!(
                        "tuple {} has {} values for a {}-attribute schema",
                        tid.0,
                        tuple.values().len(),
                        schema.attrs().len()
                    )));
                }
                if tid_to_slot.insert(tid.0, i).is_some() {
                    return Err(corrupt(format!("duplicate tid {}", tid.0)));
                }
            }
        }
        for &s in &free {
            if slots.get(s).map_or(true, |slot| slot.is_some()) {
                return Err(corrupt(format!("free-list entry {s} is not a hole")));
            }
        }
        let mut indexes = Vec::with_capacity(index_defs.len());
        for &(pos, kind) in index_defs {
            if pos >= schema.attrs().len() {
                return Err(corrupt(format!("index position {pos} outside the schema")));
            }
            let mut ix = Index::new(pos, kind);
            for (tid, t) in slots.iter().filter_map(Option::as_ref) {
                ix.insert(t.get(pos).clone(), *tid);
            }
            indexes.push(ix);
        }
        Ok(Relation {
            name,
            schema,
            slots,
            free,
            tid_to_slot,
            next_tid,
            indexes,
            intern_strings,
        })
    }

    /// Remove every tuple (used by `destroy`/reset paths). TIDs are not
    /// reused afterwards.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.tid_to_slot.clear();
        let kinds: Vec<(usize, IndexKind)> = self
            .indexes
            .iter()
            .map(|ix| (ix.attr(), ix.kind()))
            .collect();
        self.indexes = kinds
            .into_iter()
            .map(|(attr, kind)| Index::new(attr, kind))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, Schema};

    fn emp() -> Relation {
        Relation::new(
            "emp",
            Schema::of(&[
                ("name", AttrType::Str),
                ("sal", AttrType::Float),
                ("dno", AttrType::Int),
            ]),
        )
    }

    fn row(name: &str, sal: f64, dno: i64) -> Vec<Value> {
        vec![name.into(), sal.into(), dno.into()]
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut r = emp();
        let tid = r.insert(row("alice", 50_000.0, 1)).unwrap();
        let t = r.get(tid).unwrap();
        assert_eq!(t.get(0), &Value::from("alice"));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn delete_frees_slot_but_not_tid() {
        let mut r = emp();
        let t1 = r.insert(row("a", 1.0, 1)).unwrap();
        r.delete(t1).unwrap();
        assert!(r.get(t1).is_none());
        let t2 = r.insert(row("b", 2.0, 2)).unwrap();
        assert_ne!(t1, t2, "tids are never reused");
        assert_eq!(r.len(), 1);
        // slot was reused: underlying vector did not grow
        assert_eq!(r.slots.len(), 1);
    }

    #[test]
    fn delete_dangling_errors() {
        let mut r = emp();
        assert!(matches!(
            r.delete(Tid(42)),
            Err(StorageError::DanglingTid(42))
        ));
    }

    #[test]
    fn update_preserves_tid() {
        let mut r = emp();
        let tid = r.insert(row("a", 1.0, 1)).unwrap();
        let old = r.update(tid, row("a", 9.0, 1)).unwrap();
        assert_eq!(old.get(1), &Value::Float(1.0));
        assert_eq!(r.get(tid).unwrap().get(1), &Value::Float(9.0));
    }

    #[test]
    fn scan_skips_deleted() {
        let mut r = emp();
        let t1 = r.insert(row("a", 1.0, 1)).unwrap();
        let _t2 = r.insert(row("b", 2.0, 2)).unwrap();
        r.delete(t1).unwrap();
        let names: Vec<_> = r.scan().map(|(_, t)| t.get(0).clone()).collect();
        assert_eq!(names, vec![Value::from("b")]);
    }

    #[test]
    fn index_maintained_across_dml() {
        let mut r = emp();
        r.create_index("dno", IndexKind::Hash).unwrap();
        let t1 = r.insert(row("a", 1.0, 7)).unwrap();
        let t2 = r.insert(row("b", 2.0, 7)).unwrap();
        assert_eq!(r.probe_eq(2, &Value::Int(7)).unwrap().len(), 2);
        r.update(t1, row("a", 1.0, 8)).unwrap();
        assert_eq!(r.probe_eq(2, &Value::Int(7)).unwrap().len(), 1);
        r.delete(t2).unwrap();
        assert!(r.probe_eq(2, &Value::Int(7)).unwrap().is_empty());
        assert_eq!(r.probe_eq(2, &Value::Int(8)).unwrap().len(), 1);
    }

    #[test]
    fn index_backfills_existing_tuples() {
        let mut r = emp();
        r.insert(row("a", 1.0, 3)).unwrap();
        r.insert(row("b", 2.0, 3)).unwrap();
        r.create_index("dno", IndexKind::BTree).unwrap();
        assert_eq!(r.probe_eq(2, &Value::Int(3)).unwrap().len(), 2);
    }

    #[test]
    fn duplicate_index_rejected() {
        let mut r = emp();
        r.create_index("dno", IndexKind::Hash).unwrap();
        assert!(matches!(
            r.create_index("dno", IndexKind::BTree),
            Err(StorageError::IndexExists { .. })
        ));
    }

    #[test]
    fn range_probe_through_relation() {
        let mut r = emp();
        r.create_index("sal", IndexKind::BTree).unwrap();
        for i in 0..10 {
            r.insert(row("e", (i * 1000) as f64, i)).unwrap();
        }
        let lo = Value::Float(2000.0);
        let hi = Value::Float(5000.0);
        let hits = r
            .probe_range(1, Bound::Excluded(&lo), Bound::Included(&hi))
            .unwrap();
        assert_eq!(hits.len(), 3); // 3000, 4000, 5000
    }

    #[test]
    fn insert_rejects_bad_row() {
        let mut r = emp();
        assert!(r.insert(vec![Value::Int(1)]).is_err());
        assert!(r
            .insert(vec![Value::Int(1), Value::Float(0.0), Value::Int(0)])
            .is_err());
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn clear_empties_but_keeps_index_defs() {
        let mut r = emp();
        r.create_index("dno", IndexKind::Hash).unwrap();
        r.insert(row("a", 1.0, 1)).unwrap();
        r.clear();
        assert!(r.is_empty());
        let tid = r.insert(row("b", 2.0, 5)).unwrap();
        assert_eq!(
            r.probe_eq(2, &Value::Int(5)).unwrap(),
            vec![(tid, r.get(tid).unwrap())]
        );
    }

    #[test]
    fn interning_stores_symbols_transparently() {
        let mut r = emp();
        assert!(r.intern_strings(), "interning is on by default");
        let tid = r.insert(row("ada", 1.0, 1)).unwrap();
        assert!(
            matches!(r.get(tid).unwrap().get(0), Value::Sym(_)),
            "stored value is interned"
        );
        // equality against the owned literal still holds
        assert_eq!(r.get(tid).unwrap().get(0), &Value::from("ada"));
        // update goes through the same boundary
        let old = r.update(tid, row("grace", 2.0, 1)).unwrap();
        assert!(matches!(old.get(0), Value::Sym(_)));
        assert!(matches!(r.get(tid).unwrap().get(0), Value::Sym(_)));
        // legacy mode keeps owned strings
        let mut legacy = emp();
        legacy.set_intern_strings(false);
        let tid = legacy.insert(row("ada", 1.0, 1)).unwrap();
        assert!(matches!(legacy.get(tid).unwrap().get(0), Value::Str(_)));
    }

    #[test]
    fn secondary_index_spans_interned_and_owned_probes() {
        let mut r = emp();
        r.create_index("name", IndexKind::Hash).unwrap();
        let tid = r.insert(row("ada", 1.0, 1)).unwrap();
        // probe with the owned literal finds the interned entry
        assert_eq!(
            r.probe_eq(0, &Value::from("ada")).unwrap(),
            vec![(tid, r.get(tid).unwrap())]
        );
        assert_eq!(
            r.probe_eq(0, &Value::interned("ada")).unwrap().len(),
            1,
            "interned probe too"
        );
    }

    #[test]
    fn heap_size_tracks_tuples() {
        let mut r = emp();
        assert_eq!(r.heap_size(), 0);
        r.insert(row("a", 1.0, 1)).unwrap();
        let one = r.heap_size();
        r.insert(row("b", 2.0, 2)).unwrap();
        assert!(r.heap_size() > one);
    }
}
