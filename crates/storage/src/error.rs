//! Error type for the storage substrate.

use crate::schema::AttrType;
use std::fmt;

/// Errors raised by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// Schema construction failed (duplicate / empty attribute names).
    InvalidSchema(String),
    /// Named attribute does not exist in the schema.
    NoSuchAttribute(String),
    /// Row has the wrong number of values for the schema.
    ArityMismatch {
        /// Schema arity.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// Value type not admissible for the declared attribute type.
    TypeMismatch {
        /// Attribute name.
        attr: String,
        /// Declared attribute type.
        expected: AttrType,
        /// Runtime type supplied.
        got: &'static str,
    },
    /// Named relation does not exist in the catalog.
    NoSuchRelation(String),
    /// Relation already exists in the catalog.
    RelationExists(String),
    /// Tuple identifier does not reference a live tuple.
    DanglingTid(u64),
    /// An index already exists on the given attribute.
    IndexExists {
        /// Relation name.
        relation: String,
        /// Attribute name.
        attr: String,
    },
    /// A snapshot or write-ahead-log record failed to decode, or snapshot
    /// parts are internally inconsistent (see [`crate::wal`]).
    Persist(String),
}

/// Result alias for storage operations.
pub type StorageResult<T> = Result<T, StorageError>;

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::InvalidSchema(m) => write!(f, "invalid schema: {m}"),
            StorageError::NoSuchAttribute(a) => write!(f, "no such attribute: {a}"),
            StorageError::ArityMismatch { expected, got } => {
                write!(f, "arity mismatch: expected {expected} values, got {got}")
            }
            StorageError::TypeMismatch {
                attr,
                expected,
                got,
            } => {
                write!(
                    f,
                    "type mismatch on `{attr}`: expected {expected}, got {got}"
                )
            }
            StorageError::NoSuchRelation(r) => write!(f, "no such relation: {r}"),
            StorageError::RelationExists(r) => write!(f, "relation already exists: {r}"),
            StorageError::DanglingTid(t) => write!(f, "dangling tuple id: {t}"),
            StorageError::IndexExists { relation, attr } => {
                write!(f, "index already exists on {relation}({attr})")
            }
            StorageError::Persist(m) => write!(f, "persistence: {m}"),
        }
    }
}

impl std::error::Error for StorageError {}
