//! A small, fast, non-cryptographic hasher for hot-path hash maps.
//!
//! The match path keys hash maps by small integers and fixed-width packed
//! join keys (see `ariel-network`'s `SmallKey`); the default SipHash is
//! overkill for those and shows up in profiles. This is the Fx
//! multiply-rotate fold used by rustc (public domain construction), written
//! out by hand because the environment is offline — no external crates.
//!
//! Not DoS-resistant: use only for internal structures keyed by trusted
//! data (interner ids, join keys, TIDs), never for user-facing maps fed
//! attacker-controlled strings at a stable seed.

use std::hash::{BuildHasherDefault, Hasher};

/// The Fx multiplier (64-bit golden-ratio-derived constant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One fold step: rotate, xor in the word, multiply.
#[inline]
fn fold(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(5) ^ word).wrapping_mul(SEED)
}

/// Hash a byte slice with the Fx fold, 8 bytes at a time. This is the
/// content hash cached inside interned [`crate::Symbol`]s, and the hash
/// `Value::Str` feeds the `Hasher` state — the two must agree so that a
/// live `String` and its interned twin land in the same bucket.
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = SEED;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h = fold(h, u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rest.len()].copy_from_slice(rest);
        h = fold(h, u64::from_le_bytes(tail));
    }
    fold(h, bytes.len() as u64)
}

/// `Hasher` implementation over the Fx fold.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        self.hash = fold(self.hash, hash_bytes(bytes));
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.hash = fold(self.hash, i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.hash = fold(self.hash, i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.hash = fold(self.hash, i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.hash = fold(self.hash, i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; plug into `HashMap::with_hasher` or the
/// [`FxHashMap`]/[`FxHashSet`] aliases.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed through the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed through the Fx hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_length_sensitive() {
        assert_eq!(hash_bytes(b"hello"), hash_bytes(b"hello"));
        assert_ne!(hash_bytes(b"hello"), hash_bytes(b"hello\0"));
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
    }

    #[test]
    fn spreads_small_ints() {
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..1000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 1000, "no collisions on sequential ints");
    }

    #[test]
    fn map_alias_works() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        m.insert(1, 2);
        assert_eq!(m.get(&1), Some(&2));
        let mut s: FxHashSet<&str> = FxHashSet::default();
        s.insert("a");
        assert!(s.contains("a"));
    }
}
