//! # ariel-storage
//!
//! In-memory relational storage substrate for the Ariel active-DBMS
//! reproduction (Hanson, SIGMOD 1992).
//!
//! The 1992 prototype sat on the EXODUS storage manager; this crate is its
//! stand-in. It provides exactly the surface the rule system needs:
//!
//! * typed [`Value`]s and immutable, cheaply-shared [`Tuple`]s,
//! * heap [`Relation`]s with **stable tuple identifiers** ([`Tid`]) — the
//!   handle the paper's `replace'`/`delete'` commands use to update data
//!   located through the P-node without re-scanning the target relation,
//! * hash and B-tree secondary [`Index`]es, maintained across DML, and
//! * a named [`Catalog`] of relations.
//!
//! Everything is in-memory during normal operation; the [`wal`] module adds
//! an opt-in write-ahead log and snapshot codec for crash recovery (see
//! docs/DURABILITY.md). Persistence stays orthogonal to every quantity the
//! paper measures (see DESIGN.md §2).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod catalog;
pub mod error;
pub mod fx;
pub mod index;
pub mod intern;
pub mod relation;
pub mod schema;
pub mod tuple;
pub mod value;
pub mod wal;

pub use catalog::{Catalog, RelRef};
pub use error::{StorageError, StorageResult};
pub use fx::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use index::{Index, IndexKind};
pub use intern::{intern, InternStats, Symbol};
pub use relation::Relation;
pub use schema::{AttrDef, AttrType, Schema, SchemaRef};
pub use tuple::{Tid, Tuple};
pub use value::Value;
pub use wal::{Durability, WalScan, WalWriter};
