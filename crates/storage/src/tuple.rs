//! Tuples and tuple identifiers.
//!
//! Tuple identifiers (TIDs) are stable for the lifetime of a tuple and are
//! the handle by which the paper's `replace'`/`delete'` commands locate data
//! to update: the P-node stores TIDs alongside values, and the rule-action
//! executor updates through them without re-scanning the relation (§5.1).

use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// Stable identifier of a tuple within one relation.
///
/// TIDs are unique per relation for the lifetime of the [`crate::Relation`]
/// (slots are reused but identifiers are not).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tid(pub u64);

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// An immutable row of values, cheaply cloneable (shared storage).
///
/// Tuples are shared between the base relation, in-flight tokens, α-memory
/// nodes and P-nodes, so sharing rather than copying matters: the
/// discrimination network holds many references to the same row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tuple {
    values: Arc<[Value]>,
}

impl Tuple {
    /// Build a tuple from a row of values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple {
            values: values.into(),
        }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// All values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at an attribute position.
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// New tuple with one value replaced (used by `replace`).
    pub fn with(&self, idx: usize, v: Value) -> Tuple {
        let mut vals: Vec<Value> = self.values.to_vec();
        vals[idx] = v;
        Tuple::new(vals)
    }

    /// Concatenate two tuples (join output; Δ-token new/old pairs).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut vals = Vec::with_capacity(self.arity() + other.arity());
        vals.extend_from_slice(&self.values);
        vals.extend_from_slice(&other.values);
        Tuple::new(vals)
    }

    /// Project a subset of attribute positions into a new tuple.
    pub fn project(&self, idxs: &[usize]) -> Tuple {
        Tuple::new(idxs.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Approximate heap size in bytes (for α-memory storage accounting).
    pub fn heap_size(&self) -> usize {
        std::mem::size_of::<Tuple>() + self.values.iter().map(Value::heap_size).sum::<usize>()
    }

    /// Whether two tuples share the same underlying value storage. A clone
    /// always shares; the zero-copy regression tests use this to assert
    /// that a tuple is never deep-copied between the base relation, the
    /// α-memories and the P-node.
    pub fn shares_storage(&self, other: &Tuple) -> bool {
        Arc::ptr_eq(&self.values, &other.values)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Tuple {
        Tuple::new(vals.iter().map(|&v| Value::Int(v)).collect())
    }

    #[test]
    fn clone_shares_storage() {
        let a = t(&[1, 2, 3]);
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.values, &b.values));
        assert!(a.shares_storage(&b));
        assert!(!a.shares_storage(&t(&[1, 2, 3])), "separate allocations");
    }

    #[test]
    fn with_replaces_single_value() {
        let a = t(&[1, 2, 3]);
        let b = a.with(1, Value::Int(9));
        assert_eq!(b.values(), &[Value::Int(1), Value::Int(9), Value::Int(3)]);
        // original unchanged
        assert_eq!(a.get(1), &Value::Int(2));
    }

    #[test]
    fn concat_appends() {
        let c = t(&[1]).concat(&t(&[2, 3]));
        assert_eq!(c.arity(), 3);
        assert_eq!(c.get(2), &Value::Int(3));
    }

    #[test]
    fn project_picks_positions() {
        let p = t(&[10, 20, 30]).project(&[2, 0]);
        assert_eq!(p.values(), &[Value::Int(30), Value::Int(10)]);
    }

    #[test]
    fn display() {
        assert_eq!(t(&[1, 2]).to_string(), "(1, 2)");
        assert_eq!(Tid(5).to_string(), "t5");
    }
}
