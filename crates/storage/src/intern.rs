//! Global string interning: the symbol table behind `Value::Sym`.
//!
//! The match path tests, hashes and compares the same handful of string
//! values (department names, job titles, channel names) millions of times
//! per benchmark run. Interning replaces each distinct string with a
//! [`Symbol`] — a `Copy` handle carrying the table id and the cached
//! content hash — so equality is one integer compare, hashing is one
//! integer fold, and an α-memory entry no longer owns a heap copy of the
//! string (the side table owns the single canonical copy).
//!
//! The table is global and append-only: interned strings live for the
//! process (`Box::leak`), which is exactly the lifetime of the rule
//! network that keys on them. Lookups on the hot path never touch the
//! table at all — the id and the hash travel inside the `Symbol`; only
//! ordering, display and `as_str` resolve through it.

use crate::fx;
use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

/// An interned string: a dense table id plus the cached Fx content hash.
///
/// Two symbols are equal iff their ids are equal (the table never maps one
/// string to two ids). The hash rides along so `Value::Sym` can feed
/// hashers without a table lookup; it equals [`fx::hash_bytes`] of the
/// string's bytes, which is also what `Value::Str` hashes — so a live
/// string and its interned twin land in the same hash bucket.
#[derive(Debug, Clone, Copy)]
pub struct Symbol {
    id: u32,
    hash: u64,
}

impl Symbol {
    /// Dense table id (0-based, in first-interned order).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Cached content hash (`fx::hash_bytes` of the string's bytes).
    pub fn content_hash(&self) -> u64 {
        self.hash
    }

    /// The interned string. `'static` because the table leaks its strings
    /// for the life of the process.
    pub fn as_str(&self) -> &'static str {
        table()
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .resolve(self.id)
    }
}

impl PartialEq for Symbol {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for Symbol {}

impl std::hash::Hash for Symbol {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.hash.hash(state);
    }
}

impl std::fmt::Display for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Size snapshot of the global symbol table (for `\stats bytes` and
/// `BENCH_mem.json`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InternStats {
    /// Distinct strings interned so far.
    pub symbols: usize,
    /// Total bytes held by the table: string payloads plus the per-entry
    /// bookkeeping (`&'static str` in the vec, map entry).
    pub bytes: usize,
}

#[derive(Default)]
struct Interner {
    /// Content → id. Keys borrow the leaked strings, so each string is
    /// stored once.
    map: HashMap<&'static str, u32, fx::FxBuildHasher>,
    /// Id → content, dense.
    strs: Vec<&'static str>,
    /// Cumulative payload bytes (string contents only).
    payload: usize,
}

fn table() -> &'static RwLock<Interner> {
    static TABLE: OnceLock<RwLock<Interner>> = OnceLock::new();
    TABLE.get_or_init(|| RwLock::new(Interner::default()))
}

impl Interner {
    fn resolve(&self, id: u32) -> &'static str {
        self.strs[id as usize]
    }
}

/// Intern a string, returning its symbol. Idempotent: the same content
/// always yields the same id. Thread-safe; concurrent interns of new
/// strings serialize on a write lock, repeat interns take a read lock.
pub fn intern(s: &str) -> Symbol {
    let hash = fx::hash_bytes(s.as_bytes());
    {
        let t = table().read().unwrap_or_else(|e| e.into_inner());
        if let Some(&id) = t.map.get(s) {
            return Symbol { id, hash };
        }
    }
    let mut t = table().write().unwrap_or_else(|e| e.into_inner());
    if let Some(&id) = t.map.get(s) {
        return Symbol { id, hash };
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    let id = u32::try_from(t.strs.len()).expect("interner overflow: > 4G distinct strings");
    t.strs.push(leaked);
    t.map.insert(leaked, id);
    t.payload += leaked.len();
    Symbol { id, hash }
}

/// Rebuild a symbol from a table id (used by `SmallKey` decoding). Panics
/// if the id was never issued by [`intern`].
pub fn symbol_from_id(id: u32) -> Symbol {
    let t = table().read().unwrap_or_else(|e| e.into_inner());
    let s = t.resolve(id);
    Symbol {
        id,
        hash: fx::hash_bytes(s.as_bytes()),
    }
}

/// Size snapshot of the global table.
pub fn stats() -> InternStats {
    let t = table().read().unwrap_or_else(|e| e.into_inner());
    let per_entry = std::mem::size_of::<&'static str>() // strs vec slot
        + std::mem::size_of::<(&'static str, u32)>(); // map entry, approx.
    InternStats {
        symbols: t.strs.len(),
        bytes: t.payload + t.strs.len() * per_entry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idempotent_and_distinct() {
        let a = intern("alpha-intern-test");
        let b = intern("alpha-intern-test");
        let c = intern("beta-intern-test");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "alpha-intern-test");
        assert_eq!(c.as_str(), "beta-intern-test");
    }

    #[test]
    fn hash_matches_content_hash() {
        let s = "gamma-intern-test";
        let sym = intern(s);
        assert_eq!(sym.content_hash(), fx::hash_bytes(s.as_bytes()));
        // the Hash impl writes exactly the content hash
        use std::hash::{Hash, Hasher};
        let mut h = fx::FxHasher::default();
        sym.hash(&mut h);
        let mut h2 = fx::FxHasher::default();
        sym.content_hash().hash(&mut h2);
        assert_eq!(h.finish(), h2.finish());
    }

    #[test]
    fn from_id_round_trips() {
        let sym = intern("delta-intern-test");
        let back = symbol_from_id(sym.id());
        assert_eq!(sym, back);
        assert_eq!(back.content_hash(), sym.content_hash());
    }

    #[test]
    fn stats_grow() {
        let before = stats();
        intern("epsilon-intern-test-unique-payload");
        let after = stats();
        assert!(after.symbols >= before.symbols);
        assert!(after.bytes > 0);
    }

    #[test]
    fn concurrent_intern_is_consistent() {
        let ids: Vec<u32> = std::thread::scope(|scope| {
            (0..8)
                .map(|_| scope.spawn(|| intern("zeta-concurrent-test").id()))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
