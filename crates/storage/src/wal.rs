//! Write-ahead log and snapshot codec (crash recovery).
//!
//! The 1992 Ariel sat on EXODUS persistent objects; this module is the
//! reproduction's durability substrate. It provides two things:
//!
//! * **A write-ahead log** ([`WalWriter`] / [`read_log`]): an append-only
//!   file of length-prefixed, CRC32-checksummed binary records. The engine
//!   appends one record per committed transition (the resolved DML
//!   commands — the `[I, M]` Δ-set source), fsync-gated by a
//!   [`Durability`] policy. Reading tolerates a **torn tail**: scanning
//!   stops at the first truncated or checksum-failing record and reports
//!   the valid prefix length, so a crash mid-append loses at most the
//!   record being written — never earlier ones.
//! * **A snapshot codec** ([`encode_relation`] / [`decode_relation`] and
//!   the catalog pair): a binary image of a relation's *physical* state —
//!   the slot vector with holes, the free list, the TID counter, index
//!   definitions — so a restored relation continues scan order, slot
//!   reuse and TID allocation exactly where the snapshotted one left off.
//!   Derived state (the TID map, index contents) is rebuilt on decode.
//!
//! The record framing mirrors the server wire protocol
//! (`crates/server/src/protocol.rs`): big-endian `u32` length prefix, a
//! hard length cap, bounds-checked cursor decoding. The checksum is added
//! here because a log outlives the process that wrote it.
//!
//! Higher layers own record *payloads*: the engine's record schema and
//! the full engine snapshot format live in `ariel::persist`; this module
//! is payload-agnostic. See `docs/DURABILITY.md`.

use crate::catalog::Catalog;
use crate::error::{StorageError, StorageResult};
use crate::index::IndexKind;
use crate::relation::Relation;
use crate::schema::{AttrDef, AttrType, Schema, SchemaRef};
use crate::tuple::{Tid, Tuple};
use crate::value::Value;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// When (if ever) the log fsyncs. The knob the engine exposes as
/// `EngineOptions::durability`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// No logging at all: checkpoints still write snapshots, but no
    /// writer is attached, so transitions cost nothing extra. A crash
    /// loses everything since the last checkpoint. The default.
    #[default]
    Off,
    /// fsync after every appended record: an acked transition survives a
    /// crash. The strongest (and slowest) mode.
    Commit,
    /// fsync every [`BATCH_SYNC_EVERY`] records (and on writer drop): a
    /// crash loses at most the unsynced batch. The middle ground for
    /// churn-heavy workloads.
    Batch,
}

impl Durability {
    /// Parse `"off" | "commit" | "batch"` (the CLI's `--durability` and
    /// `\checkpoint` spellings).
    pub fn parse(s: &str) -> Option<Durability> {
        match s {
            "off" => Some(Durability::Off),
            "commit" => Some(Durability::Commit),
            "batch" => Some(Durability::Batch),
            _ => None,
        }
    }

    /// The CLI spelling ([`Durability::parse`]'s inverse).
    pub fn as_str(&self) -> &'static str {
        match self {
            Durability::Off => "off",
            Durability::Commit => "commit",
            Durability::Batch => "batch",
        }
    }
}

/// Records between fsyncs in [`Durability::Batch`] mode.
pub const BATCH_SYNC_EVERY: u32 = 32;

/// Hard cap on one record's payload. Far above any real transition
/// record; a length prefix beyond it means the log is corrupt, and the
/// scan stops there instead of allocating garbage.
pub const MAX_RECORD_LEN: u32 = 64 << 20;

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 checksum of a byte slice (IEEE polynomial, init/xorout
/// `0xFFFFFFFF` — `crc32(b"123456789") == 0xCBF43926`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Append-only log writer. One record per [`WalWriter::append`]:
///
/// ```text
/// | len: u32 BE | crc32(payload): u32 BE | payload (len bytes) |
/// ```
///
/// fsync cadence follows the [`Durability`] policy; dropping the writer
/// syncs any unsynced batch best-effort.
///
/// Every fsync this writer issues is counted and timed
/// ([`WalWriter::fsyncs`], [`WalWriter::fsync_ns`]) — the durability
/// telemetry the engine folds into `Ariel::metrics_json` and the
/// Prometheus exposition.
#[derive(Debug)]
pub struct WalWriter {
    file: std::fs::File,
    path: PathBuf,
    durability: Durability,
    records: u64,
    bytes: u64,
    unsynced: u32,
    fsyncs: u64,
    fsync_ns: ariel_islist::Histogram,
}

impl WalWriter {
    /// Open a log for appending, creating it if absent. Existing records
    /// are preserved (recovery re-attaches after replaying them);
    /// [`WalWriter::records`] counts appends by *this* writer only.
    pub fn open(path: impl Into<PathBuf>, durability: Durability) -> io::Result<WalWriter> {
        let path = path.into();
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        Ok(WalWriter {
            file,
            path,
            durability,
            records: 0,
            bytes: 0,
            unsynced: 0,
            fsyncs: 0,
            fsync_ns: ariel_islist::Histogram::default(),
        })
    }

    /// `sync_data` with the fsync counter and latency histogram updated.
    fn timed_sync(&mut self) -> io::Result<()> {
        let t0 = std::time::Instant::now();
        let out = self.file.sync_data();
        self.fsyncs += 1;
        self.fsync_ns.record(t0.elapsed().as_nanos() as u64);
        out
    }

    /// Append one record and apply the fsync policy. Errors on an
    /// oversized payload (>[`MAX_RECORD_LEN`]) without writing anything.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        if payload.len() > MAX_RECORD_LEN as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "WAL record of {} bytes exceeds the {MAX_RECORD_LEN}-byte cap",
                    payload.len()
                ),
            ));
        }
        let mut buf = Vec::with_capacity(8 + payload.len());
        buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        buf.extend_from_slice(&crc32(payload).to_be_bytes());
        buf.extend_from_slice(payload);
        self.file.write_all(&buf)?;
        self.records += 1;
        self.bytes += buf.len() as u64;
        match self.durability {
            Durability::Off => {}
            Durability::Commit => self.timed_sync()?,
            Durability::Batch => {
                self.unsynced += 1;
                if self.unsynced >= BATCH_SYNC_EVERY {
                    self.sync()?;
                }
            }
        }
        Ok(())
    }

    /// Force an fsync now (checkpoint boundaries, clean shutdown).
    pub fn sync(&mut self) -> io::Result<()> {
        self.unsynced = 0;
        self.timed_sync()
    }

    /// Records appended by this writer.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Bytes appended by this writer (framing included).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The fsync policy.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// fsyncs issued by this writer (commit-mode appends, batch-boundary
    /// and explicit [`WalWriter::sync`] calls).
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// Latency histogram of those fsyncs, in nanoseconds.
    pub fn fsync_ns(&self) -> &ariel_islist::Histogram {
        &self.fsync_ns
    }
}

impl Drop for WalWriter {
    fn drop(&mut self) {
        if self.unsynced > 0 {
            let _ = self.file.sync_data();
        }
    }
}

/// Result of scanning a log file ([`read_log`]).
#[derive(Debug, Default)]
pub struct WalScan {
    /// Decoded record payloads, in append order, up to the first invalid
    /// record.
    pub records: Vec<Vec<u8>>,
    /// Byte length of the valid prefix. Truncating the file here
    /// ([`truncate_log`]) drops a torn tail without touching good
    /// records.
    pub valid_len: u64,
    /// Whether trailing bytes after the valid prefix were ignored (a torn
    /// final record, or corruption).
    pub torn: bool,
}

/// Scan a log, tolerating a torn tail: reading stops at the first
/// truncated, oversized or checksum-failing record and everything before
/// it is returned. A missing file is an empty log, not an error.
pub fn read_log(path: &Path) -> io::Result<WalScan> {
    let data = match std::fs::read(path) {
        Ok(d) => d,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(WalScan::default()),
        Err(e) => return Err(e),
    };
    let mut scan = WalScan::default();
    let mut pos = 0usize;
    while pos < data.len() {
        if data.len() - pos < 8 {
            scan.torn = true;
            break;
        }
        let len = u32::from_be_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
        if len > MAX_RECORD_LEN as usize || data.len() - pos - 8 < len {
            scan.torn = true;
            break;
        }
        let crc = u32::from_be_bytes(data[pos + 4..pos + 8].try_into().unwrap());
        let payload = &data[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            scan.torn = true;
            break;
        }
        scan.records.push(payload.to_vec());
        pos += 8 + len;
    }
    scan.valid_len = pos as u64;
    Ok(scan)
}

/// Truncate a log to its valid prefix (drop a torn tail found by
/// [`read_log`]) and fsync.
pub fn truncate_log(path: &Path, valid_len: u64) -> io::Result<()> {
    let file = std::fs::OpenOptions::new().write(true).open(path)?;
    file.set_len(valid_len)?;
    file.sync_data()
}

// ----- encode/decode primitives ---------------------------------------------

/// Append a `u8`.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Append a big-endian `u32`.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

/// Append a big-endian `u64`.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

/// Append a `u32`-length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Bounds-checked decode cursor over a snapshot or record payload. Every
/// read fails with [`StorageError::Persist`] instead of panicking, so a
/// corrupt byte is an error the recovery path can report, never a crash.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// New cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> StorageResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(StorageError::Persist(format!(
                "truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> StorageResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a big-endian `u32`.
    pub fn u32(&mut self) -> StorageResult<u32> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a big-endian `u64`.
    pub fn u64(&mut self) -> StorageResult<u64> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> StorageResult<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StorageError::Persist(format!("invalid UTF-8 at offset {}", self.pos)))
    }
}

// ----- value / schema / relation codec ---------------------------------------

/// Append one [`Value`] (tag byte + payload; symbols serialize as their
/// string content and re-intern on decode).
pub fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => put_u8(buf, 0),
        Value::Bool(b) => {
            put_u8(buf, 1);
            put_u8(buf, *b as u8);
        }
        Value::Int(i) => {
            put_u8(buf, 2);
            put_u64(buf, *i as u64);
        }
        Value::Float(x) => {
            put_u8(buf, 3);
            put_u64(buf, x.to_bits());
        }
        Value::Str(s) => {
            put_u8(buf, 4);
            put_str(buf, s);
        }
        // symbols are process-local handles: serialize the string content
        // and re-intern on decode
        Value::Sym(s) => {
            put_u8(buf, 5);
            put_str(buf, s.as_str());
        }
    }
}

/// Read one [`Value`] written by [`put_value`].
pub fn get_value(dec: &mut Dec<'_>) -> StorageResult<Value> {
    Ok(match dec.u8()? {
        0 => Value::Null,
        1 => Value::Bool(dec.u8()? != 0),
        2 => Value::Int(dec.u64()? as i64),
        3 => Value::Float(f64::from_bits(dec.u64()?)),
        4 => Value::Str(dec.str()?),
        5 => Value::interned(&dec.str()?),
        t => return Err(StorageError::Persist(format!("unknown value tag {t}"))),
    })
}

fn attr_type_tag(t: AttrType) -> u8 {
    match t {
        AttrType::Bool => 0,
        AttrType::Int => 1,
        AttrType::Float => 2,
        AttrType::Str => 3,
    }
}

fn attr_type_from(tag: u8) -> StorageResult<AttrType> {
    Ok(match tag {
        0 => AttrType::Bool,
        1 => AttrType::Int,
        2 => AttrType::Float,
        3 => AttrType::Str,
        t => return Err(StorageError::Persist(format!("unknown attr-type tag {t}"))),
    })
}

/// Encode one relation's physical state (schema, slots with holes, free
/// list, TID counter, index definitions, interning flag) into `buf`.
pub fn encode_relation(rel: &Relation, buf: &mut Vec<u8>) {
    put_str(buf, rel.name());
    let attrs = rel.schema().attrs();
    put_u32(buf, attrs.len() as u32);
    for a in attrs {
        put_str(buf, &a.name);
        put_u8(buf, attr_type_tag(a.ty));
    }
    put_u64(buf, rel.next_tid());
    put_u8(buf, rel.intern_strings() as u8);
    let defs = rel.index_defs();
    put_u32(buf, defs.len() as u32);
    for (pos, kind) in defs {
        put_u32(buf, pos as u32);
        put_u8(buf, matches!(kind, IndexKind::BTree) as u8);
    }
    let slots = rel.snapshot_slots();
    put_u32(buf, slots.len() as u32);
    for slot in slots {
        match slot {
            None => put_u8(buf, 0),
            Some((tid, tuple)) => {
                put_u8(buf, 1);
                put_u64(buf, tid.0);
                for v in tuple.values() {
                    put_value(buf, v);
                }
            }
        }
    }
    let free = rel.free_slots();
    put_u32(buf, free.len() as u32);
    for &s in free {
        put_u32(buf, s as u32);
    }
}

/// Decode one relation written by [`encode_relation`], rebuilding derived
/// state (TID map, index contents) via [`Relation::restore`].
pub fn decode_relation(dec: &mut Dec<'_>) -> StorageResult<Relation> {
    let name = dec.str()?;
    let n_attrs = dec.u32()? as usize;
    let mut attrs = Vec::with_capacity(n_attrs);
    for _ in 0..n_attrs {
        let attr_name = dec.str()?;
        let ty = attr_type_from(dec.u8()?)?;
        attrs.push(AttrDef::new(attr_name, ty));
    }
    let schema: SchemaRef = Arc::new(Schema::new(attrs)?);
    let next_tid = dec.u64()?;
    let intern_strings = dec.u8()? != 0;
    let n_indexes = dec.u32()? as usize;
    let mut index_defs = Vec::with_capacity(n_indexes);
    for _ in 0..n_indexes {
        let pos = dec.u32()? as usize;
        let kind = if dec.u8()? != 0 {
            IndexKind::BTree
        } else {
            IndexKind::Hash
        };
        index_defs.push((pos, kind));
    }
    let n_slots = dec.u32()? as usize;
    let arity = schema.attrs().len();
    let mut slots = Vec::with_capacity(n_slots.min(1 << 20));
    for _ in 0..n_slots {
        if dec.u8()? == 0 {
            slots.push(None);
            continue;
        }
        let tid = Tid(dec.u64()?);
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            values.push(get_value(dec)?);
        }
        slots.push(Some((tid, Tuple::new(values))));
    }
    let n_free = dec.u32()? as usize;
    let mut free = Vec::with_capacity(n_free.min(1 << 20));
    for _ in 0..n_free {
        free.push(dec.u32()? as usize);
    }
    Relation::restore(
        name,
        schema,
        slots,
        free,
        next_tid,
        &index_defs,
        intern_strings,
    )
}

/// Encode every relation of a catalog (name-sorted, the catalog's own
/// iteration order) into `buf`.
pub fn encode_catalog(catalog: &Catalog, buf: &mut Vec<u8>) {
    let names = catalog.names();
    put_u32(buf, names.len() as u32);
    for name in names {
        let rel = catalog.get(&name).expect("listed relation");
        encode_relation(&rel.borrow(), buf);
    }
}

/// Decode relations written by [`encode_catalog`] into an existing
/// catalog (errors if any name is already taken).
pub fn decode_into_catalog(dec: &mut Dec<'_>, catalog: &mut Catalog) -> StorageResult<usize> {
    let n = dec.u32()? as usize;
    for _ in 0..n {
        let rel = decode_relation(dec)?;
        catalog.insert_restored(rel)?;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ariel-wal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_and_read_roundtrip() {
        let dir = tmp("roundtrip");
        let path = dir.join("wal.log");
        let payloads: Vec<Vec<u8>> = vec![b"first".to_vec(), vec![], vec![0xAB; 1000]];
        {
            let mut w = WalWriter::open(&path, Durability::Batch).unwrap();
            for p in &payloads {
                w.append(p).unwrap();
            }
            assert_eq!(w.records(), 3);
            assert_eq!(w.bytes(), (8 * 3 + 5 + 1000) as u64);
        }
        let scan = read_log(&path).unwrap();
        assert_eq!(scan.records, payloads);
        assert!(!scan.torn);
        assert_eq!(scan.valid_len, std::fs::metadata(&path).unwrap().len());
        // re-open appends after the existing records
        let mut w = WalWriter::open(&path, Durability::Commit).unwrap();
        w.append(b"later").unwrap();
        drop(w);
        let scan = read_log(&path).unwrap();
        assert_eq!(scan.records.len(), 4);
        assert_eq!(scan.records[3], b"later");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_log_is_empty() {
        let scan = read_log(Path::new("/nonexistent/ariel-wal-test.log")).unwrap();
        assert!(scan.records.is_empty());
        assert!(!scan.torn);
        assert_eq!(scan.valid_len, 0);
    }

    #[test]
    fn torn_tail_at_every_prefix_keeps_whole_records() {
        let dir = tmp("torn");
        let path = dir.join("wal.log");
        {
            let mut w = WalWriter::open(&path, Durability::Off).unwrap();
            w.append(b"alpha").unwrap();
            w.append(b"beta-record").unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        let first_len = 8 + 5; // record one: framing + "alpha"
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let scan = read_log(&path).unwrap();
            let expect = if cut >= full.len() {
                2
            } else if cut >= first_len {
                1
            } else {
                0
            };
            assert_eq!(scan.records.len(), expect, "cut at {cut}");
            assert_eq!(scan.torn, cut != 0 && cut != first_len, "cut at {cut}");
            // truncating to the valid prefix then re-reading is clean
            truncate_log(&path, scan.valid_len).unwrap();
            let again = read_log(&path).unwrap();
            assert_eq!(again.records.len(), expect);
            assert!(!again.torn);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_checksum_stops_the_scan() {
        let dir = tmp("crc");
        let path = dir.join("wal.log");
        {
            let mut w = WalWriter::open(&path, Durability::Off).unwrap();
            w.append(b"good").unwrap();
            w.append(b"flipped").unwrap();
        }
        let mut data = std::fs::read(&path).unwrap();
        let last = data.len() - 1; // flip a payload byte of record two
        data[last] ^= 0x01;
        std::fs::write(&path, &data).unwrap();
        let scan = read_log(&path).unwrap();
        assert_eq!(scan.records, vec![b"good".to_vec()]);
        assert!(scan.torn);
        assert_eq!(scan.valid_len, (8 + 4) as u64);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn absurd_length_prefix_is_treated_as_corruption() {
        let dir = tmp("len");
        let path = dir.join("wal.log");
        let mut data = Vec::new();
        put_u32(&mut data, MAX_RECORD_LEN + 1);
        put_u32(&mut data, 0);
        data.extend_from_slice(&[0u8; 64]);
        std::fs::write(&path, &data).unwrap();
        let scan = read_log(&path).unwrap();
        assert!(scan.records.is_empty());
        assert!(scan.torn);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_append_is_rejected_without_writing() {
        let dir = tmp("big");
        let path = dir.join("wal.log");
        let mut w = WalWriter::open(&path, Durability::Off).unwrap();
        let huge = vec![0u8; MAX_RECORD_LEN as usize + 1];
        assert!(w.append(&huge).is_err());
        assert_eq!(w.records(), 0);
        drop(w);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn sample_relation() -> Relation {
        let schema = Schema::of(&[
            ("name", AttrType::Str),
            ("sal", AttrType::Float),
            ("dno", AttrType::Int),
        ]);
        let mut rel = Relation::new("emp", schema);
        rel.create_index("dno", IndexKind::Hash).unwrap();
        rel.create_index("sal", IndexKind::BTree).unwrap();
        let t0 = rel
            .insert(vec!["ada".into(), 100.0.into(), 1i64.into()])
            .unwrap();
        let _t1 = rel
            .insert(vec!["bob".into(), 200.0.into(), 2i64.into()])
            .unwrap();
        let t2 = rel
            .insert(vec!["cyd".into(), 300.0.into(), 1i64.into()])
            .unwrap();
        // punch two holes so the free list and slot layout are non-trivial
        rel.delete(t0).unwrap();
        rel.delete(t2).unwrap();
        rel
    }

    #[test]
    fn relation_snapshot_preserves_physical_layout() {
        let rel = sample_relation();
        let mut buf = Vec::new();
        encode_relation(&rel, &mut buf);
        let back = decode_relation(&mut Dec::new(&buf)).unwrap();
        assert_eq!(back.name(), rel.name());
        assert_eq!(back.len(), rel.len());
        assert_eq!(back.next_tid(), rel.next_tid());
        assert_eq!(back.free_slots(), rel.free_slots());
        assert_eq!(back.snapshot_slots().len(), rel.snapshot_slots().len());
        let rows: Vec<_> = back.scan().map(|(tid, t)| (tid, t.clone())).collect();
        let orig: Vec<_> = rel.scan().map(|(tid, t)| (tid, t.clone())).collect();
        assert_eq!(rows, orig, "scan order and contents survive");
        assert_eq!(back.index_defs(), rel.index_defs());
        // index contents were rebuilt: probe the hash index
        assert_eq!(back.probe_eq(2, &Value::Int(2)).unwrap().len(), 1);
        // interned strings survive as symbols
        assert!(matches!(
            back.scan().next().unwrap().1.get(0),
            Value::Sym(_)
        ));
        // the next insert reuses the most recent hole and the next TID,
        // exactly like the original would
        let mut rel = rel;
        let mut back = back;
        let a = rel
            .insert(vec!["new".into(), 1.0.into(), 9i64.into()])
            .unwrap();
        let b = back
            .insert(vec!["new".into(), 1.0.into(), 9i64.into()])
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(
            rel.snapshot_slots().iter().position(|s| s.is_some()),
            back.snapshot_slots().iter().position(|s| s.is_some())
        );
        std::mem::drop((rel, back));
    }

    #[test]
    fn relation_snapshot_rejects_corruption() {
        let rel = sample_relation();
        let mut buf = Vec::new();
        encode_relation(&rel, &mut buf);
        // truncation at any prefix errors instead of panicking
        for cut in 0..buf.len() {
            assert!(
                decode_relation(&mut Dec::new(&buf[..cut])).is_err(),
                "cut at {cut}"
            );
        }
        // an unknown value tag errors
        let mut bad = buf.clone();
        let last_tag = bad
            .iter()
            .rposition(|&b| b == 4 || b == 5)
            .expect("a string value tag");
        bad[last_tag] = 99;
        assert!(decode_relation(&mut Dec::new(&bad)).is_err());
    }

    #[test]
    fn restore_rejects_inconsistent_parts() {
        let schema = Schema::of(&[("x", AttrType::Int)]);
        let t = |x: i64| Tuple::new(vec![Value::Int(x)]);
        // tid at/above next_tid
        assert!(Relation::restore(
            "r",
            schema.clone(),
            vec![Some((Tid(5), t(1)))],
            vec![],
            5,
            &[],
            true
        )
        .is_err());
        // duplicate tid
        assert!(Relation::restore(
            "r",
            schema.clone(),
            vec![Some((Tid(0), t(1))), Some((Tid(0), t(2)))],
            vec![],
            1,
            &[],
            true
        )
        .is_err());
        // free entry pointing at a live slot
        assert!(Relation::restore(
            "r",
            schema.clone(),
            vec![Some((Tid(0), t(1)))],
            vec![0],
            1,
            &[],
            true
        )
        .is_err());
        // index position outside the schema
        assert!(Relation::restore(
            "r",
            schema.clone(),
            vec![],
            vec![],
            0,
            &[(3, IndexKind::Hash)],
            true
        )
        .is_err());
        // and a consistent set restores fine
        assert!(Relation::restore(
            "r",
            schema,
            vec![None, Some((Tid(0), t(1)))],
            vec![0],
            1,
            &[(0, IndexKind::Hash)],
            true
        )
        .is_ok());
    }

    #[test]
    fn catalog_roundtrip_and_duplicate_rejection() {
        let mut catalog = Catalog::new();
        catalog
            .create("emp", Schema::of(&[("x", AttrType::Int)]))
            .unwrap();
        catalog
            .create("dept", Schema::of(&[("y", AttrType::Str)]))
            .unwrap();
        catalog
            .require("emp")
            .unwrap()
            .borrow_mut()
            .insert(vec![7i64.into()])
            .unwrap();
        let mut buf = Vec::new();
        encode_catalog(&catalog, &mut buf);
        let mut fresh = Catalog::new();
        assert_eq!(
            decode_into_catalog(&mut Dec::new(&buf), &mut fresh).unwrap(),
            2
        );
        assert_eq!(fresh.names(), catalog.names());
        assert_eq!(fresh.require("emp").unwrap().borrow().len(), 1);
        // decoding into a catalog that already has the name errors
        assert!(decode_into_catalog(&mut Dec::new(&buf), &mut fresh).is_err());
    }
}
