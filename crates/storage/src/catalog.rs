//! The relation catalog: named relations, creation and destruction.
//!
//! Shared handles are [`RelRef`], a thin wrapper over
//! `Arc<RwLock<Relation>>`: the executor reads several relations while the
//! DML layer mutates one, the discrimination network's virtual α-memories
//! scan base relations mid-token-propagation, and the parallel match path
//! (see `docs/CONCURRENCY.md`) lets several worker threads scan relations
//! concurrently. The paper's prototype was single-threaded; the reader —
//! writer lock preserves its semantics (match only ever *reads* relations;
//! all writes happen in the sequential action phase) while making the
//! catalog `Send + Sync`. `RelRef::borrow`/`borrow_mut` keep the names the
//! engine used when the handle was an `Rc<RefCell<_>>`, so call sites read
//! identically.

use crate::error::{StorageError, StorageResult};
use crate::relation::Relation;
use crate::schema::SchemaRef;
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Shared, interior-mutable handle to a relation.
///
/// Cloning is cheap (an `Arc` bump); all clones alias the same relation.
#[derive(Debug, Clone)]
pub struct RelRef(Arc<RwLock<Relation>>);

impl RelRef {
    fn new(rel: Relation) -> Self {
        RelRef(Arc::new(RwLock::new(rel)))
    }

    /// Shared read access. Panics (like `RefCell::borrow` did) if the
    /// current thread already holds the write guard.
    pub fn borrow(&self) -> RwLockReadGuard<'_, Relation> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Exclusive write access.
    pub fn borrow_mut(&self) -> RwLockWriteGuard<'_, Relation> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// Named collection of relations.
#[derive(Debug)]
pub struct Catalog {
    relations: BTreeMap<String, RelRef>,
    intern_strings: bool,
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog {
            relations: BTreeMap::new(),
            intern_strings: true,
        }
    }
}

impl Catalog {
    /// New empty catalog. String interning is on by default (see
    /// [`Catalog::set_intern_strings`]).
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Toggle string interning for every current relation and every
    /// relation created later (see [`Relation::set_intern_strings`]).
    /// Existing tuples keep their representation; equality semantics are
    /// unchanged either way.
    pub fn set_intern_strings(&mut self, on: bool) {
        self.intern_strings = on;
        for rel in self.relations.values() {
            rel.borrow_mut().set_intern_strings(on);
        }
    }

    /// Whether new relations intern strings on write.
    pub fn intern_strings(&self) -> bool {
        self.intern_strings
    }

    /// Create a relation. Errors if the name is taken.
    pub fn create(&mut self, name: &str, schema: SchemaRef) -> StorageResult<RelRef> {
        if self.relations.contains_key(name) {
            return Err(StorageError::RelationExists(name.to_string()));
        }
        let mut relation = Relation::new(name, schema);
        relation.set_intern_strings(self.intern_strings);
        let rel = RelRef::new(relation);
        self.relations.insert(name.to_string(), rel.clone());
        Ok(rel)
    }

    /// Insert an already-built relation under its own name (the
    /// crash-recovery path: [`crate::wal::decode_relation`] rebuilds the
    /// relation, this re-homes it). Errors if the name is taken. The
    /// relation's interning flag is aligned with the catalog's, matching
    /// what [`Catalog::set_intern_strings`] would have done.
    pub fn insert_restored(&mut self, mut relation: Relation) -> StorageResult<RelRef> {
        let name = relation.name().to_string();
        if self.relations.contains_key(&name) {
            return Err(StorageError::RelationExists(name));
        }
        relation.set_intern_strings(self.intern_strings);
        let rel = RelRef::new(relation);
        self.relations.insert(name, rel.clone());
        Ok(rel)
    }

    /// Destroy a relation. Errors if it does not exist.
    pub fn destroy(&mut self, name: &str) -> StorageResult<()> {
        self.relations
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| StorageError::NoSuchRelation(name.to_string()))
    }

    /// Look up a relation by name.
    pub fn get(&self, name: &str) -> Option<RelRef> {
        self.relations.get(name).cloned()
    }

    /// Look up a relation by name, or a typed error.
    pub fn require(&self, name: &str) -> StorageResult<RelRef> {
        self.get(name)
            .ok_or_else(|| StorageError::NoSuchRelation(name.to_string()))
    }

    /// True iff a relation with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Names of all relations, sorted.
    pub fn names(&self) -> Vec<String> {
        self.relations.keys().cloned().collect()
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True iff no relations exist.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

// The whole storage layer is shared by reference across the parallel match
// workers; keep that property machine-checked.
const _: () = {
    const fn assert_sync_send<T: Sync + Send>() {}
    assert_sync_send::<Catalog>();
    assert_sync_send::<RelRef>();
    assert_sync_send::<crate::value::Value>();
    assert_sync_send::<crate::tuple::Tuple>();
    assert_sync_send::<Relation>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, Schema};

    fn schema() -> SchemaRef {
        Schema::of(&[("x", AttrType::Int)])
    }

    #[test]
    fn create_and_lookup() {
        let mut c = Catalog::new();
        c.create("emp", schema()).unwrap();
        assert!(c.contains("emp"));
        assert!(c.get("emp").is_some());
        assert_eq!(c.require("emp").unwrap().borrow().name(), "emp");
    }

    #[test]
    fn duplicate_create_rejected() {
        let mut c = Catalog::new();
        c.create("emp", schema()).unwrap();
        assert!(matches!(
            c.create("emp", schema()),
            Err(StorageError::RelationExists(_))
        ));
    }

    #[test]
    fn destroy_removes() {
        let mut c = Catalog::new();
        c.create("emp", schema()).unwrap();
        c.destroy("emp").unwrap();
        assert!(!c.contains("emp"));
        assert!(matches!(
            c.destroy("emp"),
            Err(StorageError::NoSuchRelation(_))
        ));
    }

    #[test]
    fn handles_alias_same_relation() {
        let mut c = Catalog::new();
        c.create("emp", schema()).unwrap();
        let a = c.get("emp").unwrap();
        let b = c.get("emp").unwrap();
        a.borrow_mut().insert(vec![1i64.into()]).unwrap();
        assert_eq!(b.borrow().len(), 1);
    }

    #[test]
    fn concurrent_reads_share_a_relation() {
        let mut c = Catalog::new();
        c.create("emp", schema()).unwrap();
        let rel = c.get("emp").unwrap();
        for i in 0..100i64 {
            rel.borrow_mut().insert(vec![i.into()]).unwrap();
        }
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        assert_eq!(rel.borrow().len(), 100);
                    }
                });
            }
        });
    }

    #[test]
    fn intern_toggle_applies_to_existing_and_new_relations() {
        let mut c = Catalog::new();
        assert!(c.intern_strings());
        let strs = Schema::of(&[("s", AttrType::Str)]);
        c.create("before", strs.clone()).unwrap();
        c.set_intern_strings(false);
        c.create("after", strs).unwrap();
        assert!(!c.require("before").unwrap().borrow().intern_strings());
        assert!(!c.require("after").unwrap().borrow().intern_strings());
        c.set_intern_strings(true);
        assert!(c.require("after").unwrap().borrow().intern_strings());
    }

    #[test]
    fn names_sorted() {
        let mut c = Catalog::new();
        c.create("zeta", schema()).unwrap();
        c.create("alpha", schema()).unwrap();
        assert_eq!(c.names(), vec!["alpha".to_string(), "zeta".to_string()]);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }
}
