//! The relation catalog: named relations, creation and destruction.
//!
//! The engine is single-threaded (as the paper's prototype was), so shared
//! handles are `Rc<RefCell<Relation>>`: the executor reads several relations
//! while the DML layer mutates one, and the discrimination network's virtual
//! α-memories scan base relations mid-token-propagation.

use crate::error::{StorageError, StorageResult};
use crate::relation::Relation;
use crate::schema::SchemaRef;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Shared, interior-mutable handle to a relation.
pub type RelRef = Rc<RefCell<Relation>>;

/// Named collection of relations.
#[derive(Debug, Default)]
pub struct Catalog {
    relations: BTreeMap<String, RelRef>,
}

impl Catalog {
    /// New empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Create a relation. Errors if the name is taken.
    pub fn create(&mut self, name: &str, schema: SchemaRef) -> StorageResult<RelRef> {
        if self.relations.contains_key(name) {
            return Err(StorageError::RelationExists(name.to_string()));
        }
        let rel = Rc::new(RefCell::new(Relation::new(name, schema)));
        self.relations.insert(name.to_string(), rel.clone());
        Ok(rel)
    }

    /// Destroy a relation. Errors if it does not exist.
    pub fn destroy(&mut self, name: &str) -> StorageResult<()> {
        self.relations
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| StorageError::NoSuchRelation(name.to_string()))
    }

    /// Look up a relation by name.
    pub fn get(&self, name: &str) -> Option<RelRef> {
        self.relations.get(name).cloned()
    }

    /// Look up a relation by name, or a typed error.
    pub fn require(&self, name: &str) -> StorageResult<RelRef> {
        self.get(name)
            .ok_or_else(|| StorageError::NoSuchRelation(name.to_string()))
    }

    /// True iff a relation with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Names of all relations, sorted.
    pub fn names(&self) -> Vec<String> {
        self.relations.keys().cloned().collect()
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True iff no relations exist.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, Schema};

    fn schema() -> SchemaRef {
        Schema::of(&[("x", AttrType::Int)])
    }

    #[test]
    fn create_and_lookup() {
        let mut c = Catalog::new();
        c.create("emp", schema()).unwrap();
        assert!(c.contains("emp"));
        assert!(c.get("emp").is_some());
        assert_eq!(c.require("emp").unwrap().borrow().name(), "emp");
    }

    #[test]
    fn duplicate_create_rejected() {
        let mut c = Catalog::new();
        c.create("emp", schema()).unwrap();
        assert!(matches!(
            c.create("emp", schema()),
            Err(StorageError::RelationExists(_))
        ));
    }

    #[test]
    fn destroy_removes() {
        let mut c = Catalog::new();
        c.create("emp", schema()).unwrap();
        c.destroy("emp").unwrap();
        assert!(!c.contains("emp"));
        assert!(matches!(
            c.destroy("emp"),
            Err(StorageError::NoSuchRelation(_))
        ));
    }

    #[test]
    fn handles_alias_same_relation() {
        let mut c = Catalog::new();
        c.create("emp", schema()).unwrap();
        let a = c.get("emp").unwrap();
        let b = c.get("emp").unwrap();
        a.borrow_mut().insert(vec![1i64.into()]).unwrap();
        assert_eq!(b.borrow().len(), 1);
    }

    #[test]
    fn names_sorted() {
        let mut c = Catalog::new();
        c.create("zeta", schema()).unwrap();
        c.create("alpha", schema()).unwrap();
        assert_eq!(c.names(), vec!["alpha".to_string(), "zeta".to_string()]);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }
}
