//! Relation schemas: attribute names, declared types, and lookup.

use crate::error::{StorageError, StorageResult};
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// Declared type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// Boolean attribute.
    Bool,
    /// 64-bit signed integer attribute.
    Int,
    /// 64-bit IEEE float attribute.
    Float,
    /// Variable-length string attribute.
    Str,
}

impl AttrType {
    /// Whether a runtime value is admissible for this declared type.
    /// `Null` is admissible everywhere; `Int` widens into `Float` columns.
    pub fn admits(&self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (AttrType::Bool, Value::Bool(_))
                | (AttrType::Int, Value::Int(_))
                | (AttrType::Float, Value::Float(_))
                | (AttrType::Float, Value::Int(_))
                | (AttrType::Str, Value::Str(_))
                | (AttrType::Str, Value::Sym(_))
        )
    }

    /// Coerce a value into the declared type where a lossless widening
    /// exists (`Int` → `Float`); otherwise return the value unchanged.
    pub fn coerce(&self, v: Value) -> Value {
        match (self, v) {
            (AttrType::Float, Value::Int(i)) => Value::Float(i as f64),
            (_, v) => v,
        }
    }
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttrType::Bool => "bool",
            AttrType::Int => "int",
            AttrType::Float => "float",
            AttrType::Str => "string",
        };
        f.write_str(s)
    }
}

/// One attribute definition in a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrDef {
    /// Attribute name.
    pub name: String,
    /// Declared type.
    pub ty: AttrType,
}

impl AttrDef {
    /// Build an attribute definition.
    pub fn new(name: impl Into<String>, ty: AttrType) -> Self {
        AttrDef {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered list of attribute definitions.
///
/// Schemas are shared (`Arc`) between the relation, its indexes, plan nodes
/// and discrimination-network nodes; they are immutable once created.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attrs: Vec<AttrDef>,
}

/// Shared handle to a schema.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Build a schema from attribute definitions. Attribute names must be
    /// non-empty and unique.
    pub fn new(attrs: Vec<AttrDef>) -> StorageResult<Self> {
        for (i, a) in attrs.iter().enumerate() {
            if a.name.is_empty() {
                return Err(StorageError::InvalidSchema("empty attribute name".into()));
            }
            if attrs[..i].iter().any(|b| b.name == a.name) {
                return Err(StorageError::InvalidSchema(format!(
                    "duplicate attribute name `{}`",
                    a.name
                )));
            }
        }
        Ok(Schema { attrs })
    }

    /// Convenience constructor from `(name, type)` pairs; panics on invalid
    /// input, intended for tests and examples.
    pub fn of(pairs: &[(&str, AttrType)]) -> SchemaRef {
        Arc::new(
            Schema::new(pairs.iter().map(|(n, t)| AttrDef::new(*n, *t)).collect())
                .expect("valid schema"),
        )
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// All attribute definitions, in declaration order.
    pub fn attrs(&self) -> &[AttrDef] {
        &self.attrs
    }

    /// Position of an attribute by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name == name)
    }

    /// Position of an attribute by name, or a typed error naming the
    /// attribute.
    pub fn require(&self, name: &str) -> StorageResult<usize> {
        self.index_of(name)
            .ok_or_else(|| StorageError::NoSuchAttribute(name.to_string()))
    }

    /// Attribute definition at a position.
    pub fn attr(&self, idx: usize) -> &AttrDef {
        &self.attrs[idx]
    }

    /// Concatenate two schemas (used for join outputs and for the
    /// new/old pair tuples carried by Δ-tokens). Name collisions are
    /// disambiguated by the caller via prefixes.
    pub fn concat(&self, other: &Schema, prefix_a: &str, prefix_b: &str) -> SchemaRef {
        let mut attrs = Vec::with_capacity(self.arity() + other.arity());
        for a in &self.attrs {
            attrs.push(AttrDef::new(format!("{prefix_a}{}", a.name), a.ty));
        }
        for a in &other.attrs {
            attrs.push(AttrDef::new(format!("{prefix_b}{}", a.name), a.ty));
        }
        Arc::new(Schema { attrs })
    }

    /// Validate that a row of values is admissible under this schema and
    /// coerce widening conversions. Returns the coerced row.
    pub fn check_row(&self, row: Vec<Value>) -> StorageResult<Vec<Value>> {
        if row.len() != self.arity() {
            return Err(StorageError::ArityMismatch {
                expected: self.arity(),
                got: row.len(),
            });
        }
        row.into_iter()
            .zip(&self.attrs)
            .map(|(v, a)| {
                let v = a.ty.coerce(v);
                if a.ty.admits(&v) {
                    Ok(v)
                } else {
                    Err(StorageError::TypeMismatch {
                        attr: a.name.clone(),
                        expected: a.ty,
                        got: v.type_name(),
                    })
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emp_schema() -> Schema {
        Schema::new(vec![
            AttrDef::new("name", AttrType::Str),
            AttrDef::new("age", AttrType::Int),
            AttrDef::new("salary", AttrType::Float),
        ])
        .unwrap()
    }

    #[test]
    fn lookup_by_name() {
        let s = emp_schema();
        assert_eq!(s.index_of("age"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert!(s.require("salary").is_ok());
        assert!(matches!(
            s.require("nope"),
            Err(StorageError::NoSuchAttribute(_))
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let r = Schema::new(vec![
            AttrDef::new("a", AttrType::Int),
            AttrDef::new("a", AttrType::Int),
        ]);
        assert!(matches!(r, Err(StorageError::InvalidSchema(_))));
    }

    #[test]
    fn empty_name_rejected() {
        let r = Schema::new(vec![AttrDef::new("", AttrType::Int)]);
        assert!(r.is_err());
    }

    #[test]
    fn check_row_coerces_int_to_float() {
        let s = emp_schema();
        let row = s
            .check_row(vec!["bob".into(), Value::Int(30), Value::Int(100)])
            .unwrap();
        assert_eq!(row[2], Value::Float(100.0));
    }

    #[test]
    fn check_row_rejects_bad_type() {
        let s = emp_schema();
        let r = s.check_row(vec![Value::Int(1), Value::Int(30), Value::Int(1)]);
        assert!(matches!(r, Err(StorageError::TypeMismatch { .. })));
    }

    #[test]
    fn check_row_rejects_bad_arity() {
        let s = emp_schema();
        let r = s.check_row(vec![Value::Int(1)]);
        assert!(matches!(
            r,
            Err(StorageError::ArityMismatch {
                expected: 3,
                got: 1
            })
        ));
    }

    #[test]
    fn null_admissible_everywhere() {
        let s = emp_schema();
        let row = s
            .check_row(vec![Value::Null, Value::Null, Value::Null])
            .unwrap();
        assert!(row.iter().all(Value::is_null));
    }

    #[test]
    fn concat_prefixes_names() {
        let s = emp_schema();
        let pair = s.concat(&s, "new_", "old_");
        assert_eq!(pair.arity(), 6);
        assert_eq!(pair.attr(0).name, "new_name");
        assert_eq!(pair.attr(3).name, "old_name");
    }
}
