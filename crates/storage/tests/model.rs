//! Model-based property test: a [`Relation`] with indexes must behave like
//! a plain `HashMap<Tid, row>` under any operation sequence, and its
//! indexes must always agree with a full scan.

use ariel_storage::{AttrType, IndexKind, Relation, Schema, Tid, Value};
use proptest::prelude::*;
use std::collections::HashMap;
use std::ops::Bound;

#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64),
    Delete(usize),
    Update(usize, i64, i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0i64..50, 0i64..10).prop_map(|(a, b)| Op::Insert(a, b)),
        1 => (0usize..64).prop_map(Op::Delete),
        2 => (0usize..64, 0i64..50, 0i64..10).prop_map(|(p, a, b)| Op::Update(p, a, b)),
    ]
}

proptest! {
    #[test]
    fn relation_matches_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut rel = Relation::new(
            "t",
            Schema::of(&[("a", AttrType::Int), ("b", AttrType::Int)]),
        );
        rel.create_index("a", IndexKind::BTree).unwrap();
        rel.create_index("b", IndexKind::Hash).unwrap();
        let mut model: HashMap<u64, (i64, i64)> = HashMap::new();
        let mut live: Vec<Tid> = Vec::new();

        for op in &ops {
            match op {
                Op::Insert(a, b) => {
                    let tid = rel.insert(vec![Value::Int(*a), Value::Int(*b)]).unwrap();
                    prop_assert!(model.insert(tid.0, (*a, *b)).is_none(), "tid reuse!");
                    live.push(tid);
                }
                Op::Delete(p) => {
                    if live.is_empty() { continue; }
                    let tid = live.swap_remove(p % live.len());
                    let old = rel.delete(tid).unwrap();
                    let m = model.remove(&tid.0).unwrap();
                    prop_assert_eq!(old.get(0).as_i64().unwrap(), m.0);
                    // deleting again must fail
                    prop_assert!(rel.delete(tid).is_err());
                }
                Op::Update(p, a, b) => {
                    if live.is_empty() { continue; }
                    let tid = live[p % live.len()];
                    rel.update(tid, vec![Value::Int(*a), Value::Int(*b)]).unwrap();
                    model.insert(tid.0, (*a, *b));
                }
            }
            // full-state agreement
            prop_assert_eq!(rel.len(), model.len());
            for (tid, (a, b)) in &model {
                let t = rel.get(Tid(*tid)).expect("model tuple live");
                prop_assert_eq!(t.get(0).as_i64().unwrap(), *a);
                prop_assert_eq!(t.get(1).as_i64().unwrap(), *b);
            }
            // index agreement on a few probe keys
            for key in [0i64, 3, 7] {
                let via_index: Vec<u64> = rel
                    .probe_eq(1, &Value::Int(key))
                    .unwrap()
                    .into_iter()
                    .map(|(t, _)| t.0)
                    .collect();
                let mut via_model: Vec<u64> = model
                    .iter()
                    .filter(|(_, (_, b))| *b == key)
                    .map(|(t, _)| *t)
                    .collect();
                let mut via_index = via_index;
                via_index.sort();
                via_model.sort();
                prop_assert_eq!(via_index, via_model, "hash index diverged on b={}", key);
            }
            // range index agreement
            let lo = Value::Int(10);
            let hi = Value::Int(30);
            let mut via_index: Vec<u64> = rel
                .probe_range(0, Bound::Included(&lo), Bound::Excluded(&hi))
                .unwrap()
                .into_iter()
                .map(|(t, _)| t.0)
                .collect();
            let mut via_model: Vec<u64> = model
                .iter()
                .filter(|(_, (a, _))| (10..30).contains(a))
                .map(|(t, _)| *t)
                .collect();
            via_index.sort();
            via_model.sort();
            prop_assert_eq!(via_index, via_model, "btree index diverged");
        }
    }
}
