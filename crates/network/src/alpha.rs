//! α-memory nodes — all seven kinds of §4.3.3.
//!
//! | kind            | stores                      | lifetime            |
//! |-----------------|-----------------------------|---------------------|
//! | `stored-α`      | matching tuples             | persistent          |
//! | `virtual-α`     | nothing (predicate only)    | —                   |
//! | `dynamic-on-α`  | event-matched tuples        | current transition  |
//! | `dynamic-trans-α`| transition pairs           | current transition  |
//! | `simple-α`      | nothing (straight to P-node)| —                   |
//! | `simple-on-α`   | nothing                     | (P-node flushed)    |
//! | `simple-trans-α`| nothing                     | (P-node flushed)    |
//!
//! Entries are keyed by TID: deletion-polarity tokens remove by TID, which
//! sidesteps value-matching fragility when the same tuple is modified in
//! several transitions of one recognize-act cycle.

use crate::pred::SelectionPredicate;
use crate::token::{EventSpecifier, TokenKind};
use ariel_query::{eval_pred, SingleEnv};
use ariel_storage::{Tid, Tuple, Value};
use std::cell::Cell;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a rule within the network (assigned by the engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RuleId(pub u64);

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifier of an α-memory node (network-arena index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AlphaId(pub usize);

/// The seven α-memory kinds of §4.3.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlphaKind {
    /// Standard memory node: collection of tuples matching the predicate.
    Stored,
    /// Virtual memory node: predicate only, contents derived from the base
    /// relation on demand (§4.2).
    Virtual,
    /// Dynamic node for an ON condition; flushed after each transition.
    DynamicOn,
    /// Dynamic node for a transition condition; flushed after each
    /// transition.
    DynamicTrans,
    /// Single-tuple-variable rule: matches go straight to the P-node.
    Simple,
    /// Single-variable ON condition.
    SimpleOn,
    /// Single-variable transition condition.
    SimpleTrans,
}

impl AlphaKind {
    /// Whether this kind keeps a tuple collection.
    pub fn stores_entries(&self) -> bool {
        matches!(
            self,
            AlphaKind::Stored | AlphaKind::DynamicOn | AlphaKind::DynamicTrans
        )
    }

    /// Whether the node's contents (and derived P-node rows) only live for
    /// the current transition.
    pub fn is_dynamic(&self) -> bool {
        matches!(
            self,
            AlphaKind::DynamicOn
                | AlphaKind::DynamicTrans
                | AlphaKind::SimpleOn
                | AlphaKind::SimpleTrans
        )
    }

    /// Whether this is one of the single-variable (`simple-`) kinds.
    pub fn is_simple(&self) -> bool {
        matches!(
            self,
            AlphaKind::Simple | AlphaKind::SimpleOn | AlphaKind::SimpleTrans
        )
    }

    /// Whether this kind represents a transition condition (accepts only Δ
    /// tokens; Fig. 5 marks ± tokens as "don't care").
    pub fn is_trans(&self) -> bool {
        matches!(self, AlphaKind::DynamicTrans | AlphaKind::SimpleTrans)
    }

    /// Whether this kind represents an ON (event) condition.
    pub fn is_on(&self) -> bool {
        matches!(self, AlphaKind::DynamicOn | AlphaKind::SimpleOn)
    }
}

/// Event requirement of an ON-condition node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventReq {
    /// Requires an append event.
    Append,
    /// Requires a delete event.
    Delete,
    /// `replace [(attrs)]` — positions of the watched attributes, `None` to
    /// watch every attribute.
    Replace(Option<Vec<usize>>),
}

impl EventReq {
    /// Whether a token's event specifier satisfies this requirement.
    pub fn admits(&self, ev: &EventSpecifier) -> bool {
        match (self, ev) {
            (EventReq::Append, EventSpecifier::Append) => true,
            (EventReq::Delete, EventSpecifier::Delete) => true,
            (EventReq::Replace(None), EventSpecifier::Replace(_)) => true,
            (EventReq::Replace(Some(watch)), EventSpecifier::Replace(updated)) => {
                // empty updated list = unknown set of attributes: admit
                updated.is_empty() || watch.iter().any(|a| updated.contains(a))
            }
            _ => false,
        }
    }
}

/// One entry in a stored/dynamic α-memory.
#[derive(Debug, Clone, PartialEq)]
pub struct AlphaEntry {
    /// TID of the bound tuple; `None` for tuples bound by ON DELETE (the
    /// tuple no longer exists).
    pub tid: Option<Tid>,
    /// Current tuple value.
    pub tuple: Tuple,
    /// Start-of-transition value (Δ-token entries).
    pub prev: Option<Tuple>,
}

impl AlphaEntry {
    /// Approximate heap footprint in bytes.
    pub fn heap_size(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.tuple.heap_size()
            + self.prev.as_ref().map_or(0, Tuple::heap_size)
    }
}

/// Always-on per-node counters (see `crate::obs` for the two-tier
/// observability design). `Cell` because the join routines hold `&self`.
#[derive(Debug, Clone, Default)]
pub struct AlphaCounters {
    /// α-tests run against this node (selection-network candidates).
    pub tests: Cell<u64>,
    /// α-tests that passed (event gating + predicate).
    pub passes: Cell<u64>,
    /// Entries inserted into the stored memory.
    pub inserted: Cell<u64>,
    /// β-join materializations of this node from its base relation
    /// (virtual nodes only).
    pub virtual_scans: Cell<u64>,
    /// Base-relation tuples examined during those materializations.
    pub scanned_tuples: Cell<u64>,
    /// Candidate bindings served into β-joins (stored or materialized).
    pub join_candidates: Cell<u64>,
    /// Hash join-index probes answered by this node (α-memory join index
    /// for stored/dynamic kinds, base-relation index for virtual kinds).
    pub index_probes: Cell<u64>,
    /// Index probes that found at least one candidate.
    pub index_hits: Cell<u64>,
    /// Join candidates served through an index probe.
    pub indexed_candidates: Cell<u64>,
    /// Join candidates served by full enumeration (no usable index).
    pub scanned_candidates: Cell<u64>,
}

impl AlphaCounters {
    #[inline]
    pub(crate) fn bump(cell: &Cell<u64>, by: u64) {
        cell.set(cell.get() + by);
    }

    /// Zero every counter.
    pub fn reset(&self) {
        self.tests.set(0);
        self.passes.set(0);
        self.inserted.set(0);
        self.virtual_scans.set(0);
        self.scanned_tuples.set(0);
        self.join_candidates.set(0);
        self.index_probes.set(0);
        self.index_hits.set(0);
        self.indexed_candidates.set(0);
        self.scanned_candidates.set(0);
    }
}

/// One hash join index over an α-memory: equi-join key value → keys of the
/// node's entry map (ON DELETE entries have no TID but are still keyed by
/// the dying token's TID, so buckets hold the map key, not `AlphaEntry::tid`).
#[derive(Debug)]
struct JoinIndex {
    attr: usize,
    buckets: HashMap<Value, Vec<u64>>,
}

/// An α-memory node.
#[derive(Debug)]
pub struct AlphaNode {
    /// Owning rule.
    pub rule: RuleId,
    /// Variable index within the rule condition.
    pub var: usize,
    /// Relation this node watches.
    pub rel: String,
    /// Node kind.
    pub kind: AlphaKind,
    /// The single-variable selection predicate (variable remapped to 0).
    pub pred: SelectionPredicate,
    /// Event requirement for ON-condition nodes.
    pub event: Option<EventReq>,
    /// Always-on activity counters.
    pub counters: AlphaCounters,
    entries: HashMap<u64, AlphaEntry>,
    /// Hash join indexes over `entries`, one per registered equi-join
    /// attribute. Maintained incrementally by [`Self::insert`],
    /// [`Self::remove`] and [`Self::flush`]. Null keys are never indexed —
    /// `sql_eq` says `Null` joins nothing, so a Null-keyed entry can only
    /// be reached by a probing conjunct that is false anyway.
    join_indexes: Vec<JoinIndex>,
}

impl AlphaNode {
    /// Create a node; `entries` starts empty.
    pub fn new(
        rule: RuleId,
        var: usize,
        rel: String,
        kind: AlphaKind,
        pred: SelectionPredicate,
        event: Option<EventReq>,
    ) -> Self {
        AlphaNode {
            rule,
            var,
            rel,
            kind,
            pred,
            event,
            counters: AlphaCounters::default(),
            entries: HashMap::new(),
            join_indexes: Vec::new(),
        }
    }

    /// Register the equi-join attributes this memory should index. Called
    /// at rule-compile time, before any entry is inserted (the network
    /// extracts the attributes from the rule's equi-join conjuncts).
    pub fn set_join_index_attrs(&mut self, attrs: Vec<usize>) {
        debug_assert!(self.entries.is_empty(), "register indexes before priming");
        self.join_indexes = attrs
            .into_iter()
            .map(|attr| JoinIndex {
                attr,
                buckets: HashMap::new(),
            })
            .collect();
    }

    /// Whether a join index on attribute `attr` exists.
    pub fn has_join_index(&self, attr: usize) -> bool {
        self.join_indexes.iter().any(|ji| ji.attr == attr)
    }

    /// Probe the join index on `attr`: entries whose `attr` value
    /// sql-equals `key`. `None` when no index on `attr` exists; a `Null`
    /// key yields an empty iterator (`Null` joins nothing).
    pub fn probe_join_index(
        &self,
        attr: usize,
        key: &Value,
    ) -> Option<impl Iterator<Item = &AlphaEntry> + '_> {
        let ji = self.join_indexes.iter().find(|ji| ji.attr == attr)?;
        let keys: &[u64] = if key.is_null() {
            &[]
        } else {
            ji.buckets.get(key).map(Vec::as_slice).unwrap_or(&[])
        };
        Some(keys.iter().map(move |k| {
            self.entries
                .get(k)
                .expect("join index references a live entry")
        }))
    }

    /// Expected bucket size of the join index on `attr` (entries ÷ distinct
    /// keys, rounded up), the join-order heuristic's size estimate for an
    /// indexed memory. `None` without an index on `attr`.
    pub fn expected_bucket_size(&self, attr: usize) -> Option<usize> {
        let ji = self.join_indexes.iter().find(|ji| ji.attr == attr)?;
        let distinct = ji.buckets.len();
        if distinct == 0 {
            // empty memory (or only Null keys): a probe serves nothing
            return Some(0);
        }
        Some(self.entries.len().div_ceil(distinct))
    }

    fn index_entry(&mut self, key: u64, entry: &AlphaEntry) {
        for ji in &mut self.join_indexes {
            let v = entry.tuple.get(ji.attr);
            if v.is_null() {
                continue;
            }
            ji.buckets.entry(v.clone()).or_default().push(key);
        }
    }

    fn unindex_entry(&mut self, key: u64, entry: &AlphaEntry) {
        for ji in &mut self.join_indexes {
            let v = entry.tuple.get(ji.attr);
            if v.is_null() {
                continue;
            }
            if let Some(bucket) = ji.buckets.get_mut(v) {
                bucket.retain(|k| *k != key);
                if bucket.is_empty() {
                    ji.buckets.remove(v);
                }
            }
        }
    }

    /// Does the node's selection predicate match a (tuple, prev) pair?
    /// Anchor and residual are both checked; evaluation errors (e.g. a
    /// `previous` reference with no previous value available) mean "no
    /// match".
    pub fn pred_matches(&self, tuple: &Tuple, prev: Option<&Tuple>) -> bool {
        if self.pred.unsatisfiable {
            return false;
        }
        if let Some((attr, iv)) = &self.pred.anchor {
            if !iv.contains(tuple.get(*attr)) {
                return false;
            }
        }
        match &self.pred.residual {
            None => true,
            Some(r) => eval_pred(r, &SingleEnv { tuple, prev }).unwrap_or(false),
        }
    }

    /// Whether this node can accept a positive token of the given kind
    /// (structural gating; Fig. 5's "don't care" cells are unreachable
    /// because of this).
    pub fn admits_positive(&self, kind: TokenKind, event: Option<&EventSpecifier>) -> bool {
        debug_assert!(kind.is_positive());
        if self.kind.is_trans() && kind != TokenKind::DeltaPlus {
            return false; // ± tokens never reach transition memories
        }
        match (&self.event, event) {
            (None, _) => true, // pattern nodes never examine the event
            (Some(req), Some(ev)) => req.admits(ev),
            (Some(_), None) => false,
        }
    }

    /// Insert an entry (keyed by the token's TID). Re-inserting under the
    /// same key (a Δ+ token for a tuple already in memory) replaces the
    /// entry and rebuckets it in the join indexes.
    pub fn insert(&mut self, key: Tid, entry: AlphaEntry) {
        debug_assert!(self.kind.stores_entries());
        AlphaCounters::bump(&self.counters.inserted, 1);
        if let Some(old) = self.entries.remove(&key.0) {
            self.unindex_entry(key.0, &old);
        }
        self.index_entry(key.0, &entry);
        self.entries.insert(key.0, entry);
    }

    /// Remove the entry keyed by `tid`; returns it if present. Idempotent.
    pub fn remove(&mut self, tid: Tid) -> Option<AlphaEntry> {
        let entry = self.entries.remove(&tid.0)?;
        self.unindex_entry(tid.0, &entry);
        Some(entry)
    }

    /// Whether an entry for `tid` exists.
    pub fn contains(&self, tid: Tid) -> bool {
        self.entries.contains_key(&tid.0)
    }

    /// Iterate stored entries.
    pub fn entries(&self) -> impl Iterator<Item = &AlphaEntry> {
        self.entries.values()
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff the node stores no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop all entries (transition flush for dynamic nodes). Join-index
    /// buckets are emptied too; the registered attributes survive, so a
    /// dynamic node keeps indexing across transitions.
    pub fn flush(&mut self) {
        self.entries.clear();
        for ji in &mut self.join_indexes {
            ji.buckets.clear();
        }
    }

    /// Approximate heap footprint of the stored entries, in bytes. This is
    /// the quantity virtual α-memories reduce to (near) zero.
    pub fn heap_size(&self) -> usize {
        self.entries.values().map(AlphaEntry::heap_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariel_islist::Interval;
    use ariel_storage::Value;

    fn tup(v: i64) -> Tuple {
        Tuple::new(vec![Value::Int(v)])
    }

    fn band_pred(lo: i64, hi: i64) -> SelectionPredicate {
        SelectionPredicate {
            anchor: Some((
                0,
                Interval::open_closed(Value::Int(lo), Value::Int(hi)).unwrap(),
            )),
            residual: None,
            unsatisfiable: false,
        }
    }

    fn node(kind: AlphaKind, event: Option<EventReq>) -> AlphaNode {
        AlphaNode::new(RuleId(1), 0, "emp".into(), kind, band_pred(10, 20), event)
    }

    #[test]
    fn pred_matching_uses_anchor() {
        let n = node(AlphaKind::Stored, None);
        assert!(!n.pred_matches(&tup(10), None));
        assert!(n.pred_matches(&tup(11), None));
        assert!(n.pred_matches(&tup(20), None));
        assert!(!n.pred_matches(&tup(21), None));
    }

    #[test]
    fn unsatisfiable_never_matches() {
        let mut n = node(AlphaKind::Stored, None);
        n.pred = SelectionPredicate {
            anchor: None,
            residual: None,
            unsatisfiable: true,
        };
        assert!(!n.pred_matches(&tup(15), None));
    }

    #[test]
    fn residual_eval_errors_mean_no_match() {
        let mut n = node(AlphaKind::DynamicTrans, None);
        // residual references previous value
        n.pred = SelectionPredicate {
            anchor: None,
            residual: Some(ariel_query::RExpr::Binary {
                op: ariel_query::BinOp::Gt,
                left: Box::new(ariel_query::RExpr::Attr { var: 0, attr: 0 }),
                right: Box::new(ariel_query::RExpr::Prev { var: 0, attr: 0 }),
            }),
            unsatisfiable: false,
        };
        assert!(!n.pred_matches(&tup(5), None), "no prev → no match");
        assert!(n.pred_matches(&tup(5), Some(&tup(4))));
        assert!(!n.pred_matches(&tup(5), Some(&tup(6))));
    }

    #[test]
    fn entry_lifecycle() {
        let mut n = node(AlphaKind::Stored, None);
        n.insert(
            Tid(7),
            AlphaEntry {
                tid: Some(Tid(7)),
                tuple: tup(15),
                prev: None,
            },
        );
        assert!(n.contains(Tid(7)));
        assert_eq!(n.len(), 1);
        assert!(n.heap_size() > 0);
        assert!(n.remove(Tid(7)).is_some());
        assert!(n.remove(Tid(7)).is_none(), "removal is idempotent");
        assert!(n.is_empty());
    }

    #[test]
    fn flush_clears() {
        let mut n = node(AlphaKind::DynamicOn, Some(EventReq::Append));
        n.insert(
            Tid(1),
            AlphaEntry {
                tid: Some(Tid(1)),
                tuple: tup(12),
                prev: None,
            },
        );
        n.flush();
        assert!(n.is_empty());
    }

    #[test]
    fn positive_gating_trans_only_delta() {
        let n = node(AlphaKind::DynamicTrans, None);
        assert!(!n.admits_positive(TokenKind::Plus, Some(&EventSpecifier::Append)));
        assert!(n.admits_positive(TokenKind::DeltaPlus, Some(&EventSpecifier::Replace(vec![]))));
    }

    #[test]
    fn positive_gating_event_requirements() {
        let n = node(AlphaKind::DynamicOn, Some(EventReq::Append));
        assert!(n.admits_positive(TokenKind::Plus, Some(&EventSpecifier::Append)));
        assert!(!n.admits_positive(TokenKind::DeltaPlus, Some(&EventSpecifier::Replace(vec![]))));
        assert!(
            !n.admits_positive(TokenKind::Plus, None),
            "on-node needs an event"
        );
        // pattern node ignores events entirely
        let p = node(AlphaKind::Stored, None);
        assert!(p.admits_positive(TokenKind::Plus, None));
    }

    #[test]
    fn replace_target_list_matching() {
        let watch = EventReq::Replace(Some(vec![2, 4]));
        assert!(watch.admits(&EventSpecifier::Replace(vec![4])));
        assert!(!watch.admits(&EventSpecifier::Replace(vec![0, 1])));
        assert!(
            watch.admits(&EventSpecifier::Replace(vec![])),
            "unknown attrs admit"
        );
        assert!(!watch.admits(&EventSpecifier::Append));
        let any = EventReq::Replace(None);
        assert!(any.admits(&EventSpecifier::Replace(vec![0])));
    }

    fn entry_of(t: Tuple, tid: u64) -> AlphaEntry {
        AlphaEntry {
            tid: Some(Tid(tid)),
            tuple: t,
            prev: None,
        }
    }

    #[test]
    fn join_index_lifecycle() {
        let mut n = node(AlphaKind::Stored, None);
        n.set_join_index_attrs(vec![0]);
        assert!(n.has_join_index(0));
        assert!(!n.has_join_index(1));
        n.insert(Tid(1), entry_of(tup(15), 1));
        n.insert(Tid(2), entry_of(tup(15), 2));
        n.insert(Tid(3), entry_of(tup(12), 3));
        let hits: Vec<_> = n
            .probe_join_index(0, &Value::Int(15))
            .unwrap()
            .map(|e| e.tid.unwrap().0)
            .collect();
        assert_eq!(hits.len(), 2);
        assert!(hits.contains(&1) && hits.contains(&2));
        assert_eq!(n.probe_join_index(0, &Value::Int(99)).unwrap().count(), 0);
        assert!(n.probe_join_index(1, &Value::Int(15)).is_none());
        // removal unbuckets
        n.remove(Tid(1));
        assert_eq!(n.probe_join_index(0, &Value::Int(15)).unwrap().count(), 1);
        // replacement rebuckets under the same key
        n.insert(Tid(2), entry_of(tup(12), 2));
        assert_eq!(n.probe_join_index(0, &Value::Int(15)).unwrap().count(), 0);
        assert_eq!(n.probe_join_index(0, &Value::Int(12)).unwrap().count(), 2);
        // flush empties buckets but keeps the registration
        n.flush();
        assert_eq!(n.probe_join_index(0, &Value::Int(12)).unwrap().count(), 0);
        assert!(n.has_join_index(0));
    }

    #[test]
    fn join_index_ignores_null_keys() {
        let mut n = node(AlphaKind::Stored, None);
        n.set_join_index_attrs(vec![0]);
        n.insert(Tid(1), entry_of(Tuple::new(vec![Value::Null]), 1));
        assert_eq!(n.probe_join_index(0, &Value::Null).unwrap().count(), 0);
        assert_eq!(n.expected_bucket_size(0), Some(0), "only Null keys");
        n.remove(Tid(1)); // must not panic on the unindexed entry
        assert!(n.is_empty());
    }

    #[test]
    fn join_index_numeric_cross_type_probe() {
        let mut n = node(AlphaKind::Stored, None);
        n.set_join_index_attrs(vec![0]);
        n.insert(Tid(1), entry_of(tup(15), 1));
        // Int-keyed bucket is found by a numerically-equal Float probe,
        // matching sql_eq's cross-type join semantics
        assert_eq!(
            n.probe_join_index(0, &Value::Float(15.0)).unwrap().count(),
            1
        );
    }

    #[test]
    fn expected_bucket_size_estimates() {
        let mut n = node(AlphaKind::Stored, None);
        n.set_join_index_attrs(vec![0]);
        assert_eq!(n.expected_bucket_size(1), None);
        assert_eq!(n.expected_bucket_size(0), Some(0), "empty memory");
        n.insert(Tid(1), entry_of(tup(11), 1));
        n.insert(Tid(2), entry_of(tup(11), 2));
        n.insert(Tid(3), entry_of(tup(12), 3));
        n.insert(Tid(4), entry_of(tup(13), 4));
        // 4 entries over 3 distinct keys → expect ⌈4/3⌉ = 2 per bucket
        assert_eq!(n.expected_bucket_size(0), Some(2));
    }

    #[test]
    fn kind_taxonomy() {
        assert!(AlphaKind::Stored.stores_entries());
        assert!(!AlphaKind::Virtual.stores_entries());
        assert!(AlphaKind::DynamicOn.is_dynamic() && AlphaKind::SimpleTrans.is_dynamic());
        assert!(!AlphaKind::Stored.is_dynamic());
        assert!(AlphaKind::Simple.is_simple() && !AlphaKind::Virtual.is_simple());
        assert!(AlphaKind::SimpleTrans.is_trans() && AlphaKind::DynamicTrans.is_trans());
        assert!(AlphaKind::SimpleOn.is_on() && AlphaKind::DynamicOn.is_on());
    }
}
