//! α-memory nodes — all seven kinds of §4.3.3.
//!
//! | kind            | stores                      | lifetime            |
//! |-----------------|-----------------------------|---------------------|
//! | `stored-α`      | matching tuples             | persistent          |
//! | `virtual-α`     | nothing (predicate only)    | —                   |
//! | `dynamic-on-α`  | event-matched tuples        | current transition  |
//! | `dynamic-trans-α`| transition pairs           | current transition  |
//! | `simple-α`      | nothing (straight to P-node)| —                   |
//! | `simple-on-α`   | nothing                     | (P-node flushed)    |
//! | `simple-trans-α`| nothing                     | (P-node flushed)    |
//!
//! Entries are keyed by TID: deletion-polarity tokens remove by TID, which
//! sidesteps value-matching fragility when the same tuple is modified in
//! several transitions of one recognize-act cycle.

use crate::key::{KeyBuilder, SmallKey};
use crate::pred::SelectionPredicate;
use crate::token::{EventSpecifier, TokenKind};
use ariel_islist::{Counter, Interval, IntervalId, IntervalSkipList};
use ariel_query::{eval_pred, SingleEnv};
use ariel_storage::{FxBuildHasher, Tid, Tuple, Value};
use std::collections::HashMap;
use std::fmt;
use std::ops::Bound;

/// Identifier of a rule within the network (assigned by the engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RuleId(pub u64);

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifier of an α-memory node (network-arena index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AlphaId(pub usize);

/// The seven α-memory kinds of §4.3.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlphaKind {
    /// Standard memory node: collection of tuples matching the predicate.
    Stored,
    /// Virtual memory node: predicate only, contents derived from the base
    /// relation on demand (§4.2).
    Virtual,
    /// Dynamic node for an ON condition; flushed after each transition.
    DynamicOn,
    /// Dynamic node for a transition condition; flushed after each
    /// transition.
    DynamicTrans,
    /// Single-tuple-variable rule: matches go straight to the P-node.
    Simple,
    /// Single-variable ON condition.
    SimpleOn,
    /// Single-variable transition condition.
    SimpleTrans,
}

impl AlphaKind {
    /// Whether this kind keeps a tuple collection.
    pub fn stores_entries(&self) -> bool {
        matches!(
            self,
            AlphaKind::Stored | AlphaKind::DynamicOn | AlphaKind::DynamicTrans
        )
    }

    /// Whether the node's contents (and derived P-node rows) only live for
    /// the current transition.
    pub fn is_dynamic(&self) -> bool {
        matches!(
            self,
            AlphaKind::DynamicOn
                | AlphaKind::DynamicTrans
                | AlphaKind::SimpleOn
                | AlphaKind::SimpleTrans
        )
    }

    /// Whether this is one of the single-variable (`simple-`) kinds.
    pub fn is_simple(&self) -> bool {
        matches!(
            self,
            AlphaKind::Simple | AlphaKind::SimpleOn | AlphaKind::SimpleTrans
        )
    }

    /// Whether this kind represents a transition condition (accepts only Δ
    /// tokens; Fig. 5 marks ± tokens as "don't care").
    pub fn is_trans(&self) -> bool {
        matches!(self, AlphaKind::DynamicTrans | AlphaKind::SimpleTrans)
    }

    /// Whether this kind represents an ON (event) condition.
    pub fn is_on(&self) -> bool {
        matches!(self, AlphaKind::DynamicOn | AlphaKind::SimpleOn)
    }
}

/// Event requirement of an ON-condition node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventReq {
    /// Requires an append event.
    Append,
    /// Requires a delete event.
    Delete,
    /// `replace [(attrs)]` — positions of the watched attributes, `None` to
    /// watch every attribute.
    Replace(Option<Vec<usize>>),
}

impl EventReq {
    /// Whether a token's event specifier satisfies this requirement.
    pub fn admits(&self, ev: &EventSpecifier) -> bool {
        match (self, ev) {
            (EventReq::Append, EventSpecifier::Append) => true,
            (EventReq::Delete, EventSpecifier::Delete) => true,
            (EventReq::Replace(None), EventSpecifier::Replace(_)) => true,
            (EventReq::Replace(Some(watch)), EventSpecifier::Replace(updated)) => {
                // empty updated list = unknown set of attributes: admit
                updated.is_empty() || watch.iter().any(|a| updated.contains(a))
            }
            _ => false,
        }
    }
}

/// One entry in a stored/dynamic α-memory.
#[derive(Debug, Clone, PartialEq)]
pub struct AlphaEntry {
    /// TID of the bound tuple; `None` for tuples bound by ON DELETE (the
    /// tuple no longer exists).
    pub tid: Option<Tid>,
    /// Current tuple value.
    pub tuple: Tuple,
    /// Start-of-transition value (Δ-token entries).
    pub prev: Option<Tuple>,
}

impl AlphaEntry {
    /// Approximate heap footprint in bytes.
    pub fn heap_size(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.tuple.heap_size()
            + self.prev.as_ref().map_or(0, Tuple::heap_size)
    }
}

/// Always-on per-node counters (see `crate::obs` for the two-tier
/// observability design). Atomic [`Counter`]s because the join routines
/// hold `&self`, and because the parallel match path (`docs/CONCURRENCY.md`)
/// probes α-memories from several worker threads at once.
#[derive(Debug, Clone, Default)]
pub struct AlphaCounters {
    /// α-tests run against this node (selection-network candidates).
    pub tests: Counter,
    /// α-tests that passed (event gating + predicate).
    pub passes: Counter,
    /// Entries inserted into the stored memory.
    pub inserted: Counter,
    /// β-join materializations of this node from its base relation
    /// (virtual nodes only).
    pub virtual_scans: Counter,
    /// Base-relation tuples examined during those materializations.
    pub scanned_tuples: Counter,
    /// Candidate bindings served into β-joins (stored or materialized).
    pub join_candidates: Counter,
    /// Hash join-index probes answered by this node (α-memory join index
    /// for stored/dynamic kinds, base-relation index for virtual kinds).
    pub index_probes: Counter,
    /// Index probes that found at least one candidate.
    pub index_hits: Counter,
    /// Join candidates served through an index probe.
    pub indexed_candidates: Counter,
    /// Join candidates served by full enumeration (no usable index).
    pub scanned_candidates: Counter,
    /// Interval-index stabbing probes answered by this node (band joins).
    pub range_probes: Counter,
    /// Range probes that found at least one candidate.
    pub range_hits: Counter,
}

impl AlphaCounters {
    #[inline]
    pub(crate) fn bump(c: &Counter, by: u64) {
        c.add(by);
    }

    /// Zero every counter.
    pub fn reset(&self) {
        self.tests.set(0);
        self.passes.set(0);
        self.inserted.set(0);
        self.virtual_scans.set(0);
        self.scanned_tuples.set(0);
        self.join_candidates.set(0);
        self.index_probes.set(0);
        self.index_hits.set(0);
        self.indexed_candidates.set(0);
        self.scanned_candidates.set(0);
        self.range_probes.set(0);
        self.range_hits.set(0);
    }
}

/// One hash join index over an α-memory: composite equi-join key (one
/// component per registered attribute, in registration order, packed as a
/// [`SmallKey`]) → keys of the node's entry map (ON DELETE entries have no
/// TID but are still keyed by the dying token's TID, so buckets hold the
/// map key, not `AlphaEntry::tid`). A single-attribute index is just the
/// one-element special case. Keys are flat — building one neither
/// allocates nor clones string payloads in the common case — and buckets
/// hash with the Fx fold (trusted internal keys; see `storage::fx`).
#[derive(Debug)]
struct JoinIndex {
    attrs: Vec<usize>,
    buckets: HashMap<SmallKey, Vec<u64>, FxBuildHasher>,
    /// Entries currently indexed — `entries.len()` minus the entries whose
    /// key has a Null component. Bucket-size estimates divide by this, not
    /// by the raw entry count: a null-heavy memory would otherwise look
    /// like it had huge buckets (the never-indexed entries are unreachable
    /// through the index, so they cost a probe nothing).
    indexed: usize,
}

/// Shape of a band-join access path over a stored memory: each entry spans
/// the interval from its `lo_attr` value to its `hi_attr` value, and a
/// probe key `x` matches exactly the entries whose conjunct pair
/// `e.lo OP x` / `x OP' e.hi` holds. `lo_strict` means the lower conjunct
/// was `<` (interval bound `Excluded`); likewise `hi_strict` for the upper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BandShape {
    /// Attribute supplying the entry's lower endpoint.
    pub lo_attr: usize,
    /// Lower conjunct is strict (`e.lo < x` rather than `e.lo <= x`).
    pub lo_strict: bool,
    /// Attribute supplying the entry's upper endpoint.
    pub hi_attr: usize,
    /// Upper conjunct is strict (`x < e.hi` rather than `x <= e.hi`).
    pub hi_strict: bool,
}

impl BandShape {
    /// The interval an entry's tuple spans under this shape; `None` when a
    /// bound is Null (comparison with Null is false → the entry can never
    /// satisfy the conjunct pair) or the interval is empty.
    pub(crate) fn interval_of(&self, tuple: &Tuple) -> Option<Interval<Value>> {
        let lo = tuple.get(self.lo_attr);
        let hi = tuple.get(self.hi_attr);
        if lo.is_null() || hi.is_null() {
            return None;
        }
        let lo = if self.lo_strict {
            Bound::Excluded(lo.clone())
        } else {
            Bound::Included(lo.clone())
        };
        let hi = if self.hi_strict {
            Bound::Excluded(hi.clone())
        } else {
            Bound::Included(hi.clone())
        };
        Interval::new(lo, hi)
    }
}

/// Interval-skip-list index (Hanson's IBS-tree line of work, reused from
/// the selection network) turning a band join into a stabbing query: each
/// entry contributes the interval `(lo_attr .. hi_attr)` and a probe stabs
/// with the opposite side's key value.
#[derive(Debug)]
struct RangeIndex {
    shape: BandShape,
    islist: IntervalSkipList<Value>,
    /// entry-map key → its interval (entries with Null/empty spans absent).
    by_entry: HashMap<u64, IntervalId>,
    /// interval → entry-map key, for serving stab results.
    by_interval: HashMap<IntervalId, u64>,
}

/// An α-memory node.
#[derive(Debug)]
pub struct AlphaNode {
    /// Owning rule.
    pub rule: RuleId,
    /// Variable index within the rule condition.
    pub var: usize,
    /// Relation this node watches.
    pub rel: String,
    /// Node kind.
    pub kind: AlphaKind,
    /// The single-variable selection predicate (variable remapped to 0).
    pub pred: SelectionPredicate,
    /// Event requirement for ON-condition nodes.
    pub event: Option<EventReq>,
    /// Always-on activity counters.
    pub counters: AlphaCounters,
    entries: HashMap<u64, AlphaEntry>,
    /// Hash join indexes over `entries`, one per registered equi-join
    /// attribute set. Maintained incrementally by [`Self::insert`],
    /// [`Self::remove`] and [`Self::flush`]. Keys with a Null component are
    /// never indexed — `sql_eq` says `Null` joins nothing, so such an entry
    /// can only be reached by a probing conjunct that is false anyway.
    join_indexes: Vec<JoinIndex>,
    /// Interval indexes over `entries`, one per registered band shape.
    range_indexes: Vec<RangeIndex>,
}

impl AlphaNode {
    /// Create a node; `entries` starts empty.
    pub fn new(
        rule: RuleId,
        var: usize,
        rel: String,
        kind: AlphaKind,
        pred: SelectionPredicate,
        event: Option<EventReq>,
    ) -> Self {
        AlphaNode {
            rule,
            var,
            rel,
            kind,
            pred,
            event,
            counters: AlphaCounters::default(),
            entries: HashMap::new(),
            join_indexes: Vec::new(),
            range_indexes: Vec::new(),
        }
    }

    /// Register the (composite) equi-join attribute sets this memory should
    /// index. Called at rule-compile time, before any entry is inserted
    /// (the network extracts the sets from the rule's equi-join conjuncts).
    /// Duplicate sets collapse to one index.
    pub fn set_join_indexes(&mut self, attr_sets: Vec<Vec<usize>>) {
        debug_assert!(self.entries.is_empty(), "register indexes before priming");
        let mut seen: Vec<Vec<usize>> = Vec::new();
        self.join_indexes = attr_sets
            .into_iter()
            .filter(|attrs| {
                if attrs.is_empty() || seen.contains(attrs) {
                    return false;
                }
                seen.push(attrs.clone());
                true
            })
            .map(|attrs| JoinIndex {
                attrs,
                buckets: HashMap::default(),
                indexed: 0,
            })
            .collect();
    }

    /// Register the band shapes this memory should interval-index. Same
    /// compile-time discipline as [`Self::set_join_indexes`].
    pub fn set_range_indexes(&mut self, shapes: Vec<BandShape>) {
        debug_assert!(self.entries.is_empty(), "register indexes before priming");
        let mut seen: Vec<BandShape> = Vec::new();
        self.range_indexes = shapes
            .into_iter()
            .filter(|shape| {
                if seen.contains(shape) {
                    return false;
                }
                seen.push(shape.clone());
                true
            })
            .map(|shape| RangeIndex {
                shape,
                islist: IntervalSkipList::new(),
                by_entry: HashMap::new(),
                by_interval: HashMap::new(),
            })
            .collect();
    }

    /// Whether a join index on exactly the attribute tuple `attrs` exists.
    pub fn has_join_index(&self, attrs: &[usize]) -> bool {
        self.join_indexes.iter().any(|ji| ji.attrs == attrs)
    }

    /// Whether an interval index of exactly this band shape exists.
    pub fn has_range_index(&self, shape: &BandShape) -> bool {
        self.range_indexes.iter().any(|ri| &ri.shape == shape)
    }

    /// Probe the join index on the attribute tuple `attrs`: entries whose
    /// per-attribute values all sql-equal the corresponding `key` component.
    /// `None` when no such index exists; any `Null` key component yields an
    /// empty iterator (`Null` joins nothing).
    pub fn probe_join_index(
        &self,
        attrs: &[usize],
        key: &[Value],
    ) -> Option<impl Iterator<Item = &AlphaEntry> + '_> {
        debug_assert_eq!(key.len(), attrs.len());
        self.probe_join_index_packed(attrs, &SmallKey::from_values(key))
    }

    /// [`Self::probe_join_index`] with a pre-packed key — the allocation-
    /// free probe path used by the β-join routines, which build the
    /// [`SmallKey`] once per probe instead of materializing a `Vec<Value>`.
    pub fn probe_join_index_packed(
        &self,
        attrs: &[usize],
        key: &SmallKey,
    ) -> Option<impl Iterator<Item = &AlphaEntry> + '_> {
        let ji = self.join_indexes.iter().find(|ji| ji.attrs == attrs)?;
        let keys: &[u64] = if key.has_null() {
            &[]
        } else {
            ji.buckets.get(key).map(Vec::as_slice).unwrap_or(&[])
        };
        Some(keys.iter().map(move |k| {
            self.entries
                .get(k)
                .expect("join index references a live entry")
        }))
    }

    /// Probe the interval index of band shape `shape`: entries whose
    /// `(lo_attr .. hi_attr)` span contains `key`. `None` when no such
    /// index exists; a `Null` key stabs nothing (comparison with Null is
    /// false on both sides of the band).
    pub fn probe_range_index(&self, shape: &BandShape, key: &Value) -> Option<Vec<&AlphaEntry>> {
        let ri = self.range_indexes.iter().find(|ri| &ri.shape == shape)?;
        if key.is_null() {
            return Some(Vec::new());
        }
        let mut out = Vec::new();
        ri.islist.stab_with(key, |id| {
            let k = ri.by_interval.get(&id).expect("stab hit a live interval");
            out.push(
                self.entries
                    .get(k)
                    .expect("range index references a live entry"),
            );
        });
        Some(out)
    }

    /// Expected bucket size of the join index on `attrs` (*indexed*
    /// entries ÷ distinct keys, rounded up), the join-order heuristic's
    /// size estimate for an indexed memory. Entries with a Null key
    /// component are never indexed and don't count — dividing the raw
    /// entry count would overstate bucket size on null-heavy data and
    /// could flip a `SelectivityThreshold` stored-vs-virtual decision.
    /// `None` without an index on `attrs`.
    pub fn expected_bucket_size(&self, attrs: &[usize]) -> Option<usize> {
        let ji = self.join_indexes.iter().find(|ji| ji.attrs == attrs)?;
        let distinct = ji.buckets.len();
        if distinct == 0 {
            // empty memory (or only Null keys): a probe serves nothing
            return Some(0);
        }
        Some(ji.indexed.div_ceil(distinct))
    }

    /// Smallest expected bucket size across every registered join index —
    /// the best-case per-probe fan-out this memory can offer. Counts
    /// indexed entries only (see [`Self::expected_bucket_size`]). `None`
    /// when no join index is registered.
    pub fn min_expected_bucket_size(&self) -> Option<usize> {
        self.join_indexes
            .iter()
            .map(|ji| {
                if ji.buckets.is_empty() {
                    0
                } else {
                    ji.indexed.div_ceil(ji.buckets.len())
                }
            })
            .min()
    }

    /// Pack the composite key of `tuple` under this index's attribute
    /// tuple, or `None` when a component is Null (`sql_eq` says Null joins
    /// nothing, so the entry is unreachable through the index anyway).
    fn bucket_key(ji: &JoinIndex, tuple: &Tuple) -> Option<SmallKey> {
        let mut b = KeyBuilder::new(ji.attrs.len());
        for &attr in &ji.attrs {
            let v = tuple.get(attr);
            if v.is_null() {
                return None;
            }
            b.push(v);
        }
        Some(b.finish())
    }

    fn index_entry(&mut self, key: u64, entry: &AlphaEntry) {
        for ji in &mut self.join_indexes {
            if let Some(composite) = Self::bucket_key(ji, &entry.tuple) {
                ji.buckets.entry(composite).or_default().push(key);
                ji.indexed += 1;
            }
        }
        for ri in &mut self.range_indexes {
            if let Some(iv) = ri.shape.interval_of(&entry.tuple) {
                let id = ri.islist.insert(iv);
                ri.by_entry.insert(key, id);
                ri.by_interval.insert(id, key);
            }
        }
    }

    fn unindex_entry(&mut self, key: u64, entry: &AlphaEntry) {
        for ji in &mut self.join_indexes {
            let Some(composite) = Self::bucket_key(ji, &entry.tuple) else {
                continue;
            };
            if let Some(bucket) = ji.buckets.get_mut(&composite) {
                bucket.retain(|k| *k != key);
                if bucket.is_empty() {
                    ji.buckets.remove(&composite);
                }
                ji.indexed = ji.indexed.saturating_sub(1);
            }
        }
        for ri in &mut self.range_indexes {
            if let Some(id) = ri.by_entry.remove(&key) {
                ri.by_interval.remove(&id);
                ri.islist.remove(id);
            }
        }
    }

    /// Does the node's selection predicate match a (tuple, prev) pair?
    /// Anchor and residual are both checked; evaluation errors (e.g. a
    /// `previous` reference with no previous value available) mean "no
    /// match".
    pub fn pred_matches(&self, tuple: &Tuple, prev: Option<&Tuple>) -> bool {
        if self.pred.unsatisfiable {
            return false;
        }
        if let Some((attr, iv)) = &self.pred.anchor {
            if !iv.contains(tuple.get(*attr)) {
                return false;
            }
        }
        match &self.pred.residual {
            None => true,
            Some(r) => eval_pred(r, &SingleEnv { tuple, prev }).unwrap_or(false),
        }
    }

    /// Whether this node can accept a positive token of the given kind
    /// (structural gating; Fig. 5's "don't care" cells are unreachable
    /// because of this).
    pub fn admits_positive(&self, kind: TokenKind, event: Option<&EventSpecifier>) -> bool {
        debug_assert!(kind.is_positive());
        if self.kind.is_trans() && kind != TokenKind::DeltaPlus {
            return false; // ± tokens never reach transition memories
        }
        match (&self.event, event) {
            (None, _) => true, // pattern nodes never examine the event
            (Some(req), Some(ev)) => req.admits(ev),
            (Some(_), None) => false,
        }
    }

    /// Insert an entry (keyed by the token's TID). Re-inserting under the
    /// same key (a Δ+ token for a tuple already in memory) replaces the
    /// entry and rebuckets it in the join indexes.
    pub fn insert(&mut self, key: Tid, entry: AlphaEntry) {
        debug_assert!(self.kind.stores_entries());
        AlphaCounters::bump(&self.counters.inserted, 1);
        if let Some(old) = self.entries.remove(&key.0) {
            self.unindex_entry(key.0, &old);
        }
        self.index_entry(key.0, &entry);
        self.entries.insert(key.0, entry);
    }

    /// Remove the entry keyed by `tid`; returns it if present. Idempotent.
    pub fn remove(&mut self, tid: Tid) -> Option<AlphaEntry> {
        let entry = self.entries.remove(&tid.0)?;
        self.unindex_entry(tid.0, &entry);
        Some(entry)
    }

    /// Whether an entry for `tid` exists.
    pub fn contains(&self, tid: Tid) -> bool {
        self.entries.contains_key(&tid.0)
    }

    /// Iterate stored entries.
    pub fn entries(&self) -> impl Iterator<Item = &AlphaEntry> {
        self.entries.values()
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff the node stores no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop all entries (transition flush for dynamic nodes). Join-index
    /// buckets and interval indexes are emptied too; the registered
    /// attribute sets and band shapes survive, so a dynamic node keeps
    /// indexing across transitions. The skip list has no bulk-clear, so the
    /// flush recreates it.
    pub fn flush(&mut self) {
        self.entries.clear();
        for ji in &mut self.join_indexes {
            ji.buckets.clear();
            ji.indexed = 0;
        }
        for ri in &mut self.range_indexes {
            ri.islist = IntervalSkipList::new();
            ri.by_entry.clear();
            ri.by_interval.clear();
        }
    }

    /// Approximate heap footprint of the join/range index structures, in
    /// bytes: hash buckets (packed keys + entry-key lists) plus the
    /// interval skip lists and their entry↔interval maps.
    ///
    /// Accounting notes: each bucket is charged the *inline* size of its
    /// [`SmallKey`] plus any boxed spill (`SmallKey::heap_bytes` — zero on
    /// the packed path, which is where the flat-key layout saves its
    /// bytes), and each TID list is charged its *capacity*, not its
    /// length — `Vec` growth doubles, and the slack is real memory. The
    /// previous accounting under-charged keys (it skipped the inline
    /// `Vec<Value>` headers of the key's elements) and over-trusted list
    /// lengths, so `alpha_bytes` moved with neither allocator reality nor
    /// the key layout.
    pub fn index_bytes(&self) -> usize {
        let hash: usize = self
            .join_indexes
            .iter()
            .flat_map(|ji| ji.buckets.iter())
            .map(|(k, v)| {
                std::mem::size_of::<SmallKey>()
                    + k.heap_bytes()
                    + std::mem::size_of::<Vec<u64>>()
                    + v.capacity() * std::mem::size_of::<u64>()
            })
            .sum();
        let range: usize = self
            .range_indexes
            .iter()
            .map(|ri| {
                ri.islist.bytes()
                    + (ri.by_entry.len() + ri.by_interval.len()) * 2 * std::mem::size_of::<u64>()
            })
            .sum();
        hash + range
    }

    /// Approximate heap footprint of the stored entries plus the index
    /// structures over them, in bytes. This is the quantity virtual
    /// α-memories reduce to (near) zero — a virtual node stores neither
    /// entries nor indexes.
    pub fn heap_size(&self) -> usize {
        self.entries
            .values()
            .map(AlphaEntry::heap_size)
            .sum::<usize>()
            + self.index_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariel_islist::Interval;
    use ariel_storage::Value;

    fn tup(v: i64) -> Tuple {
        Tuple::new(vec![Value::Int(v)])
    }

    fn band_pred(lo: i64, hi: i64) -> SelectionPredicate {
        SelectionPredicate {
            anchor: Some((
                0,
                Interval::open_closed(Value::Int(lo), Value::Int(hi)).unwrap(),
            )),
            residual: None,
            unsatisfiable: false,
        }
    }

    fn node(kind: AlphaKind, event: Option<EventReq>) -> AlphaNode {
        AlphaNode::new(RuleId(1), 0, "emp".into(), kind, band_pred(10, 20), event)
    }

    #[test]
    fn pred_matching_uses_anchor() {
        let n = node(AlphaKind::Stored, None);
        assert!(!n.pred_matches(&tup(10), None));
        assert!(n.pred_matches(&tup(11), None));
        assert!(n.pred_matches(&tup(20), None));
        assert!(!n.pred_matches(&tup(21), None));
    }

    #[test]
    fn unsatisfiable_never_matches() {
        let mut n = node(AlphaKind::Stored, None);
        n.pred = SelectionPredicate {
            anchor: None,
            residual: None,
            unsatisfiable: true,
        };
        assert!(!n.pred_matches(&tup(15), None));
    }

    #[test]
    fn residual_eval_errors_mean_no_match() {
        let mut n = node(AlphaKind::DynamicTrans, None);
        // residual references previous value
        n.pred = SelectionPredicate {
            anchor: None,
            residual: Some(ariel_query::RExpr::Binary {
                op: ariel_query::BinOp::Gt,
                left: Box::new(ariel_query::RExpr::Attr { var: 0, attr: 0 }),
                right: Box::new(ariel_query::RExpr::Prev { var: 0, attr: 0 }),
            }),
            unsatisfiable: false,
        };
        assert!(!n.pred_matches(&tup(5), None), "no prev → no match");
        assert!(n.pred_matches(&tup(5), Some(&tup(4))));
        assert!(!n.pred_matches(&tup(5), Some(&tup(6))));
    }

    #[test]
    fn entry_lifecycle() {
        let mut n = node(AlphaKind::Stored, None);
        n.insert(
            Tid(7),
            AlphaEntry {
                tid: Some(Tid(7)),
                tuple: tup(15),
                prev: None,
            },
        );
        assert!(n.contains(Tid(7)));
        assert_eq!(n.len(), 1);
        assert!(n.heap_size() > 0);
        assert!(n.remove(Tid(7)).is_some());
        assert!(n.remove(Tid(7)).is_none(), "removal is idempotent");
        assert!(n.is_empty());
    }

    #[test]
    fn flush_clears() {
        let mut n = node(AlphaKind::DynamicOn, Some(EventReq::Append));
        n.insert(
            Tid(1),
            AlphaEntry {
                tid: Some(Tid(1)),
                tuple: tup(12),
                prev: None,
            },
        );
        n.flush();
        assert!(n.is_empty());
    }

    #[test]
    fn positive_gating_trans_only_delta() {
        let n = node(AlphaKind::DynamicTrans, None);
        assert!(!n.admits_positive(TokenKind::Plus, Some(&EventSpecifier::Append)));
        assert!(n.admits_positive(TokenKind::DeltaPlus, Some(&EventSpecifier::Replace(vec![]))));
    }

    #[test]
    fn positive_gating_event_requirements() {
        let n = node(AlphaKind::DynamicOn, Some(EventReq::Append));
        assert!(n.admits_positive(TokenKind::Plus, Some(&EventSpecifier::Append)));
        assert!(!n.admits_positive(TokenKind::DeltaPlus, Some(&EventSpecifier::Replace(vec![]))));
        assert!(
            !n.admits_positive(TokenKind::Plus, None),
            "on-node needs an event"
        );
        // pattern node ignores events entirely
        let p = node(AlphaKind::Stored, None);
        assert!(p.admits_positive(TokenKind::Plus, None));
    }

    #[test]
    fn replace_target_list_matching() {
        let watch = EventReq::Replace(Some(vec![2, 4]));
        assert!(watch.admits(&EventSpecifier::Replace(vec![4])));
        assert!(!watch.admits(&EventSpecifier::Replace(vec![0, 1])));
        assert!(
            watch.admits(&EventSpecifier::Replace(vec![])),
            "unknown attrs admit"
        );
        assert!(!watch.admits(&EventSpecifier::Append));
        let any = EventReq::Replace(None);
        assert!(any.admits(&EventSpecifier::Replace(vec![0])));
    }

    fn entry_of(t: Tuple, tid: u64) -> AlphaEntry {
        AlphaEntry {
            tid: Some(Tid(tid)),
            tuple: t,
            prev: None,
        }
    }

    #[test]
    fn join_index_lifecycle() {
        let mut n = node(AlphaKind::Stored, None);
        n.set_join_indexes(vec![vec![0]]);
        assert!(n.has_join_index(&[0]));
        assert!(!n.has_join_index(&[1]));
        n.insert(Tid(1), entry_of(tup(15), 1));
        n.insert(Tid(2), entry_of(tup(15), 2));
        n.insert(Tid(3), entry_of(tup(12), 3));
        let hits: Vec<_> = n
            .probe_join_index(&[0], &[Value::Int(15)])
            .unwrap()
            .map(|e| e.tid.unwrap().0)
            .collect();
        assert_eq!(hits.len(), 2);
        assert!(hits.contains(&1) && hits.contains(&2));
        assert_eq!(
            n.probe_join_index(&[0], &[Value::Int(99)]).unwrap().count(),
            0
        );
        assert!(n.probe_join_index(&[1], &[Value::Int(15)]).is_none());
        // removal unbuckets
        n.remove(Tid(1));
        assert_eq!(
            n.probe_join_index(&[0], &[Value::Int(15)]).unwrap().count(),
            1
        );
        // replacement rebuckets under the same key
        n.insert(Tid(2), entry_of(tup(12), 2));
        assert_eq!(
            n.probe_join_index(&[0], &[Value::Int(15)]).unwrap().count(),
            0
        );
        assert_eq!(
            n.probe_join_index(&[0], &[Value::Int(12)]).unwrap().count(),
            2
        );
        // flush empties buckets but keeps the registration
        n.flush();
        assert_eq!(
            n.probe_join_index(&[0], &[Value::Int(12)]).unwrap().count(),
            0
        );
        assert!(n.has_join_index(&[0]));
    }

    fn pair(a: i64, b: i64) -> Tuple {
        Tuple::new(vec![Value::Int(a), Value::Int(b)])
    }

    #[test]
    fn composite_join_index_matches_whole_key() {
        let mut n = node(AlphaKind::Stored, None);
        n.set_join_indexes(vec![vec![0, 1]]);
        assert!(n.has_join_index(&[0, 1]));
        assert!(!n.has_join_index(&[0]), "components are not indexed alone");
        n.insert(Tid(1), entry_of(pair(1, 7), 1));
        n.insert(Tid(2), entry_of(pair(1, 8), 2));
        n.insert(Tid(3), entry_of(pair(2, 7), 3));
        // only the exact (1, 7) pair matches — a single-attribute index on
        // attr 0 would have served two candidates here
        assert_eq!(
            n.probe_join_index(&[0, 1], &[Value::Int(1), Value::Int(7)])
                .unwrap()
                .count(),
            1
        );
        assert_eq!(
            n.probe_join_index(&[0, 1], &[Value::Int(1), Value::Int(9)])
                .unwrap()
                .count(),
            0
        );
        // a Null component in the probe key joins nothing
        assert_eq!(
            n.probe_join_index(&[0, 1], &[Value::Int(1), Value::Null])
                .unwrap()
                .count(),
            0
        );
        // a Null component in a stored tuple keeps it out of the index
        n.insert(
            Tid(4),
            entry_of(Tuple::new(vec![Value::Int(1), Value::Null]), 4),
        );
        assert_eq!(
            n.probe_join_index(&[0, 1], &[Value::Int(1), Value::Int(7)])
                .unwrap()
                .count(),
            1
        );
        n.remove(Tid(4)); // must not panic on the unindexed entry
    }

    #[test]
    fn join_index_ignores_null_keys() {
        let mut n = node(AlphaKind::Stored, None);
        n.set_join_indexes(vec![vec![0]]);
        n.insert(Tid(1), entry_of(Tuple::new(vec![Value::Null]), 1));
        assert_eq!(n.probe_join_index(&[0], &[Value::Null]).unwrap().count(), 0);
        assert_eq!(n.expected_bucket_size(&[0]), Some(0), "only Null keys");
        n.remove(Tid(1)); // must not panic on the unindexed entry
        assert!(n.is_empty());
    }

    #[test]
    fn bucket_size_estimate_counts_indexed_entries_only() {
        // 90% of the memory has a Null join key and never reaches the
        // index; the estimate must divide the one indexed entry by the one
        // bucket, not the ten entries by it.
        let mut n = node(AlphaKind::Stored, None);
        n.set_join_indexes(vec![vec![0]]);
        for i in 0..9 {
            n.insert(Tid(i), entry_of(Tuple::new(vec![Value::Null]), i));
        }
        n.insert(Tid(9), entry_of(tup(15), 9));
        assert_eq!(n.len(), 10);
        assert_eq!(n.expected_bucket_size(&[0]), Some(1));
        assert_eq!(n.min_expected_bucket_size(), Some(1));
        // churn keeps the count consistent: drop the indexed entry and the
        // index is empty again even though nine entries remain
        n.remove(Tid(9));
        assert_eq!(n.expected_bucket_size(&[0]), Some(0));
        // replacing a null-keyed entry with a keyed one indexes it
        n.insert(Tid(0), entry_of(tup(3), 0));
        assert_eq!(n.expected_bucket_size(&[0]), Some(1));
    }

    #[test]
    fn heap_size_includes_index_bytes() {
        let mut n = node(AlphaKind::Stored, None);
        n.insert(Tid(1), entry_of(pair(1, 7), 1));
        let plain = n.heap_size();
        let mut indexed = node(AlphaKind::Stored, None);
        indexed.set_join_indexes(vec![vec![0]]);
        indexed.set_range_indexes(vec![band_shape()]);
        indexed.insert(Tid(1), entry_of(pair(1, 7), 1));
        assert!(indexed.index_bytes() > 0);
        assert!(indexed.heap_size() > plain);
    }

    #[test]
    fn join_index_numeric_cross_type_probe() {
        let mut n = node(AlphaKind::Stored, None);
        n.set_join_indexes(vec![vec![0]]);
        n.insert(Tid(1), entry_of(tup(15), 1));
        // Int-keyed bucket is found by a numerically-equal Float probe,
        // matching sql_eq's cross-type join semantics
        assert_eq!(
            n.probe_join_index(&[0], &[Value::Float(15.0)])
                .unwrap()
                .count(),
            1
        );
    }

    #[test]
    fn expected_bucket_size_estimates() {
        let mut n = node(AlphaKind::Stored, None);
        n.set_join_indexes(vec![vec![0]]);
        assert_eq!(n.expected_bucket_size(&[1]), None);
        assert_eq!(n.expected_bucket_size(&[0]), Some(0), "empty memory");
        n.insert(Tid(1), entry_of(tup(11), 1));
        n.insert(Tid(2), entry_of(tup(11), 2));
        n.insert(Tid(3), entry_of(tup(12), 3));
        n.insert(Tid(4), entry_of(tup(13), 4));
        // 4 entries over 3 distinct keys → expect ⌈4/3⌉ = 2 per bucket
        assert_eq!(n.expected_bucket_size(&[0]), Some(2));
        assert_eq!(n.min_expected_bucket_size(), Some(2));
    }

    #[test]
    fn composite_buckets_are_narrower() {
        let mut n = node(AlphaKind::Stored, None);
        n.set_join_indexes(vec![vec![0], vec![0, 1]]);
        for i in 0..8i64 {
            n.insert(Tid(i as u64), entry_of(pair(i % 2, i), i as u64));
        }
        // attr 0 has 2 distinct values → buckets of 4; the (0, 1) composite
        // is unique per tuple → buckets of 1
        assert_eq!(n.expected_bucket_size(&[0]), Some(4));
        assert_eq!(n.expected_bucket_size(&[0, 1]), Some(1));
        assert_eq!(n.min_expected_bucket_size(), Some(1));
    }

    fn band_shape() -> BandShape {
        // entries span (lo, hi] with lo at attr 0 and hi at attr 1
        BandShape {
            lo_attr: 0,
            lo_strict: true,
            hi_attr: 1,
            hi_strict: false,
        }
    }

    #[test]
    fn range_index_lifecycle() {
        let mut n = node(AlphaKind::Stored, None);
        n.set_range_indexes(vec![band_shape()]);
        assert!(n.has_range_index(&band_shape()));
        assert!(n
            .probe_range_index(
                &BandShape {
                    lo_attr: 1,
                    lo_strict: false,
                    hi_attr: 0,
                    hi_strict: false
                },
                &Value::Int(5)
            )
            .is_none());
        n.insert(Tid(1), entry_of(pair(0, 10), 1)); // (0, 10]
        n.insert(Tid(2), entry_of(pair(5, 15), 2)); // (5, 15]
        n.insert(Tid(3), entry_of(pair(20, 30), 3)); // (20, 30]
        let stab = |n: &AlphaNode, x: i64| {
            let mut tids: Vec<u64> = n
                .probe_range_index(&band_shape(), &Value::Int(x))
                .unwrap()
                .iter()
                .map(|e| e.tid.unwrap().0)
                .collect();
            tids.sort_unstable();
            tids
        };
        assert_eq!(stab(&n, 7), vec![1, 2]);
        assert_eq!(stab(&n, 5), vec![1], "strict lower bound excludes 5∈(5,15]");
        assert_eq!(stab(&n, 10), vec![1, 2], "inclusive upper keeps 10∈(0,10]");
        assert_eq!(stab(&n, 17), Vec::<u64>::new());
        // removal un-spans
        n.remove(Tid(1));
        assert_eq!(stab(&n, 7), vec![2]);
        // replacement re-spans under the same key
        n.insert(Tid(2), entry_of(pair(100, 200), 2));
        assert_eq!(stab(&n, 7), Vec::<u64>::new());
        assert_eq!(stab(&n, 150), vec![2]);
        // Null probe key stabs nothing
        assert_eq!(
            n.probe_range_index(&band_shape(), &Value::Null)
                .unwrap()
                .len(),
            0
        );
        // flush empties the interval index but keeps the registration
        n.flush();
        assert_eq!(stab(&n, 150), Vec::<u64>::new());
        assert!(n.has_range_index(&band_shape()));
        n.insert(Tid(9), entry_of(pair(0, 10), 9));
        assert_eq!(stab(&n, 7), vec![9], "index keeps working after a flush");
    }

    #[test]
    fn range_index_skips_null_and_empty_spans() {
        let mut n = node(AlphaKind::Stored, None);
        n.set_range_indexes(vec![band_shape()]);
        n.insert(
            Tid(1),
            entry_of(Tuple::new(vec![Value::Null, Value::Int(9)]), 1),
        );
        n.insert(Tid(2), entry_of(pair(8, 3), 2)); // empty interval (8, 3]
        assert_eq!(
            n.probe_range_index(&band_shape(), &Value::Int(5))
                .unwrap()
                .len(),
            0
        );
        n.remove(Tid(1)); // must not panic on unindexed entries
        n.remove(Tid(2));
        assert!(n.is_empty());
    }

    #[test]
    fn range_index_mixed_numeric_types() {
        let mut n = node(AlphaKind::Stored, None);
        n.set_range_indexes(vec![band_shape()]);
        n.insert(
            Tid(1),
            entry_of(Tuple::new(vec![Value::Float(0.5), Value::Int(10)]), 1),
        );
        // Int probe against a Float lower endpoint: total_cmp orders them
        // numerically, matching the evaluator's comparison semantics
        assert_eq!(
            n.probe_range_index(&band_shape(), &Value::Int(5))
                .unwrap()
                .len(),
            1
        );
        assert_eq!(
            n.probe_range_index(&band_shape(), &Value::Float(0.25))
                .unwrap()
                .len(),
            0
        );
    }

    #[test]
    fn kind_taxonomy() {
        assert!(AlphaKind::Stored.stores_entries());
        assert!(!AlphaKind::Virtual.stores_entries());
        assert!(AlphaKind::DynamicOn.is_dynamic() && AlphaKind::SimpleTrans.is_dynamic());
        assert!(!AlphaKind::Stored.is_dynamic());
        assert!(AlphaKind::Simple.is_simple() && !AlphaKind::Virtual.is_simple());
        assert!(AlphaKind::SimpleTrans.is_trans() && AlphaKind::DynamicTrans.is_trans());
        assert!(AlphaKind::SimpleOn.is_on() && AlphaKind::DynamicOn.is_on());
    }
}
