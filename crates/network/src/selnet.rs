//! The top-level selection network (§4.1).
//!
//! Routes a token to the α-memory nodes whose *anchor* (indexable interval
//! on one attribute) admits the token's tuple. One interval skip list per
//! (relation, anchored attribute) holds the anchors of every subscribed
//! node; a token is matched by stabbing each of its relation's per-attribute
//! indexes with the corresponding attribute value, then unioning in the
//! nodes that have no anchor. Residual predicates and event gating are the
//! caller's job — this layer does exactly what the paper's
//! selection-predicate index does: narrow "all rules" down to "rules whose
//! indexable condition this tuple satisfies" in `O(log n + answers)`.

use crate::alpha::AlphaId;
use ariel_islist::{Counter, Interval, IntervalId, IntervalSkipList, StabStats};
use ariel_storage::{Tuple, Value};
use std::collections::HashMap;

#[derive(Debug, Default)]
struct AttrIndex {
    islist: IntervalSkipList<Value>,
    owner: HashMap<IntervalId, AlphaId>,
}

#[derive(Debug, Default)]
struct RelRouting {
    /// Every subscribed node on this relation (for deletion-polarity
    /// processing and inspection).
    alphas: Vec<AlphaId>,
    /// Per-attribute interval indexes for anchored subscriptions.
    attr_indexes: HashMap<usize, AttrIndex>,
    /// Subscriptions with no anchor: candidates for every token.
    unanchored: Vec<AlphaId>,
}

/// Record of where a subscription lives, for unsubscribing.
#[derive(Debug)]
struct SubRecord {
    rel: String,
    anchored: Option<(usize, IntervalId)>,
}

/// The selection network.
#[derive(Debug, Default)]
pub struct SelectionNetwork {
    rels: HashMap<String, RelRouting>,
    subs: HashMap<usize, SubRecord>, // keyed by AlphaId.0
    /// Always-on counter: tokens probed through [`Self::candidates`].
    probes: Counter,
    /// Always-on counter: candidate nodes emitted by those probes.
    emitted: Counter,
}

impl SelectionNetwork {
    /// New empty network.
    pub fn new() -> Self {
        SelectionNetwork::default()
    }

    /// Subscribe a node on `rel` with an optional anchor.
    pub fn subscribe(&mut self, id: AlphaId, rel: &str, anchor: Option<(usize, Interval<Value>)>) {
        let routing = self.rels.entry(rel.to_string()).or_default();
        routing.alphas.push(id);
        let anchored = match anchor {
            Some((attr, interval)) => {
                let ix = routing.attr_indexes.entry(attr).or_default();
                let iid = ix.islist.insert(interval);
                ix.owner.insert(iid, id);
                Some((attr, iid))
            }
            None => {
                routing.unanchored.push(id);
                None
            }
        };
        self.subs.insert(
            id.0,
            SubRecord {
                rel: rel.to_string(),
                anchored,
            },
        );
    }

    /// Remove a subscription.
    pub fn unsubscribe(&mut self, id: AlphaId) {
        let Some(rec) = self.subs.remove(&id.0) else {
            return;
        };
        let Some(routing) = self.rels.get_mut(&rec.rel) else {
            return;
        };
        routing.alphas.retain(|a| *a != id);
        match rec.anchored {
            Some((attr, iid)) => {
                if let Some(ix) = routing.attr_indexes.get_mut(&attr) {
                    ix.islist.remove(iid);
                    ix.owner.remove(&iid);
                }
            }
            None => routing.unanchored.retain(|a| *a != id),
        }
    }

    /// Candidate nodes for a tuple of `rel`: anchored subscriptions whose
    /// interval contains the corresponding attribute value, plus every
    /// unanchored subscription. Residual predicates are *not* checked here.
    pub fn candidates(&self, rel: &str, tuple: &Tuple) -> Vec<AlphaId> {
        let mut out = Vec::new();
        self.candidates_into(rel, tuple, &mut out);
        out
    }

    /// [`Self::candidates`] into a caller-supplied buffer (appended, not
    /// cleared) — the per-token routing path recycles one buffer per
    /// transition through `crate::arena` instead of allocating per token.
    pub fn candidates_into(&self, rel: &str, tuple: &Tuple, out: &mut Vec<AlphaId>) {
        self.probes.add(1);
        let Some(routing) = self.rels.get(rel) else {
            return;
        };
        let start = out.len();
        for (attr, ix) in &routing.attr_indexes {
            if *attr >= tuple.arity() {
                continue;
            }
            let v = tuple.get(*attr);
            if v.is_null() {
                continue; // null never satisfies a comparison
            }
            ix.islist.stab_with(v, |iid| {
                out.push(ix.owner[&iid]);
            });
        }
        out.extend_from_slice(&routing.unanchored);
        self.emitted.add((out.len() - start) as u64);
    }

    /// Always-on probe counters: `(tokens probed, candidates emitted)`.
    pub fn probe_counts(&self) -> (u64, u64) {
        (self.probes.get(), self.emitted.get())
    }

    /// Aggregated stabbing-query counters across every per-attribute
    /// interval skip list (see [`StabStats`]).
    pub fn stab_stats(&self) -> StabStats {
        let agg = StabStats::new();
        for r in self.rels.values() {
            for ix in r.attr_indexes.values() {
                agg.merge(ix.islist.stab_stats());
            }
        }
        agg
    }

    /// Every subscribed node on `rel`.
    pub fn alphas_on(&self, rel: &str) -> &[AlphaId] {
        self.rels
            .get(rel)
            .map(|r| r.alphas.as_slice())
            .unwrap_or(&[])
    }

    /// Total number of subscriptions.
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// True iff nothing is subscribed.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// Approximate heap footprint of the interval indexes, in bytes.
    pub fn approx_size_bytes(&self) -> usize {
        self.rels
            .values()
            .flat_map(|r| r.attr_indexes.values())
            .map(|ix| ix.islist.approx_size_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tup(vals: &[i64]) -> Tuple {
        Tuple::new(vals.iter().map(|&v| Value::Int(v)).collect())
    }

    fn band(lo: i64, hi: i64) -> Interval<Value> {
        Interval::open_closed(Value::Int(lo), Value::Int(hi)).unwrap()
    }

    #[test]
    fn routes_by_interval() {
        let mut net = SelectionNetwork::new();
        net.subscribe(AlphaId(0), "emp", Some((1, band(0, 10))));
        net.subscribe(AlphaId(1), "emp", Some((1, band(5, 15))));
        net.subscribe(AlphaId(2), "emp", None); // unanchored: always candidate
        let mut c = net.candidates("emp", &tup(&[99, 7]));
        c.sort_by_key(|a| a.0);
        assert_eq!(c, vec![AlphaId(0), AlphaId(1), AlphaId(2)]);
        let mut c = net.candidates("emp", &tup(&[99, 12]));
        c.sort_by_key(|a| a.0);
        assert_eq!(c, vec![AlphaId(1), AlphaId(2)]);
        let c = net.candidates("emp", &tup(&[99, 100]));
        assert_eq!(c, vec![AlphaId(2)]);
    }

    #[test]
    fn different_relations_isolated() {
        let mut net = SelectionNetwork::new();
        net.subscribe(AlphaId(0), "emp", Some((0, band(0, 10))));
        net.subscribe(AlphaId(1), "dept", Some((0, band(0, 10))));
        assert_eq!(net.candidates("emp", &tup(&[5])), vec![AlphaId(0)]);
        assert_eq!(net.candidates("dept", &tup(&[5])), vec![AlphaId(1)]);
        assert!(net.candidates("job", &tup(&[5])).is_empty());
    }

    #[test]
    fn multiple_anchor_attributes() {
        let mut net = SelectionNetwork::new();
        net.subscribe(AlphaId(0), "emp", Some((0, band(0, 10))));
        net.subscribe(AlphaId(1), "emp", Some((1, band(100, 200))));
        let mut c = net.candidates("emp", &tup(&[5, 150]));
        c.sort_by_key(|a| a.0);
        assert_eq!(c, vec![AlphaId(0), AlphaId(1)]);
        assert_eq!(net.candidates("emp", &tup(&[50, 150])), vec![AlphaId(1)]);
    }

    #[test]
    fn null_attribute_matches_nothing_anchored() {
        let mut net = SelectionNetwork::new();
        net.subscribe(AlphaId(0), "emp", Some((0, band(0, 10))));
        net.subscribe(AlphaId(1), "emp", None);
        let t = Tuple::new(vec![Value::Null]);
        assert_eq!(net.candidates("emp", &t), vec![AlphaId(1)]);
    }

    #[test]
    fn unsubscribe_removes_routing() {
        let mut net = SelectionNetwork::new();
        net.subscribe(AlphaId(0), "emp", Some((0, band(0, 10))));
        net.subscribe(AlphaId(1), "emp", None);
        assert_eq!(net.len(), 2);
        net.unsubscribe(AlphaId(0));
        assert!(net.candidates("emp", &tup(&[5])) == vec![AlphaId(1)]);
        net.unsubscribe(AlphaId(1));
        assert!(net.candidates("emp", &tup(&[5])).is_empty());
        assert!(net.is_empty());
        assert!(net.alphas_on("emp").is_empty());
        // double-unsubscribe is a no-op
        net.unsubscribe(AlphaId(0));
    }

    #[test]
    fn short_token_tuples_skip_out_of_range_attrs() {
        let mut net = SelectionNetwork::new();
        net.subscribe(AlphaId(0), "emp", Some((5, band(0, 10))));
        // tuple with fewer attributes than the anchor position
        assert!(net.candidates("emp", &tup(&[1])).is_empty());
    }

    #[test]
    fn two_hundred_band_rules_route_sparsely() {
        // the Fig. 9-11 workload shape
        let mut net = SelectionNetwork::new();
        for i in 0..200 {
            net.subscribe(
                AlphaId(i),
                "emp",
                Some((1, band(i as i64 * 1000, i as i64 * 1000 + 10_000))),
            );
        }
        let c = net.candidates("emp", &tup(&[0, 55_500]));
        assert_eq!(c.len(), 10, "exactly the 10 overlapping bands");
    }
}
