//! Flat composite join keys.
//!
//! The join indexes used to key their hash buckets on `Vec<Value>` — one
//! heap allocation per insert *and* per probe, with a clone of every key
//! component (string components cloned their whole payload). [`SmallKey`]
//! packs the common case — up to [`MAX_INLINE`] components, each a null,
//! bool, in-range numeric, or (interned) string — into a fixed-width
//! inline array of `(tag, u64)` pairs: building one allocates nothing,
//! hashing folds a few machine words, and equality is a `memcmp`-shaped
//! integer compare. Keys that don't fit (arity > [`MAX_INLINE`], or a
//! component whose packed form would break `Value` equality, see
//! `encode`) fall back to a boxed value slice with the old semantics.
//!
//! **Faithfulness invariant**: for value sequences `a` and `b`,
//! `SmallKey::from_values(a) == SmallKey::from_values(b)` exactly when
//! `a == b` elementwise under `Value` equality, and equal keys hash
//! identically. The encoding guarantees this by
//!
//! * packing every numeric as its `f64` bits — `Int(5)`, and `Float(5.0)`
//!   are cross-type equal and produce the same word;
//! * refusing to pack numerics at or beyond 2⁵³, where `f64` rounding
//!   would alias `Int`s that exact 64-bit comparison keeps distinct
//!   (equal values agree on packability, so an unpackable component sends
//!   *both* sides of any equal pair to the boxed representation — the two
//!   variants never alias);
//! * packing strings as their interned symbol id — `Str` and `Sym` of the
//!   same content are equal and intern to the same id.

use ariel_storage::{intern, Value};

/// Maximum number of key components held inline.
pub const MAX_INLINE: usize = 4;

/// Smallest magnitude at which `f64` can no longer represent every
/// integer exactly (2⁵³). Numerics at or beyond this are not packed.
const EXACT_LIMIT: u64 = 1 << 53;

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_NUM: u8 = 2;
const TAG_STR: u8 = 3;

/// A packed composite join key. See the module docs for the equality/
/// hashing contract.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SmallKey {
    /// Up to [`MAX_INLINE`] packed components. Unused slots stay zeroed so
    /// derived `Eq`/`Hash` are canonical.
    Inline {
        /// Number of live components.
        len: u8,
        /// Per-component type tag.
        tags: [u8; MAX_INLINE],
        /// Per-component packed payload.
        words: [u64; MAX_INLINE],
    },
    /// Fallback for long keys and unpackable components.
    Boxed(Box<[Value]>),
}

/// Pack one value, or `None` if its packed form would break `Value`
/// equality (numerics at or beyond 2⁵³; see module docs).
#[inline]
fn encode(v: &Value) -> Option<(u8, u64)> {
    match v {
        Value::Null => Some((TAG_NULL, 0)),
        Value::Bool(b) => Some((TAG_BOOL, *b as u64)),
        Value::Int(i) => {
            if i.unsigned_abs() >= EXACT_LIMIT {
                None
            } else {
                Some((TAG_NUM, (*i as f64).to_bits()))
            }
        }
        Value::Float(f) => {
            // Every float ≥ 2⁵³ is integral; such a float is cross-type
            // equal to an unpackable Int, so it must be unpackable too.
            if f.is_finite() && f.abs() >= EXACT_LIMIT as f64 {
                None
            } else {
                Some((TAG_NUM, f.to_bits()))
            }
        }
        Value::Str(s) => Some((TAG_STR, u64::from(intern(s).id()))),
        Value::Sym(sym) => Some((TAG_STR, u64::from(sym.id()))),
    }
}

/// Reconstruct a value that is `Value`-equal to the one [`encode`]d.
/// (Not identical: numerics come back as `Float`, strings as `Sym` —
/// both cross-type equal to the originals.)
#[inline]
fn decode(tag: u8, word: u64) -> Value {
    match tag {
        TAG_NULL => Value::Null,
        TAG_BOOL => Value::Bool(word != 0),
        TAG_NUM => Value::Float(f64::from_bits(word)),
        TAG_STR => Value::Sym(intern::symbol_from_id(word as u32)),
        _ => unreachable!("invalid SmallKey tag"),
    }
}

impl SmallKey {
    /// Pack a key from a value slice. Allocation-free when every
    /// component packs and the arity fits inline.
    pub fn from_values(values: &[Value]) -> SmallKey {
        let mut b = KeyBuilder::new(values.len());
        for v in values {
            b.push(v);
        }
        b.finish()
    }

    /// Number of key components.
    pub fn len(&self) -> usize {
        match self {
            SmallKey::Inline { len, .. } => *len as usize,
            SmallKey::Boxed(vs) => vs.len(),
        }
    }

    /// True iff the key has no components.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether any component is `Null` (a probe with such a key joins
    /// nothing under `sql_eq`).
    pub fn has_null(&self) -> bool {
        match self {
            SmallKey::Inline { len, tags, .. } => tags[..*len as usize].contains(&TAG_NULL),
            SmallKey::Boxed(vs) => vs.iter().any(Value::is_null),
        }
    }

    /// Heap bytes owned by the key beyond `size_of::<SmallKey>()`.
    /// Inline keys own none — that's the point.
    pub fn heap_bytes(&self) -> usize {
        match self {
            SmallKey::Inline { .. } => 0,
            SmallKey::Boxed(vs) => {
                vs.len() * std::mem::size_of::<Value>()
                    + vs.iter().map(Value::heap_size).sum::<usize>()
            }
        }
    }
}

/// Incremental [`SmallKey`] builder: callers that assemble a key
/// component-by-component (evaluating key expressions, walking tuple
/// attributes) push into this and never materialize a `Vec<Value>` on the
/// packed path. Spills to the boxed representation on the first
/// unpackable component, reconstructing already-pushed components via
/// `decode` (equality-preserving, see module docs).
#[derive(Debug)]
pub struct KeyBuilder {
    key: SmallKey,
    spill: Vec<Value>,
}

impl KeyBuilder {
    /// Start a key of the given arity. Arities beyond [`MAX_INLINE`] go
    /// straight to the boxed representation.
    pub fn new(arity: usize) -> KeyBuilder {
        if arity > MAX_INLINE {
            KeyBuilder {
                key: SmallKey::Boxed(Box::new([])),
                spill: Vec::with_capacity(arity),
            }
        } else {
            KeyBuilder {
                key: SmallKey::Inline {
                    len: 0,
                    tags: [0; MAX_INLINE],
                    words: [0; MAX_INLINE],
                },
                spill: Vec::new(),
            }
        }
    }

    /// Append one component. Clones the value only on the boxed path.
    pub fn push(&mut self, v: &Value) {
        match &mut self.key {
            SmallKey::Inline { len, tags, words } => {
                let i = *len as usize;
                match encode(v) {
                    Some((tag, word)) if i < MAX_INLINE => {
                        tags[i] = tag;
                        words[i] = word;
                        *len += 1;
                    }
                    _ => {
                        // spill: replay the packed prefix as values
                        self.spill.reserve(i + 1);
                        for j in 0..i {
                            self.spill.push(decode(tags[j], words[j]));
                        }
                        self.spill.push(v.clone());
                        self.key = SmallKey::Boxed(Box::new([]));
                    }
                }
            }
            SmallKey::Boxed(_) => self.spill.push(v.clone()),
        }
    }

    /// Finish the key.
    pub fn finish(self) -> SmallKey {
        match self.key {
            k @ SmallKey::Inline { .. } => k,
            SmallKey::Boxed(_) => SmallKey::Boxed(self.spill.into_boxed_slice()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariel_storage::FxHasher;
    use std::hash::{Hash, Hasher};

    fn fxhash(k: &SmallKey) -> u64 {
        let mut h = FxHasher::default();
        k.hash(&mut h);
        h.finish()
    }

    fn key(vs: &[Value]) -> SmallKey {
        SmallKey::from_values(vs)
    }

    #[test]
    fn inline_for_small_scalar_keys() {
        let k = key(&[Value::Int(1), Value::Bool(true), Value::Null]);
        assert!(matches!(k, SmallKey::Inline { len: 3, .. }));
        assert_eq!(k.len(), 3);
        assert_eq!(k.heap_bytes(), 0);
        assert!(k.has_null());
        assert!(!key(&[Value::Int(1)]).has_null());
    }

    #[test]
    fn strings_pack_inline_via_interning() {
        let a = key(&[Value::Str("engineering".into()), Value::Int(4)]);
        let b = key(&[Value::interned("engineering"), Value::Int(4)]);
        assert!(matches!(a, SmallKey::Inline { .. }));
        assert_eq!(a, b, "owned and interned strings key identically");
        assert_eq!(fxhash(&a), fxhash(&b));
        assert_eq!(a.heap_bytes(), 0, "no string payload in the key");
    }

    #[test]
    fn cross_type_numerics_key_identically() {
        let i = key(&[Value::Int(42)]);
        let f = key(&[Value::Float(42.0)]);
        assert_eq!(i, f);
        assert_eq!(fxhash(&i), fxhash(&f));
        assert_ne!(key(&[Value::Float(-0.0)]), key(&[Value::Float(0.0)]));
    }

    #[test]
    fn unpackable_numerics_agree_on_boxing() {
        let big = 1i64 << 53;
        let ik = key(&[Value::Int(big)]);
        let fk = key(&[Value::Float(big as f64)]);
        assert!(matches!(ik, SmallKey::Boxed(_)));
        assert!(matches!(fk, SmallKey::Boxed(_)), "equal float boxes too");
        assert!(matches!(
            key(&[Value::Int(big - 1)]),
            SmallKey::Inline { .. }
        ));
        assert!(matches!(key(&[Value::Int(i64::MIN)]), SmallKey::Boxed(_)));
        // non-finite floats pack (no Int is equal to them)
        assert!(matches!(
            key(&[Value::Float(f64::INFINITY)]),
            SmallKey::Inline { .. }
        ));
    }

    #[test]
    fn long_keys_box() {
        let vs: Vec<Value> = (0..5).map(Value::Int).collect();
        let k = key(&vs);
        assert!(matches!(k, SmallKey::Boxed(_)));
        assert_eq!(k.len(), 5);
        assert!(k.heap_bytes() > 0);
        assert_eq!(k, key(&vs));
    }

    #[test]
    fn spill_preserves_equality_of_packed_prefix() {
        // first component packs, second forces the spill: the replayed
        // prefix must still equal a boxed key built from the raw values
        let vs = [Value::Str("dept-nine".into()), Value::Int(1 << 60)];
        let spilled = key(&vs);
        let direct = SmallKey::Boxed(vs.to_vec().into_boxed_slice());
        assert!(matches!(spilled, SmallKey::Boxed(_)));
        assert_eq!(spilled, direct);
        assert_eq!(fxhash(&spilled), fxhash(&direct));
    }

    #[test]
    fn distinct_values_key_distinctly() {
        assert_ne!(key(&[Value::Int(1)]), key(&[Value::Int(2)]));
        assert_ne!(key(&[Value::Bool(false)]), key(&[Value::Null]));
        assert_ne!(
            key(&[Value::Str("a".into())]),
            key(&[Value::Str("b".into())])
        );
        assert_ne!(key(&[Value::Int(1)]), key(&[Value::Int(1), Value::Int(1)]));
    }
}
