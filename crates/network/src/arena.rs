//! Per-transition scratch arenas.
//!
//! Every transition the match path builds and throws away the same shapes
//! of scratch: candidate α-memory lists from the selection network,
//! partially-bound row slots, and join-result buffers. Allocating these
//! fresh per token puts the allocator on the hot path; the pools here
//! recycle the buffers instead — `take` hands back a previously-used
//! buffer (cleared, capacity intact), `give` returns it.
//!
//! Pools live in `thread_local!` storage at their use sites, which gives
//! the parallel match path one arena per worker for free: scoped-pool
//! workers are persistent threads, so each worker's buffers are reused
//! across batches without any cross-thread synchronization, and the
//! sequential path is just the main thread's arena. Dropping a thread
//! drops its arena.
//!
//! Stats (takes / reuses / high-water bytes) are global atomics so the
//! "peak scratch" figure in `BENCH_mem.json` aggregates across workers.

use crate::alpha::AlphaId;
use ariel_islist::Counter;
use ariel_query::BoundVar;
use std::cell::RefCell;

/// Global arena counters (all threads).
#[derive(Debug, Default)]
struct GlobalStats {
    takes: Counter,
    reuses: Counter,
    high_water: Counter,
}

fn global() -> &'static GlobalStats {
    static STATS: std::sync::OnceLock<GlobalStats> = std::sync::OnceLock::new();
    STATS.get_or_init(GlobalStats::default)
}

/// Snapshot of the arena counters, aggregated across every thread that
/// has touched a pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Buffers handed out.
    pub takes: u64,
    /// Hand-outs served by recycling (the rest were fresh allocations).
    pub reuses: u64,
    /// High-water mark of bytes retained across all pools.
    pub high_water_bytes: u64,
}

/// Read the global arena counters.
pub fn stats() -> ArenaStats {
    let g = global();
    ArenaStats {
        takes: g.takes.get(),
        reuses: g.reuses.get(),
        high_water_bytes: g.high_water.get(),
    }
}

/// Zero the take/reuse counters (the high-water mark is monotone and is
/// left alone — it tracks peak retained scratch for the process).
pub fn reset_stats() {
    let g = global();
    g.takes.set(0);
    g.reuses.set(0);
}

/// A recycling pool of `Vec<T>` buffers. Single-threaded by design —
/// instances live in `thread_local!` cells (see [`with_pool`]).
#[derive(Debug)]
pub struct Pool<T> {
    free: Vec<Vec<T>>,
    /// Bytes retained by the free list (capacity × element size).
    retained: usize,
}

impl<T> Default for Pool<T> {
    fn default() -> Self {
        Pool {
            free: Vec::new(),
            retained: 0,
        }
    }
}

/// Cap on buffers retained per pool: enough to cover the deepest join
/// nesting plus per-batch buffers, while bounding idle memory.
const MAX_RETAINED: usize = 64;

impl<T> Pool<T> {
    /// Hand out a cleared buffer, recycled when one is available.
    pub fn take(&mut self) -> Vec<T> {
        let g = global();
        g.takes.add(1);
        match self.free.pop() {
            Some(buf) => {
                g.reuses.add(1);
                self.retained -= buf.capacity() * std::mem::size_of::<T>();
                buf
            }
            None => Vec::new(),
        }
    }

    /// Return a buffer to the pool. Contents are dropped; capacity is
    /// retained for the next [`Pool::take`].
    pub fn give(&mut self, mut buf: Vec<T>) {
        if self.free.len() >= MAX_RETAINED {
            return; // drop it — keep idle retention bounded
        }
        buf.clear();
        self.retained += buf.capacity() * std::mem::size_of::<T>();
        self.free.push(buf);
        let g = global();
        // monotone high-water over this pool's retained bytes; races
        // between threads can only under-report transiently, which is
        // fine for a peak estimate
        if self.retained as u64 > g.high_water.get() {
            g.high_water.set(self.retained as u64);
        }
    }

    /// Bytes currently retained on the free list.
    pub fn retained_bytes(&self) -> usize {
        self.retained
    }
}

/// Run `f` with the calling thread's pool for element type `T`, as
/// selected by the `thread_local!` cell the caller owns. Helper that
/// centralizes the `RefCell` discipline at the use sites:
///
/// ```ignore
/// thread_local! {
///     static ROWS: RefCell<Pool<Row>> = RefCell::new(Pool::default());
/// }
/// let buf = with_pool(&ROWS, Pool::take);
/// // ... use buf ...
/// with_pool(&ROWS, |p| p.give(buf));
/// ```
pub fn with_pool<T, R>(
    key: &'static std::thread::LocalKey<RefCell<Pool<T>>>,
    f: impl FnOnce(&mut Pool<T>) -> R,
) -> R {
    key.with(|cell| f(&mut cell.borrow_mut()))
}

// ---- the match path's concrete arenas -----------------------------------
//
// One `thread_local!` per scratch shape. The sequential path uses the main
// thread's cells; each parallel worker gets its own. A buffer may be taken
// on one thread and given back on another (join results cross from worker
// to merge thread) — that just migrates capacity between arenas.

thread_local! {
    static CANDIDATES: RefCell<Pool<AlphaId>> = RefCell::new(Pool::default());
    static ROW_SLOTS: RefCell<Pool<Option<BoundVar>>> = RefCell::new(Pool::default());
    static RESULTS: RefCell<Pool<Vec<BoundVar>>> = RefCell::new(Pool::default());
}

/// Take a selection-network candidate buffer from this thread's arena.
pub fn take_candidates() -> Vec<AlphaId> {
    with_pool(&CANDIDATES, Pool::take)
}

/// Return a candidate buffer.
pub fn give_candidates(buf: Vec<AlphaId>) {
    with_pool(&CANDIDATES, |p| p.give(buf));
}

/// Take a partial-row slot buffer (`Row::slots` backing store).
pub fn take_row_slots() -> Vec<Option<BoundVar>> {
    with_pool(&ROW_SLOTS, Pool::take)
}

/// Return a row-slot buffer.
pub fn give_row_slots(buf: Vec<Option<BoundVar>>) {
    with_pool(&ROW_SLOTS, |p| p.give(buf));
}

/// Take a join-results buffer (one instantiation per element).
pub fn take_results() -> Vec<Vec<BoundVar>> {
    with_pool(&RESULTS, Pool::take)
}

/// Return a results buffer (contained instantiations are dropped).
pub fn give_results(buf: Vec<Vec<BoundVar>>) {
    with_pool(&RESULTS, |p| p.give(buf));
}

#[cfg(test)]
mod tests {
    use super::*;

    thread_local! {
        static TEST_POOL: RefCell<Pool<u64>> = RefCell::new(Pool::default());
    }

    #[test]
    fn take_give_recycles_capacity() {
        let mut pool: Pool<u64> = Pool::default();
        let mut a = pool.take();
        a.extend(0..100);
        let cap = a.capacity();
        pool.give(a);
        assert!(pool.retained_bytes() >= cap * 8);
        let b = pool.take();
        assert!(b.is_empty(), "recycled buffers come back cleared");
        assert!(b.capacity() >= cap, "capacity survives the round trip");
        assert_eq!(pool.retained_bytes(), 0);
    }

    #[test]
    fn retention_is_bounded() {
        let mut pool: Pool<u64> = Pool::default();
        for _ in 0..(MAX_RETAINED + 10) {
            pool.give(vec![1u64]);
        }
        assert!(pool.free.len() <= MAX_RETAINED);
    }

    #[test]
    fn stats_track_reuse() {
        let before = stats();
        let mut pool: Pool<u64> = Pool::default();
        let a = pool.take(); // fresh
        pool.give(a);
        let b = pool.take(); // recycled
        pool.give(b);
        let after = stats();
        assert!(after.takes >= before.takes + 2);
        assert!(after.reuses > before.reuses);
    }

    #[test]
    fn thread_local_helper_round_trips() {
        let mut buf = with_pool(&TEST_POOL, Pool::take);
        buf.push(7);
        with_pool(&TEST_POOL, |p| p.give(buf));
        let again = with_pool(&TEST_POOL, Pool::take);
        assert!(again.is_empty());
        with_pool(&TEST_POOL, |p| p.give(again));
    }
}
