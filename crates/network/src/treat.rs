//! The A-TREAT discrimination network (§4).
//!
//! TREAT keeps one α-memory per rule tuple-variable and **no join (β)
//! memories**: a positive token joins directly against the other variables'
//! α-memories to extend the rule's P-node, and a negative token just
//! removes its TID from α-memories and P-node rows. A-TREAT adds two things
//! on top (both implemented here):
//!
//! * the **selection network** ([`crate::selnet`]) in front, so a token
//!   finds the α-nodes it satisfies by interval-index stabbing instead of
//!   testing every rule predicate, and
//! * **virtual α-memory nodes** (§4.2), which store only their predicate;
//!   joins against them scan the base relation under that predicate.
//!
//! ### Virtual-node correctness (the ProcessedMemories rule)
//!
//! The paper processes a token *before* inserting its tuple into the base
//! relation, and uses a `ProcessedMemories` set to decide when the token
//! must additionally join to itself inside a virtual node. Our engine
//! applies changes to relations first (set-oriented command execution), so
//! the equivalent discipline is inverted and implemented exactly here:
//!
//! * a **batch pending set** hides tuples whose positive tokens have not
//!   been processed yet (they are physically in the relation but logically
//!   not yet in any α-memory), and
//! * the in-flight token's own tuple is visible inside a virtual node only
//!   if that node is in `processed` — the set of α-nodes this token has
//!   already been inserted into, which is precisely the paper's
//!   `ProcessedMemories`.
//!
//! This reproduces TREAT's self-join counting exactly: a token joins to
//! itself once per virtual/stored node pair, never twice.

use crate::alpha::{
    AlphaCounters, AlphaEntry, AlphaId, AlphaKind, AlphaNode, BandShape, EventReq, RuleId,
};
use crate::arena;
use crate::key::{KeyBuilder, SmallKey};
use crate::obs::MatchObs;
use crate::plan::{BandSpec, CompositeSpec, JoinPlan};
use crate::pred::SelectionPredicate;
use crate::selnet::SelectionNetwork;
use crate::token::{EventSpecifier, Token, TokenKind};
use crate::trace::{TraceEventKind, TraceRecorder};
use ariel_query::{
    eval_pred, BoundVar, EventKind, Optimizer, PatchedEnv, Pnode, PnodeCol, QueryError,
    QueryResult, QuerySpec, RExpr, ResolvedCondition, Row,
};
use ariel_storage::{Catalog, FxHashSet, SchemaRef, Tid, Tuple, Value};
use scoped_pool::Pool;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Mutex;
use std::time::Instant;

/// Policy deciding which eligible α-memories become virtual (§4.2 closes
/// with exactly this optimization problem; the policies here are the
/// obvious points in that design space, compared in the VIRT ablation).
#[derive(Debug, Clone)]
pub enum VirtualPolicy {
    /// Classic TREAT: every α-memory stores its matching tuples.
    AllStored,
    /// Every eligible (pattern, multi-variable) α-memory is virtual.
    AllVirtual,
    /// Virtual iff the predicate currently matches more than `threshold`
    /// of its relation (low-selectivity predicates would store near-copies
    /// of the base table — the paper's motivating case).
    SelectivityThreshold(f64),
    /// Explicit variable indices (within the rule condition) to virtualize.
    ExplicitVars(HashSet<usize>),
}

/// One tuple variable of a compiled rule (descriptive fields live on the
/// P-node columns; the network itself only needs the α-node handle).
#[derive(Debug)]
struct RuleVar {
    alpha: AlphaId,
}

/// A compiled rule: its α-nodes, join conjuncts, and P-node.
#[derive(Debug)]
struct RuleNode {
    vars: Vec<RuleVar>,
    /// Multi-variable conjuncts of the condition (original var indices).
    join_conjuncts: Vec<RExpr>,
    /// Cached per-rule join plan over `join_conjuncts`.
    plan: JoinPlan,
    pnode: Pnode,
    /// Original resolved condition spec, used for activation priming.
    spec: QuerySpec,
    /// Number of dynamic (per-transition) α-nodes.
    n_dynamic: usize,
    /// No event or transition components: P-node can be primed from data.
    pattern_only: bool,
    /// Always-on counter: tokens that entered this rule (passed an α-test).
    tokens_in: u64,
    /// Always-on counter: β-joins probed for this rule.
    join_probes: u64,
    /// Always-on counter: instantiations pushed into the P-node.
    pnode_inserts: u64,
}

/// Per-rule memory statistics (the measurable claim of §4.2), plus the
/// always-on activity counters of the observability layer.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RuleStats {
    /// Entries across the rule's stored/dynamic α-memories.
    pub alpha_entries: usize,
    /// Approximate bytes held by those entries.
    pub alpha_bytes: usize,
    /// Matched instantiations awaiting execution.
    pub pnode_rows: usize,
    /// Approximate bytes held by the P-node.
    pub pnode_bytes: usize,
    /// Tokens that entered this rule's network (passed some α-test).
    pub tokens_in: u64,
    /// α-tests run against this rule's nodes.
    pub alpha_tests: u64,
    /// α-tests that passed.
    pub alpha_passes: u64,
    /// β-joins probed.
    pub join_probes: u64,
    /// Instantiations appended to the P-node (join fan-out is
    /// `pnode_inserts / join_probes`).
    pub pnode_inserts: u64,
    /// β-join materializations of this rule's virtual α-nodes.
    pub virtual_scans: u64,
    /// Base-relation tuples examined during those materializations.
    pub virtual_scanned_tuples: u64,
    /// Join candidates served from *stored* α-memories.
    pub stored_join_candidates: u64,
    /// Join candidates served by *virtual* materialization — the
    /// virtual-vs-stored hit ratio is `virtual / (virtual + stored)`.
    pub virtual_join_candidates: u64,
    /// Hash join-index probes (α-memory join indexes plus virtual-node
    /// base-relation indexes).
    pub index_probes: u64,
    /// Index probes that found at least one candidate.
    pub index_hits: u64,
    /// Join candidates served through an index probe.
    pub indexed_candidates: u64,
    /// Join candidates served by full enumeration (no usable index).
    pub scanned_candidates: u64,
    /// Interval-index stabbing probes (band joins).
    pub range_probes: u64,
    /// Range probes that found at least one candidate.
    pub range_hits: u64,
    /// Approximate bytes held in β-memories (indexed/nested Rete backend
    /// only — TREAT keeps no β-memories, so this stays 0).
    pub beta_bytes: usize,
    /// β-memory index probes (indexed Rete only; 0 under TREAT).
    pub beta_probes: u64,
    /// β-probes that found at least one partial match.
    pub beta_hits: u64,
}

impl RuleStats {
    /// Mean β-join fan-out: P-node rows produced per probing token.
    pub fn join_fanout(&self) -> f64 {
        if self.join_probes == 0 {
            0.0
        } else {
            self.pnode_inserts as f64 / self.join_probes as f64
        }
    }

    /// Fraction of join candidates served by virtual materialization
    /// rather than stored α-entries (0.0 when no join candidates yet).
    pub fn virtual_hit_ratio(&self) -> f64 {
        let total = self.stored_join_candidates + self.virtual_join_candidates;
        if total == 0 {
            0.0
        } else {
            self.virtual_join_candidates as f64 / total as f64
        }
    }
}

/// Aggregate network statistics: memory footprint (§4.2) plus the always-on
/// activity counters of the observability layer.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NetworkStats {
    /// Compiled rules.
    pub rules: usize,
    /// α-memory nodes of all kinds.
    pub alpha_nodes: usize,
    /// Virtual α-memory nodes among them.
    pub virtual_alpha_nodes: usize,
    /// Entries across stored/dynamic α-memories.
    pub alpha_entries: usize,
    /// Approximate bytes held by those entries.
    pub alpha_bytes: usize,
    /// Matched instantiations across all P-nodes.
    pub pnode_rows: usize,
    /// Approximate bytes held by P-nodes.
    pub pnode_bytes: usize,
    /// Approximate bytes in the selection network's interval indexes.
    pub selnet_bytes: usize,
    /// Tokens pushed through [`Network::process_batch`].
    pub tokens_processed: u64,
    /// Selection-network probes (one per positive token, plus ON DELETE).
    pub selnet_probes: u64,
    /// Candidate α-nodes those probes emitted.
    pub selnet_candidates: u64,
    /// Interval-skip-list stabbing queries behind those probes.
    pub islist_stabs: u64,
    /// Skip-list nodes visited answering them.
    pub islist_nodes_visited: u64,
    /// α-tests run across all nodes.
    pub alpha_tests: u64,
    /// α-tests that passed.
    pub alpha_passes: u64,
    /// β-joins probed across all rules.
    pub join_probes: u64,
    /// Instantiations appended across all P-nodes.
    pub pnode_inserts: u64,
    /// β-join materializations of virtual α-nodes.
    pub virtual_scans: u64,
    /// Base-relation tuples examined during those materializations.
    pub virtual_scanned_tuples: u64,
    /// Join candidates served from stored α-memories.
    pub stored_join_candidates: u64,
    /// Join candidates served by virtual materialization.
    pub virtual_join_candidates: u64,
    /// Hash join-index probes across all nodes.
    pub index_probes: u64,
    /// Index probes that found at least one candidate.
    pub index_hits: u64,
    /// Join candidates served through an index probe.
    pub indexed_candidates: u64,
    /// Join candidates served by full enumeration (no usable index).
    pub scanned_candidates: u64,
    /// Interval-index stabbing probes across all nodes (band joins).
    pub range_probes: u64,
    /// Range probes that found at least one candidate.
    pub range_hits: u64,
    /// Approximate bytes held in β-memories (indexed/nested Rete backend
    /// only — TREAT keeps no β-memories, so this stays 0).
    pub beta_bytes: usize,
    /// β-memory index probes (indexed Rete only; 0 under TREAT).
    pub beta_probes: u64,
    /// β-probes that found at least one partial match.
    pub beta_hits: u64,
}

/// The A-TREAT network: selection layer, α-memories, and P-nodes for every
/// activated rule.
///
/// ```
/// use ariel_network::{EventSpecifier, Network, RuleId, Token, VirtualPolicy};
/// use ariel_query::{parse_expr, Resolver};
/// use ariel_storage::{AttrType, Catalog, Schema};
///
/// let mut catalog = Catalog::new();
/// let emp = catalog
///     .create("emp", Schema::of(&[("sal", AttrType::Int)]))
///     .unwrap();
///
/// // compile and prime a rule condition
/// let cond = Resolver::new(&catalog)
///     .resolve_condition(None, Some(&parse_expr("emp.sal > 100").unwrap()), &[])
///     .unwrap();
/// let mut net = Network::new();
/// net.add_rule(RuleId(1), &cond, &VirtualPolicy::AllStored, &catalog).unwrap();
/// net.prime(RuleId(1), &catalog).unwrap();
///
/// // a matching insert token lands in the rule's P-node
/// let tid = emp.borrow_mut().insert(vec![500i64.into()]).unwrap();
/// let tuple = emp.borrow().get(tid).cloned().unwrap();
/// net.process_token(&Token::plus("emp", tid, tuple, EventSpecifier::Append), &catalog)
///     .unwrap();
/// assert_eq!(net.pnode(RuleId(1)).unwrap().len(), 1);
/// ```
#[derive(Debug)]
pub struct Network {
    alphas: Vec<Option<AlphaNode>>,
    free: Vec<usize>,
    selnet: SelectionNetwork,
    rules: BTreeMap<u64, RuleNode>,
    /// Always-on counter: tokens pushed through [`Self::process_batch`].
    tokens_processed: u64,
    /// Whether β-joins may probe indexes — α-memory hash join indexes on
    /// stored/dynamic nodes and base-relation indexes on virtual nodes.
    /// On by default; the equivalence oracle and the `joins` bench turn it
    /// off to get the paper's plain nested-loop join.
    join_indexing: bool,
    /// Whether equi-conjuncts sharing a bound-variable set are fused into
    /// composite (multi-attribute) keys. Off = one single-attribute access
    /// path per conjunct, probe-then-retest. Only meaningful while
    /// `join_indexing` is on; the joins bench ablates it.
    composite_keys: bool,
    /// Gated timing session (None = observability off, the default).
    obs: Option<MatchObs>,
    /// Gated flight recorder (None = tracing off, the default).
    trace: Option<TraceRecorder>,
    /// Whether β-join probe work fans out across the worker pool (off by
    /// default). Tracing forces the sequential path regardless — causal
    /// event order cannot survive a parallel interleaving.
    parallel_match: bool,
    /// Worker threads for the parallel path; 0 = one per available core.
    match_threads: usize,
    /// Optional seed permuting how join seeds are dealt to worker deques.
    /// Results are scheduling-independent, so this knob exists purely for
    /// the stress tests that prove it.
    shard_seed: Option<u64>,
    /// Lazily-built worker pool (rebuilt when the thread count changes).
    pool: Option<Pool>,
}

/// The [`VirtualPolicy::SelectivityThreshold`] estimate, shared by both
/// network backends (TREAT calls it from `should_virtualize`; the Rete
/// network threads the catalog through `add_rule` to reach it, so the
/// threshold policy picks the same memories on both sides). Virtual iff
/// the predicate currently matches more than `threshold` of its relation
/// — refined, when join indexing is on and an equi access path exists, to
/// compare the *expected bucket size* a join index would serve instead of
/// the raw match share.
pub(crate) fn selectivity_virtualize(
    pred: &SelectionPredicate,
    rel: &str,
    threshold: f64,
    catalog: &Catalog,
    composite: &[CompositeSpec],
    join_indexing: bool,
) -> bool {
    let Some(rel_ref) = catalog.get(rel) else {
        return false;
    };
    let rel_b = rel_ref.borrow();
    let n = rel_b.len();
    if n == 0 {
        return false;
    }
    let probe = AlphaNode::new(
        RuleId(u64::MAX),
        0,
        rel.to_string(),
        AlphaKind::Stored,
        pred.clone(),
        None,
    );
    let matching = rel_b
        .scan()
        .filter(|(_, t)| probe.pred_matches(t, None))
        .count();
    if matching as f64 / n as f64 <= threshold {
        return false; // selective enough to store outright
    }
    // Index-aware refinement: a low-selectivity memory that a join index
    // would carve into small buckets serves each β-probe a bucket, not
    // the whole memory — compare the *expected bucket size* to the
    // threshold instead of the raw match share. No usable equi index →
    // virtual, as before.
    if !join_indexing || composite.is_empty() {
        return true;
    }
    let min_bucket = composite
        .iter()
        .map(|spec| {
            let mut keys: FxHashSet<SmallKey> = FxHashSet::default();
            let mut indexed = 0usize;
            'tuples: for (_, t) in rel_b.scan().filter(|(_, t)| probe.pred_matches(t, None)) {
                let mut kb = KeyBuilder::new(spec.attrs.len());
                for a in &spec.attrs {
                    let v = t.get(*a);
                    if v.is_null() {
                        continue 'tuples;
                    }
                    kb.push(v);
                }
                indexed += 1;
                keys.insert(kb.finish());
            }
            if keys.is_empty() {
                0
            } else {
                indexed.div_ceil(keys.len())
            }
        })
        .min()
        .unwrap_or(matching);
    min_bucket as f64 / n as f64 > threshold
}

impl Default for Network {
    fn default() -> Self {
        Network {
            alphas: Vec::new(),
            free: Vec::new(),
            selnet: SelectionNetwork::default(),
            rules: BTreeMap::new(),
            tokens_processed: 0,
            join_indexing: true,
            composite_keys: true,
            obs: None,
            trace: None,
            parallel_match: false,
            match_threads: 0,
            shard_seed: None,
            pool: None,
        }
    }
}

// The parallel phase shares `&Network` across pool workers; this assertion
// is the compile-time half of the Send + Sync audit in docs/CONCURRENCY.md.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Network>();
};

/// Precomputed visibility state for one parallel *run* — a maximal stretch
/// of consecutive plain-append positive tokens with distinct, previously
/// unseen tids. Phase A inserts the whole run's α-entries up front and
/// stamps each with `(token index, matched position)`; these stamps let a
/// worker joining seed `(ti, pos)` reconstruct exactly the memory contents
/// the sequential interleaving would have shown it.
struct RunCtx<'a> {
    /// `(α-node arena index, tid)` → `(run token index, matched position)`
    /// for every entry phase A inserted.
    stamps: HashMap<(usize, u64), (usize, usize)>,
    /// Per relation: tid → run token index, for virtual-node scans.
    run_tids: HashMap<String, HashMap<u64, usize>>,
    /// Per run token: α-node arena index → its position in the token's
    /// sorted matched list (the paper's ProcessedMemories, made explicit).
    matched_pos: Vec<HashMap<usize, usize>>,
    /// Batch pending set with this run's own tids already removed.
    pending: &'a HashMap<String, HashSet<u64>>,
}

/// One seed's join outcome: the instantiations it produced, or the error
/// that would have aborted the sequential batch at this seed.
type SeedResult = QueryResult<Vec<Vec<BoundVar>>>;

/// One β-join seed of a parallel run: token `ti`'s binding at its `pos`-th
/// matched α-node, plus the join order phase A froze for it.
struct ParSeed {
    rule_id: RuleId,
    var: usize,
    kind: AlphaKind,
    seed: BoundVar,
    ti: usize,
    pos: usize,
    /// Sequential-equivalent join order (empty for simple rules).
    order: Vec<usize>,
}

/// Which α-entries and base tuples a β-join may see. The sequential path
/// carries the in-flight token plus the pending/ProcessedMemories
/// discipline verbatim; the parallel path compares [`RunCtx`] stamps
/// against the seed's `(token, position)` coordinates instead.
enum JoinVis<'a> {
    Seq {
        token: &'a Token,
        processed: &'a HashSet<usize>,
        pending: &'a HashMap<String, HashSet<u64>>,
    },
    Run {
        ctx: &'a RunCtx<'a>,
        /// Run index of the seed's token.
        ti: usize,
        /// Matched position of the seed's α-node within its token.
        pos: usize,
    },
}

impl JoinVis<'_> {
    /// May the join at α-node `alpha_idx` use this stored/dynamic entry?
    /// Sequentially the physical memory contents are exact by
    /// construction; in a run, an entry stamped `(tj, pj)` existed at the
    /// sequential moment of seed `(ti, pos)` iff it was inserted earlier:
    /// by an earlier token, or by the same token at an earlier (or this)
    /// matched position.
    #[inline]
    fn entry_visible(&self, alpha_idx: usize, e: &AlphaEntry) -> bool {
        match self {
            JoinVis::Seq { .. } => true,
            JoinVis::Run { ctx, ti, pos } => {
                let Some(tid) = e.tid else { return true };
                match ctx.stamps.get(&(alpha_idx, tid.0)) {
                    None => true, // predates the run
                    Some(&(tj, pj)) => tj < *ti || (tj == *ti && pj <= *pos),
                }
            }
        }
    }
}

/// Fisher–Yates under a xorshift stream: the deal-order permutation behind
/// [`Network::set_shard_seed`].
fn shuffled(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut s = seed | 1;
    for i in (1..n).rev() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        order.swap(i, (s % (i as u64 + 1)) as usize);
    }
    order
}

impl Network {
    /// New empty network.
    pub fn new() -> Self {
        Network::default()
    }

    /// Enable or disable join indexing (on by default). Affects rules
    /// compiled *after* the call: with indexing off, α-memories register
    /// no join indexes and β-joins fall back to pure nested-loop
    /// enumeration.
    pub fn set_join_indexing(&mut self, on: bool) {
        self.join_indexing = on;
    }

    /// Whether join indexing is enabled.
    pub fn join_indexing(&self) -> bool {
        self.join_indexing
    }

    /// Enable or disable composite join keys (on by default). Like
    /// [`Self::set_join_indexing`], this affects rules compiled *after*
    /// the call: with composite keys off, every equi-conjunct compiles to
    /// its own single-attribute access path (PR 2's probe-then-retest).
    pub fn set_composite_keys(&mut self, on: bool) {
        self.composite_keys = on;
    }

    /// Whether composite join keys are enabled.
    pub fn composite_keys(&self) -> bool {
        self.composite_keys
    }

    /// Enable or disable the gated timing tier. Enabling starts a fresh
    /// [`MatchObs`] session; disabling discards the current one. The
    /// always-on counters are unaffected.
    pub fn set_observing(&mut self, on: bool) {
        self.obs = if on { Some(MatchObs::new()) } else { None };
    }

    /// Whether a timing session is active.
    pub fn observing(&self) -> bool {
        self.obs.is_some()
    }

    /// The active timing session, if any.
    pub fn obs(&self) -> Option<&MatchObs> {
        self.obs.as_ref()
    }

    /// Replace the timing session, returning the previous one. The engine
    /// uses this to scope a capture (e.g. one `explain analyze` run) and
    /// then merge it back into the cumulative session.
    pub fn swap_obs(&mut self, obs: Option<MatchObs>) -> Option<MatchObs> {
        std::mem::replace(&mut self.obs, obs)
    }

    /// Install or remove the flight recorder (same gating discipline as
    /// the timing tier: `None` — the default — makes every trace hook a
    /// single branch). Returns the previous recorder, if any.
    pub fn set_trace(&mut self, trace: Option<TraceRecorder>) -> Option<TraceRecorder> {
        std::mem::replace(&mut self.trace, trace)
    }

    /// The active flight recorder, if tracing is on.
    pub fn trace(&self) -> Option<&TraceRecorder> {
        self.trace.as_ref()
    }

    /// Enable or disable the parallel match path (off by default).
    /// Tracing overrides this: with a flight recorder installed the
    /// network always takes the sequential path, because the recorder's
    /// causal event order cannot survive a parallel interleaving.
    pub fn set_parallel_match(&mut self, on: bool) {
        self.parallel_match = on;
        if !on {
            self.pool = None;
        }
    }

    /// Whether the parallel match path is enabled.
    pub fn parallel_match(&self) -> bool {
        self.parallel_match
    }

    /// Set the worker thread count for the parallel path (0 — the
    /// default — means one per available core). Takes effect on the next
    /// batch; the pool is rebuilt lazily when the count changes.
    pub fn set_match_threads(&mut self, n: usize) {
        self.match_threads = n;
    }

    /// Configured worker thread count (0 = auto).
    pub fn match_threads(&self) -> usize {
        self.match_threads
    }

    /// Permute the order join seeds are dealt to worker deques with a
    /// seeded shuffle (`None` — the default — deals in merge order).
    /// Results are scheduling-independent, so this knob exists purely for
    /// the stress tests that prove it.
    pub fn set_shard_seed(&mut self, seed: Option<u64>) {
        self.shard_seed = seed;
    }

    /// Build (or rebuild) the worker pool to match `match_threads`.
    fn ensure_pool(&mut self) {
        let want = if self.match_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.match_threads
        };
        let rebuild = match &self.pool {
            Some(p) => p.threads() != want,
            None => true,
        };
        if rebuild {
            self.pool = Some(Pool::new(want));
        }
    }

    fn alpha(&self, id: AlphaId) -> &AlphaNode {
        self.alphas[id.0].as_ref().expect("live alpha")
    }

    fn alpha_mut(&mut self, id: AlphaId) -> &mut AlphaNode {
        self.alphas[id.0].as_mut().expect("live alpha")
    }

    /// Run one α-test through the observability tiers: bump the node's
    /// always-on test/pass counters, and when a timing session is active
    /// record the test duration and token flow under `(rule, var)`.
    fn alpha_test(
        &self,
        aid: AlphaId,
        _token: &Token,
        test: impl FnOnce(&AlphaNode) -> bool,
    ) -> bool {
        let a = self.alpha(aid);
        AlphaCounters::bump(&a.counters.tests, 1);
        let start = self.obs.as_ref().map(|_| Instant::now());
        let pass = test(a);
        if pass {
            AlphaCounters::bump(&a.counters.passes, 1);
            if let Some(tr) = &self.trace {
                tr.record(TraceEventKind::AlphaPass {
                    rule: a.rule.0,
                    var: a.var,
                });
            }
        }
        if let Some(obs) = &self.obs {
            obs.with_node(a.rule, a.var, |n| {
                n.tokens_in += 1;
                if pass {
                    n.tokens_out += 1;
                }
                if let Some(t0) = start {
                    n.alpha_test.record(t0.elapsed().as_nanos() as u64);
                }
            });
        }
        pass
    }

    /// Number of compiled rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Compile a resolved rule condition into network structures
    /// (the *activation* step of §6 builds this, then [`Self::prime`]s it).
    pub fn add_rule(
        &mut self,
        id: RuleId,
        cond: &ResolvedCondition,
        policy: &VirtualPolicy,
        catalog: &Catalog,
    ) -> QueryResult<()> {
        if self.rules.contains_key(&id.0) {
            return Err(QueryError::Semantic(format!(
                "rule {id} already in network"
            )));
        }
        let nvars = cond.spec.vars.len();
        let single = nvars == 1;
        // split the qualification into per-variable selections and joins
        let conjuncts: Vec<RExpr> = cond
            .spec
            .qual
            .clone()
            .map(|q| q.conjuncts())
            .unwrap_or_default();
        let mut selections: Vec<Vec<RExpr>> = vec![Vec::new(); nvars];
        let mut join_conjuncts = Vec::new();
        for c in conjuncts {
            let used = c.vars_used();
            if used.len() == 1 {
                // remap to variable 0 for single-tuple evaluation
                selections[used[0]].push(c.remap_vars(&|_| 0));
            } else {
                join_conjuncts.push(c);
            }
        }
        // compile-time join plan (shared with the indexed Rete network —
        // see `crate::plan`): per-conjunct variable bitmasks, the
        // equi-probe decomposition of every (variable, conjunct) pair, and
        // the composite/band access paths built from them
        let plan = JoinPlan::compile(&join_conjuncts, nvars, self.composite_keys);

        let mut vars = Vec::with_capacity(nvars);
        let mut cols = Vec::with_capacity(nvars);
        let mut n_dynamic = 0usize;
        for (v, binding) in cond.spec.vars.iter().enumerate() {
            let is_on = cond.on_var == Some(v);
            let is_trans = cond.trans_vars.contains(&v);
            let pred = SelectionPredicate::decompose(std::mem::take(&mut selections[v]));
            let kind = match (single, is_on, is_trans) {
                (true, true, _) => AlphaKind::SimpleOn,
                (true, false, true) => AlphaKind::SimpleTrans,
                (true, false, false) => AlphaKind::Simple,
                (false, true, _) => AlphaKind::DynamicOn,
                (false, false, true) => AlphaKind::DynamicTrans,
                (false, false, false) => {
                    if self.should_virtualize(
                        v,
                        &pred,
                        &binding.rel,
                        policy,
                        catalog,
                        &plan.composite[v],
                    ) {
                        AlphaKind::Virtual
                    } else {
                        AlphaKind::Stored
                    }
                }
            };
            if kind.is_dynamic() {
                n_dynamic += 1;
            }
            let event = if is_on {
                Some(resolve_event(
                    cond.event.as_ref().expect("on var has event"),
                    &binding.schema,
                ))
            } else {
                None
            };
            let has_prev = is_trans || matches!(event, Some(EventReq::Replace(_)));
            let mut node = AlphaNode::new(id, v, binding.rel.clone(), kind, pred, event);
            if self.join_indexing && kind.stores_entries() {
                // register one hash index per composite access path and one
                // interval index per band shape, so β-joins can probe (or
                // stab) instead of enumerating
                let attr_sets: Vec<Vec<usize>> =
                    plan.composite[v].iter().map(|s| s.attrs.clone()).collect();
                if !attr_sets.is_empty() {
                    node.set_join_indexes(attr_sets);
                }
                let shapes: Vec<BandShape> =
                    plan.bands[v].iter().map(|s| s.shape.clone()).collect();
                if !shapes.is_empty() {
                    node.set_range_indexes(shapes);
                }
            }
            let alpha_id = self.alloc_alpha(node);
            // anchor goes into the selection network unless unsatisfiable
            let node = self.alpha(alpha_id);
            let anchor = if node.pred.unsatisfiable {
                None
            } else {
                node.pred.anchor.clone()
            };
            self.selnet.subscribe(alpha_id, &binding.rel, anchor);
            vars.push(RuleVar { alpha: alpha_id });
            cols.push(PnodeCol {
                var: binding.name.clone(),
                rel: binding.rel.clone(),
                schema: binding.schema.clone(),
                has_prev,
            });
        }
        let pattern_only = cond.on_var.is_none() && cond.trans_vars.is_empty();
        self.rules.insert(
            id.0,
            RuleNode {
                vars,
                join_conjuncts,
                plan,
                pnode: Pnode::new(cols),
                spec: cond.spec.clone(),
                n_dynamic,
                pattern_only,
                tokens_in: 0,
                join_probes: 0,
                pnode_inserts: 0,
            },
        );
        Ok(())
    }

    fn should_virtualize(
        &self,
        var: usize,
        pred: &SelectionPredicate,
        rel: &str,
        policy: &VirtualPolicy,
        catalog: &Catalog,
        composite: &[CompositeSpec],
    ) -> bool {
        match policy {
            VirtualPolicy::AllStored => false,
            VirtualPolicy::AllVirtual => true,
            VirtualPolicy::ExplicitVars(set) => set.contains(&var),
            VirtualPolicy::SelectivityThreshold(threshold) => selectivity_virtualize(
                pred,
                rel,
                *threshold,
                catalog,
                composite,
                self.join_indexing,
            ),
        }
    }

    fn alloc_alpha(&mut self, node: AlphaNode) -> AlphaId {
        match self.free.pop() {
            Some(i) => {
                self.alphas[i] = Some(node);
                AlphaId(i)
            }
            None => {
                self.alphas.push(Some(node));
                AlphaId(self.alphas.len() - 1)
            }
        }
    }

    /// Remove a rule and its α-nodes.
    pub fn remove_rule(&mut self, id: RuleId) {
        let Some(rule) = self.rules.remove(&id.0) else {
            return;
        };
        for var in rule.vars {
            self.selnet.unsubscribe(var.alpha);
            self.alphas[var.alpha.0] = None;
            self.free.push(var.alpha.0);
        }
    }

    /// Prime a freshly-added rule (the paper's *activation*, §6): fill each
    /// stored α-memory with one single-variable query, and load the P-node
    /// with a query equivalent to the full condition (pattern-only rules —
    /// event/transition rules start empty by definition).
    pub fn prime(&mut self, id: RuleId, catalog: &Catalog) -> QueryResult<()> {
        let rule = self
            .rules
            .get(&id.0)
            .ok_or_else(|| QueryError::Semantic(format!("unknown rule {id}")))?;
        // stored α-memories: one single-variable query each
        let alpha_ids: Vec<AlphaId> = rule.vars.iter().map(|v| v.alpha).collect();
        for aid in alpha_ids {
            let (rel, is_stored) = {
                let a = self.alpha(aid);
                (a.rel.clone(), a.kind == AlphaKind::Stored)
            };
            if !is_stored {
                continue;
            }
            let rel_ref = catalog.require(&rel)?;
            let entries: Vec<(Tid, AlphaEntry)> = {
                let a = self.alpha(aid);
                rel_ref
                    .borrow()
                    .scan()
                    .filter(|(_, t)| a.pred_matches(t, None))
                    .map(|(tid, t)| {
                        (
                            tid,
                            AlphaEntry {
                                tid: Some(tid),
                                tuple: t.clone(),
                                prev: None,
                            },
                        )
                    })
                    .collect()
            };
            let a = self.alpha_mut(aid);
            for (tid, e) in entries {
                a.insert(tid, e);
            }
        }
        // P-node: one query equivalent to the whole condition
        let rule = self.rules.get(&id.0).unwrap();
        if rule.pattern_only {
            let spec = rule.spec.clone();
            let plan = Optimizer::new(catalog).plan(&spec)?;
            let ctx = ariel_query::ExecCtx {
                catalog,
                pnode: None,
                nvars: spec.vars.len(),
            };
            let rows = ariel_query::run_plan(&plan, &ctx)?;
            let rule = self.rules.get_mut(&id.0).unwrap();
            for row in rows {
                let bindings: Vec<BoundVar> = row
                    .slots
                    .into_iter()
                    .map(|s| s.expect("full condition binds every var"))
                    .collect();
                rule.pnode.push(bindings);
            }
        }
        Ok(())
    }

    /// Process one transition's worth of tokens. Changes must already be
    /// applied to the base relations (see the module docs for why the
    /// pending set then reproduces the paper's processing order).
    pub fn process_batch(&mut self, tokens: &[Token], catalog: &Catalog) -> QueryResult<()> {
        self.tokens_processed += tokens.len() as u64;
        if let Some(obs) = &self.obs {
            obs.tokens.set(obs.tokens.get() + tokens.len() as u64);
        }
        let mut pending: HashMap<String, HashSet<u64>> = HashMap::new();
        for t in tokens {
            if t.kind.is_positive() {
                pending.entry(t.rel.clone()).or_default().insert(t.tid.0);
            }
        }
        if self.parallel_match && self.trace.is_none() {
            return self.process_batch_parallel(tokens, catalog, pending);
        }
        for t in tokens {
            if let Some(tr) = &self.trace {
                tr.record(TraceEventKind::TokenEmitted {
                    kind: t.kind.to_string(),
                    rel: t.rel.clone(),
                    tid: t.tid.0,
                    desc: t.to_string(),
                });
            }
            if t.kind.is_positive() {
                if let Some(set) = pending.get_mut(&t.rel) {
                    set.remove(&t.tid.0);
                }
                self.process_positive(t, catalog, &pending)?;
            } else {
                self.process_negative(t, catalog, &pending)?;
            }
        }
        Ok(())
    }

    /// Convenience for tests and benches: process a single token.
    pub fn process_token(&mut self, token: &Token, catalog: &Catalog) -> QueryResult<()> {
        self.process_batch(std::slice::from_ref(token), catalog)
    }

    fn process_positive(
        &mut self,
        token: &Token,
        catalog: &Catalog,
        pending: &HashMap<String, HashSet<u64>>,
    ) -> QueryResult<()> {
        let probe_start = self.obs.as_ref().map(|_| Instant::now());
        let mut matched = arena::take_candidates();
        self.selnet
            .candidates_into(&token.rel, &token.tuple, &mut matched);
        if let Some(obs) = &self.obs {
            if let Some(t0) = probe_start {
                obs.selnet_probe.record(t0.elapsed().as_nanos() as u64);
            }
            obs.selnet_candidates
                .set(obs.selnet_candidates.get() + matched.len() as u64);
        }
        if let Some(tr) = &self.trace {
            tr.record(TraceEventKind::SelnetProbe {
                rel: token.rel.clone(),
                candidates: matched.len() as u64,
            });
        }
        matched.retain(|aid| {
            self.alpha_test(*aid, token, |a| {
                a.admits_positive(token.kind, token.event.as_ref())
                    && a.pred_matches(&token.tuple, token.old.as_ref())
            })
        });
        matched.sort_by_key(|a| a.0);
        matched.dedup();
        let mut processed: HashSet<usize> = HashSet::new();
        for &aid in &matched {
            processed.insert(aid.0);
            self.insert_and_propagate(
                aid,
                BoundVar {
                    tid: Some(token.tid),
                    tuple: token.tuple.clone(),
                    prev: token.old.clone(),
                },
                token,
                &processed,
                catalog,
                pending,
            )?;
        }
        arena::give_candidates(matched);
        Ok(())
    }

    /// Parallel token processing: carve the batch into *runs* of
    /// consecutive plain-append positives with distinct, previously unseen
    /// tids, and fan each run's β-join probes across the worker pool.
    /// Anything else — negatives, replaces, re-inserted tids — is
    /// processed sequentially in place and acts as a barrier between runs.
    fn process_batch_parallel(
        &mut self,
        tokens: &[Token],
        catalog: &Catalog,
        mut pending: HashMap<String, HashSet<u64>>,
    ) -> QueryResult<()> {
        self.ensure_pool();
        let mut i = 0;
        while i < tokens.len() {
            if !self.run_eligible(&tokens[i]) {
                let t = &tokens[i];
                if t.kind.is_positive() {
                    if let Some(set) = pending.get_mut(&t.rel) {
                        set.remove(&t.tid.0);
                    }
                    self.process_positive(t, catalog, &pending)?;
                } else {
                    self.process_negative(t, catalog, &pending)?;
                }
                i += 1;
                continue;
            }
            let start = i;
            let mut seen: HashSet<(&str, u64)> = HashSet::new();
            while i < tokens.len()
                && self.run_eligible(&tokens[i])
                && seen.insert((tokens[i].rel.as_str(), tokens[i].tid.0))
            {
                i += 1;
            }
            self.process_positive_run(&tokens[start..i], catalog, &mut pending)?;
        }
        Ok(())
    }

    /// A token the parallel path may batch into a run: a plain `+append`
    /// (no old value) whose tid is not already resident in a storing
    /// α-memory on its relation. Re-inserting a resident tid *replaces*
    /// the entry, whose old value earlier seeds in the run would need to
    /// see — such tokens take the sequential path instead.
    fn run_eligible(&self, t: &Token) -> bool {
        t.kind == TokenKind::Plus
            && t.event == Some(EventSpecifier::Append)
            && t.old.is_none()
            && !self.selnet.alphas_on(&t.rel).iter().any(|aid| {
                let a = self.alpha(*aid);
                a.kind.stores_entries() && a.contains(t.tid)
            })
    }

    /// Process one run of plain-append tokens in three phases (see
    /// docs/CONCURRENCY.md):
    ///
    /// * **phase A** (sequential): selection-network probes, α-tests, and
    ///   α-inserts for every token, stamping each insert with `(token
    ///   index, matched position)` and freezing each seed's join order at
    ///   the moment the sequential path would have chosen it;
    /// * **parallel phase**: each seed's join extension runs on the worker
    ///   pool through `&self`, with the stamps reconstructing exactly the
    ///   memory contents the sequential interleaving would have shown it;
    /// * **merge phase** (sequential): P-node pushes and rule counters in
    ///   `(token, position)` order — the same order, counts and rows the
    ///   sequential path produces, independent of scheduling.
    fn process_positive_run(
        &mut self,
        run: &[Token],
        catalog: &Catalog,
        pending: &mut HashMap<String, HashSet<u64>>,
    ) -> QueryResult<()> {
        // the whole run leaves the pending set at once: later tokens in
        // the run are hidden from earlier seeds by their stamps instead
        for t in run {
            if let Some(set) = pending.get_mut(&t.rel) {
                set.remove(&t.tid.0);
            }
        }
        let mut run_tids: HashMap<String, HashMap<u64, usize>> = HashMap::new();
        for (ti, t) in run.iter().enumerate() {
            run_tids
                .entry(t.rel.clone())
                .or_default()
                .insert(t.tid.0, ti);
        }
        let mut ctx = RunCtx {
            stamps: HashMap::new(),
            run_tids,
            matched_pos: Vec::with_capacity(run.len()),
            pending,
        };
        // ---- phase A: α-tests, inserts, stamps, frozen join orders
        let mut seeds: Vec<ParSeed> = Vec::new();
        for (ti, token) in run.iter().enumerate() {
            let probe_start = self.obs.as_ref().map(|_| Instant::now());
            let mut matched = arena::take_candidates();
            self.selnet
                .candidates_into(&token.rel, &token.tuple, &mut matched);
            if let Some(obs) = &self.obs {
                if let Some(t0) = probe_start {
                    obs.selnet_probe.record(t0.elapsed().as_nanos() as u64);
                }
                obs.selnet_candidates
                    .set(obs.selnet_candidates.get() + matched.len() as u64);
            }
            matched.retain(|aid| {
                self.alpha_test(*aid, token, |a| {
                    a.admits_positive(token.kind, token.event.as_ref())
                        && a.pred_matches(&token.tuple, token.old.as_ref())
                })
            });
            matched.sort_by_key(|a| a.0);
            matched.dedup();
            ctx.matched_pos
                .push(matched.iter().enumerate().map(|(p, a)| (a.0, p)).collect());
            for (pos, &aid) in matched.iter().enumerate() {
                let (rule_id, var, kind) = {
                    let a = self.alpha(aid);
                    (a.rule, a.var, a.kind)
                };
                let seed = BoundVar {
                    tid: Some(token.tid),
                    tuple: token.tuple.clone(),
                    prev: token.old.clone(),
                };
                if kind.stores_entries() {
                    let a = self.alpha_mut(aid);
                    a.insert(
                        token.tid,
                        AlphaEntry {
                            tid: seed.tid,
                            tuple: seed.tuple.clone(),
                            prev: seed.prev.clone(),
                        },
                    );
                    ctx.stamps.insert((aid.0, token.tid.0), (ti, pos));
                }
                self.rules
                    .get_mut(&rule_id.0)
                    .expect("rule exists")
                    .tokens_in += 1;
                if let Some(obs) = &self.obs {
                    obs.with_rule(rule_id, |r| r.tokens_in += 1);
                    if kind.stores_entries() {
                        obs.with_node(rule_id, var, |n| n.entries_inserted += 1);
                    }
                }
                // freeze the join order here: `candidate_estimate` depends
                // on evolving memory sizes, and this is the moment the
                // sequential path would have chosen it
                let order = if kind.is_simple() {
                    Vec::new()
                } else {
                    let rule = &self.rules[&rule_id.0];
                    let mut order: Vec<usize> =
                        (0..rule.vars.len()).filter(|v| *v != var).collect();
                    order.sort_by_key(|v| self.candidate_estimate(rule, *v, catalog));
                    order
                };
                seeds.push(ParSeed {
                    rule_id,
                    var,
                    kind,
                    seed,
                    ti,
                    pos,
                    order,
                });
            }
            arena::give_candidates(matched);
        }
        // ---- parallel phase: non-simple seeds' joins on the pool
        let join_jobs: Vec<usize> = seeds
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.kind.is_simple())
            .map(|(i, _)| i)
            .collect();
        let mut slots: Vec<Option<SeedResult>> = Vec::new();
        if !join_jobs.is_empty() {
            let shared: Vec<Mutex<Option<SeedResult>>> =
                join_jobs.iter().map(|_| Mutex::new(None)).collect();
            let this: &Network = &*self;
            let ctx_ref = &ctx;
            let seeds_ref = &seeds;
            let jobs_ref = &join_jobs;
            let work = |j: usize| {
                let s = &seeds_ref[jobs_ref[j]];
                let vis = JoinVis::Run {
                    ctx: ctx_ref,
                    ti: s.ti,
                    pos: s.pos,
                };
                let join_start = this.obs.as_ref().map(|_| Instant::now());
                let r = this.join_extend_ordered(
                    s.rule_id,
                    s.var,
                    s.seed.clone(),
                    &s.order,
                    catalog,
                    &vis,
                );
                if let Some(obs) = &this.obs {
                    obs.with_rule(s.rule_id, |ru| {
                        if let Some(t0) = join_start {
                            ru.beta_join.record(t0.elapsed().as_nanos() as u64);
                        }
                    });
                }
                *shared[j].lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
            };
            let pool = self.pool.as_ref().expect("ensure_pool ran");
            if pool.threads() == 1 {
                // a single worker cannot overlap anything with the caller;
                // run the jobs inline and skip the dispatch overhead (the
                // run-carving, stamping and ordered merge still execute)
                for j in 0..join_jobs.len() {
                    work(j);
                }
            } else {
                match self.shard_seed {
                    None => pool.run(join_jobs.len(), &work),
                    Some(seed) => pool.run_order(&shuffled(join_jobs.len(), seed), &work),
                }
            }
            slots = shared
                .into_iter()
                .map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()))
                .collect();
        }
        // ---- merge phase: deterministic (token, position) order
        let mut next_join = 0usize;
        for (si, s) in seeds.iter().enumerate() {
            if s.kind.is_simple() {
                // single-variable rule: straight to the P-node, as in
                // `insert_and_propagate`
                let start = self.obs.as_ref().map(|_| Instant::now());
                let rule = self.rules.get_mut(&s.rule_id.0).expect("rule exists");
                rule.pnode.push(vec![s.seed.clone()]);
                rule.pnode_inserts += 1;
                if let Some(obs) = &self.obs {
                    obs.with_rule(s.rule_id, |r| {
                        r.pnode_inserts += 1;
                        if let Some(t0) = start {
                            r.pnode_insert.record(t0.elapsed().as_nanos() as u64);
                        }
                    });
                }
                continue;
            }
            debug_assert_eq!(join_jobs[next_join], si);
            let mut results = slots[next_join].take().expect("every join job ran")?;
            next_join += 1;
            let produced = results.len() as u64;
            let insert_start = self.obs.as_ref().map(|_| Instant::now());
            let rule = self.rules.get_mut(&s.rule_id.0).expect("rule exists");
            rule.join_probes += 1;
            rule.pnode_inserts += produced;
            for r in results.drain(..) {
                rule.pnode.push(r);
            }
            arena::give_results(results);
            if let Some(obs) = &self.obs {
                obs.with_rule(s.rule_id, |r| {
                    r.join_probes += 1;
                    r.pnode_inserts += produced;
                    if let Some(t0) = insert_start {
                        r.pnode_insert.record(t0.elapsed().as_nanos() as u64);
                    }
                });
            }
        }
        Ok(())
    }

    /// Insert a binding into an α-node (if it stores entries) and extend
    /// the rule's P-node with every new full instantiation.
    fn insert_and_propagate(
        &mut self,
        aid: AlphaId,
        seed: BoundVar,
        token: &Token,
        processed: &HashSet<usize>,
        catalog: &Catalog,
        pending: &HashMap<String, HashSet<u64>>,
    ) -> QueryResult<()> {
        let (rule_id, var, kind) = {
            let a = self.alpha(aid);
            (a.rule, a.var, a.kind)
        };
        if kind.stores_entries() {
            let a = self.alpha_mut(aid);
            a.insert(
                token.tid,
                AlphaEntry {
                    tid: seed.tid,
                    tuple: seed.tuple.clone(),
                    prev: seed.prev.clone(),
                },
            );
        }
        self.rules
            .get_mut(&rule_id.0)
            .expect("rule exists")
            .tokens_in += 1;
        if let Some(obs) = &self.obs {
            obs.with_rule(rule_id, |r| r.tokens_in += 1);
            if kind.stores_entries() {
                obs.with_node(rule_id, var, |n| n.entries_inserted += 1);
            }
        }
        if kind.is_simple() {
            // single-variable rule: matching data goes straight to the P-node
            let start = self.obs.as_ref().map(|_| Instant::now());
            if let Some(tr) = &self.trace {
                tr.record_instantiation(rule_id.0, vec![seed.tid.map(|t| t.0)]);
            }
            let rule = self.rules.get_mut(&rule_id.0).expect("rule exists");
            rule.pnode.push(vec![seed]);
            rule.pnode_inserts += 1;
            if let Some(obs) = &self.obs {
                obs.with_rule(rule_id, |r| {
                    r.pnode_inserts += 1;
                    if let Some(t0) = start {
                        r.pnode_insert.record(t0.elapsed().as_nanos() as u64);
                    }
                });
            }
            return Ok(());
        }
        // multi-variable: TREAT join against the other variables' memories
        let join_start = self.obs.as_ref().map(|_| Instant::now());
        let vis = JoinVis::Seq {
            token,
            processed,
            pending,
        };
        let mut results = self.join_extend(rule_id, var, seed, catalog, &vis)?;
        if let Some(obs) = &self.obs {
            obs.with_rule(rule_id, |r| {
                if let Some(t0) = join_start {
                    r.beta_join.record(t0.elapsed().as_nanos() as u64);
                }
            });
        }
        let produced = results.len() as u64;
        let insert_start = self.obs.as_ref().map(|_| Instant::now());
        if let Some(tr) = &self.trace {
            for r in &results {
                tr.record_instantiation(rule_id.0, r.iter().map(|b| b.tid.map(|t| t.0)).collect());
            }
        }
        let rule = self.rules.get_mut(&rule_id.0).expect("rule exists");
        rule.join_probes += 1;
        rule.pnode_inserts += produced;
        for r in results.drain(..) {
            rule.pnode.push(r);
        }
        arena::give_results(results);
        if let Some(obs) = &self.obs {
            obs.with_rule(rule_id, |r| {
                r.join_probes += 1;
                r.pnode_inserts += produced;
                if let Some(t0) = insert_start {
                    r.pnode_insert.record(t0.elapsed().as_nanos() as u64);
                }
            });
        }
        Ok(())
    }

    /// Compute all full instantiations extending `seed` at `seed_var`.
    fn join_extend(
        &self,
        rule_id: RuleId,
        seed_var: usize,
        seed: BoundVar,
        catalog: &Catalog,
        vis: &JoinVis<'_>,
    ) -> QueryResult<Vec<Vec<BoundVar>>> {
        let rule = &self.rules[&rule_id.0];
        // join the (estimated) smallest memories first
        let mut order: Vec<usize> = (0..rule.vars.len()).filter(|v| *v != seed_var).collect();
        order.sort_by_key(|v| self.candidate_estimate(rule, *v, catalog));
        self.join_extend_ordered(rule_id, seed_var, seed, &order, catalog, vis)
    }

    /// [`Self::join_extend`] with a caller-chosen join order — the
    /// parallel path freezes each seed's order during phase A, where the
    /// memory sizes `candidate_estimate` sees match the sequential
    /// interleaving.
    fn join_extend_ordered(
        &self,
        rule_id: RuleId,
        seed_var: usize,
        seed: BoundVar,
        order: &[usize],
        catalog: &Catalog,
        vis: &JoinVis<'_>,
    ) -> QueryResult<Vec<Vec<BoundVar>>> {
        let rule = &self.rules[&rule_id.0];
        // per-transition scratch off this thread's arena: the slot buffer
        // is returned below; the results buffer travels to the consumer
        // (P-node push site), which gives it back after draining
        let mut slots = arena::take_row_slots();
        slots.resize(rule.vars.len(), None);
        let mut row = Row { slots };
        row.slots[seed_var] = Some(seed);
        let mut results = arena::take_results();
        let r = self.extend_depth(
            rule,
            order,
            0,
            1u64 << seed_var,
            &mut row,
            catalog,
            vis,
            &mut results,
        );
        row.slots.clear();
        arena::give_row_slots(row.slots);
        r?;
        Ok(results)
    }

    /// Test every join conjunct applicable at this depth against a
    /// *borrowed* candidate layered over the partial row — losers are
    /// rejected before any clone happens. `skip` names the conjuncts
    /// already guaranteed by an index probe or stab.
    #[allow(clippy::too_many_arguments)]
    fn conjuncts_pass(
        rule: &RuleNode,
        vbit: u64,
        now_bound: u64,
        row: &Row,
        var: usize,
        tuple: &Tuple,
        prev: Option<&Tuple>,
        skip: &[usize],
    ) -> QueryResult<bool> {
        let env = PatchedEnv {
            base: row,
            var,
            tuple,
            prev,
        };
        for (i, c) in rule.join_conjuncts.iter().enumerate() {
            let mask = rule.plan.conjunct_vars[i];
            // applicable at this depth: uses `var`, nothing still unbound
            if skip.contains(&i) || mask & vbit == 0 || mask & !now_bound != 0 {
                continue;
            }
            if !eval_pred(c, &env)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// The cached equi-probe usable at this depth, if any: an applicable
    /// equi-conjunct on `var` whose attribute `has_index` and whose key
    /// evaluates from the bound prefix of the row. Returns the conjunct
    /// index (skippable — the probe guarantees it), the attribute, and the
    /// key value.
    fn find_equi_probe(
        &self,
        rule: &RuleNode,
        var: usize,
        vbit: u64,
        now_bound: u64,
        row: &Row,
        has_index: &dyn Fn(usize) -> bool,
    ) -> Option<(usize, usize, Value)> {
        if !self.join_indexing {
            return None;
        }
        rule.plan.equi[var]
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                let mask = rule.plan.conjunct_vars[*i];
                mask & vbit != 0 && mask & !now_bound == 0
            })
            .find_map(|(i, spec)| {
                let (attr, key_expr) = spec.as_ref()?;
                if !has_index(*attr) {
                    return None;
                }
                let key = ariel_query::eval(key_expr, row).ok()?;
                Some((i, *attr, key))
            })
    }

    /// The composite access path usable at this depth, if any: the first
    /// (widest) spec whose key variables are all bound and whose attribute
    /// tuple the α-memory indexes. Returns the spec and the evaluated
    /// composite key, packed flat — the common all-scalar/interned-string
    /// key allocates nothing per probe.
    fn find_composite_probe<'r>(
        &self,
        rule: &'r RuleNode,
        var: usize,
        bound: u64,
        row: &Row,
        alpha: &AlphaNode,
    ) -> Option<(&'r CompositeSpec, SmallKey)> {
        if !self.join_indexing {
            return None;
        }
        rule.plan.composite[var].iter().find_map(|spec| {
            if spec.others_mask & !bound != 0 || !alpha.has_join_index(&spec.attrs) {
                return None;
            }
            let mut kb = KeyBuilder::new(spec.key_exprs.len());
            for e in &spec.key_exprs {
                kb.push(&ariel_query::eval(e, row).ok()?);
            }
            Some((spec, kb.finish()))
        })
    }

    /// The band access path usable at this depth, if any: the first spec
    /// whose key variables are all bound and whose shape the α-memory
    /// interval-indexes. Returns the spec and the evaluated stab key.
    fn find_band_probe<'r>(
        &self,
        rule: &'r RuleNode,
        var: usize,
        bound: u64,
        row: &Row,
        alpha: &AlphaNode,
    ) -> Option<(&'r BandSpec, Value)> {
        if !self.join_indexing {
            return None;
        }
        rule.plan.bands[var].iter().find_map(|spec| {
            if spec.others_mask & !bound != 0 || !alpha.has_range_index(&spec.shape) {
                return None;
            }
            let key = ariel_query::eval(&spec.key_expr, row).ok()?;
            Some((spec, key))
        })
    }

    /// Extend the partial row at `order[depth]` and recurse per survivor.
    ///
    /// Candidates *stream* off borrowed storage: visibility, the
    /// α-predicate (virtual nodes) and this depth's join conjuncts all run
    /// on the borrowed tuple, and a survivor is cloned (an `Arc` refcount
    /// bump) straight into the shared row and descended into on the spot.
    /// The seed collected each depth's survivors into a per-depth
    /// `Vec<BoundVar>` first; deep joins now allocate nothing per depth
    /// beyond the row they already share. This is safe because
    /// `PatchedEnv` fully shadows `var`, every structure the loops borrow
    /// is reached through `&self`, and each depth clears its slot on exit.
    #[allow(clippy::too_many_arguments)]
    fn extend_depth(
        &self,
        rule: &RuleNode,
        order: &[usize],
        depth: usize,
        bound: u64,
        row: &mut Row,
        catalog: &Catalog,
        vis: &JoinVis<'_>,
        results: &mut Vec<Vec<BoundVar>>,
    ) -> QueryResult<()> {
        if depth == order.len() {
            results.push(
                row.slots
                    .iter()
                    .map(|s| s.clone().expect("fully bound"))
                    .collect(),
            );
            return Ok(());
        }
        let var = order[depth];
        let vbit = 1u64 << var;
        let now_bound = bound | vbit;
        let alpha_idx = rule.vars[var].alpha.0;
        let alpha = self.alpha(rule.vars[var].alpha);
        match alpha.kind {
            AlphaKind::Virtual => {
                let scan_start = self.obs.as_ref().map(|_| Instant::now());
                // §4.2: join through the base relation under the node's
                // predicate, honoring pending/ProcessedMemories visibility.
                // "The base relation scan … can be done with any scan
                // algorithm — index scan or sequential scan": when one of
                // this depth's equi-conjuncts probes an indexed attribute,
                // substitute the constant from the partial row and use the
                // index instead of scanning. (Base relations only keep
                // single-attribute indexes, so virtual nodes stay on the
                // single-key probe path.)
                let rel_ref = catalog.require(&alpha.rel)?;
                let rel_b = rel_ref.borrow();
                let visible: Box<dyn Fn(&Tid) -> bool> = match vis {
                    JoinVis::Seq {
                        token,
                        processed,
                        pending,
                    } => {
                        let pend = pending.get(&alpha.rel);
                        // the in-flight token's own tuple is visible only
                        // once this node is in ProcessedMemories
                        let own_ok = processed.contains(&alpha_idx);
                        Box::new(move |tid: &Tid| {
                            !pend.is_some_and(|p| p.contains(&tid.0))
                                && (alpha.rel != token.rel || *tid != token.tid || own_ok)
                        })
                    }
                    JoinVis::Run { ctx, ti, pos } => {
                        let pend = ctx.pending.get(&alpha.rel);
                        let run_tids = ctx.run_tids.get(&alpha.rel);
                        // the seed token's own tuple: visible iff this node
                        // is processed from the seed's viewpoint, i.e. the
                        // node matched at a position ≤ the seed's
                        let own_ok = ctx.matched_pos[*ti]
                            .get(&alpha_idx)
                            .is_some_and(|p| p <= pos);
                        let ti = *ti;
                        Box::new(move |tid: &Tid| {
                            if pend.is_some_and(|p| p.contains(&tid.0)) {
                                return false;
                            }
                            match run_tids.and_then(|m| m.get(&tid.0)) {
                                None => true, // not part of this run
                                Some(&tj) if tj < ti => true,
                                Some(&tj) if tj == ti => own_ok,
                                _ => false, // later run token: not yet seen
                            }
                        })
                    }
                };
                let probe = self.find_equi_probe(rule, var, vbit, now_bound, row, &|attr| {
                    rel_b.index_on(attr).is_some()
                });
                let via_index = probe.is_some();
                let mut served = 0u64;
                let scanned = match probe {
                    Some((skip, attr, key)) => {
                        AlphaCounters::bump(&alpha.counters.index_probes, 1);
                        let hits = if key.is_null() {
                            Vec::new() // a Null key joins nothing
                        } else {
                            rel_b.probe_eq(attr, &key).unwrap_or_default()
                        };
                        if !hits.is_empty() {
                            AlphaCounters::bump(&alpha.counters.index_hits, 1);
                        }
                        let scanned = hits.len() as u64;
                        for (tid, t) in hits {
                            if !visible(&tid) || !alpha.pred_matches(t, None) {
                                continue;
                            }
                            served += 1;
                            if Self::conjuncts_pass(
                                rule,
                                vbit,
                                now_bound,
                                row,
                                var,
                                t,
                                None,
                                &[skip],
                            )? {
                                row.slots[var] = Some(BoundVar::plain(tid, t.clone()));
                                self.extend_depth(
                                    rule,
                                    order,
                                    depth + 1,
                                    now_bound,
                                    row,
                                    catalog,
                                    vis,
                                    results,
                                )?;
                            }
                        }
                        scanned
                    }
                    None => {
                        for (tid, t) in rel_b.scan() {
                            if !visible(&tid) || !alpha.pred_matches(t, None) {
                                continue;
                            }
                            served += 1;
                            if Self::conjuncts_pass(rule, vbit, now_bound, row, var, t, None, &[])?
                            {
                                row.slots[var] = Some(BoundVar::plain(tid, t.clone()));
                                self.extend_depth(
                                    rule,
                                    order,
                                    depth + 1,
                                    now_bound,
                                    row,
                                    catalog,
                                    vis,
                                    results,
                                )?;
                            }
                        }
                        rel_b.len() as u64
                    }
                };
                AlphaCounters::bump(&alpha.counters.virtual_scans, 1);
                AlphaCounters::bump(&alpha.counters.scanned_tuples, scanned);
                AlphaCounters::bump(&alpha.counters.join_candidates, served);
                if let Some(tr) = &self.trace {
                    tr.record(TraceEventKind::VirtualScan {
                        rule: alpha.rule.0,
                        var: alpha.var,
                        scanned,
                        served,
                    });
                }
                if via_index {
                    AlphaCounters::bump(&alpha.counters.indexed_candidates, served);
                } else {
                    AlphaCounters::bump(&alpha.counters.scanned_candidates, served);
                }
                if let Some(obs) = &self.obs {
                    obs.with_node(alpha.rule, alpha.var, |n| {
                        n.virtual_scans += 1;
                        n.scanned_tuples += scanned;
                        n.join_candidates += served;
                        if via_index {
                            n.index_probes += 1;
                            if scanned > 0 {
                                n.index_hits += 1;
                            }
                            n.indexed_candidates += served;
                        } else {
                            n.scanned_candidates += served;
                        }
                        if let Some(t0) = scan_start {
                            // streaming join: this span now covers the
                            // depths below too, not just the scan itself
                            n.virtual_scan.record(t0.elapsed().as_nanos() as u64);
                        }
                    });
                }
            }
            _ => {
                // access-path choice: a composite hash probe answers the
                // most equi-conjuncts in one lookup; failing that a band
                // stab answers an inequality pair; failing both, enumerate
                let mut served = 0u64;
                let used_hash;
                let mut used_range = false;
                let mut hit = false;
                if let Some((spec, key)) = self.find_composite_probe(rule, var, bound, row, alpha) {
                    used_hash = true;
                    AlphaCounters::bump(&alpha.counters.index_probes, 1);
                    for e in alpha
                        .probe_join_index_packed(&spec.attrs, &key)
                        .expect("probe found a registered index")
                    {
                        if !vis.entry_visible(alpha_idx, e) {
                            continue;
                        }
                        served += 1;
                        if Self::conjuncts_pass(
                            rule,
                            vbit,
                            now_bound,
                            row,
                            var,
                            &e.tuple,
                            e.prev.as_ref(),
                            &spec.conjuncts,
                        )? {
                            row.slots[var] = Some(BoundVar {
                                tid: e.tid,
                                tuple: e.tuple.clone(),
                                prev: e.prev.clone(),
                            });
                            self.extend_depth(
                                rule,
                                order,
                                depth + 1,
                                now_bound,
                                row,
                                catalog,
                                vis,
                                results,
                            )?;
                        }
                    }
                    if served > 0 {
                        hit = true;
                        AlphaCounters::bump(&alpha.counters.index_hits, 1);
                    }
                } else if let Some((spec, key)) = self.find_band_probe(rule, var, bound, row, alpha)
                {
                    used_hash = false;
                    used_range = true;
                    AlphaCounters::bump(&alpha.counters.range_probes, 1);
                    let hits: Vec<_> = alpha
                        .probe_range_index(&spec.shape, &key)
                        .expect("probe found a registered index")
                        .into_iter()
                        .filter(|e| vis.entry_visible(alpha_idx, e))
                        .collect();
                    if !hits.is_empty() {
                        hit = true;
                        AlphaCounters::bump(&alpha.counters.range_hits, 1);
                    }
                    for e in hits {
                        served += 1;
                        if Self::conjuncts_pass(
                            rule,
                            vbit,
                            now_bound,
                            row,
                            var,
                            &e.tuple,
                            e.prev.as_ref(),
                            &spec.conjuncts,
                        )? {
                            row.slots[var] = Some(BoundVar {
                                tid: e.tid,
                                tuple: e.tuple.clone(),
                                prev: e.prev.clone(),
                            });
                            self.extend_depth(
                                rule,
                                order,
                                depth + 1,
                                now_bound,
                                row,
                                catalog,
                                vis,
                                results,
                            )?;
                        }
                    }
                } else {
                    used_hash = false;
                    for e in alpha.entries() {
                        if !vis.entry_visible(alpha_idx, e) {
                            continue;
                        }
                        served += 1;
                        if Self::conjuncts_pass(
                            rule,
                            vbit,
                            now_bound,
                            row,
                            var,
                            &e.tuple,
                            e.prev.as_ref(),
                            &[],
                        )? {
                            row.slots[var] = Some(BoundVar {
                                tid: e.tid,
                                tuple: e.tuple.clone(),
                                prev: e.prev.clone(),
                            });
                            self.extend_depth(
                                rule,
                                order,
                                depth + 1,
                                now_bound,
                                row,
                                catalog,
                                vis,
                                results,
                            )?;
                        }
                    }
                }
                AlphaCounters::bump(&alpha.counters.join_candidates, served);
                if let Some(tr) = &self.trace {
                    tr.record(TraceEventKind::BetaProbe {
                        rule: alpha.rule.0,
                        var: alpha.var,
                        candidates: served,
                        indexed: used_hash || used_range,
                    });
                }
                if used_hash || used_range {
                    AlphaCounters::bump(&alpha.counters.indexed_candidates, served);
                } else {
                    AlphaCounters::bump(&alpha.counters.scanned_candidates, served);
                }
                if let Some(obs) = &self.obs {
                    obs.with_node(alpha.rule, alpha.var, |n| {
                        n.join_candidates += served;
                        if used_hash {
                            n.index_probes += 1;
                            if hit {
                                n.index_hits += 1;
                            }
                            n.indexed_candidates += served;
                        } else if used_range {
                            n.range_probes += 1;
                            if hit {
                                n.range_hits += 1;
                            }
                            n.indexed_candidates += served;
                        } else {
                            n.scanned_candidates += served;
                        }
                    });
                }
            }
        }
        row.slots[var] = None;
        Ok(())
    }

    /// Estimated β-join candidates variable `var` would contribute, used
    /// to pick the join order. An indexed memory sorts as its *expected
    /// bucket size* — a probe serves one bucket, not the whole memory —
    /// and likewise a virtual node over an indexed base relation.
    fn candidate_estimate(&self, rule: &RuleNode, var: usize, catalog: &Catalog) -> usize {
        let alpha = self.alpha(rule.vars[var].alpha);
        match alpha.kind {
            AlphaKind::Virtual => {
                let Some(rel_ref) = catalog.get(&alpha.rel) else {
                    return 0;
                };
                let rel_b = rel_ref.borrow();
                let n = rel_b.len();
                if !self.join_indexing {
                    return n;
                }
                rule.plan.equi[var]
                    .iter()
                    .flatten()
                    .filter_map(|(attr, _)| {
                        let ix = rel_b.index_on(*attr)?;
                        Some(n.div_ceil(ix.distinct_keys().max(1)))
                    })
                    .min()
                    .unwrap_or(n)
            }
            _ => {
                // an unindexed memory (or join_indexing off) has no
                // registered indexes and falls through to its full size
                alpha.min_expected_bucket_size().unwrap_or(alpha.len())
            }
        }
    }

    fn process_negative(
        &mut self,
        token: &Token,
        catalog: &Catalog,
        pending: &HashMap<String, HashSet<u64>>,
    ) -> QueryResult<()> {
        // TREAT's cheap delete path: drop the TID from every α-memory on
        // the relation and retract P-node rows binding it (§4.2).
        let alpha_ids: Vec<AlphaId> = self.selnet.alphas_on(&token.rel).to_vec();
        for aid in alpha_ids {
            let (rule_id, var) = {
                let a = self.alpha_mut(aid);
                a.remove(token.tid);
                (a.rule, a.var)
            };
            if let Some(rule) = self.rules.get_mut(&rule_id.0) {
                rule.pnode.retract(var, token.tid);
            }
        }
        // ON DELETE conditions: the dying tuple *matches* them (§4.3.1,
        // case 4: "a delete− … will match any applicable on delete rule
        // conditions"). The tuple is bound with no TID — it no longer
        // exists, so primed commands can never address it.
        if token.kind == TokenKind::Minus && token.event == Some(EventSpecifier::Delete) {
            let probe_start = self.obs.as_ref().map(|_| Instant::now());
            let mut matched = arena::take_candidates();
            self.selnet
                .candidates_into(&token.rel, &token.tuple, &mut matched);
            if let Some(obs) = &self.obs {
                if let Some(t0) = probe_start {
                    obs.selnet_probe.record(t0.elapsed().as_nanos() as u64);
                }
                obs.selnet_candidates
                    .set(obs.selnet_candidates.get() + matched.len() as u64);
            }
            matched.retain(|aid| {
                self.alpha_test(*aid, token, |a| {
                    a.kind.is_on()
                        && a.event == Some(EventReq::Delete)
                        && a.pred_matches(&token.tuple, None)
                })
            });
            matched.sort_by_key(|a| a.0);
            matched.dedup();
            let mut processed = HashSet::new();
            for &aid in &matched {
                processed.insert(aid.0);
                self.insert_and_propagate(
                    aid,
                    BoundVar {
                        tid: None,
                        tuple: token.tuple.clone(),
                        prev: None,
                    },
                    token,
                    &processed,
                    catalog,
                    pending,
                )?;
            }
            arena::give_candidates(matched);
        }
        Ok(())
    }

    /// Flush per-transition state: dynamic α-memories and the P-nodes of
    /// rules with event/transition components ("the binding between the
    /// matching data and the condition should be broken", §4.3.2). The
    /// engine calls this when a recognize-act cycle reaches quiescence.
    pub fn flush_transition_state(&mut self) {
        for a in self.alphas.iter_mut().flatten() {
            if a.kind.is_dynamic() {
                a.flush();
            }
        }
        for rule in self.rules.values_mut() {
            if rule.n_dynamic > 0 {
                rule.pnode.clear();
            }
        }
    }

    /// The P-node of a rule.
    pub fn pnode(&self, id: RuleId) -> Option<&Pnode> {
        self.rules.get(&id.0).map(|r| &r.pnode)
    }

    /// Drain a rule's P-node (consumed instantiations at rule firing).
    pub fn drain_pnode(&mut self, id: RuleId) -> Vec<Vec<BoundVar>> {
        self.rules
            .get_mut(&id.0)
            .map(|r| r.pnode.drain())
            .unwrap_or_default()
    }

    /// Replace a rule's P-node rows wholesale (crash recovery: priming
    /// rebuilds α/β state from relations, but a P-node also carries
    /// *history* — matches consumed by earlier firings are gone — so the
    /// recovered engine overwrites the primed rows with the snapshotted
    /// ones). No-op for unknown rules.
    pub fn set_pnode_rows(&mut self, id: RuleId, rows: Vec<Vec<BoundVar>>) {
        if let Some(r) = self.rules.get_mut(&id.0) {
            r.pnode.clear();
            for row in rows {
                r.pnode.push(row);
            }
        }
    }

    /// Rules whose P-node is non-empty, ascending by id.
    pub fn rules_with_matches(&self) -> Vec<RuleId> {
        self.rules
            .iter()
            .filter(|(_, r)| !r.pnode.is_empty())
            .map(|(id, _)| RuleId(*id))
            .collect()
    }

    /// Memory statistics for one rule.
    pub fn rule_stats(&self, id: RuleId) -> Option<RuleStats> {
        let rule = self.rules.get(&id.0)?;
        let mut s = RuleStats {
            pnode_rows: rule.pnode.len(),
            pnode_bytes: rule.pnode.heap_size(),
            tokens_in: rule.tokens_in,
            join_probes: rule.join_probes,
            pnode_inserts: rule.pnode_inserts,
            ..Default::default()
        };
        for v in &rule.vars {
            let a = self.alpha(v.alpha);
            s.alpha_entries += a.len();
            s.alpha_bytes += a.heap_size();
            s.alpha_tests += a.counters.tests.get();
            s.alpha_passes += a.counters.passes.get();
            s.virtual_scans += a.counters.virtual_scans.get();
            s.virtual_scanned_tuples += a.counters.scanned_tuples.get();
            s.index_probes += a.counters.index_probes.get();
            s.index_hits += a.counters.index_hits.get();
            s.indexed_candidates += a.counters.indexed_candidates.get();
            s.scanned_candidates += a.counters.scanned_candidates.get();
            s.range_probes += a.counters.range_probes.get();
            s.range_hits += a.counters.range_hits.get();
            if a.kind == AlphaKind::Virtual {
                s.virtual_join_candidates += a.counters.join_candidates.get();
            } else {
                s.stored_join_candidates += a.counters.join_candidates.get();
            }
        }
        Some(s)
    }

    /// Aggregate statistics across the network.
    pub fn stats(&self) -> NetworkStats {
        let (selnet_probes, selnet_candidates) = self.selnet.probe_counts();
        let stab = self.selnet.stab_stats();
        let mut s = NetworkStats {
            rules: self.rules.len(),
            selnet_bytes: self.selnet.approx_size_bytes(),
            tokens_processed: self.tokens_processed,
            selnet_probes,
            selnet_candidates,
            islist_stabs: stab.stabs.get(),
            islist_nodes_visited: stab.nodes_visited.get(),
            ..Default::default()
        };
        for a in self.alphas.iter().flatten() {
            s.alpha_nodes += 1;
            if a.kind == AlphaKind::Virtual {
                s.virtual_alpha_nodes += 1;
            }
            s.alpha_entries += a.len();
            s.alpha_bytes += a.heap_size();
            s.alpha_tests += a.counters.tests.get();
            s.alpha_passes += a.counters.passes.get();
            s.virtual_scans += a.counters.virtual_scans.get();
            s.virtual_scanned_tuples += a.counters.scanned_tuples.get();
            s.index_probes += a.counters.index_probes.get();
            s.index_hits += a.counters.index_hits.get();
            s.indexed_candidates += a.counters.indexed_candidates.get();
            s.scanned_candidates += a.counters.scanned_candidates.get();
            s.range_probes += a.counters.range_probes.get();
            s.range_hits += a.counters.range_hits.get();
            if a.kind == AlphaKind::Virtual {
                s.virtual_join_candidates += a.counters.join_candidates.get();
            } else {
                s.stored_join_candidates += a.counters.join_candidates.get();
            }
        }
        for r in self.rules.values() {
            s.pnode_rows += r.pnode.len();
            s.pnode_bytes += r.pnode.heap_size();
            s.join_probes += r.join_probes;
            s.pnode_inserts += r.pnode_inserts;
        }
        s
    }

    /// The α-node kinds of a rule's variables, in variable order (tests and
    /// the VIRT ablation use this to confirm policy decisions).
    pub fn alpha_kinds(&self, id: RuleId) -> Option<Vec<AlphaKind>> {
        let rule = self.rules.get(&id.0)?;
        Some(rule.vars.iter().map(|v| self.alpha(v.alpha).kind).collect())
    }

    /// Per-variable topology of a compiled rule — `(variable name,
    /// relation, α-node kind)` in variable order — plus the number of
    /// multi-variable join conjuncts. Drives `explain analyze` rendering.
    pub fn rule_topology(&self, id: RuleId) -> Option<RuleTopology> {
        let rule = self.rules.get(&id.0)?;
        let vars = rule
            .vars
            .iter()
            .zip(rule.spec.vars.iter())
            .map(|(v, sv)| (sv.name.clone(), sv.rel.clone(), self.alpha(v.alpha).kind))
            .collect();
        Some((vars, rule.join_conjuncts.len()))
    }
}

/// `(variable name, relation, α-node kind)` per condition variable, plus
/// the rule's multi-variable join conjunct count (see
/// [`Network::rule_topology`]).
pub type RuleTopology = (Vec<(String, String, AlphaKind)>, usize);

fn resolve_event(kind: &EventKind, schema: &SchemaRef) -> EventReq {
    match kind {
        EventKind::Append => EventReq::Append,
        EventKind::Delete => EventReq::Delete,
        EventKind::Replace(None) => EventReq::Replace(None),
        EventKind::Replace(Some(attrs)) => EventReq::Replace(Some(
            attrs
                .iter()
                .map(|a| schema.index_of(a).expect("validated by resolver"))
                .collect(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariel_query::{parse_expr, EventSpec, FromItem, Resolver};
    use ariel_storage::{AttrType, Schema, Tuple, Value};

    fn paper_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create(
            "emp",
            Schema::of(&[
                ("name", AttrType::Str),
                ("age", AttrType::Int),
                ("sal", AttrType::Float),
                ("dno", AttrType::Int),
                ("jno", AttrType::Int),
            ]),
        )
        .unwrap();
        c.create(
            "dept",
            Schema::of(&[("dno", AttrType::Int), ("name", AttrType::Str)]),
        )
        .unwrap();
        c.create(
            "job",
            Schema::of(&[("jno", AttrType::Int), ("title", AttrType::Str)]),
        )
        .unwrap();
        c
    }

    fn emp_row(name: &str, sal: f64, dno: i64, jno: i64) -> Vec<Value> {
        vec![
            name.into(),
            30i64.into(),
            sal.into(),
            dno.into(),
            jno.into(),
        ]
    }

    fn insert_emp(c: &Catalog, name: &str, sal: f64, dno: i64, jno: i64) -> (Tid, Tuple) {
        let rel = c.get("emp").unwrap();
        let tid = rel
            .borrow_mut()
            .insert(emp_row(name, sal, dno, jno))
            .unwrap();
        let t = rel.borrow().get(tid).cloned().unwrap();
        (tid, t)
    }

    fn cond(
        c: &Catalog,
        on: Option<EventSpec>,
        qual: &str,
        from: &[(&str, &str)],
    ) -> ResolvedCondition {
        let e = parse_expr(qual).unwrap();
        let from: Vec<FromItem> = from
            .iter()
            .map(|(v, r)| FromItem {
                var: v.to_string(),
                rel: r.to_string(),
            })
            .collect();
        Resolver::new(c)
            .resolve_condition(on.as_ref(), Some(&e), &from)
            .unwrap()
    }

    fn append_token(tid: Tid, t: Tuple) -> Token {
        Token::plus("emp", tid, t, EventSpecifier::Append)
    }

    #[test]
    fn single_var_rule_prime_and_tokens() {
        let cat = paper_catalog();
        insert_emp(&cat, "Bob", 10_000.0, 1, 1);
        insert_emp(&cat, "Al", 50_000.0, 1, 1);
        let mut net = Network::new();
        let rc = cond(&cat, None, "emp.sal > 30000", &[]);
        net.add_rule(RuleId(1), &rc, &VirtualPolicy::AllStored, &cat)
            .unwrap();
        assert_eq!(net.alpha_kinds(RuleId(1)).unwrap(), vec![AlphaKind::Simple]);
        net.prime(RuleId(1), &cat).unwrap();
        // Al matches at activation
        assert_eq!(net.pnode(RuleId(1)).unwrap().len(), 1);
        // new matching emp arrives
        let (tid, t) = insert_emp(&cat, "Cy", 40_000.0, 2, 1);
        net.process_token(&append_token(tid, t.clone()), &cat)
            .unwrap();
        assert_eq!(net.pnode(RuleId(1)).unwrap().len(), 2);
        // non-matching emp does nothing
        let (tid2, t2) = insert_emp(&cat, "Lo", 1000.0, 2, 1);
        net.process_token(&append_token(tid2, t2), &cat).unwrap();
        assert_eq!(net.pnode(RuleId(1)).unwrap().len(), 2);
        // deletion retracts
        net.process_token(&Token::minus("emp", tid, t, EventSpecifier::Delete), &cat)
            .unwrap();
        assert_eq!(net.pnode(RuleId(1)).unwrap().len(), 1);
    }

    fn sales_clerk_cond(cat: &Catalog) -> ResolvedCondition {
        cond(
            cat,
            None,
            "emp.sal > 30000 and emp.dno = dept.dno and dept.name = \"Sales\" \
             and emp.jno = job.jno and job.title = \"Clerk\"",
            &[],
        )
    }

    fn populate_sales_clerk(cat: &Catalog) {
        let dept = cat.get("dept").unwrap();
        dept.borrow_mut()
            .insert(vec![1i64.into(), "Sales".into()])
            .unwrap();
        dept.borrow_mut()
            .insert(vec![2i64.into(), "Toy".into()])
            .unwrap();
        let job = cat.get("job").unwrap();
        job.borrow_mut()
            .insert(vec![7i64.into(), "Clerk".into()])
            .unwrap();
        job.borrow_mut()
            .insert(vec![8i64.into(), "Boss".into()])
            .unwrap();
    }

    #[test]
    fn sales_clerk_rule_stored_network() {
        let cat = paper_catalog();
        populate_sales_clerk(&cat);
        let mut net = Network::new();
        net.add_rule(
            RuleId(1),
            &sales_clerk_cond(&cat),
            &VirtualPolicy::AllStored,
            &cat,
        )
        .unwrap();
        assert_eq!(
            net.alpha_kinds(RuleId(1)).unwrap(),
            vec![AlphaKind::Stored, AlphaKind::Stored, AlphaKind::Stored]
        );
        net.prime(RuleId(1), &cat).unwrap();
        assert_eq!(net.pnode(RuleId(1)).unwrap().len(), 0);
        // matching emp: high salary, Sales dept, Clerk job
        let (tid, t) = insert_emp(&cat, "Sue", 45_000.0, 1, 7);
        net.process_token(&append_token(tid, t), &cat).unwrap();
        assert_eq!(net.pnode(RuleId(1)).unwrap().len(), 1);
        // wrong dept
        let (tid2, t2) = insert_emp(&cat, "Tom", 45_000.0, 2, 7);
        net.process_token(&append_token(tid2, t2), &cat).unwrap();
        assert_eq!(net.pnode(RuleId(1)).unwrap().len(), 1);
        // wrong job
        let (tid3, t3) = insert_emp(&cat, "Ann", 45_000.0, 1, 8);
        net.process_token(&append_token(tid3, t3), &cat).unwrap();
        assert_eq!(net.pnode(RuleId(1)).unwrap().len(), 1);
        // low salary
        let (tid4, t4) = insert_emp(&cat, "Pat", 5_000.0, 1, 7);
        net.process_token(&append_token(tid4, t4), &cat).unwrap();
        assert_eq!(net.pnode(RuleId(1)).unwrap().len(), 1);
    }

    #[test]
    fn virtual_alpha_matches_stored_results() {
        // Fig. 4: make the emp α-memory (alpha2, low selectivity) virtual.
        let cat = paper_catalog();
        populate_sales_clerk(&cat);
        for i in 0..20 {
            insert_emp(&cat, &format!("e{i}"), 40_000.0 + i as f64, 1 + (i % 2), 7);
        }
        let build = |policy: &VirtualPolicy| {
            let mut net = Network::new();
            net.add_rule(RuleId(1), &sales_clerk_cond(&cat), policy, &cat)
                .unwrap();
            net.prime(RuleId(1), &cat).unwrap();
            let (tid, t) = {
                let rel = cat.get("emp").unwrap();
                let r = rel.borrow();
                let (tid, t) = r.scan().last().unwrap();
                (tid, t.clone())
            };
            // re-process the last emp as if newly inserted is not valid;
            // instead insert a new one per policy run below.
            let _ = (tid, t);
            net
        };
        let mut stored = build(&VirtualPolicy::AllStored);
        let mut virt = build(&VirtualPolicy::ExplicitVars(HashSet::from([0])));
        assert_eq!(virt.alpha_kinds(RuleId(1)).unwrap()[0], AlphaKind::Virtual);
        // both nets see the same new token
        let (tid, t) = insert_emp(&cat, "new", 99_000.0, 1, 7);
        stored
            .process_token(&append_token(tid, t.clone()), &cat)
            .unwrap();
        virt.process_token(&append_token(tid, t), &cat).unwrap();
        let p1 = stored.pnode(RuleId(1)).unwrap();
        let p2 = virt.pnode(RuleId(1)).unwrap();
        assert_eq!(p1.len(), p2.len());
        assert!(!p1.is_empty());
        // and virtual saves α-memory bytes
        let s1 = stored.rule_stats(RuleId(1)).unwrap();
        let s2 = virt.rule_stats(RuleId(1)).unwrap();
        assert!(s2.alpha_bytes < s1.alpha_bytes);
    }

    #[test]
    fn selectivity_threshold_policy() {
        let cat = paper_catalog();
        populate_sales_clerk(&cat);
        for i in 0..10 {
            insert_emp(&cat, &format!("e{i}"), 40_000.0, 1, 7);
        }
        // emp.sal > 30000 matches everything (low selectivity) → virtual;
        // dept/job predicates match half → stored at 0.6 threshold
        let mut net = Network::new();
        net.add_rule(
            RuleId(1),
            &sales_clerk_cond(&cat),
            &VirtualPolicy::SelectivityThreshold(0.6),
            &cat,
        )
        .unwrap();
        let kinds = net.alpha_kinds(RuleId(1)).unwrap();
        assert_eq!(kinds[0], AlphaKind::Virtual, "emp pred matches 100% > 60%");
        assert_eq!(kinds[1], AlphaKind::Stored, "dept pred matches 50%");
        assert_eq!(kinds[2], AlphaKind::Stored, "job pred matches 50%");
    }

    fn self_join_cond(cat: &Catalog) -> ResolvedCondition {
        cond(cat, None, "a.dno = b.dno", &[("a", "emp"), ("b", "emp")])
    }

    #[test]
    fn self_join_counting_stored_vs_virtual() {
        for policy in [
            VirtualPolicy::AllStored,
            VirtualPolicy::AllVirtual,
            VirtualPolicy::ExplicitVars(HashSet::from([0])),
            VirtualPolicy::ExplicitVars(HashSet::from([1])),
        ] {
            let cat = paper_catalog();
            let (ytid, yt) = insert_emp(&cat, "y", 1.0, 5, 1);
            let mut net = Network::new();
            net.add_rule(RuleId(1), &self_join_cond(&cat), &policy, &cat)
                .unwrap();
            net.prime(RuleId(1), &cat).unwrap();
            let base = net.pnode(RuleId(1)).unwrap().len();
            // priming a pattern rule loads (y,y)
            assert_eq!(base, 1, "policy {policy:?}");
            let _ = (ytid, yt);
            // new tuple t with same dno: expect exactly 3 new rows:
            // (t,t), (t,y), (y,t)
            let (tid, t) = insert_emp(&cat, "t", 2.0, 5, 1);
            net.process_token(&append_token(tid, t), &cat).unwrap();
            assert_eq!(
                net.pnode(RuleId(1)).unwrap().len(),
                4,
                "self-join count wrong for policy {policy:?}"
            );
        }
    }

    #[test]
    fn batch_insert_no_double_count() {
        for policy in [VirtualPolicy::AllStored, VirtualPolicy::AllVirtual] {
            let cat = paper_catalog();
            let mut net = Network::new();
            net.add_rule(RuleId(1), &self_join_cond(&cat), &policy, &cat)
                .unwrap();
            net.prime(RuleId(1), &cat).unwrap();
            // two tuples inserted in one command (one batch)
            let (t1, v1) = insert_emp(&cat, "t1", 1.0, 5, 1);
            let (t2, v2) = insert_emp(&cat, "t2", 2.0, 5, 1);
            net.process_batch(&[append_token(t1, v1), append_token(t2, v2)], &cat)
                .unwrap();
            // pairs: (t1,t1), (t1,t2), (t2,t1), (t2,t2)
            assert_eq!(
                net.pnode(RuleId(1)).unwrap().len(),
                4,
                "batch double-count for policy {policy:?}"
            );
        }
    }

    #[test]
    fn on_append_rule_is_dynamic_and_flushed() {
        let cat = paper_catalog();
        populate_sales_clerk(&cat);
        let mut net = Network::new();
        let rc = cond(
            &cat,
            Some(EventSpec {
                kind: EventKind::Append,
                relation: "emp".into(),
            }),
            "emp.dno = dept.dno and dept.name = \"Sales\"",
            &[],
        );
        net.add_rule(RuleId(1), &rc, &VirtualPolicy::AllStored, &cat)
            .unwrap();
        let kinds = net.alpha_kinds(RuleId(1)).unwrap();
        assert!(kinds.contains(&AlphaKind::DynamicOn));
        net.prime(RuleId(1), &cat).unwrap();
        // event rules never prime from existing data
        insert_emp(&cat, "old", 1.0, 1, 7);
        assert_eq!(net.pnode(RuleId(1)).unwrap().len(), 0);
        // append event matches
        let (tid, t) = insert_emp(&cat, "new", 1.0, 1, 7);
        net.process_token(&append_token(tid, t.clone()), &cat)
            .unwrap();
        assert_eq!(net.pnode(RuleId(1)).unwrap().len(), 1);
        // a replace Δ token does not trigger an on-append rule
        let (tid2, t2) = insert_emp(&cat, "upd", 1.0, 1, 7);
        net.process_token(
            &Token::delta_plus(
                "emp",
                tid2,
                t2.clone(),
                t2,
                EventSpecifier::Replace(vec![2]),
            ),
            &cat,
        )
        .unwrap();
        assert_eq!(net.pnode(RuleId(1)).unwrap().len(), 1);
        // transition end flushes binding
        net.flush_transition_state();
        assert_eq!(net.pnode(RuleId(1)).unwrap().len(), 0);
        // only the dynamic emp memory flushed; the stored dept memory
        // legitimately keeps its "Sales" entry
        let s = net.stats();
        assert_eq!(s.alpha_entries, 1, "stored dept entry survives the flush");
    }

    #[test]
    fn on_delete_rule_binds_dead_tuple() {
        let cat = paper_catalog();
        populate_sales_clerk(&cat);
        let mut net = Network::new();
        let rc = cond(
            &cat,
            Some(EventSpec {
                kind: EventKind::Delete,
                relation: "emp".into(),
            }),
            "emp.dno = dept.dno and dept.name = \"Sales\"",
            &[],
        );
        net.add_rule(RuleId(1), &rc, &VirtualPolicy::AllStored, &cat)
            .unwrap();
        net.prime(RuleId(1), &cat).unwrap();
        let (tid, t) = insert_emp(&cat, "victim", 1.0, 1, 7);
        net.process_token(&append_token(tid, t.clone()), &cat)
            .unwrap();
        assert_eq!(
            net.pnode(RuleId(1)).unwrap().len(),
            0,
            "append is not delete"
        );
        // delete it (engine removes from relation first, then sends token)
        cat.get("emp").unwrap().borrow_mut().delete(tid).unwrap();
        net.process_token(&Token::minus("emp", tid, t, EventSpecifier::Delete), &cat)
            .unwrap();
        let p = net.pnode(RuleId(1)).unwrap();
        assert_eq!(p.len(), 1);
        // the dead tuple is bound without a TID
        assert_eq!(p.rows()[0][0].tid, None);
        assert!(p.rows()[0][1].tid.is_some(), "dept binding is live");
    }

    #[test]
    fn transition_rule_raiselimit() {
        let cat = paper_catalog();
        let mut net = Network::new();
        let rc = cond(&cat, None, "emp.sal > 1.1 * previous emp.sal", &[]);
        net.add_rule(RuleId(1), &rc, &VirtualPolicy::AllStored, &cat)
            .unwrap();
        assert_eq!(
            net.alpha_kinds(RuleId(1)).unwrap(),
            vec![AlphaKind::SimpleTrans]
        );
        net.prime(RuleId(1), &cat).unwrap();
        let (tid, old) = insert_emp(&cat, "e", 100_000.0, 1, 1);
        // raise of 20%: Δ+ matches
        let new = Tuple::new(emp_row("e", 120_000.0, 1, 1));
        net.process_token(
            &Token::delta_plus(
                "emp",
                tid,
                new.clone(),
                old.clone(),
                EventSpecifier::Replace(vec![2]),
            ),
            &cat,
        )
        .unwrap();
        assert_eq!(net.pnode(RuleId(1)).unwrap().len(), 1);
        // the binding carries previous value for the action to use
        let row = &net.pnode(RuleId(1)).unwrap().rows()[0];
        assert_eq!(
            row[0].prev.as_ref().unwrap().get(2),
            &Value::Float(100_000.0)
        );
        net.flush_transition_state();
        // raise of 5%: no match
        let new2 = Tuple::new(emp_row("e", 105_000.0, 1, 1));
        net.process_token(
            &Token::delta_plus("emp", tid, new2, old, EventSpecifier::Replace(vec![2])),
            &cat,
        )
        .unwrap();
        assert_eq!(net.pnode(RuleId(1)).unwrap().len(), 0);
    }

    #[test]
    fn delta_minus_retracts_pair() {
        let cat = paper_catalog();
        let mut net = Network::new();
        let rc = cond(&cat, None, "emp.sal > 1.1 * previous emp.sal", &[]);
        net.add_rule(RuleId(1), &rc, &VirtualPolicy::AllStored, &cat)
            .unwrap();
        let (tid, old) = insert_emp(&cat, "e", 100.0, 1, 1);
        let new = Tuple::new(emp_row("e", 200.0, 1, 1));
        net.process_token(
            &Token::delta_plus(
                "emp",
                tid,
                new.clone(),
                old.clone(),
                EventSpecifier::Replace(vec![2]),
            ),
            &cat,
        )
        .unwrap();
        assert_eq!(net.pnode(RuleId(1)).unwrap().len(), 1);
        // second modification within the transition: Δ− then Δ+
        net.process_token(
            &Token::delta_minus(
                "emp",
                tid,
                new,
                old.clone(),
                EventSpecifier::Replace(vec![2]),
            ),
            &cat,
        )
        .unwrap();
        assert_eq!(net.pnode(RuleId(1)).unwrap().len(), 0);
        let new2 = Tuple::new(emp_row("e", 102.0, 1, 1));
        net.process_token(
            &Token::delta_plus("emp", tid, new2, old, EventSpecifier::Replace(vec![2])),
            &cat,
        )
        .unwrap();
        assert_eq!(
            net.pnode(RuleId(1)).unwrap().len(),
            0,
            "5% raise below limit"
        );
    }

    #[test]
    fn replace_target_list_gating() {
        let cat = paper_catalog();
        let mut net = Network::new();
        let rc = cond(
            &cat,
            Some(EventSpec {
                kind: EventKind::Replace(Some(vec!["jno".into()])),
                relation: "emp".into(),
            }),
            "emp.sal > 0",
            &[],
        );
        net.add_rule(RuleId(1), &rc, &VirtualPolicy::AllStored, &cat)
            .unwrap();
        let (tid, old) = insert_emp(&cat, "e", 100.0, 1, 1);
        // replace touching sal (attr 2) only: no trigger
        let new = Tuple::new(emp_row("e", 200.0, 1, 1));
        net.process_token(
            &Token::delta_plus(
                "emp",
                tid,
                new,
                old.clone(),
                EventSpecifier::Replace(vec![2]),
            ),
            &cat,
        )
        .unwrap();
        assert_eq!(net.pnode(RuleId(1)).unwrap().len(), 0);
        // replace touching jno (attr 4): trigger
        let new = Tuple::new(emp_row("e", 100.0, 1, 9));
        net.process_token(
            &Token::delta_plus("emp", tid, new, old, EventSpecifier::Replace(vec![4])),
            &cat,
        )
        .unwrap();
        assert_eq!(net.pnode(RuleId(1)).unwrap().len(), 1);
    }

    #[test]
    fn remove_rule_unsubscribes() {
        let cat = paper_catalog();
        let mut net = Network::new();
        let rc = cond(&cat, None, "emp.sal > 30000", &[]);
        net.add_rule(RuleId(1), &rc, &VirtualPolicy::AllStored, &cat)
            .unwrap();
        assert_eq!(net.rule_count(), 1);
        net.remove_rule(RuleId(1));
        assert_eq!(net.rule_count(), 0);
        assert!(net.pnode(RuleId(1)).is_none());
        let (tid, t) = insert_emp(&cat, "x", 99_999.0, 1, 1);
        net.process_token(&append_token(tid, t), &cat).unwrap();
        assert!(net.rules_with_matches().is_empty());
        // id reusable
        let rc2 = cond(&cat, None, "emp.sal > 1", &[]);
        net.add_rule(RuleId(1), &rc2, &VirtualPolicy::AllStored, &cat)
            .unwrap();
    }

    #[test]
    fn duplicate_rule_id_rejected() {
        let cat = paper_catalog();
        let mut net = Network::new();
        let rc = cond(&cat, None, "emp.sal > 30000", &[]);
        net.add_rule(RuleId(1), &rc, &VirtualPolicy::AllStored, &cat)
            .unwrap();
        assert!(net
            .add_rule(RuleId(1), &rc, &VirtualPolicy::AllStored, &cat)
            .is_err());
    }

    #[test]
    fn virtual_join_uses_index_probe_consistently() {
        // same rule, virtual dept memory, with and without an index on
        // dept.dno: results must be identical (the index is §4.2's
        // constant-substitution scan choice, not a semantic change)
        let build = |with_index: bool| {
            let cat = paper_catalog();
            populate_sales_clerk(&cat);
            // extra Sales departments sharing dno values
            for i in 0..10 {
                cat.get("dept")
                    .unwrap()
                    .borrow_mut()
                    .insert(vec![(i % 3i64).into(), "Sales".into()])
                    .unwrap();
            }
            if with_index {
                cat.get("dept")
                    .unwrap()
                    .borrow_mut()
                    .create_index("dno", ariel_storage::IndexKind::Hash)
                    .unwrap();
            }
            let mut net = Network::new();
            let rc = cond(
                &cat,
                None,
                "emp.sal > 0 and emp.dno = dept.dno and dept.name = \"Sales\"",
                &[],
            );
            net.add_rule(
                RuleId(1),
                &rc,
                &VirtualPolicy::ExplicitVars(HashSet::from([1])),
                &cat,
            )
            .unwrap();
            net.prime(RuleId(1), &cat).unwrap();
            let (tid, t) = insert_emp(&cat, "probe", 10.0, 1, 7);
            net.process_token(&append_token(tid, t), &cat).unwrap();
            net.pnode(RuleId(1)).unwrap().len()
        };
        let without = build(false);
        let with = build(true);
        assert_eq!(without, with);
        assert!(with >= 1);
    }

    #[test]
    fn unsatisfiable_predicate_rule_never_matches() {
        let cat = paper_catalog();
        let mut net = Network::new();
        // contradictory band: can never match
        let rc = cond(&cat, None, "emp.sal > 100 and emp.sal < 50", &[]);
        net.add_rule(RuleId(1), &rc, &VirtualPolicy::AllStored, &cat)
            .unwrap();
        net.prime(RuleId(1), &cat).unwrap();
        let (tid, t) = insert_emp(&cat, "x", 75.0, 1, 1);
        net.process_token(&append_token(tid, t), &cat).unwrap();
        assert_eq!(net.pnode(RuleId(1)).unwrap().len(), 0);
    }

    #[test]
    fn network_stats_accounting() {
        let cat = paper_catalog();
        insert_emp(&cat, "a", 50_000.0, 1, 1);
        insert_emp(&cat, "b", 60_000.0, 1, 1);
        let mut net = Network::new();
        let rc = cond(&cat, None, "emp.sal > 30000 and emp.dno = dept.dno", &[]);
        net.add_rule(RuleId(1), &rc, &VirtualPolicy::AllStored, &cat)
            .unwrap();
        net.prime(RuleId(1), &cat).unwrap();
        let s = net.stats();
        assert_eq!(s.rules, 1);
        assert_eq!(s.alpha_nodes, 2);
        assert_eq!(s.virtual_alpha_nodes, 0);
        assert_eq!(s.alpha_entries, 2, "two matching emps; dept empty");
        assert!(s.alpha_bytes > 0);
        assert!(s.selnet_bytes > 0);
        let rs = net.rule_stats(RuleId(1)).unwrap();
        assert_eq!(rs.alpha_entries, 2);
        assert_eq!(rs.pnode_rows, 0);
        assert!(net.rule_stats(RuleId(9)).is_none());
    }

    #[test]
    fn flush_is_idempotent_and_scoped() {
        let cat = paper_catalog();
        insert_emp(&cat, "a", 50_000.0, 1, 1);
        let mut net = Network::new();
        let rc = cond(&cat, None, "emp.sal > 30000", &[]);
        net.add_rule(RuleId(1), &rc, &VirtualPolicy::AllStored, &cat)
            .unwrap();
        net.prime(RuleId(1), &cat).unwrap();
        assert_eq!(net.pnode(RuleId(1)).unwrap().len(), 1);
        // pattern rules are untouched by transition flushes
        net.flush_transition_state();
        net.flush_transition_state();
        assert_eq!(net.pnode(RuleId(1)).unwrap().len(), 1);
    }

    #[test]
    fn bare_minus_token_cleans_pattern_memories_only() {
        // the case-3 bare − (no event specifier) must retract pattern
        // state but trigger nothing
        let cat = paper_catalog();
        let mut net = Network::new();
        let pattern = cond(&cat, None, "emp.sal > 0", &[]);
        net.add_rule(RuleId(1), &pattern, &VirtualPolicy::AllStored, &cat)
            .unwrap();
        let on_del = cond(
            &cat,
            Some(EventSpec {
                kind: EventKind::Delete,
                relation: "emp".into(),
            }),
            "emp.sal > 0",
            &[],
        );
        net.add_rule(RuleId(2), &on_del, &VirtualPolicy::AllStored, &cat)
            .unwrap();
        for id in [1, 2] {
            net.prime(RuleId(id), &cat).unwrap();
        }
        let (tid, t) = insert_emp(&cat, "x", 10.0, 1, 1);
        net.process_token(&append_token(tid, t.clone()), &cat)
            .unwrap();
        assert_eq!(net.pnode(RuleId(1)).unwrap().len(), 1);
        // bare − (first modification): pattern match retracted, no delete fire
        net.process_token(&Token::bare_minus("emp", tid, t), &cat)
            .unwrap();
        assert_eq!(net.pnode(RuleId(1)).unwrap().len(), 0);
        assert_eq!(net.pnode(RuleId(2)).unwrap().len(), 0, "no delete event");
    }

    #[test]
    fn rules_with_matches_sorted() {
        let cat = paper_catalog();
        insert_emp(&cat, "x", 50_000.0, 1, 1);
        let mut net = Network::new();
        for id in [3u64, 1, 2] {
            let rc = cond(&cat, None, "emp.sal > 30000", &[]);
            net.add_rule(RuleId(id), &rc, &VirtualPolicy::AllStored, &cat)
                .unwrap();
            net.prime(RuleId(id), &cat).unwrap();
        }
        assert_eq!(
            net.rules_with_matches(),
            vec![RuleId(1), RuleId(2), RuleId(3)]
        );
        let drained = net.drain_pnode(RuleId(2));
        assert_eq!(drained.len(), 1);
        assert_eq!(net.rules_with_matches(), vec![RuleId(1), RuleId(3)]);
    }

    #[test]
    fn indexed_join_matches_nested_loop_and_counts_probes() {
        let cat = paper_catalog();
        populate_sales_clerk(&cat);
        let build = |indexing: bool| {
            let mut net = Network::new();
            net.set_join_indexing(indexing);
            net.add_rule(
                RuleId(1),
                &sales_clerk_cond(&cat),
                &VirtualPolicy::AllStored,
                &cat,
            )
            .unwrap();
            net.prime(RuleId(1), &cat).unwrap();
            net
        };
        let mut indexed = build(true);
        let mut nested = build(false);
        for i in 0..12 {
            let (tid, t) = insert_emp(&cat, &format!("e{i}"), 40_000.0, 1 + (i % 3), 7);
            indexed
                .process_token(&append_token(tid, t.clone()), &cat)
                .unwrap();
            nested.process_token(&append_token(tid, t), &cat).unwrap();
        }
        // identical match state either way
        assert_eq!(
            indexed.pnode(RuleId(1)).unwrap().len(),
            nested.pnode(RuleId(1)).unwrap().len()
        );
        assert!(!indexed.pnode(RuleId(1)).unwrap().is_empty());
        let si = indexed.stats();
        let sn = nested.stats();
        // the indexed net probed buckets instead of enumerating memories
        assert!(si.index_probes > 0);
        assert!(si.index_hits > 0);
        assert!(si.indexed_candidates > 0);
        assert_eq!(sn.index_probes, 0, "indexing off never probes");
        assert_eq!(sn.indexed_candidates, 0);
        assert!(
            si.stored_join_candidates < sn.stored_join_candidates,
            "bucket probes must serve fewer candidates than full scans \
             ({} vs {})",
            si.stored_join_candidates,
            sn.stored_join_candidates
        );
        // every candidate is accounted to exactly one of the two paths
        for s in [&si, &sn] {
            assert_eq!(
                s.indexed_candidates + s.scanned_candidates,
                s.stored_join_candidates + s.virtual_join_candidates
            );
        }
    }

    #[test]
    fn null_join_key_matches_nothing_indexed_or_not() {
        // SQL semantics: Null = anything is false, so an emp with a Null
        // dno joins no dept — with or without the join index (a Null probe
        // key short-circuits to the empty bucket).
        let cat = paper_catalog();
        populate_sales_clerk(&cat);
        for indexing in [true, false] {
            let mut net = Network::new();
            net.set_join_indexing(indexing);
            let rc = cond(&cat, None, "emp.sal > 30000 and emp.dno = dept.dno", &[]);
            net.add_rule(RuleId(1), &rc, &VirtualPolicy::AllStored, &cat)
                .unwrap();
            net.prime(RuleId(1), &cat).unwrap();
            let rel = cat.get("emp").unwrap();
            let tid = rel
                .borrow_mut()
                .insert(vec![
                    "nil".into(),
                    30i64.into(),
                    90_000.0.into(),
                    Value::Null,
                    7i64.into(),
                ])
                .unwrap();
            let t = rel.borrow().get(tid).cloned().unwrap();
            net.process_token(&append_token(tid, t), &cat).unwrap();
            assert_eq!(
                net.pnode(RuleId(1)).unwrap().len(),
                0,
                "indexing={indexing}"
            );
            rel.borrow_mut().delete(tid).unwrap();
        }
    }

    #[test]
    fn join_is_zero_copy_from_relation_to_pnode() {
        // A matched instantiation's tuples must share storage with the base
        // relation — the whole path (relation → token → α-memory → β-join →
        // P-node) moves `Arc`s, never values.
        let cat = paper_catalog();
        populate_sales_clerk(&cat);
        let mut net = Network::new();
        net.add_rule(
            RuleId(1),
            &sales_clerk_cond(&cat),
            &VirtualPolicy::AllStored,
            &cat,
        )
        .unwrap();
        net.prime(RuleId(1), &cat).unwrap();
        let (tid, t) = insert_emp(&cat, "Sue", 45_000.0, 1, 7);
        net.process_token(&append_token(tid, t), &cat).unwrap();
        let pnode = net.pnode(RuleId(1)).unwrap();
        assert_eq!(pnode.len(), 1);
        let row = &pnode.rows()[0];
        for (col, bound) in pnode.cols().iter().zip(row) {
            let rel = cat.get(&col.rel).unwrap();
            let rel_b = rel.borrow();
            let base = rel_b.get(bound.tid.unwrap()).unwrap();
            assert!(
                bound.tuple.shares_storage(base),
                "{} binding was deep-copied",
                col.var
            );
        }
    }

    /// Sorted debug renderings of a rule's P-node rows — the
    /// order-insensitive comparison the equivalence oracle uses.
    fn pnode_set(net: &Network, id: RuleId) -> Vec<String> {
        let mut rows: Vec<String> = net
            .pnode(id)
            .unwrap()
            .rows()
            .iter()
            .map(|r| {
                r.iter()
                    .map(|b| format!("{:?}/{:?}", b.tid, b.tuple))
                    .collect::<Vec<_>>()
                    .join("|")
            })
            .collect();
        rows.sort();
        rows
    }

    #[test]
    fn parallel_batch_matches_sequential_self_join() {
        for policy in [
            VirtualPolicy::AllStored,
            VirtualPolicy::AllVirtual,
            VirtualPolicy::ExplicitVars(HashSet::from([0])),
        ] {
            for threads in [1, 2, 4] {
                let cat = paper_catalog();
                let mut seq = Network::new();
                let mut par = Network::new();
                par.set_parallel_match(true);
                par.set_match_threads(threads);
                for net in [&mut seq, &mut par] {
                    net.add_rule(RuleId(1), &self_join_cond(&cat), &policy, &cat)
                        .unwrap();
                    net.prime(RuleId(1), &cat).unwrap();
                }
                // one batch of appends sharing a dno: heavy self-joining,
                // so every seed's visibility stamp matters
                let tokens: Vec<Token> = (0..16)
                    .map(|i| {
                        let (tid, t) = insert_emp(&cat, &format!("e{i}"), i as f64, 5, 1);
                        append_token(tid, t)
                    })
                    .collect();
                seq.process_batch(&tokens, &cat).unwrap();
                par.process_batch(&tokens, &cat).unwrap();
                assert_eq!(
                    pnode_set(&seq, RuleId(1)),
                    pnode_set(&par, RuleId(1)),
                    "policy {policy:?}, {threads} threads"
                );
                // identical work accounting, not just identical results
                assert_eq!(seq.stats().join_probes, par.stats().join_probes);
                assert_eq!(seq.stats().pnode_inserts, par.stats().pnode_inserts);
                assert_eq!(seq.stats().alpha_tests, par.stats().alpha_tests);
            }
        }
    }

    #[test]
    fn parallel_shard_order_does_not_change_results() {
        let mut reference: Option<Vec<String>> = None;
        for seed in [None, Some(1u64), Some(0xDEAD_BEEF), Some(42)] {
            let cat2 = paper_catalog();
            let mut net = Network::new();
            net.set_parallel_match(true);
            net.set_match_threads(3);
            net.set_shard_seed(seed);
            net.add_rule(
                RuleId(1),
                &self_join_cond(&cat2),
                &VirtualPolicy::AllStored,
                &cat2,
            )
            .unwrap();
            net.prime(RuleId(1), &cat2).unwrap();
            let tokens: Vec<Token> = (0..24)
                .map(|i| {
                    let (tid, t) = insert_emp(&cat2, &format!("e{i}"), i as f64, 5, 1);
                    append_token(tid, t)
                })
                .collect();
            net.process_batch(&tokens, &cat2).unwrap();
            let rows = pnode_set(&net, RuleId(1));
            match &reference {
                None => reference = Some(rows),
                Some(r) => assert_eq!(r, &rows, "shard seed {seed:?} changed results"),
            }
        }
    }

    #[test]
    fn parallel_mixed_batch_with_deletes_matches_sequential() {
        let cat = paper_catalog();
        populate_sales_clerk(&cat);
        let mut seq = Network::new();
        let mut par = Network::new();
        par.set_parallel_match(true);
        par.set_match_threads(4);
        for net in [&mut seq, &mut par] {
            net.add_rule(
                RuleId(1),
                &sales_clerk_cond(&cat),
                &VirtualPolicy::AllStored,
                &cat,
            )
            .unwrap();
            net.prime(RuleId(1), &cat).unwrap();
        }
        // appends interleaved with deletes: deletes act as barriers
        // between parallel runs
        let mut tokens = Vec::new();
        let mut victims = Vec::new();
        for i in 0..12 {
            let (tid, t) = insert_emp(&cat, &format!("w{i}"), 40_000.0 + i as f64, 1, 7);
            tokens.push(append_token(tid, t.clone()));
            if i % 3 == 0 {
                victims.push((tid, t));
            }
        }
        for (tid, t) in victims {
            cat.get("emp").unwrap().borrow_mut().delete(tid).unwrap();
            tokens.push(Token::minus("emp", tid, t, EventSpecifier::Delete));
        }
        seq.process_batch(&tokens, &cat).unwrap();
        par.process_batch(&tokens, &cat).unwrap();
        assert_eq!(pnode_set(&seq, RuleId(1)), pnode_set(&par, RuleId(1)));
    }
}
