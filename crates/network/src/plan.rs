//! Compile-time join planning, shared by the A-TREAT network
//! ([`crate::treat`]) and the indexed Rete network ([`crate::rete`]).
//!
//! Both networks face the same question at rule-compile time: which join
//! conjuncts can an index answer, and what key does the probe need? The
//! answer is independent of how the network stores its memories — TREAT
//! probes α-memories from a dynamically-ordered partial row, Rete probes
//! α-memories and β-memories along its fixed variable order — so the
//! decomposition lives here: per-conjunct variable bitmasks, the equi-probe
//! extraction of §4.2, and the composite/band access-path specs built from
//! them.

use crate::alpha::BandShape;
use ariel_query::RExpr;

/// One composite equi-probe access path for a variable: once every
/// variable in `others_mask` is bound, the equi-conjuncts listed in
/// `conjuncts` pin the variable's `attrs` tuple to the values of
/// `key_exprs` over the partial row, so a composite hash index answers all
/// of them with a single probe.
#[derive(Debug)]
pub(crate) struct CompositeSpec {
    /// Variables the key expressions read (the probed variable excluded).
    pub(crate) others_mask: u64,
    /// Indexed attribute positions, ascending — must equal a registered
    /// index's attribute tuple exactly.
    pub(crate) attrs: Vec<usize>,
    /// Key expression per attribute, parallel to `attrs`.
    pub(crate) key_exprs: Vec<RExpr>,
    /// Conjunct indices the probe guarantees (skipped on the retest path).
    pub(crate) conjuncts: Vec<usize>,
}

/// One band-probe access path for a variable: the `(lower, upper)`
/// conjunct pair constrains `key_expr`'s value to each entry's
/// `(shape.lo_attr .. shape.hi_attr)` span, so an interval index answers
/// both with one stabbing query.
#[derive(Debug)]
pub(crate) struct BandSpec {
    /// Variables `key_expr` reads (the probed variable excluded).
    pub(crate) others_mask: u64,
    /// Which attributes bound the span, and how strictly.
    pub(crate) shape: BandShape,
    /// The stabbed expression over the other variables.
    pub(crate) key_expr: RExpr,
    /// The two conjunct indices the stab guarantees (lower, upper).
    pub(crate) conjuncts: [usize; 2],
}

/// Compile-time join metadata, hoisted out of the per-token join path (the
/// seed recomputed the bound-variable sets and applicable-conjunct lists
/// for every probing token).
#[derive(Debug)]
pub(crate) struct JoinPlan {
    /// Bitmask of the variables each join conjunct references, parallel to
    /// the rule's join-conjunct list. Rules are capped at 64 tuple
    /// variables.
    pub(crate) conjunct_vars: Vec<u64>,
    /// `equi[var][i]` is `Some((attr, key_expr))` when join conjunct `i` is
    /// an equi-conjunct `var.attr = <expr over other variables>` — the key
    /// extraction behind §4.2's base-relation index probes on virtual
    /// nodes (which only have single-attribute indexes to work with).
    pub(crate) equi: Vec<Vec<Option<(usize, RExpr)>>>,
    /// Composite equi access paths per variable, widest key first — the
    /// probe picks the first spec whose `others_mask` is fully bound and
    /// whose attribute tuple the memory indexes.
    pub(crate) composite: Vec<Vec<CompositeSpec>>,
    /// Band access paths per variable.
    pub(crate) bands: Vec<Vec<BandSpec>>,
}

impl JoinPlan {
    /// Compile the plan for a rule's multi-variable conjuncts. `composite`
    /// mirrors the network's composite-key switch: off, every equi-conjunct
    /// becomes its own single-attribute access path.
    pub(crate) fn compile(join_conjuncts: &[RExpr], nvars: usize, composite: bool) -> JoinPlan {
        debug_assert!(nvars <= 64, "join-plan bitmasks cap rules at 64 variables");
        let conjunct_vars: Vec<u64> = join_conjuncts
            .iter()
            .map(|c| c.vars_used().iter().fold(0u64, |m, v| m | (1 << v)))
            .collect();
        let equi: Vec<Vec<Option<(usize, RExpr)>>> = (0..nvars)
            .map(|v| join_conjuncts.iter().map(|c| equi_probe(c, v)).collect())
            .collect();
        JoinPlan {
            composite: (0..nvars)
                .map(|v| compile_composite_specs(&equi[v], &conjunct_vars, v, composite))
                .collect(),
            bands: (0..nvars)
                .map(|v| compile_band_specs(join_conjuncts, &conjunct_vars, v))
                .collect(),
            conjunct_vars,
            equi,
        }
    }
}

/// If `c` is `vars[var].attr = <expr over other variables>` (either side),
/// return the attribute position and the key expression — the "substituting
/// constants from a token in place of variables" optimization of §4.2.
pub(crate) fn equi_probe(c: &RExpr, var: usize) -> Option<(usize, RExpr)> {
    let RExpr::Binary {
        op: ariel_query::BinOp::Eq,
        left,
        right,
    } = c
    else {
        return None;
    };
    if let RExpr::Attr { var: v, attr } = **left {
        if v == var && !right.vars_used().contains(&var) {
            return Some((attr, (**right).clone()));
        }
    }
    if let RExpr::Attr { var: v, attr } = **right {
        if v == var && !left.vars_used().contains(&var) {
            return Some((attr, (**left).clone()));
        }
    }
    None
}

/// Compile a variable's composite equi access paths. Conjuncts are grouped
/// by the variable set their key expressions read; each group fuses into
/// one composite key answerable by a single probe once those variables are
/// bound. With more than one group, the *prefix-closed unions* of the
/// groups are added too: groups are ordered by how early a join order can
/// bind them (fewest key variables first), and each cumulative union
/// becomes a wider spec — so an intermediate binding order that has bound
/// several groups probes one wide key instead of falling back to the
/// widest single group. The final union covers every group: once
/// everything is bound, one probe answers every equi-conjunct at once.
/// Enumeration stays linear in the number of groups (prefix-closed, not
/// the exponential power set). With `composite` off, every conjunct
/// compiles to its own single-attribute spec — the probe-then-retest
/// behaviour the joins bench ablates against.
pub(crate) fn compile_composite_specs(
    equi_v: &[Option<(usize, RExpr)>],
    conjunct_vars: &[u64],
    var: usize,
    composite: bool,
) -> Vec<CompositeSpec> {
    let vbit = 1u64 << var;
    let parts: Vec<(usize, usize, &RExpr, u64)> = equi_v
        .iter()
        .enumerate()
        .filter_map(|(i, spec)| {
            let (attr, key) = spec.as_ref()?;
            Some((i, *attr, key, conjunct_vars[i] & !vbit))
        })
        .collect();
    if !composite {
        return parts
            .into_iter()
            .map(|(i, attr, key, others)| CompositeSpec {
                others_mask: others,
                attrs: vec![attr],
                key_exprs: vec![key.clone()],
                conjuncts: vec![i],
            })
            .collect();
    }
    type Group<'a> = (u64, Vec<(usize, usize, &'a RExpr)>);
    let mut groups: Vec<Group<'_>> = Vec::new();
    for (i, attr, key, others) in parts {
        match groups.iter_mut().find(|(m, _)| *m == others) {
            Some((_, g)) => g.push((i, attr, key)),
            None => groups.push((others, vec![(i, attr, key)])),
        }
    }
    let mut specs: Vec<CompositeSpec> = groups
        .iter()
        .map(|(mask, g)| build_composite_spec(*mask, g))
        .collect();
    if groups.len() > 1 {
        // prefix-closed unions along the binding order: cheapest-to-bind
        // groups first (fewest key variables, then lowest mask), one spec
        // per cumulative union
        let mut ordered: Vec<&Group<'_>> = groups.iter().collect();
        ordered.sort_by_key(|(m, _)| (m.count_ones(), *m));
        let mut mask = ordered[0].0;
        let mut acc = ordered[0].1.clone();
        for (m, g) in ordered.into_iter().skip(1) {
            mask |= m;
            acc.extend(g.iter().copied());
            specs.push(build_composite_spec(mask, &acc));
        }
    }
    // widest key first, so the probe prefers the narrowest buckets
    specs.sort_by_key(|s| std::cmp::Reverse(s.attrs.len()));
    specs
}

/// Fuse one group of equi-conjuncts into a composite spec. Attributes are
/// sorted ascending to make the key tuple canonical; a second conjunct on
/// an already-keyed attribute is left to the retest path (it stays out of
/// `conjuncts`, so the conjunct-test loop still checks it).
pub(crate) fn build_composite_spec(
    others_mask: u64,
    parts: &[(usize, usize, &RExpr)],
) -> CompositeSpec {
    let mut parts = parts.to_vec();
    parts.sort_by_key(|&(_, attr, _)| attr);
    let mut spec = CompositeSpec {
        others_mask,
        attrs: Vec::new(),
        key_exprs: Vec::new(),
        conjuncts: Vec::new(),
    };
    for (i, attr, key) in parts {
        if spec.attrs.last() == Some(&attr) {
            continue;
        }
        spec.attrs.push(attr);
        spec.key_exprs.push(key.clone());
        spec.conjuncts.push(i);
    }
    spec
}

/// If `c` is an inequality between `vars[var].attr` and an expression over
/// other variables, classify it as a band half: `(attr, key_expr,
/// is_lower, strict)`, where `is_lower` means the entry's attribute bounds
/// the key from below (`var.attr < key` / `var.attr <= key`, either
/// writing order).
pub(crate) fn band_half(c: &RExpr, var: usize) -> Option<(usize, &RExpr, bool, bool)> {
    use ariel_query::BinOp;
    let RExpr::Binary { op, left, right } = c else {
        return None;
    };
    let (strict, lower_when_var_left) = match op {
        BinOp::Lt => (true, true),
        BinOp::Le => (false, true),
        BinOp::Gt => (true, false),
        BinOp::Ge => (false, false),
        _ => return None,
    };
    if let RExpr::Attr { var: v, attr } = **left {
        if v == var && !right.vars_used().contains(&var) {
            return Some((attr, &**right, lower_when_var_left, strict));
        }
    }
    if let RExpr::Attr { var: v, attr } = **right {
        if v == var && !left.vars_used().contains(&var) {
            return Some((attr, &**left, !lower_when_var_left, strict));
        }
    }
    None
}

/// Compile a variable's band access paths: every (lower, upper) pair of
/// inequality conjuncts bracketing the *same* key expression — structural
/// `RExpr` equality — becomes one interval-index stab. The classic shape
/// is the paper's `a.lo < x and x <= a.hi` band join.
pub(crate) fn compile_band_specs(
    join_conjuncts: &[RExpr],
    conjunct_vars: &[u64],
    var: usize,
) -> Vec<BandSpec> {
    let vbit = 1u64 << var;
    let halves: Vec<(usize, usize, &RExpr, bool, bool)> = join_conjuncts
        .iter()
        .enumerate()
        .filter_map(|(i, c)| {
            band_half(c, var).map(|(attr, key, lower, strict)| (i, attr, key, lower, strict))
        })
        .collect();
    let mut specs = Vec::new();
    for &(i_lo, lo_attr, lo_key, is_lower, lo_strict) in &halves {
        if !is_lower {
            continue;
        }
        let upper = halves
            .iter()
            .copied()
            .find(|&(i_hi, _, hi_key, hi_is_lower, _)| {
                !hi_is_lower && i_hi != i_lo && hi_key == lo_key
            });
        let Some((i_hi, hi_attr, _, _, hi_strict)) = upper else {
            continue;
        };
        specs.push(BandSpec {
            others_mask: conjunct_vars[i_lo] & !vbit,
            shape: BandShape {
                lo_attr,
                lo_strict,
                hi_attr,
                hi_strict,
            },
            key_expr: lo_key.clone(),
            conjuncts: [i_lo, i_hi],
        });
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariel_query::RExpr;

    /// `probe.a<attr> = key.x` over resolved variable indices: build via the
    /// raw RExpr shape (no catalog needed at this layer).
    fn eq_conjunct(probe_var: usize, attr: usize, key_var: usize) -> RExpr {
        RExpr::Binary {
            op: ariel_query::BinOp::Eq,
            left: Box::new(RExpr::Attr {
                var: probe_var,
                attr,
            }),
            right: Box::new(RExpr::Attr {
                var: key_var,
                attr: 0,
            }),
        }
    }

    /// The probe-selection rule of `find_composite_probe`: first spec (in
    /// widest-first order) whose key variables are all bound.
    fn select(specs: &[CompositeSpec], bound: u64) -> Option<&CompositeSpec> {
        specs.iter().find(|s| s.others_mask & !bound == 0)
    }

    #[test]
    fn prefix_unions_cover_intermediate_binding_orders() {
        // var 3 is probed; three equi-conjuncts key it on vars 0, 1, 2:
        //   v3.a0 = v0.x,  v3.a1 = v1.x,  v3.a2 = v2.x
        let conjuncts = [
            eq_conjunct(3, 0, 0),
            eq_conjunct(3, 1, 1),
            eq_conjunct(3, 2, 2),
        ];
        let plan = JoinPlan::compile(&conjuncts, 4, true);
        let specs = &plan.composite[3];
        // 3 per-group specs + 2 cumulative unions ({v0,v1}, {v0,v1,v2})
        assert_eq!(specs.len(), 5);
        assert!(specs
            .iter()
            .any(|s| s.others_mask == 0b011 && s.attrs == [0, 1]));

        // regression: with vars 0 and 1 bound (but not 2), the probe used
        // to fall back to a single-attribute group spec; the prefix union
        // now serves the wider two-attribute key
        let chosen = select(specs, 0b011).expect("an applicable spec");
        assert_eq!(chosen.attrs, [0, 1], "the wider partial-union spec wins");
        assert_eq!(chosen.conjuncts, [0, 1]);

        // everything bound → the full union (all three attributes)
        let full = select(specs, 0b111).unwrap();
        assert_eq!(full.attrs, [0, 1, 2]);
        // nothing but var 2 bound → its single-group spec
        let single = select(specs, 0b100).unwrap();
        assert_eq!(single.attrs, [2]);
    }

    #[test]
    fn single_group_stays_minimal() {
        // both conjuncts read var 0 only → one group, no unions
        let conjuncts = [eq_conjunct(1, 0, 0), eq_conjunct(1, 1, 0)];
        let plan = JoinPlan::compile(&conjuncts, 2, true);
        assert_eq!(plan.composite[1].len(), 1);
        assert_eq!(plan.composite[1][0].attrs, [0, 1]);
    }

    #[test]
    fn band_pair_compiles_to_one_spec() {
        // `a.lo < b.sal and b.sal <= a.hi` resolved by hand:
        // a = var 0 (attrs lo=0, hi=1), b = var 1 (sal=0)
        let lower = RExpr::Binary {
            op: ariel_query::BinOp::Lt,
            left: Box::new(RExpr::Attr { var: 0, attr: 0 }),
            right: Box::new(RExpr::Attr { var: 1, attr: 0 }),
        };
        let upper = RExpr::Binary {
            op: ariel_query::BinOp::Le,
            left: Box::new(RExpr::Attr { var: 1, attr: 0 }),
            right: Box::new(RExpr::Attr { var: 0, attr: 1 }),
        };
        let plan = JoinPlan::compile(&[lower, upper], 2, true);
        let bands = &plan.bands[0];
        assert_eq!(bands.len(), 1);
        assert_eq!(bands[0].others_mask, 0b10);
        let s = &bands[0].shape;
        assert!((s.lo_attr, s.lo_strict, s.hi_attr, s.hi_strict) == (0, true, 1, false));
    }
}
