//! Flight-recorder tracing: a bounded ring buffer of structured causal
//! trace events (the third observability tier, next to the always-on
//! counters and the opt-in timing histograms of [`crate::obs`]).
//!
//! The recorder answers *why* questions the aggregate tiers cannot: which
//! command emitted which token, which tokens matched which α-memories,
//! which TIDs joined into which P-node instantiation, which instantiation
//! a firing consumed, and which firing's action cascaded into the next
//! transition — each event stamped with a global sequence number, the
//! transition id it occurred in, and its cascade depth.
//!
//! Design mirrors the timing tier's gating discipline: the recorder lives
//! in the network as an `Option<TraceRecorder>` (absent by default, so
//! tracing off costs one pointer-width branch per hook), uses interior
//! mutability (one `Mutex` around all recorder state) because the join
//! paths only hold `&self`, and appends in `O(1)` to a fixed-capacity
//! [`VecDeque`] ring — when full, the oldest record is evicted and counted
//! in [`TraceRecorder::dropped`], so memory stays bounded no matter how
//! long tracing runs. A single coarse lock is deliberate: causal event
//! order cannot survive parallel interleaving, so the engine falls back to
//! the sequential match path whenever tracing is active (see
//! `docs/CONCURRENCY.md`) and the lock is never contended.
//!
//! The engine stamps transition context (id, cascade depth, causing
//! firing) onto the recorder via [`TraceRecorder::begin_transition`];
//! network instrumentation then records match-path events without any
//! knowledge of the recognize-act cycle. Provenance links are sequence
//! numbers: a [`TraceEventKind::Instantiation`] points at the token event
//! that produced it, a [`TraceEventKind::Firing`] at the firing that
//! caused its transition, and a cascaded
//! [`TraceEventKind::TransitionBegin`] back at the firing whose action
//! emitted its tokens.

use std::collections::{HashMap, VecDeque};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

/// Default ring capacity when tracing is enabled without an explicit
/// `\trace limit`.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// What started a transition: a top-level user command block, or the
/// action of a rule firing (a cascade).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceSource {
    /// A user command block (rendered ARL text, `;`-joined).
    Command(String),
    /// The action of a rule firing.
    RuleAction {
        /// Rule id whose action ran.
        rule: u64,
        /// Sequence number of the [`TraceEventKind::Firing`] record.
        firing: u64,
    },
}

/// One structured trace event. Rules are identified by raw id (the
/// engine layer maps ids back to names when rendering); relations by
/// name; tuples by TID.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A transition started (tick advanced, a token batch follows).
    TransitionBegin {
        /// What caused the transition.
        source: TraceSource,
    },
    /// The transition's token batch finished propagating.
    TransitionEnd {
        /// Net-effect tokens processed in the transition.
        tokens: u64,
    },
    /// A net-effect token entered the network.
    TokenEmitted {
        /// Token sign (`+`, `-`, `Δ+`, `Δ-`).
        kind: String,
        /// Relation the token belongs to.
        rel: String,
        /// Tuple id the token refers to.
        tid: u64,
        /// Rendered token (sign, relation, tid, tuple, event).
        desc: String,
    },
    /// The selection network was probed for a token.
    SelnetProbe {
        /// Relation probed.
        rel: String,
        /// α-node candidates returned by the interval skip list.
        candidates: u64,
    },
    /// A token passed an α-node's full selection predicate.
    AlphaPass {
        /// Rule owning the α-node.
        rule: u64,
        /// Variable (condition slot) of the α-node.
        var: usize,
    },
    /// A virtual α-memory materialized its contents from the base
    /// relation during a join.
    VirtualScan {
        /// Rule owning the virtual node.
        rule: u64,
        /// Variable scanned.
        var: usize,
        /// Base-relation tuples scanned.
        scanned: u64,
        /// Tuples that passed the selection predicate.
        served: u64,
    },
    /// A stored memory (α in TREAT, β in Rete) was probed during a join.
    BetaProbe {
        /// Rule owning the probed memory.
        rule: u64,
        /// Variable (TREAT α) or join level (Rete β) probed.
        var: usize,
        /// Join candidates the probe produced.
        candidates: u64,
        /// Whether a hash/range index served the probe (vs enumeration).
        indexed: bool,
    },
    /// A complete variable binding reached the rule's P-node.
    Instantiation {
        /// Rule whose P-node grew.
        rule: u64,
        /// TID per variable, in rule variable order (`None` for deleted
        /// tuples and `previous` bindings that no longer exist).
        tids: Vec<Option<u64>>,
        /// Sequence number of the [`TraceEventKind::TokenEmitted`] that
        /// triggered the join (`None` when primed outside a transition).
        token: Option<u64>,
    },
    /// The agenda selected a rule among the eligible set.
    AgendaSchedule {
        /// Rule selected to fire.
        rule: u64,
        /// Number of rules that had non-empty P-nodes.
        eligible: u64,
    },
    /// A rule fired: its P-node was drained and its action executed.
    Firing {
        /// Rule that fired.
        rule: u64,
        /// Instantiations consumed (P-node rows drained).
        instantiations: u64,
        /// Sequence number of the [`TraceEventKind::Firing`] whose
        /// cascade produced this firing's instantiations (`None` when
        /// triggered directly by a user command).
        cause: Option<u64>,
    },
    /// A firing's action produced net-effect tokens (a cascade).
    CascadeDelta {
        /// Sequence number of the causing [`TraceEventKind::Firing`].
        firing: u64,
        /// Tokens the action's transition emitted.
        tokens: u64,
    },
}

impl TraceEventKind {
    /// Stable short name of the event kind, used by `\trace show`, the
    /// Chrome export and the bench event-count table.
    pub fn kind_name(&self) -> &'static str {
        match self {
            TraceEventKind::TransitionBegin { .. } => "transition-begin",
            TraceEventKind::TransitionEnd { .. } => "transition-end",
            TraceEventKind::TokenEmitted { .. } => "token",
            TraceEventKind::SelnetProbe { .. } => "selnet-probe",
            TraceEventKind::AlphaPass { .. } => "alpha-pass",
            TraceEventKind::VirtualScan { .. } => "virtual-scan",
            TraceEventKind::BetaProbe { .. } => "beta-probe",
            TraceEventKind::Instantiation { .. } => "instantiation",
            TraceEventKind::AgendaSchedule { .. } => "agenda-schedule",
            TraceEventKind::Firing { .. } => "firing",
            TraceEventKind::CascadeDelta { .. } => "cascade-delta",
        }
    }
}

/// A recorded trace event with its stamps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Global sequence number (monotone across the whole engine run,
    /// never reset by eviction — gaps reveal wrapped history).
    pub seq: u64,
    /// Transition id (the engine tick) the event occurred in.
    pub transition: u64,
    /// Cascade depth of that transition (0 = user command).
    pub depth: u32,
    /// Nanoseconds since the recorder was created (monotone).
    pub ts_ns: u64,
    /// Measured duration, when the timing tier supplied one (rule-action
    /// execution time on [`TraceEventKind::Firing`]).
    pub dur_ns: Option<u64>,
    /// The event itself.
    pub kind: TraceEventKind,
}

/// Per-rule provenance carried from the most recent instantiation to the
/// firing that consumes it.
#[derive(Debug, Clone, Copy)]
struct RuleCtx {
    depth: u32,
    transition: u64,
    cause: Option<u64>,
}

/// All mutable recorder state, behind the recorder's single mutex.
#[derive(Debug)]
struct TraceState {
    events: VecDeque<TraceRecord>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
    transition: u64,
    depth: u32,
    cause: Option<u64>,
    current_token: Option<u64>,
    rule_ctx: HashMap<u64, RuleCtx>,
}

impl TraceState {
    /// Append with eviction; assumes `seq` was already assigned.
    fn push(&mut self, record: TraceRecord) {
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(record);
    }
}

/// Bounded ring-buffer flight recorder. See the module docs for the
/// design; all methods take `&self` (interior mutability) because the
/// network's join paths record through shared references.
#[derive(Debug)]
pub struct TraceRecorder {
    state: Mutex<TraceState>,
    epoch: Instant,
}

impl TraceRecorder {
    /// Create a recorder holding at most `capacity` events (clamped to
    /// at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRecorder {
            state: Mutex::new(TraceState {
                events: VecDeque::with_capacity(capacity.min(1024)),
                capacity,
                next_seq: 0,
                dropped: 0,
                transition: 0,
                depth: 0,
                cause: None,
                current_token: None,
                rule_ctx: HashMap::new(),
            }),
            epoch: Instant::now(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, TraceState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.lock().capacity
    }

    /// Resize the ring, evicting oldest events if shrinking.
    pub fn set_capacity(&self, capacity: usize) {
        let capacity = capacity.max(1);
        let mut st = self.lock();
        st.capacity = capacity;
        while st.events.len() > capacity {
            st.events.pop_front();
            st.dropped += 1;
        }
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().events.is_empty()
    }

    /// Events evicted so far because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Discard all retained events (sequence numbers keep running so
    /// ordering stays global across clears).
    pub fn clear(&self) {
        let mut st = self.lock();
        st.events.clear();
        st.dropped = 0;
    }

    /// Stamp the context every subsequent event inherits: transition id,
    /// cascade depth, and the firing (by sequence number) whose action
    /// started the transition (`None` for user commands). Also resets the
    /// current-token link.
    pub fn begin_transition(&self, transition: u64, depth: u32, cause: Option<u64>) {
        let mut st = self.lock();
        st.transition = transition;
        st.depth = depth;
        st.cause = cause;
        st.current_token = None;
    }

    /// Current transition id (as stamped by [`Self::begin_transition`]).
    pub fn transition(&self) -> u64 {
        self.lock().transition
    }

    /// Current cascade depth.
    pub fn depth(&self) -> u32 {
        self.lock().depth
    }

    /// Record an event with the current context. Returns its sequence
    /// number. `O(1)`: one ring append, plus bookkeeping for the
    /// provenance links (token events set the current-token link;
    /// instantiations remember their context per rule so the eventual
    /// firing inherits the right depth and cascade parent).
    pub fn record(&self, kind: TraceEventKind) -> u64 {
        self.record_with_dur(kind, None)
    }

    /// [`Self::record`] with a measured duration attached (used for rule
    /// firings when the timing tier is on).
    pub fn record_with_dur(&self, kind: TraceEventKind, dur_ns: Option<u64>) -> u64 {
        let mut st = self.lock();
        let seq = st.next_seq;
        st.next_seq += 1;
        match &kind {
            TraceEventKind::TokenEmitted { .. } => st.current_token = Some(seq),
            TraceEventKind::Instantiation { rule, .. } => {
                let ctx = RuleCtx {
                    depth: st.depth,
                    transition: st.transition,
                    cause: st.cause,
                };
                st.rule_ctx.insert(*rule, ctx);
            }
            _ => {}
        }
        let record = TraceRecord {
            seq,
            transition: st.transition,
            depth: st.depth,
            ts_ns: self.epoch.elapsed().as_nanos() as u64,
            dur_ns,
            kind,
        };
        st.push(record);
        seq
    }

    /// Record a P-node instantiation, linking it to the token event that
    /// triggered the join (the most recent [`TraceEventKind::TokenEmitted`]
    /// in this transition, if any).
    pub fn record_instantiation(&self, rule: u64, tids: Vec<Option<u64>>) -> u64 {
        let token = self.lock().current_token;
        self.record(TraceEventKind::Instantiation { rule, tids, token })
    }

    /// Record a rule firing. The firing's depth, transition, and cascade
    /// parent come from the rule's most recent instantiation (which may
    /// predate the current transition when several rules were eligible),
    /// falling back to the current context. Returns `(seq, depth)` so the
    /// engine can stamp the cascade transition it starts next.
    pub fn record_firing(&self, rule: u64, instantiations: u64, dur_ns: Option<u64>) -> (u64, u32) {
        let mut st = self.lock();
        let ctx = st.rule_ctx.get(&rule).copied();
        let (depth, transition, cause) = match ctx {
            Some(c) => (c.depth, c.transition, c.cause),
            None => (st.depth, st.transition, st.cause),
        };
        let seq = st.next_seq;
        st.next_seq += 1;
        let record = TraceRecord {
            seq,
            transition,
            depth,
            ts_ns: self.epoch.elapsed().as_nanos() as u64,
            dur_ns,
            kind: TraceEventKind::Firing {
                rule,
                instantiations,
                cause,
            },
        };
        st.push(record);
        (seq, depth)
    }

    /// Copy of the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.lock().events.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn token(i: u64) -> TraceEventKind {
        TraceEventKind::TokenEmitted {
            kind: "+".into(),
            rel: "emp".into(),
            tid: i,
            desc: format!("+emp t{i}"),
        }
    }

    #[test]
    fn ring_wraps_and_stays_bounded() {
        let tr = TraceRecorder::new(4);
        for i in 0..10 {
            tr.record(token(i));
        }
        assert_eq!(tr.len(), 4);
        assert_eq!(tr.dropped(), 6);
        let snap = tr.snapshot();
        // Oldest evicted, newest retained, sequence numbers global.
        assert_eq!(
            snap.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        // Timestamps are monotone.
        assert!(snap.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn shrinking_capacity_trims_oldest() {
        let tr = TraceRecorder::new(8);
        for i in 0..8 {
            tr.record(token(i));
        }
        tr.set_capacity(3);
        assert_eq!(tr.capacity(), 3);
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.snapshot()[0].seq, 5);
        assert_eq!(tr.dropped(), 5);
    }

    #[test]
    fn context_stamps_events() {
        let tr = TraceRecorder::new(16);
        tr.begin_transition(7, 2, Some(3));
        let seq = tr.record(token(1));
        let rec = &tr.snapshot()[0];
        assert_eq!((rec.seq, rec.transition, rec.depth), (seq, 7, 2));
    }

    #[test]
    fn instantiation_links_token_and_firing_inherits_context() {
        let tr = TraceRecorder::new(16);
        tr.begin_transition(3, 1, Some(11));
        let tok = tr.record(token(5));
        tr.record_instantiation(42, vec![Some(5), None]);
        // A later transition must not disturb the firing's provenance.
        tr.begin_transition(4, 2, Some(99));
        let (seq, depth) = tr.record_firing(42, 1, None);
        let snap = tr.snapshot();
        let inst = &snap[1];
        assert_eq!(
            inst.kind,
            TraceEventKind::Instantiation {
                rule: 42,
                tids: vec![Some(5), None],
                token: Some(tok),
            }
        );
        let firing = snap.iter().find(|r| r.seq == seq).unwrap();
        assert_eq!(depth, 1, "firing depth follows the instantiation");
        assert_eq!((firing.transition, firing.depth), (3, 1));
        assert_eq!(
            firing.kind,
            TraceEventKind::Firing {
                rule: 42,
                instantiations: 1,
                cause: Some(11),
            }
        );
    }

    #[test]
    fn clear_keeps_sequence_running() {
        let tr = TraceRecorder::new(4);
        tr.record(token(0));
        tr.record(token(1));
        tr.clear();
        assert!(tr.is_empty());
        assert_eq!(tr.dropped(), 0);
        let seq = tr.record(token(2));
        assert_eq!(seq, 2, "sequence numbers stay global across clears");
    }
}
