//! Classic Rete network (Forgy 1982) — the comparison baseline.
//!
//! Rete differs from TREAT by materializing **β-memories**: one per join
//! level, holding the partial matches of the first `i` tuple variables.
//! Insertions do incremental join work against the next α-memory only;
//! deletions walk the β-memories removing partials by TID. The price is the
//! β-memory state itself — the storage the paper's virtual-memory argument
//! (§4.2, §8: "virtual α- *and β-* memory nodes") is about.
//!
//! This implementation covers pattern-based conditions (what the paper's
//! Figs. 9–11 exercise); event and transition conditions are A-TREAT
//! features ([`crate::treat`]).
//!
//! §1 of the paper notes the virtual-memory-node modification "could also
//! be used in the Rete algorithm" — [`ReteNetwork::with_policy`] does
//! exactly that: under a [`VirtualPolicy`], eligible α-memories store only
//! their predicate, and left-activations join through the base relation
//! (with the same pending/ProcessedMemories visibility discipline as
//! [`crate::treat`]).

use crate::alpha::{AlphaEntry, AlphaId, AlphaKind, AlphaNode, RuleId};
use crate::pred::SelectionPredicate;
use crate::selnet::SelectionNetwork;
use crate::token::Token;
use crate::treat::VirtualPolicy;
use ariel_query::{
    eval_pred, BoundVar, Pnode, PnodeCol, QueryError, QueryResult, RExpr, ResolvedCondition, Row,
};
use ariel_storage::{Catalog, Tid};
use std::collections::{BTreeMap, HashMap, HashSet};

/// A partial match over the first `level + 1` variables.
type Partial = Vec<BoundVar>;

#[derive(Debug, Default)]
struct BetaMemory {
    partials: Vec<Partial>,
}

impl BetaMemory {
    fn heap_size(&self) -> usize {
        self.partials
            .iter()
            .map(|p| p.iter().map(BoundVar::heap_size).sum::<usize>())
            .sum()
    }
}

#[derive(Debug)]
struct ReteRule {
    alphas: Vec<AlphaId>,
    /// `join_conjuncts[i]`: conjuncts evaluable once vars `0..=i` are bound
    /// and involving var `i`.
    join_conjuncts: Vec<Vec<RExpr>>,
    /// `betas[i]`: partial matches over vars `0..=i`; the last level feeds
    /// the P-node.
    betas: Vec<BetaMemory>,
    pnode: Pnode,
}

/// A Rete network over pattern-based rule conditions.
#[derive(Debug)]
pub struct ReteNetwork {
    selnet: SelectionNetwork,
    alphas: Vec<Option<AlphaNode>>,
    rules: BTreeMap<u64, ReteRule>,
    policy: VirtualPolicy,
}

impl Default for ReteNetwork {
    fn default() -> Self {
        Self::new()
    }
}

impl ReteNetwork {
    /// New empty network with every α-memory stored (classic Rete).
    pub fn new() -> Self {
        Self::with_policy(VirtualPolicy::AllStored)
    }

    /// New empty network whose eligible α-memories follow `policy` — §1's
    /// "could also be used in the Rete algorithm".
    pub fn with_policy(policy: VirtualPolicy) -> Self {
        ReteNetwork {
            selnet: SelectionNetwork::new(),
            alphas: Vec::new(),
            rules: BTreeMap::new(),
            policy,
        }
    }

    fn alpha(&self, id: AlphaId) -> &AlphaNode {
        self.alphas[id.0].as_ref().expect("live alpha")
    }

    fn virtualize(&self, var: usize) -> bool {
        match &self.policy {
            VirtualPolicy::AllStored => false,
            VirtualPolicy::AllVirtual => true,
            VirtualPolicy::ExplicitVars(set) => set.contains(&var),
            // selectivity estimation needs the catalog at add time; Rete is
            // a baseline, so the simple policies suffice — threshold falls
            // back to stored
            VirtualPolicy::SelectivityThreshold(_) => false,
        }
    }

    /// Compile a pattern-based rule condition.
    pub fn add_rule(&mut self, id: RuleId, cond: &ResolvedCondition) -> QueryResult<()> {
        if cond.on_var.is_some() || !cond.trans_vars.is_empty() {
            return Err(QueryError::Semantic(
                "the Rete baseline supports pattern-based conditions only".into(),
            ));
        }
        if self.rules.contains_key(&id.0) {
            return Err(QueryError::Semantic(format!(
                "rule {id} already in network"
            )));
        }
        let nvars = cond.spec.vars.len();
        let conjuncts: Vec<RExpr> = cond
            .spec
            .qual
            .clone()
            .map(|q| q.conjuncts())
            .unwrap_or_default();
        let mut selections: Vec<Vec<RExpr>> = vec![Vec::new(); nvars];
        let mut joins: Vec<Vec<RExpr>> = vec![Vec::new(); nvars];
        for c in conjuncts {
            let used = c.vars_used();
            if used.len() == 1 {
                selections[used[0]].push(c.remap_vars(&|_| 0));
            } else {
                // attach at the highest variable index it references
                let lvl = *used.iter().max().unwrap();
                joins[lvl].push(c);
            }
        }
        let mut alphas = Vec::with_capacity(nvars);
        let mut cols = Vec::with_capacity(nvars);
        for (v, binding) in cond.spec.vars.iter().enumerate() {
            let pred = SelectionPredicate::decompose(std::mem::take(&mut selections[v]));
            let kind = if self.virtualize(v) {
                AlphaKind::Virtual
            } else {
                AlphaKind::Stored
            };
            let node = AlphaNode::new(id, v, binding.rel.clone(), kind, pred, None);
            let anchor = if node.pred.unsatisfiable {
                None
            } else {
                node.pred.anchor.clone()
            };
            self.alphas.push(Some(node));
            let aid = AlphaId(self.alphas.len() - 1);
            self.selnet.subscribe(aid, &binding.rel, anchor);
            alphas.push(aid);
            cols.push(PnodeCol {
                var: binding.name.clone(),
                rel: binding.rel.clone(),
                schema: binding.schema.clone(),
                has_prev: false,
            });
        }
        self.rules.insert(
            id.0,
            ReteRule {
                alphas,
                join_conjuncts: joins,
                betas: (0..nvars).map(|_| BetaMemory::default()).collect(),
                pnode: Pnode::new(cols),
            },
        );
        Ok(())
    }

    /// Candidate bindings of an α-node: stored entries, or a base-relation
    /// scan under the node's predicate for virtual nodes (§4.2 applied to
    /// Rete). `visible` implements the pending/ProcessedMemories rules.
    ///
    /// Deliberately nested-loop: the Rete network is the paper's comparison
    /// baseline, so it never probes the hash join indexes the TREAT network
    /// maintains (`crate::treat`) — candidates are always fully enumerated.
    fn candidates(
        &self,
        aid: AlphaId,
        catalog: &Catalog,
        visible: &dyn Fn(Tid) -> bool,
    ) -> QueryResult<Vec<BoundVar>> {
        let alpha = self.alpha(aid);
        match alpha.kind {
            AlphaKind::Virtual => {
                let rel_ref = catalog.require(&alpha.rel)?;
                let rel_b = rel_ref.borrow();
                Ok(rel_b
                    .scan()
                    .filter(|(tid, _)| visible(*tid))
                    .filter(|(_, t)| alpha.pred_matches(t, None))
                    .map(|(tid, t)| BoundVar::plain(tid, t.clone()))
                    .collect())
            }
            _ => Ok(alpha
                .entries()
                .map(|e| BoundVar {
                    tid: e.tid,
                    tuple: e.tuple.clone(),
                    prev: e.prev.clone(),
                })
                .collect()),
        }
    }

    /// Fill α-memories from current data and rebuild β-memories bottom-up.
    pub fn prime(&mut self, id: RuleId, catalog: &Catalog) -> QueryResult<()> {
        let rule = self
            .rules
            .get(&id.0)
            .ok_or_else(|| QueryError::Semantic(format!("unknown rule {id}")))?;
        let alpha_ids = rule.alphas.clone();
        for aid in &alpha_ids {
            if self.alpha(*aid).kind == AlphaKind::Virtual {
                continue;
            }
            let rel = self.alpha(*aid).rel.clone();
            let rel_ref = catalog.require(&rel)?;
            let entries: Vec<(Tid, AlphaEntry)> = {
                let a = self.alpha(*aid);
                rel_ref
                    .borrow()
                    .scan()
                    .filter(|(_, t)| a.pred_matches(t, None))
                    .map(|(tid, t)| {
                        (
                            tid,
                            AlphaEntry {
                                tid: Some(tid),
                                tuple: t.clone(),
                                prev: None,
                            },
                        )
                    })
                    .collect()
            };
            let a = self.alphas[aid.0].as_mut().unwrap();
            for (tid, e) in entries {
                a.insert(tid, e);
            }
        }
        // β levels bottom-up
        let nvars = alpha_ids.len();
        let mut levels: Vec<Vec<Partial>> = Vec::with_capacity(nvars);
        for lvl in 0..nvars {
            let mut out = Vec::new();
            let rule = &self.rules[&id.0];
            let cands = self.candidates(alpha_ids[lvl], catalog, &|_| true)?;
            if lvl == 0 {
                for cand in cands {
                    out.push(vec![cand]);
                }
            } else {
                for left in &levels[lvl - 1] {
                    for cand in &cands {
                        if self.join_passes(rule, lvl, left, cand)? {
                            let mut p = left.clone();
                            p.push(cand.clone());
                            out.push(p);
                        }
                    }
                }
            }
            levels.push(out);
        }
        let rule = self.rules.get_mut(&id.0).unwrap();
        for (lvl, partials) in levels.into_iter().enumerate() {
            if lvl == nvars - 1 {
                for p in &partials {
                    rule.pnode.push(p.clone());
                }
            }
            rule.betas[lvl].partials = partials;
        }
        Ok(())
    }

    fn join_passes(
        &self,
        rule: &ReteRule,
        lvl: usize,
        left: &[BoundVar],
        cand: &BoundVar,
    ) -> QueryResult<bool> {
        let nvars = rule.alphas.len();
        let mut row = Row::unbound(nvars);
        for (i, b) in left.iter().enumerate() {
            row.slots[i] = Some(b.clone());
        }
        row.slots[lvl] = Some(cand.clone());
        for c in &rule.join_conjuncts[lvl] {
            if !eval_pred(c, &row)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Process one token.
    pub fn process_token(&mut self, token: &Token, catalog: &Catalog) -> QueryResult<()> {
        self.process_batch(std::slice::from_ref(token), catalog)
    }

    /// Process a batch of tokens in order. As in [`crate::treat`], changes
    /// are already applied to base relations, so virtual α-memories hide
    /// tuples whose positive tokens are still pending.
    pub fn process_batch(&mut self, tokens: &[Token], catalog: &Catalog) -> QueryResult<()> {
        let mut pending: HashMap<String, HashSet<u64>> = HashMap::new();
        for t in tokens {
            if t.kind.is_positive() {
                pending.entry(t.rel.clone()).or_default().insert(t.tid.0);
            }
        }
        for t in tokens {
            if t.kind.is_positive() {
                if let Some(set) = pending.get_mut(&t.rel) {
                    set.remove(&t.tid.0);
                }
                self.process_positive(t, catalog, &pending)?;
            } else {
                self.process_negative(t);
            }
        }
        Ok(())
    }

    fn process_positive(
        &mut self,
        token: &Token,
        catalog: &Catalog,
        pending: &HashMap<String, HashSet<u64>>,
    ) -> QueryResult<()> {
        let mut matched: Vec<AlphaId> = self
            .selnet
            .candidates(&token.rel, &token.tuple)
            .into_iter()
            .filter(|aid| {
                self.alpha(*aid)
                    .pred_matches(&token.tuple, token.old.as_ref())
            })
            .collect();
        matched.sort_by_key(|a| a.0);
        matched.dedup();
        let mut processed: HashSet<usize> = HashSet::new();
        for aid in matched {
            processed.insert(aid.0);
            let (rule_id, var) = {
                let a = self.alphas[aid.0].as_mut().unwrap();
                if a.kind.stores_entries() {
                    a.insert(
                        token.tid,
                        AlphaEntry {
                            tid: Some(token.tid),
                            tuple: token.tuple.clone(),
                            prev: token.old.clone(),
                        },
                    );
                }
                (a.rule, a.var)
            };
            let seed = BoundVar {
                tid: Some(token.tid),
                tuple: token.tuple.clone(),
                prev: token.old.clone(),
            };
            // right activation at level `var`
            let new_partials: Vec<Partial> = {
                let rule = &self.rules[&rule_id.0];
                if var == 0 {
                    vec![vec![seed]]
                } else {
                    let mut out = Vec::new();
                    for left in &rule.betas[var - 1].partials {
                        if self.join_passes(rule, var, left, &seed)? {
                            let mut p = left.clone();
                            p.push(seed.clone());
                            out.push(p);
                        }
                    }
                    out
                }
            };
            self.insert_partials(
                rule_id,
                var,
                new_partials,
                token,
                &processed,
                catalog,
                pending,
            )?;
        }
        Ok(())
    }

    /// Insert partials at level `lvl` and cascade them down the β chain.
    #[allow(clippy::too_many_arguments)]
    fn insert_partials(
        &mut self,
        rule_id: RuleId,
        lvl: usize,
        partials: Vec<Partial>,
        token: &Token,
        processed: &HashSet<usize>,
        catalog: &Catalog,
        pending: &HashMap<String, HashSet<u64>>,
    ) -> QueryResult<()> {
        if partials.is_empty() {
            return Ok(());
        }
        let nvars = self.rules[&rule_id.0].alphas.len();
        // extend level by level
        let mut current = partials;
        for level in lvl..nvars {
            if level > lvl {
                let rule = &self.rules[&rule_id.0];
                let aid = rule.alphas[level];
                let alpha = self.alpha(aid);
                let empty = HashSet::new();
                let pend = pending.get(&alpha.rel).unwrap_or(&empty);
                let rel = alpha.rel.clone();
                let visible = move |tid: Tid| -> bool {
                    if pend.contains(&tid.0) {
                        return false;
                    }
                    rel != token.rel || tid != token.tid || processed.contains(&aid.0)
                };
                let cands = self.candidates(aid, catalog, &visible)?;
                let rule = &self.rules[&rule_id.0];
                let mut next = Vec::new();
                for left in &current {
                    for cand in &cands {
                        if self.join_passes(rule, level, left, cand)? {
                            let mut p = left.clone();
                            p.push(cand.clone());
                            next.push(p);
                        }
                    }
                }
                current = next;
                if current.is_empty() {
                    return Ok(());
                }
            }
            let rule = self.rules.get_mut(&rule_id.0).unwrap();
            rule.betas[level].partials.extend(current.iter().cloned());
            if level == nvars - 1 {
                for p in &current {
                    rule.pnode.push(p.clone());
                }
            }
        }
        Ok(())
    }

    fn process_negative(&mut self, token: &Token) {
        let alpha_ids: Vec<AlphaId> = self.selnet.alphas_on(&token.rel).to_vec();
        for aid in alpha_ids {
            let (rule_id, var) = {
                let a = self.alphas[aid.0].as_mut().unwrap();
                a.remove(token.tid);
                (a.rule, a.var)
            };
            let rule = self.rules.get_mut(&rule_id.0).unwrap();
            for beta in rule.betas[var..].iter_mut() {
                beta.partials
                    .retain(|p| p.get(var).map(|b| b.tid) != Some(Some(token.tid)));
            }
            rule.pnode.retract(var, token.tid);
        }
    }

    /// The P-node of a rule.
    pub fn pnode(&self, id: RuleId) -> Option<&Pnode> {
        self.rules.get(&id.0).map(|r| &r.pnode)
    }

    /// Total bytes held in β-memories (the Rete-specific storage cost).
    /// The last β level duplicates the P-node by construction.
    pub fn beta_bytes(&self) -> usize {
        self.rules
            .values()
            .flat_map(|r| r.betas.iter())
            .map(BetaMemory::heap_size)
            .sum()
    }

    /// Total bytes held in α-memories.
    pub fn alpha_bytes(&self) -> usize {
        self.alphas.iter().flatten().map(AlphaNode::heap_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::EventSpecifier;
    use crate::treat::{Network, VirtualPolicy};
    use ariel_query::{parse_expr, FromItem, Resolver};
    use ariel_storage::{AttrType, Schema, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create(
            "emp",
            Schema::of(&[("sal", AttrType::Int), ("dno", AttrType::Int)]),
        )
        .unwrap();
        c.create(
            "dept",
            Schema::of(&[("dno", AttrType::Int), ("floor", AttrType::Int)]),
        )
        .unwrap();
        c
    }

    fn rcond(c: &Catalog, qual: &str, from: &[(&str, &str)]) -> ResolvedCondition {
        let e = parse_expr(qual).unwrap();
        let from: Vec<FromItem> = from
            .iter()
            .map(|(v, r)| FromItem {
                var: v.to_string(),
                rel: r.to_string(),
            })
            .collect();
        Resolver::new(c)
            .resolve_condition(None, Some(&e), &from)
            .unwrap()
    }

    fn ins(c: &Catalog, rel: &str, vals: &[i64]) -> Token {
        let r = c.get(rel).unwrap();
        let tid = r
            .borrow_mut()
            .insert(vals.iter().map(|&v| Value::Int(v)).collect::<Vec<Value>>())
            .unwrap();
        let t = r.borrow().get(tid).cloned().unwrap();
        Token::plus(rel, tid, t, EventSpecifier::Append)
    }

    fn del(c: &Catalog, token: &Token) -> Token {
        let r = c.get(&token.rel).unwrap();
        let old = r.borrow_mut().delete(token.tid).unwrap();
        Token::minus(token.rel.clone(), token.tid, old, EventSpecifier::Delete)
    }

    #[test]
    fn rete_single_variable() {
        let cat = catalog();
        let mut net = ReteNetwork::new();
        net.add_rule(RuleId(1), &rcond(&cat, "emp.sal > 100", &[]))
            .unwrap();
        net.prime(RuleId(1), &cat).unwrap();
        let t = ins(&cat, "emp", &[200, 1]);
        net.process_token(&t, &cat).unwrap();
        assert_eq!(net.pnode(RuleId(1)).unwrap().len(), 1);
        let low = ins(&cat, "emp", &[50, 1]);
        net.process_token(&low, &cat).unwrap();
        assert_eq!(net.pnode(RuleId(1)).unwrap().len(), 1);
        let d = del(&cat, &t);
        net.process_token(&d, &cat).unwrap();
        assert_eq!(net.pnode(RuleId(1)).unwrap().len(), 0);
    }

    #[test]
    fn rete_matches_treat_under_random_stream() {
        // the real test: Rete and A-TREAT produce identical P-node sizes
        // for the same token stream
        let cat = catalog();
        let qual = "emp.sal > 10 and emp.dno = dept.dno and dept.floor < 5";
        let mut rete = ReteNetwork::new();
        rete.add_rule(RuleId(1), &rcond(&cat, qual, &[])).unwrap();
        rete.prime(RuleId(1), &cat).unwrap();
        let mut treat = Network::new();
        treat
            .add_rule(
                RuleId(1),
                &rcond(&cat, qual, &[]),
                &VirtualPolicy::AllStored,
                &cat,
            )
            .unwrap();
        treat.prime(RuleId(1), &cat).unwrap();

        let mut live: Vec<Token> = Vec::new();
        let mut seed = 42u64;
        let mut rnd = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 33) as i64
        };
        for step in 0..120 {
            let tok = if step % 4 == 3 && !live.is_empty() {
                let k = (rnd() as usize) % live.len();
                let victim = live.swap_remove(k);
                del(&cat, &victim)
            } else if step % 2 == 0 {
                let t = ins(&cat, "emp", &[rnd() % 30, rnd() % 6]);
                live.push(t.clone());
                t
            } else {
                let t = ins(&cat, "dept", &[rnd() % 6, rnd() % 8]);
                live.push(t.clone());
                t
            };
            rete.process_token(&tok, &cat).unwrap();
            treat.process_token(&tok, &cat).unwrap();
            let a = rete.pnode(RuleId(1)).unwrap();
            let b = treat.pnode(RuleId(1)).unwrap();
            assert_eq!(a.len(), b.len(), "divergence at step {step}");
        }
    }

    #[test]
    fn rete_carries_beta_state() {
        let cat = catalog();
        let qual = "emp.sal > 0 and emp.dno = dept.dno";
        let mut net = ReteNetwork::new();
        net.add_rule(RuleId(1), &rcond(&cat, qual, &[])).unwrap();
        net.prime(RuleId(1), &cat).unwrap();
        for i in 0..10 {
            let t = ins(&cat, "emp", &[100, i]);
            net.process_token(&t, &cat).unwrap();
        }
        assert!(net.beta_bytes() > 0, "β-memories hold partial matches");
        assert!(net.alpha_bytes() > 0);
    }

    #[test]
    fn rete_self_join() {
        let cat = catalog();
        let mut net = ReteNetwork::new();
        net.add_rule(
            RuleId(1),
            &rcond(&cat, "a.dno = b.dno", &[("a", "emp"), ("b", "emp")]),
        )
        .unwrap();
        net.prime(RuleId(1), &cat).unwrap();
        let t1 = ins(&cat, "emp", &[1, 5]);
        net.process_token(&t1, &cat).unwrap();
        assert_eq!(net.pnode(RuleId(1)).unwrap().len(), 1, "(t1,t1)");
        let t2 = ins(&cat, "emp", &[2, 5]);
        net.process_token(&t2, &cat).unwrap();
        assert_eq!(net.pnode(RuleId(1)).unwrap().len(), 4);
        let d = del(&cat, &t1);
        net.process_token(&d, &cat).unwrap();
        assert_eq!(net.pnode(RuleId(1)).unwrap().len(), 1, "(t2,t2) remains");
    }

    #[test]
    fn rete_rejects_event_rules() {
        let cat = catalog();
        let e = parse_expr("emp.sal > 0").unwrap();
        let rc = Resolver::new(&cat)
            .resolve_condition(
                Some(&ariel_query::EventSpec {
                    kind: ariel_query::EventKind::Append,
                    relation: "emp".into(),
                }),
                Some(&e),
                &[],
            )
            .unwrap();
        let mut net = ReteNetwork::new();
        assert!(net.add_rule(RuleId(1), &rc).is_err());
    }
}

#[cfg(test)]
mod virtual_tests {
    use super::*;
    use crate::token::EventSpecifier;
    use ariel_query::{parse_expr, FromItem, Resolver};
    use ariel_storage::{AttrType, Schema, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create(
            "emp",
            Schema::of(&[("sal", AttrType::Int), ("dno", AttrType::Int)]),
        )
        .unwrap();
        c.create(
            "dept",
            Schema::of(&[("dno", AttrType::Int), ("floor", AttrType::Int)]),
        )
        .unwrap();
        c
    }

    fn rcond(c: &Catalog, qual: &str, from: &[(&str, &str)]) -> ResolvedCondition {
        let e = parse_expr(qual).unwrap();
        let from: Vec<FromItem> = from
            .iter()
            .map(|(v, r)| FromItem {
                var: v.to_string(),
                rel: r.to_string(),
            })
            .collect();
        Resolver::new(c)
            .resolve_condition(None, Some(&e), &from)
            .unwrap()
    }

    fn ins(c: &Catalog, rel: &str, vals: &[i64]) -> Token {
        let r = c.get(rel).unwrap();
        let tid = r
            .borrow_mut()
            .insert(vals.iter().map(|&v| Value::Int(v)).collect::<Vec<Value>>())
            .unwrap();
        let t = r.borrow().get(tid).cloned().unwrap();
        Token::plus(rel, tid, t, EventSpecifier::Append)
    }

    fn del(c: &Catalog, token: &Token) -> Token {
        let r = c.get(&token.rel).unwrap();
        let old = r.borrow_mut().delete(token.tid).unwrap();
        Token::minus(token.rel.clone(), token.tid, old, EventSpecifier::Delete)
    }

    /// Rete with virtual α-memories must match classic Rete exactly, while
    /// carrying no α-memory bytes.
    #[test]
    fn virtual_rete_matches_classic_rete() {
        let cat_a = catalog();
        let cat_b = catalog();
        let qual = "emp.sal > 10 and emp.dno = dept.dno and dept.floor < 5";
        let mut classic = ReteNetwork::new();
        classic
            .add_rule(RuleId(1), &rcond(&cat_a, qual, &[]))
            .unwrap();
        classic.prime(RuleId(1), &cat_a).unwrap();
        let mut virt = ReteNetwork::with_policy(VirtualPolicy::AllVirtual);
        virt.add_rule(RuleId(1), &rcond(&cat_b, qual, &[])).unwrap();
        virt.prime(RuleId(1), &cat_b).unwrap();

        let mut seed = 17u64;
        let mut rnd = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 33) as i64
        };
        let mut live_a: Vec<Token> = Vec::new();
        let mut live_b: Vec<Token> = Vec::new();
        for step in 0..150 {
            let choice = rnd();
            if choice % 4 == 3 && !live_a.is_empty() {
                let k = (rnd() as usize) % live_a.len();
                let ta = live_a.swap_remove(k);
                let tb = live_b.swap_remove(k);
                classic.process_token(&del(&cat_a, &ta), &cat_a).unwrap();
                virt.process_token(&del(&cat_b, &tb), &cat_b).unwrap();
            } else {
                let (rel, vals) = if choice % 2 == 0 {
                    ("emp", [rnd() % 30, rnd() % 6])
                } else {
                    ("dept", [rnd() % 6, rnd() % 8])
                };
                let ta = ins(&cat_a, rel, &vals);
                let tb = ins(&cat_b, rel, &vals);
                classic.process_token(&ta, &cat_a).unwrap();
                virt.process_token(&tb, &cat_b).unwrap();
                live_a.push(ta);
                live_b.push(tb);
            }
            assert_eq!(
                classic.pnode(RuleId(1)).unwrap().len(),
                virt.pnode(RuleId(1)).unwrap().len(),
                "divergence at step {step}"
            );
        }
        assert_eq!(virt.alpha_bytes(), 0, "virtual α-memories store nothing");
        assert!(classic.alpha_bytes() > 0);
    }

    /// Self-join counting must stay exact under virtual α-memories in Rete
    /// (the §1 claim, batch form).
    #[test]
    fn virtual_rete_self_join_batch() {
        for policy in [
            VirtualPolicy::AllStored,
            VirtualPolicy::AllVirtual,
            VirtualPolicy::ExplicitVars(HashSet::from([0])),
            VirtualPolicy::ExplicitVars(HashSet::from([1])),
        ] {
            let cat = catalog();
            let mut net = ReteNetwork::with_policy(policy.clone());
            net.add_rule(
                RuleId(1),
                &rcond(&cat, "a.dno = b.dno", &[("a", "emp"), ("b", "emp")]),
            )
            .unwrap();
            net.prime(RuleId(1), &cat).unwrap();
            let t1 = ins(&cat, "emp", &[1, 5]);
            let t2 = ins(&cat, "emp", &[2, 5]);
            net.process_batch(&[t1.clone(), t2], &cat).unwrap();
            assert_eq!(
                net.pnode(RuleId(1)).unwrap().len(),
                4,
                "pairs (t1,t1),(t1,t2),(t2,t1),(t2,t2) under {policy:?}"
            );
            let d = del(&cat, &t1);
            net.process_token(&d, &cat).unwrap();
            assert_eq!(net.pnode(RuleId(1)).unwrap().len(), 1, "{policy:?}");
        }
    }

    /// Primed data visible through virtual nodes.
    #[test]
    fn virtual_rete_priming() {
        let cat = catalog();
        cat.get("emp")
            .unwrap()
            .borrow_mut()
            .insert(vec![20i64.into(), 1i64.into()])
            .unwrap();
        cat.get("dept")
            .unwrap()
            .borrow_mut()
            .insert(vec![1i64.into(), 2i64.into()])
            .unwrap();
        let mut net = ReteNetwork::with_policy(VirtualPolicy::AllVirtual);
        net.add_rule(
            RuleId(1),
            &rcond(&cat, "emp.sal > 10 and emp.dno = dept.dno", &[]),
        )
        .unwrap();
        net.prime(RuleId(1), &cat).unwrap();
        assert_eq!(net.pnode(RuleId(1)).unwrap().len(), 1);
    }
}
