//! Rete network (Forgy 1982) — the comparison baseline, in two flavours.
//!
//! Rete differs from TREAT by materializing **β-memories**: one per join
//! level, holding the partial matches of the first `i` tuple variables.
//! Insertions do incremental join work against the next α-memory only;
//! deletions walk the β-memories removing partials by TID. The price is the
//! β-memory state itself — the storage the paper's virtual-memory argument
//! (§4.2, §8: "virtual α- *and β-* memory nodes") is about.
//!
//! The network runs in one of two [`ReteMode`]s:
//!
//! * [`ReteMode::Nested`] — the classic formulation: right activations
//!   enumerate the left β-memory in full, and the cascade down the β chain
//!   enumerates the next α-memory in full. This is the paper's plain
//!   nested-loop join cost model.
//! * [`ReteMode::Indexed`] (default) — the same compile-time join planning
//!   the TREAT network uses (the `plan` module): stored α-memories register
//!   TREAT's composite hash and band interval indexes, and each β-memory
//!   additionally keeps a composite hash index (or a band interval index)
//!   over its partials, keyed on the join attributes of the *next* level —
//!   so a right activation probes one bucket instead of enumerating every
//!   partial, and the cascade probes the next α-memory instead of
//!   enumerating it.
//!
//! Both modes produce identical P-nodes; only the work per token differs.
//! The `paper_tables -- net` bench compares them against TREAT head-on.
//!
//! This implementation covers pattern-based conditions (what the paper's
//! Figs. 9–11 exercise); event and transition conditions are A-TREAT
//! features ([`crate::treat`]).
//!
//! §1 of the paper notes the virtual-memory-node modification "could also
//! be used in the Rete algorithm" — [`ReteNetwork::with_policy`] does
//! exactly that: under a [`VirtualPolicy`], eligible α-memories store only
//! their predicate, and left-activations join through the base relation
//! (with the same pending/ProcessedMemories visibility discipline as
//! [`crate::treat`]).

use crate::alpha::{AlphaCounters, AlphaEntry, AlphaId, AlphaKind, AlphaNode, BandShape, RuleId};
use crate::key::{KeyBuilder, SmallKey};
use crate::obs::MatchObs;
use crate::plan::{BandSpec, CompositeSpec, JoinPlan};
use crate::pred::SelectionPredicate;
use crate::selnet::SelectionNetwork;
use crate::token::Token;
use crate::trace::{TraceEventKind, TraceRecorder};
use crate::treat::{selectivity_virtualize, NetworkStats, RuleStats, RuleTopology, VirtualPolicy};
use ariel_islist::{IntervalId, IntervalSkipList};
use ariel_query::{
    eval, eval_pred, BoundVar, Pnode, PnodeCol, QueryError, QueryResult, RExpr, ResolvedCondition,
    Row,
};
use ariel_storage::{Catalog, FxBuildHasher, Tid, Value};
use std::cell::Cell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::time::Instant;

/// How the Rete network runs its β-joins. Selected per network via
/// [`ReteNetwork::set_mode`] and snapshotted into each rule at compile
/// time, so the two modes can be compared on identical token streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReteMode {
    /// Classic nested-loop Rete: right activations enumerate the left
    /// β-memory, cascades enumerate the next α-memory.
    Nested,
    /// Join-planned Rete: β-memories keep hash/interval indexes keyed for
    /// the next level, stored α-memories keep TREAT's join indexes, and
    /// activations probe instead of enumerate.
    Indexed,
}

/// A partial match over the first `level + 1` variables.
type Partial = Vec<BoundVar>;

/// Composite hash index over a β-memory's partials, keyed so the *next*
/// level's right activations can probe it: the bucket key is the
/// partial-side value tuple of an equi-conjunct group, the probe key is
/// read straight off the activating token's attributes.
#[derive(Debug)]
struct BetaEquiIndex {
    /// Token-side attribute positions on the next variable, ascending
    /// (the [`CompositeSpec::attrs`] of the spec this index serves).
    probe_attrs: Vec<usize>,
    /// Partial-side key expression per attribute, parallel to
    /// `probe_attrs` — reads variables `0..=level` only.
    key_exprs: Vec<RExpr>,
    /// Conjunct indices (into the rule's flat join-conjunct list) the
    /// probe answers; skipped on the retest path.
    conjuncts: Vec<usize>,
    /// Flat packed key → partial sequence numbers (see `crate::key`).
    buckets: HashMap<SmallKey, Vec<u64>, FxBuildHasher>,
}

/// Band interval index over a β-memory's partials: each partial spans the
/// interval its `spec_var` tuple defines under `shape`, and the next
/// level's right activation stabs with the token-side key expression.
#[derive(Debug)]
struct BetaBandIndex {
    /// Partial-side variable whose tuple supplies the interval endpoints.
    spec_var: usize,
    shape: BandShape,
    /// Token-side stab key — reads the next variable only.
    key_expr: RExpr,
    /// The `(lower, upper)` conjunct indices the stab answers.
    conjuncts: [usize; 2],
    islist: IntervalSkipList<Value>,
    by_seq: HashMap<u64, IntervalId>,
    by_interval: HashMap<IntervalId, u64>,
}

/// One β-memory level: the partial matches over variables `0..=level`,
/// plus (indexed mode) at most one index keyed for the next level's right
/// activations. Partials carry a stable sequence number so index buckets
/// can reference them across removals.
#[derive(Debug, Default)]
struct BetaMemory {
    partials: BTreeMap<u64, Partial>,
    next_seq: u64,
    equi: Option<BetaEquiIndex>,
    band: Option<BetaBandIndex>,
    /// Partials whose equi key evaluation *errored* (not merely produced
    /// Null): unreachable through the buckets, so every probe also
    /// enumerates them with the full conjunct test — per-pair evaluation
    /// errors then surface exactly as nested mode would surface them.
    unindexed: Vec<u64>,
    /// Right-activation probes answered by this memory's index (`Cell`
    /// because probing holds `&self`).
    probes: Cell<u64>,
    /// Probes that served at least one partial.
    hits: Cell<u64>,
}

/// A partial as a row: variables `0..p.len()` bound, the rest free.
fn row_of(p: &[BoundVar], nvars: usize) -> Row {
    let mut row = Row::unbound(nvars);
    for (i, b) in p.iter().enumerate() {
        row.slots[i] = Some(b.clone());
    }
    row
}

impl BetaMemory {
    /// Evaluate a partial's composite bucket key. `Ok(None)` when a
    /// component is Null — `sql_eq` says Null joins nothing, so the
    /// partial can never satisfy the indexed conjuncts and is correctly
    /// unreachable through the index.
    fn equi_key(
        p: &[BoundVar],
        key_exprs: &[RExpr],
        nvars: usize,
    ) -> QueryResult<Option<SmallKey>> {
        let row = row_of(p, nvars);
        let mut key = KeyBuilder::new(key_exprs.len());
        for e in key_exprs {
            let v = eval(e, &row)?;
            if v.is_null() {
                return Ok(None);
            }
            key.push(&v);
        }
        Ok(Some(key.finish()))
    }

    /// Insert a partial, maintaining whichever index is configured.
    fn insert(&mut self, p: Partial, nvars: usize) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(ix) = &mut self.equi {
            match Self::equi_key(&p, &ix.key_exprs, nvars) {
                Ok(Some(key)) => ix.buckets.entry(key).or_default().push(seq),
                Ok(None) => {} // Null key: statically unjoinable, skip
                Err(_) => self.unindexed.push(seq),
            }
        } else if let Some(bx) = &mut self.band {
            // a Null/empty span can never satisfy the conjunct pair, so a
            // partial without an interval is correctly unreachable
            if let Some(iv) = bx.shape.interval_of(&p[bx.spec_var].tuple) {
                let id = bx.islist.insert(iv);
                bx.by_seq.insert(seq, id);
                bx.by_interval.insert(id, seq);
            }
        }
        self.partials.insert(seq, p);
    }

    /// Remove one partial by sequence number, unhooking it from the index.
    /// The bucket key is recomputed from the partial — evaluation is
    /// deterministic, so it lands where `insert` put it.
    fn remove_seq(&mut self, seq: u64, nvars: usize) {
        let Some(p) = self.partials.remove(&seq) else {
            return;
        };
        if let Some(ix) = &mut self.equi {
            match Self::equi_key(&p, &ix.key_exprs, nvars) {
                Ok(Some(key)) => {
                    if let Some(bucket) = ix.buckets.get_mut(&key) {
                        bucket.retain(|&s| s != seq);
                        if bucket.is_empty() {
                            ix.buckets.remove(&key);
                        }
                    }
                }
                Ok(None) => {}
                Err(_) => self.unindexed.retain(|&s| s != seq),
            }
        } else if let Some(bx) = &mut self.band {
            if let Some(id) = bx.by_seq.remove(&seq) {
                bx.islist.remove(id);
                bx.by_interval.remove(&id);
            }
        }
    }

    /// Remove every partial binding `tid` at variable `var`.
    fn remove_where(&mut self, var: usize, tid: Tid, nvars: usize) {
        let seqs: Vec<u64> = self
            .partials
            .iter()
            .filter(|(_, p)| p.get(var).map(|b| b.tid) == Some(Some(tid)))
            .map(|(&s, _)| s)
            .collect();
        for s in seqs {
            self.remove_seq(s, nvars);
        }
    }

    /// Approximate heap footprint: partials plus index structures.
    fn heap_size(&self) -> usize {
        let mut total: usize = self
            .partials
            .values()
            .map(|p| p.iter().map(BoundVar::heap_size).sum::<usize>() + std::mem::size_of::<u64>())
            .sum();
        if let Some(ix) = &self.equi {
            for (k, v) in &ix.buckets {
                total += std::mem::size_of::<SmallKey>()
                    + k.heap_bytes()
                    + std::mem::size_of::<Vec<u64>>()
                    + v.capacity() * std::mem::size_of::<u64>();
            }
        }
        if let Some(bx) = &self.band {
            total += bx.islist.bytes()
                + (bx.by_seq.len() + bx.by_interval.len()) * 2 * std::mem::size_of::<u64>();
        }
        total
    }
}

#[derive(Debug)]
struct ReteRule {
    alphas: Vec<AlphaId>,
    /// Multi-variable conjuncts, flat — [`JoinPlan`] and
    /// [`Self::level_conjuncts`] index into this list.
    join_conjuncts: Vec<RExpr>,
    /// `level_conjuncts[i]`: indices of the conjuncts whose highest
    /// variable is `i`, testable once vars `0..=i` are bound.
    level_conjuncts: Vec<Vec<usize>>,
    plan: JoinPlan,
    /// Network mode at compile time ([`ReteMode::Indexed`] = true).
    indexed: bool,
    /// `betas[i]`: partial matches over vars `0..=i`; the last level feeds
    /// the P-node.
    betas: Vec<BetaMemory>,
    pnode: Pnode,
    /// Always-on counter: tokens that passed one of this rule's α-tests.
    tokens_in: u64,
    /// Always-on counter: right activations at levels above 0.
    join_probes: u64,
    /// Always-on counter: instantiations pushed into the P-node.
    pnode_inserts: u64,
}

/// A Rete network over pattern-based rule conditions.
#[derive(Debug)]
pub struct ReteNetwork {
    selnet: SelectionNetwork,
    alphas: Vec<Option<AlphaNode>>,
    free: Vec<usize>,
    rules: BTreeMap<u64, ReteRule>,
    policy: VirtualPolicy,
    mode: ReteMode,
    tokens_processed: u64,
    obs: Option<MatchObs>,
    trace: Option<TraceRecorder>,
}

impl Default for ReteNetwork {
    fn default() -> Self {
        Self::new()
    }
}

impl ReteNetwork {
    /// New empty network with every α-memory stored and β-joins indexed.
    pub fn new() -> Self {
        Self::with_policy(VirtualPolicy::AllStored)
    }

    /// New empty network whose eligible α-memories follow `policy` — §1's
    /// "could also be used in the Rete algorithm".
    pub fn with_policy(policy: VirtualPolicy) -> Self {
        ReteNetwork {
            selnet: SelectionNetwork::new(),
            alphas: Vec::new(),
            free: Vec::new(),
            rules: BTreeMap::new(),
            policy,
            mode: ReteMode::Indexed,
            tokens_processed: 0,
            obs: None,
            trace: None,
        }
    }

    /// Select the join mode. Affects rules compiled *after* the call (the
    /// mode is snapshotted per rule, like the TREAT network's indexing
    /// switches).
    pub fn set_mode(&mut self, mode: ReteMode) {
        self.mode = mode;
    }

    /// The current join mode.
    pub fn mode(&self) -> ReteMode {
        self.mode
    }

    /// Enable or disable the gated timing tier (same contract as
    /// [`crate::Network::set_observing`]).
    pub fn set_observing(&mut self, on: bool) {
        self.obs = if on { Some(MatchObs::new()) } else { None };
    }

    /// Whether a timing session is active.
    pub fn observing(&self) -> bool {
        self.obs.is_some()
    }

    /// The active timing session, if any.
    pub fn obs(&self) -> Option<&MatchObs> {
        self.obs.as_ref()
    }

    /// Replace the timing session, returning the previous one.
    pub fn swap_obs(&mut self, obs: Option<MatchObs>) -> Option<MatchObs> {
        std::mem::replace(&mut self.obs, obs)
    }

    /// Install or remove the flight recorder (same contract as
    /// [`crate::Network::set_trace`]).
    pub fn set_trace(&mut self, trace: Option<TraceRecorder>) -> Option<TraceRecorder> {
        std::mem::replace(&mut self.trace, trace)
    }

    /// The active flight recorder, if tracing is on.
    pub fn trace(&self) -> Option<&TraceRecorder> {
        self.trace.as_ref()
    }

    fn alpha(&self, id: AlphaId) -> &AlphaNode {
        self.alphas[id.0].as_ref().expect("live alpha")
    }

    fn virtualize(
        &self,
        var: usize,
        pred: &SelectionPredicate,
        rel: &str,
        catalog: &Catalog,
        composite: &[CompositeSpec],
    ) -> bool {
        match &self.policy {
            VirtualPolicy::AllStored => false,
            VirtualPolicy::AllVirtual => true,
            VirtualPolicy::ExplicitVars(set) => set.contains(&var),
            // same estimate as TREAT (`add_rule` threads the catalog
            // through for exactly this): match share vs the threshold,
            // refined to expected bucket size when indexed mode would
            // register an equi access path on this memory
            VirtualPolicy::SelectivityThreshold(threshold) => selectivity_virtualize(
                pred,
                rel,
                *threshold,
                catalog,
                composite,
                self.mode == ReteMode::Indexed,
            ),
        }
    }

    fn alloc_alpha(&mut self, node: AlphaNode) -> AlphaId {
        match self.free.pop() {
            Some(i) => {
                self.alphas[i] = Some(node);
                AlphaId(i)
            }
            None => {
                self.alphas.push(Some(node));
                AlphaId(self.alphas.len() - 1)
            }
        }
    }

    /// Compile a pattern-based rule condition. The catalog feeds the
    /// [`VirtualPolicy::SelectivityThreshold`] estimate, so the threshold
    /// policy picks the same memories here as in the TREAT network.
    pub fn add_rule(
        &mut self,
        id: RuleId,
        cond: &ResolvedCondition,
        catalog: &Catalog,
    ) -> QueryResult<()> {
        if cond.on_var.is_some() || !cond.trans_vars.is_empty() {
            return Err(QueryError::Semantic(
                "the Rete baseline supports pattern-based conditions only".into(),
            ));
        }
        if self.rules.contains_key(&id.0) {
            return Err(QueryError::Semantic(format!(
                "rule {id} already in network"
            )));
        }
        let nvars = cond.spec.vars.len();
        let conjuncts: Vec<RExpr> = cond
            .spec
            .qual
            .clone()
            .map(|q| q.conjuncts())
            .unwrap_or_default();
        let mut selections: Vec<Vec<RExpr>> = vec![Vec::new(); nvars];
        let mut join_conjuncts: Vec<RExpr> = Vec::new();
        let mut level_conjuncts: Vec<Vec<usize>> = vec![Vec::new(); nvars];
        for c in conjuncts {
            let used = c.vars_used();
            if used.len() == 1 {
                selections[used[0]].push(c.remap_vars(&|_| 0));
            } else {
                // testable once the highest variable it references is bound
                let lvl = *used.iter().max().unwrap();
                level_conjuncts[lvl].push(join_conjuncts.len());
                join_conjuncts.push(c);
            }
        }
        let plan = JoinPlan::compile(&join_conjuncts, nvars, true);
        let indexed = self.mode == ReteMode::Indexed;
        let mut alphas = Vec::with_capacity(nvars);
        let mut cols = Vec::with_capacity(nvars);
        for (v, binding) in cond.spec.vars.iter().enumerate() {
            let pred = SelectionPredicate::decompose(std::mem::take(&mut selections[v]));
            let kind = if self.virtualize(v, &pred, &binding.rel, catalog, &plan.composite[v]) {
                AlphaKind::Virtual
            } else {
                AlphaKind::Stored
            };
            let mut node = AlphaNode::new(id, v, binding.rel.clone(), kind, pred, None);
            if indexed && kind.stores_entries() {
                node.set_join_indexes(plan.composite[v].iter().map(|s| s.attrs.clone()).collect());
                node.set_range_indexes(plan.bands[v].iter().map(|s| s.shape.clone()).collect());
            }
            let anchor = if node.pred.unsatisfiable {
                None
            } else {
                node.pred.anchor.clone()
            };
            let aid = self.alloc_alpha(node);
            self.selnet.subscribe(aid, &binding.rel, anchor);
            alphas.push(aid);
            cols.push(PnodeCol {
                var: binding.name.clone(),
                rel: binding.rel.clone(),
                schema: binding.schema.clone(),
                has_prev: false,
            });
        }
        let mut betas: Vec<BetaMemory> = (0..nvars).map(|_| BetaMemory::default()).collect();
        if indexed && nvars > 1 {
            for (lvl, beta) in betas.iter_mut().enumerate().take(nvars - 1) {
                Self::configure_beta_index(beta, &plan, lvl);
            }
        }
        self.rules.insert(
            id.0,
            ReteRule {
                alphas,
                join_conjuncts,
                level_conjuncts,
                plan,
                indexed,
                betas,
                pnode: Pnode::new(cols),
                tokens_in: 0,
                join_probes: 0,
                pnode_inserts: 0,
            },
        );
        Ok(())
    }

    /// Pick the index the β-memory at `lvl` should keep for level
    /// `lvl + 1`'s right activations. Preference order mirrors the TREAT
    /// access-path choice: the widest composite equi key whose
    /// partial-side variables are all ≤ `lvl`, else a band whose interval
    /// endpoints live on a partial variable and whose stab key reads the
    /// next variable only.
    fn configure_beta_index(beta: &mut BetaMemory, plan: &JoinPlan, lvl: usize) {
        let next = lvl + 1;
        let prefix: u64 = (1u64 << next) - 1;
        if let Some(spec) = plan.composite[next]
            .iter()
            .find(|s| s.others_mask & !prefix == 0)
        {
            beta.equi = Some(BetaEquiIndex {
                probe_attrs: spec.attrs.clone(),
                key_exprs: spec.key_exprs.clone(),
                conjuncts: spec.conjuncts.clone(),
                buckets: HashMap::default(),
            });
            return;
        }
        let next_bit = 1u64 << next;
        for v in 0..=lvl {
            if let Some(spec) = plan.bands[v].iter().find(|s| s.others_mask == next_bit) {
                beta.band = Some(BetaBandIndex {
                    spec_var: v,
                    shape: spec.shape.clone(),
                    key_expr: spec.key_expr.clone(),
                    conjuncts: spec.conjuncts,
                    islist: IntervalSkipList::new(),
                    by_seq: HashMap::new(),
                    by_interval: HashMap::new(),
                });
                return;
            }
        }
    }

    /// Candidate bindings of an α-node: stored entries, or a base-relation
    /// scan under the node's predicate for virtual nodes (§4.2 applied to
    /// Rete). `visible` implements the pending/ProcessedMemories rules for
    /// virtual nodes; stored entries need no filter — the batch loop only
    /// inserts a token into an α-memory when its turn comes.
    ///
    /// This is the *enumeration* path: nested mode always takes it, and
    /// indexed mode falls back to it when no registered index applies.
    fn candidates(
        &self,
        aid: AlphaId,
        catalog: &Catalog,
        visible: &dyn Fn(Tid) -> bool,
    ) -> QueryResult<Vec<BoundVar>> {
        let alpha = self.alpha(aid);
        match alpha.kind {
            AlphaKind::Virtual => {
                let rel_ref = catalog.require(&alpha.rel)?;
                let rel_b = rel_ref.borrow();
                let scanned = rel_b.len() as u64;
                let out: Vec<BoundVar> = rel_b
                    .scan()
                    .filter(|(tid, _)| visible(*tid))
                    .filter(|(_, t)| alpha.pred_matches(t, None))
                    .map(|(tid, t)| BoundVar::plain(tid, t.clone()))
                    .collect();
                if let Some(tr) = &self.trace {
                    tr.record(TraceEventKind::VirtualScan {
                        rule: alpha.rule.0,
                        var: alpha.var,
                        scanned,
                        served: out.len() as u64,
                    });
                }
                Ok(out)
            }
            _ => Ok(alpha
                .entries()
                .map(|e| BoundVar {
                    tid: e.tid,
                    tuple: e.tuple.clone(),
                    prev: e.prev.clone(),
                })
                .collect()),
        }
    }

    /// Fill α-memories from current data and rebuild β-memories bottom-up.
    pub fn prime(&mut self, id: RuleId, catalog: &Catalog) -> QueryResult<()> {
        let rule = self
            .rules
            .get(&id.0)
            .ok_or_else(|| QueryError::Semantic(format!("unknown rule {id}")))?;
        let alpha_ids = rule.alphas.clone();
        for aid in &alpha_ids {
            if !self.alpha(*aid).kind.stores_entries() {
                continue;
            }
            let rel = self.alpha(*aid).rel.clone();
            let rel_ref = catalog.require(&rel)?;
            let entries: Vec<(Tid, AlphaEntry)> = {
                let a = self.alpha(*aid);
                rel_ref
                    .borrow()
                    .scan()
                    .filter(|(_, t)| a.pred_matches(t, None))
                    .map(|(tid, t)| {
                        (
                            tid,
                            AlphaEntry {
                                tid: Some(tid),
                                tuple: t.clone(),
                                prev: None,
                            },
                        )
                    })
                    .collect()
            };
            let a = self.alphas[aid.0].as_mut().unwrap();
            for (tid, e) in entries {
                a.insert(tid, e);
            }
        }
        // β levels bottom-up: enumeration is the right tool here (every
        // pair is new), but the partials land through `BetaMemory::insert`
        // so the β indexes are populated for the token path
        let nvars = alpha_ids.len();
        let mut levels: Vec<Vec<Partial>> = Vec::with_capacity(nvars);
        for lvl in 0..nvars {
            let mut out = Vec::new();
            let rule = &self.rules[&id.0];
            let cands = self.candidates(alpha_ids[lvl], catalog, &|_| true)?;
            if lvl == 0 {
                for cand in cands {
                    out.push(vec![cand]);
                }
            } else {
                for left in &levels[lvl - 1] {
                    for cand in &cands {
                        if self.join_passes(rule, lvl, left, cand, &[])? {
                            let mut p = left.clone();
                            p.push(cand.clone());
                            out.push(p);
                        }
                    }
                }
            }
            levels.push(out);
        }
        let rule = self.rules.get_mut(&id.0).unwrap();
        for (lvl, partials) in levels.into_iter().enumerate() {
            for p in partials {
                if lvl == nvars - 1 {
                    rule.pnode.push(p.clone());
                }
                rule.betas[lvl].insert(p, nvars);
            }
        }
        Ok(())
    }

    /// Test the join conjuncts at level `lvl` for `(left, cand)`, skipping
    /// the conjunct indices an index probe already answered.
    fn join_passes(
        &self,
        rule: &ReteRule,
        lvl: usize,
        left: &[BoundVar],
        cand: &BoundVar,
        skip: &[usize],
    ) -> QueryResult<bool> {
        let nvars = rule.alphas.len();
        let mut row = row_of(left, nvars);
        row.slots[lvl] = Some(cand.clone());
        for &ci in &rule.level_conjuncts[lvl] {
            if skip.contains(&ci) {
                continue;
            }
            if !eval_pred(&rule.join_conjuncts[ci], &row)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Right activation at level `var > 0`: join the seed against the left
    /// β-memory. Indexed mode probes the memory's equi or band index;
    /// nested mode (and indexed fallbacks) enumerate every partial.
    fn right_activate(
        &self,
        rule: &ReteRule,
        rule_id: RuleId,
        var: usize,
        seed: &BoundVar,
    ) -> QueryResult<Vec<Partial>> {
        let beta = &rule.betas[var - 1];
        let mut out = Vec::new();
        if rule.indexed {
            if let Some(ix) = &beta.equi {
                beta.probes.set(beta.probes.get() + 1);
                // probe key packed straight off the token's attributes —
                // no allocation, no string clones; a Null component joins
                // nothing, so the buckets serve nothing
                let mut key = Some(KeyBuilder::new(ix.probe_attrs.len()));
                for &attr in &ix.probe_attrs {
                    let v = seed.tuple.get(attr);
                    if v.is_null() {
                        key = None;
                        break;
                    }
                    if let Some(k) = &mut key {
                        k.push(v);
                    }
                }
                let key = key.map(KeyBuilder::finish);
                let mut served = 0u64;
                if let Some(bucket) = key.as_ref().and_then(|k| ix.buckets.get(k)) {
                    for seq in bucket {
                        let left = &beta.partials[seq];
                        served += 1;
                        if self.join_passes(rule, var, left, seed, &ix.conjuncts)? {
                            let mut p = left.clone();
                            p.push(seed.clone());
                            out.push(p);
                        }
                    }
                }
                for seq in &beta.unindexed {
                    let left = &beta.partials[seq];
                    if self.join_passes(rule, var, left, seed, &[])? {
                        let mut p = left.clone();
                        p.push(seed.clone());
                        out.push(p);
                    }
                }
                if served > 0 {
                    beta.hits.set(beta.hits.get() + 1);
                }
                if let Some(obs) = &self.obs {
                    obs.with_node(rule_id, var, |n| {
                        n.beta_probes += 1;
                        if served > 0 {
                            n.beta_hits += 1;
                        }
                    });
                }
                if let Some(tr) = &self.trace {
                    tr.record(TraceEventKind::BetaProbe {
                        rule: rule_id.0,
                        var,
                        candidates: served + beta.unindexed.len() as u64,
                        indexed: true,
                    });
                }
                return Ok(out);
            }
            if let Some(bx) = &beta.band {
                let mut row = Row::unbound(rule.alphas.len());
                row.slots[var] = Some(seed.clone());
                // a key evaluation error falls through to enumeration, so
                // the per-pair error (if any partial exists) surfaces
                // exactly as nested mode would surface it
                if let Ok(key) = eval(&bx.key_expr, &row) {
                    beta.probes.set(beta.probes.get() + 1);
                    let mut served = 0u64;
                    if !key.is_null() {
                        let mut seqs = Vec::new();
                        bx.islist.stab_with(&key, |id| {
                            if let Some(&s) = bx.by_interval.get(&id) {
                                seqs.push(s);
                            }
                        });
                        for seq in seqs {
                            let left = &beta.partials[&seq];
                            served += 1;
                            if self.join_passes(rule, var, left, seed, &bx.conjuncts)? {
                                let mut p = left.clone();
                                p.push(seed.clone());
                                out.push(p);
                            }
                        }
                    }
                    if served > 0 {
                        beta.hits.set(beta.hits.get() + 1);
                    }
                    if let Some(obs) = &self.obs {
                        obs.with_node(rule_id, var, |n| {
                            n.beta_probes += 1;
                            if served > 0 {
                                n.beta_hits += 1;
                            }
                        });
                    }
                    if let Some(tr) = &self.trace {
                        tr.record(TraceEventKind::BetaProbe {
                            rule: rule_id.0,
                            var,
                            candidates: served,
                            indexed: true,
                        });
                    }
                    return Ok(out);
                }
            }
        }
        for left in beta.partials.values() {
            if self.join_passes(rule, var, left, seed, &[])? {
                let mut p = left.clone();
                p.push(seed.clone());
                out.push(p);
            }
        }
        if let Some(tr) = &self.trace {
            tr.record(TraceEventKind::BetaProbe {
                rule: rule_id.0,
                var,
                candidates: beta.partials.len() as u64,
                indexed: false,
            });
        }
        Ok(out)
    }

    /// Process one token.
    pub fn process_token(&mut self, token: &Token, catalog: &Catalog) -> QueryResult<()> {
        self.process_batch(std::slice::from_ref(token), catalog)
    }

    /// Process a batch of tokens in order. As in [`crate::treat`], changes
    /// are already applied to base relations, so virtual α-memories hide
    /// tuples whose positive tokens are still pending.
    pub fn process_batch(&mut self, tokens: &[Token], catalog: &Catalog) -> QueryResult<()> {
        self.tokens_processed += tokens.len() as u64;
        if let Some(obs) = &self.obs {
            obs.tokens.set(obs.tokens.get() + tokens.len() as u64);
        }
        let mut pending: HashMap<String, HashSet<u64>> = HashMap::new();
        for t in tokens {
            if t.kind.is_positive() {
                pending.entry(t.rel.clone()).or_default().insert(t.tid.0);
            }
        }
        for t in tokens {
            if let Some(tr) = &self.trace {
                tr.record(TraceEventKind::TokenEmitted {
                    kind: t.kind.to_string(),
                    rel: t.rel.clone(),
                    tid: t.tid.0,
                    desc: t.to_string(),
                });
            }
            if t.kind.is_positive() {
                if let Some(set) = pending.get_mut(&t.rel) {
                    set.remove(&t.tid.0);
                }
                self.process_positive(t, catalog, &pending)?;
            } else {
                self.process_negative(t);
            }
        }
        Ok(())
    }

    /// Run one α-test through the observability tiers (same contract as
    /// the TREAT network's helper).
    fn alpha_test(
        &self,
        aid: AlphaId,
        _token: &Token,
        test: impl FnOnce(&AlphaNode) -> bool,
    ) -> bool {
        let a = self.alpha(aid);
        AlphaCounters::bump(&a.counters.tests, 1);
        let start = self.obs.as_ref().map(|_| Instant::now());
        let pass = test(a);
        if pass {
            AlphaCounters::bump(&a.counters.passes, 1);
            if let Some(tr) = &self.trace {
                tr.record(TraceEventKind::AlphaPass {
                    rule: a.rule.0,
                    var: a.var,
                });
            }
        }
        if let Some(obs) = &self.obs {
            obs.with_node(a.rule, a.var, |n| {
                n.tokens_in += 1;
                if pass {
                    n.tokens_out += 1;
                }
                if let Some(t0) = start {
                    n.alpha_test.record(t0.elapsed().as_nanos() as u64);
                }
            });
        }
        pass
    }

    fn process_positive(
        &mut self,
        token: &Token,
        catalog: &Catalog,
        pending: &HashMap<String, HashSet<u64>>,
    ) -> QueryResult<()> {
        let candidates = self.selnet.candidates(&token.rel, &token.tuple);
        if let Some(tr) = &self.trace {
            tr.record(TraceEventKind::SelnetProbe {
                rel: token.rel.clone(),
                candidates: candidates.len() as u64,
            });
        }
        let mut matched: Vec<AlphaId> = candidates
            .into_iter()
            .filter(|aid| {
                self.alpha_test(*aid, token, |a| {
                    a.pred_matches(&token.tuple, token.old.as_ref())
                })
            })
            .collect();
        matched.sort_by_key(|a| a.0);
        matched.dedup();
        let mut processed: HashSet<usize> = HashSet::new();
        for aid in matched {
            processed.insert(aid.0);
            let (rule_id, var) = {
                let a = self.alphas[aid.0].as_mut().unwrap();
                if a.kind.stores_entries() {
                    a.insert(
                        token.tid,
                        AlphaEntry {
                            tid: Some(token.tid),
                            tuple: token.tuple.clone(),
                            prev: token.old.clone(),
                        },
                    );
                    AlphaCounters::bump(&a.counters.inserted, 1);
                }
                (a.rule, a.var)
            };
            if let Some(obs) = &self.obs {
                let a = self.alpha(aid);
                if a.kind.stores_entries() {
                    obs.with_node(rule_id, var, |n| n.entries_inserted += 1);
                }
            }
            let seed = BoundVar {
                tid: Some(token.tid),
                tuple: token.tuple.clone(),
                prev: token.old.clone(),
            };
            let join_start = self.obs.as_ref().map(|_| Instant::now());
            // right activation at level `var`
            let new_partials: Vec<Partial> = {
                let rule = &self.rules[&rule_id.0];
                if var == 0 {
                    vec![vec![seed]]
                } else {
                    self.right_activate(rule, rule_id, var, &seed)?
                }
            };
            {
                let rule = self.rules.get_mut(&rule_id.0).unwrap();
                rule.tokens_in += 1;
                if var > 0 {
                    rule.join_probes += 1;
                }
            }
            if let Some(obs) = &self.obs {
                obs.with_rule(rule_id, |r| {
                    r.tokens_in += 1;
                    if var > 0 {
                        r.join_probes += 1;
                    }
                });
            }
            self.insert_partials(
                rule_id,
                var,
                new_partials,
                token,
                &processed,
                catalog,
                pending,
            )?;
            if let Some(obs) = &self.obs {
                if let Some(t0) = join_start {
                    if var > 0 {
                        obs.with_rule(rule_id, |r| {
                            r.beta_join.record(t0.elapsed().as_nanos() as u64)
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Extend `left` at `level` by probing the stored α-memory's composite
    /// or band index (indexed mode's cascade path). The probe answers its
    /// own conjuncts; the rest retest. A key evaluation error falls back
    /// to full enumeration so per-pair errors surface as nested mode
    /// would.
    #[allow(clippy::too_many_arguments)]
    fn probe_extend(
        &self,
        rule: &ReteRule,
        level: usize,
        alpha: &AlphaNode,
        comp: Option<&CompositeSpec>,
        band: Option<&BandSpec>,
        left: &[BoundVar],
        out: &mut Vec<Partial>,
    ) -> QueryResult<()> {
        let nvars = rule.alphas.len();
        let row = row_of(left, nvars);
        let mut served = 0u64;
        let mut used = false;
        let mut hit = false;
        if let Some(spec) = comp {
            let key: QueryResult<SmallKey> = spec
                .key_exprs
                .iter()
                .try_fold(KeyBuilder::new(spec.key_exprs.len()), |mut kb, e| {
                    kb.push(&eval(e, &row)?);
                    Ok(kb)
                })
                .map(KeyBuilder::finish);
            if let Ok(key) = key {
                used = true;
                AlphaCounters::bump(&alpha.counters.index_probes, 1);
                for e in alpha
                    .probe_join_index_packed(&spec.attrs, &key)
                    .expect("probe found a registered index")
                {
                    served += 1;
                    let cand = BoundVar {
                        tid: e.tid,
                        tuple: e.tuple.clone(),
                        prev: e.prev.clone(),
                    };
                    if self.join_passes(rule, level, left, &cand, &spec.conjuncts)? {
                        let mut p = left.to_vec();
                        p.push(cand);
                        out.push(p);
                    }
                }
                if served > 0 {
                    hit = true;
                    AlphaCounters::bump(&alpha.counters.index_hits, 1);
                }
            }
        } else if let Some(spec) = band {
            if let Ok(key) = eval(&spec.key_expr, &row) {
                used = true;
                AlphaCounters::bump(&alpha.counters.range_probes, 1);
                let hits = alpha
                    .probe_range_index(&spec.shape, &key)
                    .expect("probe found a registered index");
                if !hits.is_empty() {
                    hit = true;
                    AlphaCounters::bump(&alpha.counters.range_hits, 1);
                }
                for e in hits {
                    served += 1;
                    let cand = BoundVar {
                        tid: e.tid,
                        tuple: e.tuple.clone(),
                        prev: e.prev.clone(),
                    };
                    if self.join_passes(rule, level, left, &cand, &spec.conjuncts)? {
                        let mut p = left.to_vec();
                        p.push(cand);
                        out.push(p);
                    }
                }
            }
        }
        if !used {
            for e in alpha.entries() {
                served += 1;
                let cand = BoundVar {
                    tid: e.tid,
                    tuple: e.tuple.clone(),
                    prev: e.prev.clone(),
                };
                if self.join_passes(rule, level, left, &cand, &[])? {
                    let mut p = left.to_vec();
                    p.push(cand);
                    out.push(p);
                }
            }
        }
        AlphaCounters::bump(&alpha.counters.join_candidates, served);
        if used {
            AlphaCounters::bump(&alpha.counters.indexed_candidates, served);
        } else {
            AlphaCounters::bump(&alpha.counters.scanned_candidates, served);
        }
        if let Some(tr) = &self.trace {
            tr.record(TraceEventKind::BetaProbe {
                rule: alpha.rule.0,
                var: alpha.var,
                candidates: served,
                indexed: used,
            });
        }
        if let Some(obs) = &self.obs {
            obs.with_node(alpha.rule, alpha.var, |n| {
                n.join_candidates += served;
                if used && comp.is_some() {
                    n.index_probes += 1;
                    if hit {
                        n.index_hits += 1;
                    }
                    n.indexed_candidates += served;
                } else if used {
                    n.range_probes += 1;
                    if hit {
                        n.range_hits += 1;
                    }
                    n.indexed_candidates += served;
                } else {
                    n.scanned_candidates += served;
                }
            });
        }
        Ok(())
    }

    /// Insert partials at level `lvl` and cascade them down the β chain.
    ///
    /// The access path per level is decided once, before the left loop —
    /// it depends only on which variables are bound (all of `0..level`),
    /// never on the left row's values — so nested mode keeps the hoisted
    /// single enumeration of the old implementation, and indexed mode
    /// probes per left row.
    #[allow(clippy::too_many_arguments)]
    fn insert_partials(
        &mut self,
        rule_id: RuleId,
        lvl: usize,
        partials: Vec<Partial>,
        token: &Token,
        processed: &HashSet<usize>,
        catalog: &Catalog,
        pending: &HashMap<String, HashSet<u64>>,
    ) -> QueryResult<()> {
        if partials.is_empty() {
            return Ok(());
        }
        let nvars = self.rules[&rule_id.0].alphas.len();
        // extend level by level
        let mut current = partials;
        for level in lvl..nvars {
            if level > lvl {
                let rule = &self.rules[&rule_id.0];
                let aid = rule.alphas[level];
                let alpha = self.alpha(aid);
                let bound: u64 = (1u64 << level) - 1;
                let probing = rule.indexed && alpha.kind.stores_entries();
                let comp = if probing {
                    rule.plan.composite[level]
                        .iter()
                        .find(|s| s.others_mask & !bound == 0 && alpha.has_join_index(&s.attrs))
                } else {
                    None
                };
                let band = if probing && comp.is_none() {
                    rule.plan.bands[level]
                        .iter()
                        .find(|s| s.others_mask & !bound == 0 && alpha.has_range_index(&s.shape))
                } else {
                    None
                };
                let mut next = Vec::new();
                if comp.is_some() || band.is_some() {
                    for left in &current {
                        self.probe_extend(rule, level, alpha, comp, band, left, &mut next)?;
                    }
                } else {
                    let empty = HashSet::new();
                    let pend = pending.get(&alpha.rel).unwrap_or(&empty);
                    let rel = alpha.rel.clone();
                    let visible = move |tid: Tid| -> bool {
                        if pend.contains(&tid.0) {
                            return false;
                        }
                        rel != token.rel || tid != token.tid || processed.contains(&aid.0)
                    };
                    let cands = self.candidates(aid, catalog, &visible)?;
                    let rule = &self.rules[&rule_id.0];
                    for left in &current {
                        for cand in &cands {
                            if self.join_passes(rule, level, left, cand, &[])? {
                                let mut p = left.clone();
                                p.push(cand.clone());
                                next.push(p);
                            }
                        }
                    }
                }
                current = next;
                if current.is_empty() {
                    return Ok(());
                }
            }
            let inserted = current.len() as u64;
            let rule = self.rules.get_mut(&rule_id.0).unwrap();
            for p in &current {
                rule.betas[level].insert(p.clone(), nvars);
            }
            if level == nvars - 1 {
                if let Some(tr) = &self.trace {
                    for p in &current {
                        tr.record_instantiation(
                            rule_id.0,
                            p.iter().map(|b| b.tid.map(|t| t.0)).collect(),
                        );
                    }
                }
                rule.pnode_inserts += inserted;
                for p in &current {
                    rule.pnode.push(p.clone());
                }
                if let Some(obs) = &self.obs {
                    obs.with_rule(rule_id, |r| r.pnode_inserts += inserted);
                }
            }
        }
        Ok(())
    }

    fn process_negative(&mut self, token: &Token) {
        let alpha_ids: Vec<AlphaId> = self.selnet.alphas_on(&token.rel).to_vec();
        for aid in alpha_ids {
            let (rule_id, var) = {
                let a = self.alphas[aid.0].as_mut().unwrap();
                a.remove(token.tid);
                (a.rule, a.var)
            };
            let rule = self.rules.get_mut(&rule_id.0).unwrap();
            let nvars = rule.alphas.len();
            for beta in rule.betas[var..].iter_mut() {
                beta.remove_where(var, token.tid, nvars);
            }
            rule.pnode.retract(var, token.tid);
        }
    }

    /// Remove a rule and its α-nodes.
    pub fn remove_rule(&mut self, id: RuleId) {
        let Some(rule) = self.rules.remove(&id.0) else {
            return;
        };
        for aid in rule.alphas {
            self.selnet.unsubscribe(aid);
            self.alphas[aid.0] = None;
            self.free.push(aid.0);
        }
    }

    /// The P-node of a rule.
    pub fn pnode(&self, id: RuleId) -> Option<&Pnode> {
        self.rules.get(&id.0).map(|r| &r.pnode)
    }

    /// Drain a rule's P-node (consumed instantiations at rule firing).
    pub fn drain_pnode(&mut self, id: RuleId) -> Vec<Vec<BoundVar>> {
        self.rules
            .get_mut(&id.0)
            .map(|r| r.pnode.drain())
            .unwrap_or_default()
    }

    /// Replace a rule's P-node rows wholesale (crash recovery: priming
    /// rebuilds α/β state from relations, but a P-node also carries
    /// *history* — matches consumed by earlier firings are gone — so the
    /// recovered engine overwrites the primed rows with the snapshotted
    /// ones). No-op for unknown rules.
    pub fn set_pnode_rows(&mut self, id: RuleId, rows: Vec<Vec<BoundVar>>) {
        if let Some(r) = self.rules.get_mut(&id.0) {
            r.pnode.clear();
            for row in rows {
                r.pnode.push(row);
            }
        }
    }

    /// Rules whose P-node is non-empty, ascending by id.
    pub fn rules_with_matches(&self) -> Vec<RuleId> {
        self.rules
            .iter()
            .filter(|(_, r)| !r.pnode.is_empty())
            .map(|(id, _)| RuleId(*id))
            .collect()
    }

    /// Flush per-transition state. The Rete baseline compiles pattern-only
    /// rules (no dynamic α-memories, no event-gated P-nodes), so this is a
    /// no-op — it exists so the engine can drive either network uniformly.
    pub fn flush_transition_state(&mut self) {}

    /// Memory statistics for one rule (same surface as
    /// [`crate::Network::rule_stats`], plus the β fields only Rete fills).
    pub fn rule_stats(&self, id: RuleId) -> Option<RuleStats> {
        let rule = self.rules.get(&id.0)?;
        let mut s = RuleStats {
            pnode_rows: rule.pnode.len(),
            pnode_bytes: rule.pnode.heap_size(),
            tokens_in: rule.tokens_in,
            join_probes: rule.join_probes,
            pnode_inserts: rule.pnode_inserts,
            ..Default::default()
        };
        for aid in &rule.alphas {
            let a = self.alpha(*aid);
            s.alpha_entries += a.len();
            s.alpha_bytes += a.heap_size();
            s.alpha_tests += a.counters.tests.get();
            s.alpha_passes += a.counters.passes.get();
            s.virtual_scans += a.counters.virtual_scans.get();
            s.virtual_scanned_tuples += a.counters.scanned_tuples.get();
            s.index_probes += a.counters.index_probes.get();
            s.index_hits += a.counters.index_hits.get();
            s.indexed_candidates += a.counters.indexed_candidates.get();
            s.scanned_candidates += a.counters.scanned_candidates.get();
            s.range_probes += a.counters.range_probes.get();
            s.range_hits += a.counters.range_hits.get();
            if a.kind == AlphaKind::Virtual {
                s.virtual_join_candidates += a.counters.join_candidates.get();
            } else {
                s.stored_join_candidates += a.counters.join_candidates.get();
            }
        }
        for b in &rule.betas {
            s.beta_bytes += b.heap_size();
            s.beta_probes += b.probes.get();
            s.beta_hits += b.hits.get();
        }
        Some(s)
    }

    /// Aggregate statistics across the network (same surface as
    /// [`crate::Network::stats`], plus the β fields only Rete fills).
    pub fn stats(&self) -> NetworkStats {
        let (selnet_probes, selnet_candidates) = self.selnet.probe_counts();
        let stab = self.selnet.stab_stats();
        let mut s = NetworkStats {
            rules: self.rules.len(),
            selnet_bytes: self.selnet.approx_size_bytes(),
            tokens_processed: self.tokens_processed,
            selnet_probes,
            selnet_candidates,
            islist_stabs: stab.stabs.get(),
            islist_nodes_visited: stab.nodes_visited.get(),
            ..Default::default()
        };
        for a in self.alphas.iter().flatten() {
            s.alpha_nodes += 1;
            if a.kind == AlphaKind::Virtual {
                s.virtual_alpha_nodes += 1;
            }
            s.alpha_entries += a.len();
            s.alpha_bytes += a.heap_size();
            s.alpha_tests += a.counters.tests.get();
            s.alpha_passes += a.counters.passes.get();
            s.virtual_scans += a.counters.virtual_scans.get();
            s.virtual_scanned_tuples += a.counters.scanned_tuples.get();
            s.index_probes += a.counters.index_probes.get();
            s.index_hits += a.counters.index_hits.get();
            s.indexed_candidates += a.counters.indexed_candidates.get();
            s.scanned_candidates += a.counters.scanned_candidates.get();
            s.range_probes += a.counters.range_probes.get();
            s.range_hits += a.counters.range_hits.get();
            if a.kind == AlphaKind::Virtual {
                s.virtual_join_candidates += a.counters.join_candidates.get();
            } else {
                s.stored_join_candidates += a.counters.join_candidates.get();
            }
        }
        for r in self.rules.values() {
            s.pnode_rows += r.pnode.len();
            s.pnode_bytes += r.pnode.heap_size();
            s.join_probes += r.join_probes;
            s.pnode_inserts += r.pnode_inserts;
            for b in &r.betas {
                s.beta_bytes += b.heap_size();
                s.beta_probes += b.probes.get();
                s.beta_hits += b.hits.get();
            }
        }
        s
    }

    /// The α-node kinds of a rule's variables, in variable order.
    pub fn alpha_kinds(&self, id: RuleId) -> Option<Vec<AlphaKind>> {
        let rule = self.rules.get(&id.0)?;
        Some(rule.alphas.iter().map(|a| self.alpha(*a).kind).collect())
    }

    /// Per-variable topology of a compiled rule (see
    /// [`crate::Network::rule_topology`]).
    pub fn rule_topology(&self, id: RuleId) -> Option<RuleTopology> {
        let rule = self.rules.get(&id.0)?;
        let vars = rule
            .pnode
            .cols()
            .iter()
            .zip(rule.alphas.iter())
            .map(|(col, aid)| (col.var.clone(), col.rel.clone(), self.alpha(*aid).kind))
            .collect();
        Some((vars, rule.join_conjuncts.len()))
    }

    /// Total bytes held in β-memories, partials and indexes both (the
    /// Rete-specific storage cost). The last β level duplicates the P-node
    /// by construction.
    pub fn beta_bytes(&self) -> usize {
        self.rules
            .values()
            .flat_map(|r| r.betas.iter())
            .map(BetaMemory::heap_size)
            .sum()
    }

    /// Total bytes held in α-memories, entries and indexes both.
    pub fn alpha_bytes(&self) -> usize {
        self.alphas.iter().flatten().map(AlphaNode::heap_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::EventSpecifier;
    use crate::treat::{Network, VirtualPolicy};
    use ariel_query::{parse_expr, FromItem, Resolver};
    use ariel_storage::{AttrType, Schema, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create(
            "emp",
            Schema::of(&[("sal", AttrType::Int), ("dno", AttrType::Int)]),
        )
        .unwrap();
        c.create(
            "dept",
            Schema::of(&[("dno", AttrType::Int), ("floor", AttrType::Int)]),
        )
        .unwrap();
        c
    }

    fn rcond(c: &Catalog, qual: &str, from: &[(&str, &str)]) -> ResolvedCondition {
        let e = parse_expr(qual).unwrap();
        let from: Vec<FromItem> = from
            .iter()
            .map(|(v, r)| FromItem {
                var: v.to_string(),
                rel: r.to_string(),
            })
            .collect();
        Resolver::new(c)
            .resolve_condition(None, Some(&e), &from)
            .unwrap()
    }

    fn ins(c: &Catalog, rel: &str, vals: &[i64]) -> Token {
        let r = c.get(rel).unwrap();
        let tid = r
            .borrow_mut()
            .insert(vals.iter().map(|&v| Value::Int(v)).collect::<Vec<Value>>())
            .unwrap();
        let t = r.borrow().get(tid).cloned().unwrap();
        Token::plus(rel, tid, t, EventSpecifier::Append)
    }

    fn ins_vals(c: &Catalog, rel: &str, vals: Vec<Value>) -> Token {
        let r = c.get(rel).unwrap();
        let tid = r.borrow_mut().insert(vals).unwrap();
        let t = r.borrow().get(tid).cloned().unwrap();
        Token::plus(rel, tid, t, EventSpecifier::Append)
    }

    fn del(c: &Catalog, token: &Token) -> Token {
        let r = c.get(&token.rel).unwrap();
        let old = r.borrow_mut().delete(token.tid).unwrap();
        Token::minus(token.rel.clone(), token.tid, old, EventSpecifier::Delete)
    }

    fn nested() -> ReteNetwork {
        let mut n = ReteNetwork::new();
        n.set_mode(ReteMode::Nested);
        n
    }

    #[test]
    fn rete_single_variable() {
        let cat = catalog();
        let mut net = ReteNetwork::new();
        net.add_rule(RuleId(1), &rcond(&cat, "emp.sal > 100", &[]), &cat)
            .unwrap();
        net.prime(RuleId(1), &cat).unwrap();
        let t = ins(&cat, "emp", &[200, 1]);
        net.process_token(&t, &cat).unwrap();
        assert_eq!(net.pnode(RuleId(1)).unwrap().len(), 1);
        let low = ins(&cat, "emp", &[50, 1]);
        net.process_token(&low, &cat).unwrap();
        assert_eq!(net.pnode(RuleId(1)).unwrap().len(), 1);
        let d = del(&cat, &t);
        net.process_token(&d, &cat).unwrap();
        assert_eq!(net.pnode(RuleId(1)).unwrap().len(), 0);
    }

    #[test]
    fn rete_matches_treat_under_random_stream() {
        // the real test: Rete (default indexed mode) and A-TREAT produce
        // identical P-node sizes for the same token stream
        let cat = catalog();
        let qual = "emp.sal > 10 and emp.dno = dept.dno and dept.floor < 5";
        let mut rete = ReteNetwork::new();
        rete.add_rule(RuleId(1), &rcond(&cat, qual, &[]), &cat)
            .unwrap();
        rete.prime(RuleId(1), &cat).unwrap();
        let mut treat = Network::new();
        treat
            .add_rule(
                RuleId(1),
                &rcond(&cat, qual, &[]),
                &VirtualPolicy::AllStored,
                &cat,
            )
            .unwrap();
        treat.prime(RuleId(1), &cat).unwrap();

        let mut live: Vec<Token> = Vec::new();
        let mut seed = 42u64;
        let mut rnd = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 33) as i64
        };
        for step in 0..120 {
            let tok = if step % 4 == 3 && !live.is_empty() {
                let k = (rnd() as usize) % live.len();
                let victim = live.swap_remove(k);
                del(&cat, &victim)
            } else if step % 2 == 0 {
                let t = ins(&cat, "emp", &[rnd() % 30, rnd() % 6]);
                live.push(t.clone());
                t
            } else {
                let t = ins(&cat, "dept", &[rnd() % 6, rnd() % 8]);
                live.push(t.clone());
                t
            };
            rete.process_token(&tok, &cat).unwrap();
            treat.process_token(&tok, &cat).unwrap();
            let a = rete.pnode(RuleId(1)).unwrap();
            let b = treat.pnode(RuleId(1)).unwrap();
            assert_eq!(a.len(), b.len(), "divergence at step {step}");
        }
    }

    /// The three-way oracle at module scope: indexed Rete, nested Rete and
    /// TREAT agree step by step on an equi+selection rule under churn.
    #[test]
    fn indexed_rete_matches_nested_rete_and_treat() {
        let cats = [catalog(), catalog(), catalog()];
        let qual = "emp.sal > 10 and emp.dno = dept.dno and dept.floor < 5";
        let mut indexed = ReteNetwork::new();
        indexed
            .add_rule(RuleId(1), &rcond(&cats[0], qual, &[]), &cats[0])
            .unwrap();
        indexed.prime(RuleId(1), &cats[0]).unwrap();
        let mut nest = nested();
        nest.add_rule(RuleId(1), &rcond(&cats[1], qual, &[]), &cats[1])
            .unwrap();
        nest.prime(RuleId(1), &cats[1]).unwrap();
        let mut treat = Network::new();
        treat
            .add_rule(
                RuleId(1),
                &rcond(&cats[2], qual, &[]),
                &VirtualPolicy::AllStored,
                &cats[2],
            )
            .unwrap();
        treat.prime(RuleId(1), &cats[2]).unwrap();

        let mut seed = 7u64;
        let mut rnd = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 33) as i64
        };
        let mut live: Vec<[Token; 3]> = Vec::new();
        for step in 0..160 {
            let choice = rnd();
            if choice % 4 == 3 && !live.is_empty() {
                let k = (rnd() as usize) % live.len();
                let [ta, tb, tc] = live.swap_remove(k);
                indexed
                    .process_token(&del(&cats[0], &ta), &cats[0])
                    .unwrap();
                nest.process_token(&del(&cats[1], &tb), &cats[1]).unwrap();
                treat.process_token(&del(&cats[2], &tc), &cats[2]).unwrap();
            } else {
                let (rel, vals) = if choice % 2 == 0 {
                    ("emp", [rnd() % 30, rnd() % 6])
                } else {
                    ("dept", [rnd() % 6, rnd() % 8])
                };
                let toks = [
                    ins(&cats[0], rel, &vals),
                    ins(&cats[1], rel, &vals),
                    ins(&cats[2], rel, &vals),
                ];
                indexed.process_token(&toks[0], &cats[0]).unwrap();
                nest.process_token(&toks[1], &cats[1]).unwrap();
                treat.process_token(&toks[2], &cats[2]).unwrap();
                live.push(toks);
            }
            let a = indexed.pnode(RuleId(1)).unwrap().len();
            let b = nest.pnode(RuleId(1)).unwrap().len();
            let c = treat.pnode(RuleId(1)).unwrap().len();
            assert_eq!(a, b, "indexed vs nested diverged at step {step}");
            assert_eq!(a, c, "indexed vs TREAT diverged at step {step}");
        }
        // the two modes did measurably different work
        assert!(indexed.stats().beta_probes > 0, "indexed mode probed β");
        assert_eq!(nest.stats().beta_probes, 0, "nested mode never probes");
    }

    /// Band joins through the β band index: `dept` binds first, so the
    /// level-0 β-memory interval-indexes each dept's `(dno, floor)` span
    /// and emp right activations stab it with `emp.sal`.
    #[test]
    fn indexed_rete_band_join_matches_nested() {
        let qual = "dept.dno < emp.sal and emp.sal <= dept.floor";
        let from = [("dept", "dept"), ("emp", "emp")];
        let cat_a = catalog();
        let cat_b = catalog();
        let mut indexed = ReteNetwork::new();
        indexed
            .add_rule(RuleId(1), &rcond(&cat_a, qual, &from), &cat_a)
            .unwrap();
        indexed.prime(RuleId(1), &cat_a).unwrap();
        let mut nest = nested();
        nest.add_rule(RuleId(1), &rcond(&cat_b, qual, &from), &cat_b)
            .unwrap();
        nest.prime(RuleId(1), &cat_b).unwrap();

        let mut seed = 99u64;
        let mut rnd = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 33) as i64
        };
        let mut live: Vec<(Token, Token)> = Vec::new();
        for step in 0..140 {
            let choice = rnd();
            if choice % 5 == 4 && !live.is_empty() {
                let k = (rnd() as usize) % live.len();
                let (ta, tb) = live.swap_remove(k);
                indexed.process_token(&del(&cat_a, &ta), &cat_a).unwrap();
                nest.process_token(&del(&cat_b, &tb), &cat_b).unwrap();
            } else {
                let (rel, vals) = if choice % 2 == 0 {
                    ("dept", [rnd() % 10, rnd() % 20])
                } else {
                    ("emp", [rnd() % 20, rnd() % 6])
                };
                let ta = ins(&cat_a, rel, &vals);
                let tb = ins(&cat_b, rel, &vals);
                indexed.process_token(&ta, &cat_a).unwrap();
                nest.process_token(&tb, &cat_b).unwrap();
                live.push((ta, tb));
            }
            assert_eq!(
                indexed.pnode(RuleId(1)).unwrap().len(),
                nest.pnode(RuleId(1)).unwrap().len(),
                "band divergence at step {step}"
            );
        }
        let s = indexed.stats();
        assert!(s.beta_probes > 0, "emp activations stab the β band index");
        assert!(s.beta_hits <= s.beta_probes);
    }

    /// Null join keys: tuples with a Null `dno` must join nothing, in both
    /// modes, through inserts and deletes.
    #[test]
    fn indexed_rete_null_keys_match_nested() {
        let qual = "emp.dno = dept.dno";
        let cat_a = catalog();
        let cat_b = catalog();
        let mut indexed = ReteNetwork::new();
        indexed
            .add_rule(RuleId(1), &rcond(&cat_a, qual, &[]), &cat_a)
            .unwrap();
        indexed.prime(RuleId(1), &cat_a).unwrap();
        let mut nest = nested();
        nest.add_rule(RuleId(1), &rcond(&cat_b, qual, &[]), &cat_b)
            .unwrap();
        nest.prime(RuleId(1), &cat_b).unwrap();

        let rows: Vec<(&str, Vec<Value>)> = vec![
            ("emp", vec![Value::Int(10), Value::Null]),
            ("dept", vec![Value::Null, Value::Int(1)]),
            ("emp", vec![Value::Int(20), Value::Int(5)]),
            ("dept", vec![Value::Int(5), Value::Int(2)]),
            ("emp", vec![Value::Int(30), Value::Null]),
            ("dept", vec![Value::Int(5), Value::Int(3)]),
        ];
        let mut live = Vec::new();
        for (rel, vals) in rows {
            let ta = ins_vals(&cat_a, rel, vals.clone());
            let tb = ins_vals(&cat_b, rel, vals);
            indexed.process_token(&ta, &cat_a).unwrap();
            nest.process_token(&tb, &cat_b).unwrap();
            live.push((ta, tb));
            assert_eq!(
                indexed.pnode(RuleId(1)).unwrap().len(),
                nest.pnode(RuleId(1)).unwrap().len()
            );
        }
        // the one keyed emp joins the two keyed depts
        assert_eq!(indexed.pnode(RuleId(1)).unwrap().len(), 2);
        while let Some((ta, tb)) = live.pop() {
            indexed.process_token(&del(&cat_a, &ta), &cat_a).unwrap();
            nest.process_token(&del(&cat_b, &tb), &cat_b).unwrap();
            assert_eq!(
                indexed.pnode(RuleId(1)).unwrap().len(),
                nest.pnode(RuleId(1)).unwrap().len()
            );
        }
        assert_eq!(indexed.pnode(RuleId(1)).unwrap().len(), 0);
        assert_eq!(
            indexed.beta_bytes(),
            indexed.rules[&1].betas[0]
                .equi
                .as_ref()
                .map(|ix| ix.buckets.len())
                .unwrap_or(0),
            "empty memory holds no partial bytes and no buckets"
        );
    }

    #[test]
    fn rete_carries_beta_state() {
        let cat = catalog();
        let qual = "emp.sal > 0 and emp.dno = dept.dno";
        let mut net = ReteNetwork::new();
        net.add_rule(RuleId(1), &rcond(&cat, qual, &[]), &cat)
            .unwrap();
        net.prime(RuleId(1), &cat).unwrap();
        for i in 0..10 {
            let t = ins(&cat, "emp", &[100, i]);
            net.process_token(&t, &cat).unwrap();
        }
        assert!(net.beta_bytes() > 0, "β-memories hold partial matches");
        assert!(net.alpha_bytes() > 0);
    }

    #[test]
    fn rete_self_join() {
        for mode in [ReteMode::Indexed, ReteMode::Nested] {
            let cat = catalog();
            let mut net = ReteNetwork::new();
            net.set_mode(mode);
            net.add_rule(
                RuleId(1),
                &rcond(&cat, "a.dno = b.dno", &[("a", "emp"), ("b", "emp")]),
                &cat,
            )
            .unwrap();
            net.prime(RuleId(1), &cat).unwrap();
            let t1 = ins(&cat, "emp", &[1, 5]);
            net.process_token(&t1, &cat).unwrap();
            assert_eq!(net.pnode(RuleId(1)).unwrap().len(), 1, "(t1,t1) {mode:?}");
            let t2 = ins(&cat, "emp", &[2, 5]);
            net.process_token(&t2, &cat).unwrap();
            assert_eq!(net.pnode(RuleId(1)).unwrap().len(), 4, "{mode:?}");
            let d = del(&cat, &t1);
            net.process_token(&d, &cat).unwrap();
            assert_eq!(
                net.pnode(RuleId(1)).unwrap().len(),
                1,
                "(t2,t2) remains {mode:?}"
            );
        }
    }

    #[test]
    fn rete_rejects_event_rules() {
        let cat = catalog();
        let e = parse_expr("emp.sal > 0").unwrap();
        let rc = Resolver::new(&cat)
            .resolve_condition(
                Some(&ariel_query::EventSpec {
                    kind: ariel_query::EventKind::Append,
                    relation: "emp".into(),
                }),
                Some(&e),
                &[],
            )
            .unwrap();
        let mut net = ReteNetwork::new();
        assert!(net.add_rule(RuleId(1), &rc, &cat).is_err());
    }

    /// The stats surface the engine's metrics export reads.
    #[test]
    fn rete_stats_surface() {
        let cat = catalog();
        let qual = "emp.sal > 10 and emp.dno = dept.dno";
        let mut net = ReteNetwork::new();
        net.add_rule(RuleId(1), &rcond(&cat, qual, &[]), &cat)
            .unwrap();
        net.prime(RuleId(1), &cat).unwrap();
        for i in 0..8 {
            let t = ins(&cat, "emp", &[20 + i, i % 3]);
            net.process_token(&t, &cat).unwrap();
            let d = ins(&cat, "dept", &[i % 3, i]);
            net.process_token(&d, &cat).unwrap();
        }
        let s = net.stats();
        assert_eq!(s.rules, 1);
        assert_eq!(s.alpha_nodes, 2);
        assert_eq!(s.tokens_processed, 16);
        assert!(s.alpha_tests > 0);
        assert!(s.beta_bytes > 0);
        assert!(s.beta_probes > 0, "dept activations probe the β index");
        assert!(s.beta_hits <= s.beta_probes);
        assert!(s.pnode_inserts > 0);
        let rs = net.rule_stats(RuleId(1)).unwrap();
        assert_eq!(rs.beta_probes, s.beta_probes);
        assert_eq!(rs.beta_bytes, s.beta_bytes);
        assert!(rs.tokens_in > 0);
        let (vars, joins) = net.rule_topology(RuleId(1)).unwrap();
        assert_eq!(vars.len(), 2);
        assert_eq!(joins, 1);
        assert_eq!(
            net.alpha_kinds(RuleId(1)).unwrap(),
            vec![AlphaKind::Stored, AlphaKind::Stored]
        );
    }

    /// remove_rule releases α slots for reuse.
    #[test]
    fn rete_remove_rule_reuses_slots() {
        let cat = catalog();
        let mut net = ReteNetwork::new();
        net.add_rule(RuleId(1), &rcond(&cat, "emp.sal > 0", &[]), &cat)
            .unwrap();
        net.remove_rule(RuleId(1));
        assert!(net.pnode(RuleId(1)).is_none());
        net.add_rule(
            RuleId(2),
            &rcond(&cat, "emp.sal > 10 and emp.dno = dept.dno", &[]),
            &cat,
        )
        .unwrap();
        net.prime(RuleId(2), &cat).unwrap();
        let t = ins(&cat, "emp", &[20, 1]);
        net.process_token(&t, &cat).unwrap();
        let d = ins(&cat, "dept", &[1, 4]);
        net.process_token(&d, &cat).unwrap();
        assert_eq!(net.pnode(RuleId(2)).unwrap().len(), 1);
    }
}

#[cfg(test)]
mod virtual_tests {
    use super::*;
    use crate::token::EventSpecifier;
    use ariel_query::{parse_expr, FromItem, Resolver};
    use ariel_storage::{AttrType, Schema, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create(
            "emp",
            Schema::of(&[("sal", AttrType::Int), ("dno", AttrType::Int)]),
        )
        .unwrap();
        c.create(
            "dept",
            Schema::of(&[("dno", AttrType::Int), ("floor", AttrType::Int)]),
        )
        .unwrap();
        c
    }

    fn rcond(c: &Catalog, qual: &str, from: &[(&str, &str)]) -> ResolvedCondition {
        let e = parse_expr(qual).unwrap();
        let from: Vec<FromItem> = from
            .iter()
            .map(|(v, r)| FromItem {
                var: v.to_string(),
                rel: r.to_string(),
            })
            .collect();
        Resolver::new(c)
            .resolve_condition(None, Some(&e), &from)
            .unwrap()
    }

    fn ins(c: &Catalog, rel: &str, vals: &[i64]) -> Token {
        let r = c.get(rel).unwrap();
        let tid = r
            .borrow_mut()
            .insert(vals.iter().map(|&v| Value::Int(v)).collect::<Vec<Value>>())
            .unwrap();
        let t = r.borrow().get(tid).cloned().unwrap();
        Token::plus(rel, tid, t, EventSpecifier::Append)
    }

    fn del(c: &Catalog, token: &Token) -> Token {
        let r = c.get(&token.rel).unwrap();
        let old = r.borrow_mut().delete(token.tid).unwrap();
        Token::minus(token.rel.clone(), token.tid, old, EventSpecifier::Delete)
    }

    /// Rete with virtual α-memories must match classic Rete exactly, while
    /// carrying no α-memory bytes.
    #[test]
    fn virtual_rete_matches_classic_rete() {
        let cat_a = catalog();
        let cat_b = catalog();
        let qual = "emp.sal > 10 and emp.dno = dept.dno and dept.floor < 5";
        let mut classic = ReteNetwork::new();
        classic
            .add_rule(RuleId(1), &rcond(&cat_a, qual, &[]), &cat_a)
            .unwrap();
        classic.prime(RuleId(1), &cat_a).unwrap();
        let mut virt = ReteNetwork::with_policy(VirtualPolicy::AllVirtual);
        virt.add_rule(RuleId(1), &rcond(&cat_b, qual, &[]), &cat_b)
            .unwrap();
        virt.prime(RuleId(1), &cat_b).unwrap();

        let mut seed = 17u64;
        let mut rnd = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 33) as i64
        };
        let mut live_a: Vec<Token> = Vec::new();
        let mut live_b: Vec<Token> = Vec::new();
        for step in 0..150 {
            let choice = rnd();
            if choice % 4 == 3 && !live_a.is_empty() {
                let k = (rnd() as usize) % live_a.len();
                let ta = live_a.swap_remove(k);
                let tb = live_b.swap_remove(k);
                classic.process_token(&del(&cat_a, &ta), &cat_a).unwrap();
                virt.process_token(&del(&cat_b, &tb), &cat_b).unwrap();
            } else {
                let (rel, vals) = if choice % 2 == 0 {
                    ("emp", [rnd() % 30, rnd() % 6])
                } else {
                    ("dept", [rnd() % 6, rnd() % 8])
                };
                let ta = ins(&cat_a, rel, &vals);
                let tb = ins(&cat_b, rel, &vals);
                classic.process_token(&ta, &cat_a).unwrap();
                virt.process_token(&tb, &cat_b).unwrap();
                live_a.push(ta);
                live_b.push(tb);
            }
            assert_eq!(
                classic.pnode(RuleId(1)).unwrap().len(),
                virt.pnode(RuleId(1)).unwrap().len(),
                "divergence at step {step}"
            );
        }
        assert_eq!(virt.alpha_bytes(), 0, "virtual α-memories store nothing");
        assert!(classic.alpha_bytes() > 0);
    }

    /// Self-join counting must stay exact under virtual α-memories in Rete
    /// (the §1 claim, batch form), in both join modes.
    #[test]
    fn virtual_rete_self_join_batch() {
        for mode in [ReteMode::Indexed, ReteMode::Nested] {
            for policy in [
                VirtualPolicy::AllStored,
                VirtualPolicy::AllVirtual,
                VirtualPolicy::ExplicitVars(HashSet::from([0])),
                VirtualPolicy::ExplicitVars(HashSet::from([1])),
            ] {
                let cat = catalog();
                let mut net = ReteNetwork::with_policy(policy.clone());
                net.set_mode(mode);
                net.add_rule(
                    RuleId(1),
                    &rcond(&cat, "a.dno = b.dno", &[("a", "emp"), ("b", "emp")]),
                    &cat,
                )
                .unwrap();
                net.prime(RuleId(1), &cat).unwrap();
                let t1 = ins(&cat, "emp", &[1, 5]);
                let t2 = ins(&cat, "emp", &[2, 5]);
                net.process_batch(&[t1.clone(), t2], &cat).unwrap();
                assert_eq!(
                    net.pnode(RuleId(1)).unwrap().len(),
                    4,
                    "pairs (t1,t1),(t1,t2),(t2,t1),(t2,t2) under {policy:?} {mode:?}"
                );
                let d = del(&cat, &t1);
                net.process_token(&d, &cat).unwrap();
                assert_eq!(
                    net.pnode(RuleId(1)).unwrap().len(),
                    1,
                    "{policy:?} {mode:?}"
                );
            }
        }
    }

    /// Primed data visible through virtual nodes.
    #[test]
    fn virtual_rete_priming() {
        let cat = catalog();
        cat.get("emp")
            .unwrap()
            .borrow_mut()
            .insert(vec![20i64.into(), 1i64.into()])
            .unwrap();
        cat.get("dept")
            .unwrap()
            .borrow_mut()
            .insert(vec![1i64.into(), 2i64.into()])
            .unwrap();
        let mut net = ReteNetwork::with_policy(VirtualPolicy::AllVirtual);
        net.add_rule(
            RuleId(1),
            &rcond(&cat, "emp.sal > 10 and emp.dno = dept.dno", &[]),
            &cat,
        )
        .unwrap();
        net.prime(RuleId(1), &cat).unwrap();
        assert_eq!(net.pnode(RuleId(1)).unwrap().len(), 1);
    }

    /// With the catalog threaded through `add_rule`, the threshold policy
    /// runs the same estimate as TREAT and picks the same memories
    /// (closes the ROADMAP item "Selectivity-aware Rete α policy").
    #[test]
    fn selectivity_threshold_matches_treat() {
        use crate::treat::Network;
        let cat = catalog();
        for i in 0..10 {
            ins(&cat, "emp", &[100 + i, i % 3]);
            ins(&cat, "dept", &[i % 3, if i < 5 { 1 } else { 9 }]);
        }
        let policy = VirtualPolicy::SelectivityThreshold(0.6);
        let check = |qual: &str, from: &[(&str, &str)], expect: &[AlphaKind]| {
            let mut rete = ReteNetwork::with_policy(policy.clone());
            rete.add_rule(RuleId(1), &rcond(&cat, qual, from), &cat)
                .unwrap();
            let mut treat = Network::new();
            treat
                .add_rule(RuleId(1), &rcond(&cat, qual, from), &policy, &cat)
                .unwrap();
            let rk = rete.alpha_kinds(RuleId(1)).unwrap();
            let tk = treat.alpha_kinds(RuleId(1)).unwrap();
            assert_eq!(rk, tk, "backends disagree on {qual}");
            assert_eq!(rk, expect, "estimate changed for {qual}");
        };
        // equi rule: emp.sal > 10 matches 100% (> 60%), but the dno equi
        // index carves it into ~1/3 buckets → index-aware refinement
        // stores it; dept.floor < 5 matches 50% → stored outright
        check(
            "emp.sal > 10 and emp.dno = dept.dno and dept.floor < 5",
            &[],
            &[AlphaKind::Stored, AlphaKind::Stored],
        );
        // band-only rule: no equi access path to refine with, and neither
        // side has a selective predicate → both memories go virtual
        check(
            "dept.dno < emp.sal and emp.sal <= dept.floor",
            &[("dept", "dept"), ("emp", "emp")],
            &[AlphaKind::Virtual, AlphaKind::Virtual],
        );
    }
}
