//! Gated match-path instrumentation (timing histograms per node and rule).
//!
//! Two tiers of observability run through the network:
//!
//! 1. **Always-on counters** — plain integer bumps on the α-nodes
//!    ([`crate::alpha::AlphaCounters`]), the selection network and the
//!    network itself. These are cheap enough to leave permanently enabled
//!    and surface through [`crate::NetworkStats`] / [`crate::RuleStats`].
//! 2. **Gated timing** — this module. When the engine enables observability
//!    the network carries a [`MatchObs`], and every phase of token
//!    processing records a monotonic-clock duration into a log₂
//!    [`Histogram`] keyed by rule and node: selection-network stabbing
//!    probe, α-node test, virtual-α materialization, β-join, and P-node
//!    insert. With the flag off none of this exists and the match path
//!    pays nothing beyond the tier-1 counters.
//!
//! Everything uses *thread-safe* interior mutability (atomic [`Counter`]s,
//! `Mutex`-guarded maps) because the join routines traverse the network
//! through `&self` — and, under the parallel match path
//! (`docs/CONCURRENCY.md`), from several worker threads at once. The maps
//! are only locked briefly per phase record; with observability off none of
//! this is reached.

use crate::alpha::RuleId;
use ariel_islist::{Counter, Histogram};
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

/// Lock a map, recovering from poisoning (a panicking recorder must not
/// take the whole observability session down with it).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Per-α-node observations (keyed by `(rule, var)` — node identity in every
/// report is "variable `var` of rule `rule`").
#[derive(Debug, Clone, Default)]
pub struct NodeObs {
    /// Tokens routed to this node by the selection network (α-tests run).
    pub tokens_in: u64,
    /// Tokens that passed the α-test (event gating + predicate).
    pub tokens_out: u64,
    /// Entries inserted into the node's stored memory.
    pub entries_inserted: u64,
    /// Times a β-join materialized this node's contents from the base
    /// relation (virtual nodes only).
    pub virtual_scans: u64,
    /// Base-relation tuples examined during those materializations.
    pub scanned_tuples: u64,
    /// Candidate bindings this node served into β-joins.
    pub join_candidates: u64,
    /// Join-index probes issued against this node (hash bucket lookups for
    /// stored/dynamic memories, base-relation index probes for virtual).
    pub index_probes: u64,
    /// Probes that found a non-empty bucket.
    pub index_hits: u64,
    /// Of `join_candidates`, how many were served through an index probe.
    pub indexed_candidates: u64,
    /// Of `join_candidates`, how many came from a full memory/relation scan.
    pub scanned_candidates: u64,
    /// Interval-index stabbing probes issued against this node (band joins
    /// on stored/dynamic memories).
    pub range_probes: u64,
    /// Stabs that found at least one spanning entry.
    pub range_hits: u64,
    /// β-memory index probes this node's right activations issued (indexed
    /// Rete only — the TREAT network keeps no β-memories).
    pub beta_probes: u64,
    /// β-probes that found at least one partial match.
    pub beta_hits: u64,
    /// Wall-clock ns per α-test.
    pub alpha_test: Histogram,
    /// Wall-clock ns per virtual materialization.
    pub virtual_scan: Histogram,
}

impl NodeObs {
    /// α-test selectivity in [0, 1]; 1.0 when no token arrived.
    pub fn selectivity(&self) -> f64 {
        if self.tokens_in == 0 {
            1.0
        } else {
            self.tokens_out as f64 / self.tokens_in as f64
        }
    }

    fn merge(&mut self, other: &NodeObs) {
        self.tokens_in += other.tokens_in;
        self.tokens_out += other.tokens_out;
        self.entries_inserted += other.entries_inserted;
        self.virtual_scans += other.virtual_scans;
        self.scanned_tuples += other.scanned_tuples;
        self.join_candidates += other.join_candidates;
        self.index_probes += other.index_probes;
        self.index_hits += other.index_hits;
        self.indexed_candidates += other.indexed_candidates;
        self.scanned_candidates += other.scanned_candidates;
        self.range_probes += other.range_probes;
        self.range_hits += other.range_hits;
        self.beta_probes += other.beta_probes;
        self.beta_hits += other.beta_hits;
        self.alpha_test.merge(&other.alpha_test);
        self.virtual_scan.merge(&other.virtual_scan);
    }
}

/// Per-rule observations of the join and P-node phases.
#[derive(Debug, Clone, Default)]
pub struct RuleObs {
    /// Tokens that entered this rule's network (passed some α-node).
    pub tokens_in: u64,
    /// β-joins probed (one per token reaching a multi-variable rule).
    pub join_probes: u64,
    /// Instantiations appended to the P-node.
    pub pnode_inserts: u64,
    /// Wall-clock ns per β-join (candidate enumeration + conjunct tests).
    pub beta_join: Histogram,
    /// Wall-clock ns per P-node batch insert.
    pub pnode_insert: Histogram,
}

impl RuleObs {
    /// Mean join fan-out: instantiations produced per probing token.
    pub fn join_fanout(&self) -> f64 {
        if self.join_probes == 0 {
            0.0
        } else {
            self.pnode_inserts as f64 / self.join_probes as f64
        }
    }

    fn merge(&mut self, other: &RuleObs) {
        self.tokens_in += other.tokens_in;
        self.join_probes += other.join_probes;
        self.pnode_inserts += other.pnode_inserts;
        self.beta_join.merge(&other.beta_join);
        self.pnode_insert.merge(&other.pnode_insert);
    }
}

/// One observation session over the match path.
///
/// Held by [`crate::Network`] while the engine's observability flag is on;
/// the engine swaps sessions in and out to scope a capture (e.g. one
/// `explain analyze` run) without losing cumulative data.
#[derive(Debug, Default)]
pub struct MatchObs {
    /// Tokens processed while this session was active.
    pub tokens: Counter,
    /// Wall-clock ns per selection-network probe (one per positive token).
    pub selnet_probe: Histogram,
    /// Candidate α-nodes emitted by those probes.
    pub selnet_candidates: Counter,
    nodes: Mutex<BTreeMap<(u64, usize), NodeObs>>,
    rules: Mutex<BTreeMap<u64, RuleObs>>,
}

impl MatchObs {
    /// New empty session.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mutate (creating on first use) the observations of one α-node.
    pub fn with_node(&self, rule: RuleId, var: usize, f: impl FnOnce(&mut NodeObs)) {
        f(lock(&self.nodes).entry((rule.0, var)).or_default())
    }

    /// Mutate (creating on first use) the observations of one rule.
    pub fn with_rule(&self, rule: RuleId, f: impl FnOnce(&mut RuleObs)) {
        f(lock(&self.rules).entry(rule.0).or_default())
    }

    /// Snapshot of one node's observations.
    pub fn node(&self, rule: RuleId, var: usize) -> Option<NodeObs> {
        lock(&self.nodes).get(&(rule.0, var)).cloned()
    }

    /// Snapshot of one rule's observations.
    pub fn rule(&self, rule: RuleId) -> Option<RuleObs> {
        lock(&self.rules).get(&rule.0).cloned()
    }

    /// Snapshot of every node's observations, ordered by (rule, var).
    pub fn nodes(&self) -> Vec<((u64, usize), NodeObs)> {
        lock(&self.nodes)
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect()
    }

    /// Snapshot of every rule's observations, ordered by rule id.
    pub fn rules(&self) -> Vec<(u64, RuleObs)> {
        lock(&self.rules)
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect()
    }

    /// Fold another session into this one (used when a scoped capture ends
    /// and its data must flow back into the cumulative session).
    pub fn merge(&self, other: &MatchObs) {
        self.tokens.set(self.tokens.get() + other.tokens.get());
        self.selnet_probe.merge(&other.selnet_probe);
        self.selnet_candidates
            .set(self.selnet_candidates.get() + other.selnet_candidates.get());
        let mut nodes = lock(&self.nodes);
        for (k, v) in lock(&other.nodes).iter() {
            nodes.entry(*k).or_default().merge(v);
        }
        let mut rules = lock(&self.rules);
        for (k, v) in lock(&other.rules).iter() {
            rules.entry(*k).or_default().merge(v);
        }
    }

    /// Phase-level histograms, all nodes and rules merged: (α-test,
    /// virtual-scan, β-join, P-node-insert).
    pub fn phase_histograms(&self) -> (Histogram, Histogram, Histogram, Histogram) {
        let (alpha, vscan, join, pins) = (
            Histogram::new(),
            Histogram::new(),
            Histogram::new(),
            Histogram::new(),
        );
        for n in lock(&self.nodes).values() {
            alpha.merge(&n.alpha_test);
            vscan.merge(&n.virtual_scan);
        }
        for r in lock(&self.rules).values() {
            join.merge(&r.beta_join);
            pins.merge(&r.pnode_insert);
        }
        (alpha, vscan, join, pins)
    }

    /// Hand-rolled JSON: phase histograms plus per-node and per-rule maps.
    pub fn to_json(&self) -> String {
        let (alpha, vscan, join, pins) = self.phase_histograms();
        let mut s = format!(
            "{{\"tokens\":{},\"selnet_candidates\":{},\"phases\":{{\"selnet_probe\":{},\"alpha_test\":{},\"virtual_scan\":{},\"beta_join\":{},\"pnode_insert\":{}}},\"nodes\":[",
            self.tokens.get(),
            self.selnet_candidates.get(),
            self.selnet_probe.to_json(),
            alpha.to_json(),
            vscan.to_json(),
            join.to_json(),
            pins.to_json(),
        );
        for (i, ((rule, var), n)) in lock(&self.nodes).iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"rule\":{rule},\"var\":{var},\"tokens_in\":{},\"tokens_out\":{},\"entries_inserted\":{},\"virtual_scans\":{},\"scanned_tuples\":{},\"join_candidates\":{},\"index_probes\":{},\"index_hits\":{},\"indexed_candidates\":{},\"scanned_candidates\":{},\"range_probes\":{},\"range_hits\":{},\"beta_probes\":{},\"beta_hits\":{},\"alpha_test\":{},\"virtual_scan\":{}}}",
                n.tokens_in,
                n.tokens_out,
                n.entries_inserted,
                n.virtual_scans,
                n.scanned_tuples,
                n.join_candidates,
                n.index_probes,
                n.index_hits,
                n.indexed_candidates,
                n.scanned_candidates,
                n.range_probes,
                n.range_hits,
                n.beta_probes,
                n.beta_hits,
                n.alpha_test.to_json(),
                n.virtual_scan.to_json(),
            ));
        }
        s.push_str("],\"rules\":[");
        for (i, (rule, r)) in lock(&self.rules).iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"rule\":{rule},\"tokens_in\":{},\"join_probes\":{},\"pnode_inserts\":{},\"beta_join\":{},\"pnode_insert\":{}}}",
                r.tokens_in,
                r.join_probes,
                r.pnode_inserts,
                r.beta_join.to_json(),
                r.pnode_insert.to_json(),
            ));
        }
        s.push_str("]}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_and_rule_accumulation() {
        let obs = MatchObs::new();
        obs.with_node(RuleId(7), 0, |n| {
            n.tokens_in += 4;
            n.tokens_out += 1;
            n.alpha_test.record(100);
        });
        obs.with_rule(RuleId(7), |r| {
            r.join_probes += 1;
            r.pnode_inserts += 3;
            r.beta_join.record(2_000);
        });
        let n = obs.node(RuleId(7), 0).unwrap();
        assert_eq!(n.tokens_in, 4);
        assert!((n.selectivity() - 0.25).abs() < 1e-9);
        let r = obs.rule(RuleId(7)).unwrap();
        assert!((r.join_fanout() - 3.0).abs() < 1e-9);
        let (alpha, _, join, _) = obs.phase_histograms();
        assert_eq!(alpha.count(), 1);
        assert_eq!(join.count(), 1);
    }

    #[test]
    fn merge_scoped_capture() {
        let cumulative = MatchObs::new();
        cumulative.with_node(RuleId(1), 0, |n| n.tokens_in = 10);
        let capture = MatchObs::new();
        capture.tokens.set(2);
        capture.with_node(RuleId(1), 0, |n| n.tokens_in = 5);
        capture.with_node(RuleId(2), 1, |n| n.tokens_out = 1);
        cumulative.merge(&capture);
        assert_eq!(cumulative.tokens.get(), 2);
        assert_eq!(cumulative.node(RuleId(1), 0).unwrap().tokens_in, 15);
        assert_eq!(cumulative.node(RuleId(2), 1).unwrap().tokens_out, 1);
    }

    #[test]
    fn json_is_wellformed_shape() {
        let obs = MatchObs::new();
        obs.with_node(RuleId(1), 0, |n| n.alpha_test.record(50));
        obs.with_rule(RuleId(1), |r| r.beta_join.record(500));
        let j = obs.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        for key in [
            "\"phases\"",
            "\"alpha_test\"",
            "\"beta_join\"",
            "\"nodes\"",
            "\"rules\"",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }
}
