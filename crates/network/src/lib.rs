//! # ariel-network
//!
//! Discrimination networks for rule-condition testing in the Ariel
//! reproduction: the paper's **A-TREAT** network (selection-predicate
//! index + TREAT join layer + virtual α-memories), plus a **Rete**
//! network as the comparison baseline. Classic TREAT is A-TREAT under
//! [`VirtualPolicy::AllStored`]; the Rete network runs either nested-loop
//! (classic) or with the same compile-time join planning as TREAT
//! ([`ReteMode`]).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alpha;
pub mod arena;
pub mod key;
pub mod obs;
mod plan;
pub mod pred;
pub mod rete;
pub mod selnet;
pub mod token;
pub mod trace;
pub mod treat;

pub use alpha::{AlphaCounters, AlphaEntry, AlphaId, AlphaKind, AlphaNode, EventReq, RuleId};
pub use key::{KeyBuilder, SmallKey};
pub use obs::{MatchObs, NodeObs, RuleObs};
pub use pred::SelectionPredicate;
pub use rete::{ReteMode, ReteNetwork};
pub use selnet::SelectionNetwork;
pub use token::{EventSpecifier, Token, TokenKind};
pub use trace::{TraceEventKind, TraceRecord, TraceRecorder, TraceSource, DEFAULT_TRACE_CAPACITY};
pub use treat::{Network, NetworkStats, RuleStats, RuleTopology, VirtualPolicy};
