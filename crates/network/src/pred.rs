//! Selection-predicate decomposition for the top-level network (§4.1).
//!
//! A rule variable's selection predicate (the conjunction of the rule
//! condition's single-variable conjuncts on that variable) is split into an
//! **anchor** — one attribute's worth of `attr cmp constant` comparisons,
//! intersected into a single interval suitable for the interval skip list —
//! and a **residual** evaluated only on tokens whose anchor matched.

use ariel_islist::Interval;
use ariel_query::{eval, BinOp, QueryResult, RExpr, Row};
use ariel_storage::Value;
use std::ops::Bound;

/// Decomposed single-variable selection predicate (variable remapped to 0).
#[derive(Debug, Clone)]
pub struct SelectionPredicate {
    /// Indexable part: attribute position and the interval its value must
    /// fall in. `None` when no conjunct is anchorable (then `residual` is
    /// the whole predicate).
    pub anchor: Option<(usize, Interval<Value>)>,
    /// Remaining conjuncts (possibly referencing `previous` values).
    pub residual: Option<RExpr>,
    /// True when the anchor conjuncts were contradictory (e.g. `a > 5 and
    /// a < 3`): the predicate can never match.
    pub unsatisfiable: bool,
}

impl SelectionPredicate {
    /// The always-true predicate (a bare `new(var)` or an unconstrained
    /// variable).
    pub fn always_true() -> Self {
        SelectionPredicate {
            anchor: None,
            residual: None,
            unsatisfiable: false,
        }
    }

    /// Decompose the conjunction `conjuncts` (each over variable 0 only).
    pub fn decompose(conjuncts: Vec<RExpr>) -> Self {
        // Gather candidate `attr cmp const` comparisons grouped by attr.
        let mut sargs: Vec<(usize, usize, BinOp, Value)> = Vec::new(); // (conjunct idx, attr, op, val)
        for (i, c) in conjuncts.iter().enumerate() {
            if let Some((attr, op, val)) = as_sarg(c) {
                sargs.push((i, attr, op, val));
            }
        }
        if sargs.is_empty() {
            return SelectionPredicate {
                anchor: None,
                residual: RExpr::conjoin(conjuncts),
                unsatisfiable: false,
            };
        }
        // Anchor on the attribute with the most sargs (ties: lowest attr).
        let mut counts: Vec<(usize, usize)> = Vec::new();
        for (_, attr, _, _) in &sargs {
            match counts.iter_mut().find(|(a, _)| a == attr) {
                Some((_, n)) => *n += 1,
                None => counts.push((*attr, 1)),
            }
        }
        counts.sort_by_key(|&(a, n)| (std::cmp::Reverse(n), a));
        let anchor_attr = counts[0].0;

        let mut lo: Bound<Value> = Bound::Unbounded;
        let mut hi: Bound<Value> = Bound::Unbounded;
        let mut used = Vec::new();
        for (i, attr, op, val) in &sargs {
            if *attr != anchor_attr {
                continue;
            }
            match op {
                BinOp::Eq => {
                    lo = tighter_lo(lo, Bound::Included(val.clone()));
                    hi = tighter_hi(hi, Bound::Included(val.clone()));
                }
                BinOp::Gt => lo = tighter_lo(lo, Bound::Excluded(val.clone())),
                BinOp::Ge => lo = tighter_lo(lo, Bound::Included(val.clone())),
                BinOp::Lt => hi = tighter_hi(hi, Bound::Excluded(val.clone())),
                BinOp::Le => hi = tighter_hi(hi, Bound::Included(val.clone())),
                _ => continue,
            }
            used.push(*i);
        }
        let residual = RExpr::conjoin(
            conjuncts
                .into_iter()
                .enumerate()
                .filter(|(i, _)| !used.contains(i))
                .map(|(_, c)| c)
                .collect(),
        );
        match Interval::new(lo, hi) {
            Some(interval) => SelectionPredicate {
                anchor: Some((anchor_attr, interval)),
                residual,
                unsatisfiable: false,
            },
            None => SelectionPredicate {
                anchor: None,
                residual,
                unsatisfiable: true,
            },
        }
    }

    /// The full predicate as one expression (anchor re-expressed), mainly
    /// for virtual-α base-relation filtering and for priming stored nodes.
    pub fn full_expr(&self) -> Option<RExpr> {
        let mut parts = Vec::new();
        if let Some((attr, iv)) = &self.anchor {
            let a = RExpr::Attr {
                var: 0,
                attr: *attr,
            };
            match iv.lo() {
                Bound::Included(v) => parts.push(cmp(BinOp::Ge, a.clone(), v.clone())),
                Bound::Excluded(v) => parts.push(cmp(BinOp::Gt, a.clone(), v.clone())),
                Bound::Unbounded => {}
            }
            match iv.hi() {
                Bound::Included(v) => parts.push(cmp(BinOp::Le, a.clone(), v.clone())),
                Bound::Excluded(v) => parts.push(cmp(BinOp::Lt, a, v.clone())),
                Bound::Unbounded => {}
            }
        }
        if let Some(r) = &self.residual {
            parts.push(r.clone());
        }
        RExpr::conjoin(parts)
    }
}

fn cmp(op: BinOp, l: RExpr, v: Value) -> RExpr {
    RExpr::Binary {
        op,
        left: Box::new(l),
        right: Box::new(RExpr::Const(v)),
    }
}

fn tighter_lo(a: Bound<Value>, b: Bound<Value>) -> Bound<Value> {
    match (&a, &b) {
        (Bound::Unbounded, _) => b,
        (_, Bound::Unbounded) => a,
        (Bound::Included(x) | Bound::Excluded(x), Bound::Included(y) | Bound::Excluded(y)) => {
            match y.total_cmp(x) {
                std::cmp::Ordering::Greater => b,
                std::cmp::Ordering::Less => a,
                std::cmp::Ordering::Equal => {
                    if matches!(b, Bound::Excluded(_)) {
                        b
                    } else {
                        a
                    }
                }
            }
        }
    }
}

fn tighter_hi(a: Bound<Value>, b: Bound<Value>) -> Bound<Value> {
    match (&a, &b) {
        (Bound::Unbounded, _) => b,
        (_, Bound::Unbounded) => a,
        (Bound::Included(x) | Bound::Excluded(x), Bound::Included(y) | Bound::Excluded(y)) => {
            match y.total_cmp(x) {
                std::cmp::Ordering::Less => b,
                std::cmp::Ordering::Greater => a,
                std::cmp::Ordering::Equal => {
                    if matches!(b, Bound::Excluded(_)) {
                        b
                    } else {
                        a
                    }
                }
            }
        }
    }
}

/// Recognize `attr cmp constant` (constants may be constant-foldable
/// expressions); `previous` references never anchor.
fn as_sarg(c: &RExpr) -> Option<(usize, BinOp, Value)> {
    let RExpr::Binary { op, left, right } = c else {
        return None;
    };
    if !op.is_comparison() || *op == BinOp::Ne {
        return None;
    }
    if let RExpr::Attr { var: 0, attr } = **left {
        if let Some(v) = fold(right) {
            return Some((attr, *op, v));
        }
    }
    if let RExpr::Attr { var: 0, attr } = **right {
        if let Some(v) = fold(left) {
            return Some((attr, op.flip(), v));
        }
    }
    None
}

fn fold(e: &RExpr) -> Option<Value> {
    if !e.vars_used().is_empty() {
        return None;
    }
    let r: QueryResult<Value> = eval(e, &Row::unbound(0));
    r.ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(a: usize) -> RExpr {
        RExpr::Attr { var: 0, attr: a }
    }

    fn lit(v: impl Into<Value>) -> RExpr {
        RExpr::Const(v.into())
    }

    fn bin(op: BinOp, l: RExpr, r: RExpr) -> RExpr {
        RExpr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    #[test]
    fn paper_band_predicate_becomes_interval() {
        // C1 < sal <= C2 — the paper's canonical shape
        let p = SelectionPredicate::decompose(vec![
            bin(BinOp::Gt, attr(1), lit(30_000i64)),
            bin(BinOp::Le, attr(1), lit(40_000i64)),
        ]);
        let (a, iv) = p.anchor.as_ref().unwrap();
        assert_eq!(*a, 1);
        assert!(!iv.contains(&Value::Int(30_000)));
        assert!(iv.contains(&Value::Int(30_001)));
        assert!(iv.contains(&Value::Int(40_000)));
        assert!(!iv.contains(&Value::Int(40_001)));
        assert!(p.residual.is_none());
        assert!(!p.unsatisfiable);
    }

    #[test]
    fn equality_becomes_point() {
        let p = SelectionPredicate::decompose(vec![bin(BinOp::Eq, attr(0), lit("Sales"))]);
        let (_, iv) = p.anchor.as_ref().unwrap();
        assert!(iv.contains(&Value::from("Sales")));
        assert!(!iv.contains(&Value::from("Toy")));
    }

    #[test]
    fn flipped_comparison_normalized() {
        // 30000 < sal  ≡  sal > 30000
        let p = SelectionPredicate::decompose(vec![bin(BinOp::Lt, lit(30_000i64), attr(1))]);
        let (a, iv) = p.anchor.as_ref().unwrap();
        assert_eq!(*a, 1);
        assert!(!iv.contains(&Value::Int(30_000)));
        assert!(iv.contains(&Value::Int(30_001)));
    }

    #[test]
    fn residual_keeps_non_anchor_conjuncts() {
        let p = SelectionPredicate::decompose(vec![
            bin(BinOp::Gt, attr(1), lit(10i64)),
            bin(BinOp::Ne, attr(0), lit("x")),  // != can't anchor
            bin(BinOp::Eq, attr(2), lit(5i64)), // different attr: attr 1 wins? no...
        ]);
        // attr 1 and attr 2 both have one sarg; lowest attr wins ties → 1
        let (a, _) = p.anchor.as_ref().unwrap();
        assert_eq!(*a, 1);
        assert!(p.residual.is_some());
        let resid = p.residual.unwrap().conjuncts();
        assert_eq!(resid.len(), 2);
    }

    #[test]
    fn anchor_prefers_most_constrained_attr() {
        let p = SelectionPredicate::decompose(vec![
            bin(BinOp::Eq, attr(0), lit("x")),
            bin(BinOp::Gt, attr(3), lit(1i64)),
            bin(BinOp::Le, attr(3), lit(9i64)),
        ]);
        let (a, _) = p.anchor.as_ref().unwrap();
        assert_eq!(*a, 3);
    }

    #[test]
    fn contradictory_anchor_is_unsatisfiable() {
        let p = SelectionPredicate::decompose(vec![
            bin(BinOp::Gt, attr(0), lit(10i64)),
            bin(BinOp::Lt, attr(0), lit(5i64)),
        ]);
        assert!(p.unsatisfiable);
        assert!(p.anchor.is_none());
    }

    #[test]
    fn previous_refs_do_not_anchor() {
        let prev = RExpr::Prev { var: 0, attr: 1 };
        let p = SelectionPredicate::decompose(vec![bin(BinOp::Gt, attr(1), prev)]);
        assert!(p.anchor.is_none());
        assert!(p.residual.is_some());
    }

    #[test]
    fn constant_folding_in_sargs() {
        // sal > 1000 * 30
        let p = SelectionPredicate::decompose(vec![bin(
            BinOp::Gt,
            attr(1),
            bin(BinOp::Mul, lit(1000i64), lit(30i64)),
        )]);
        let (_, iv) = p.anchor.as_ref().unwrap();
        assert!(iv.contains(&Value::Int(30_001)));
        assert!(!iv.contains(&Value::Int(30_000)));
    }

    #[test]
    fn full_expr_roundtrip() {
        let conj = vec![
            bin(BinOp::Gt, attr(1), lit(10i64)),
            bin(BinOp::Le, attr(1), lit(20i64)),
            bin(BinOp::Eq, attr(0), lit("a")),
        ];
        let p = SelectionPredicate::decompose(conj);
        let full = p.full_expr().unwrap();
        assert_eq!(full.conjuncts().len(), 3);
    }

    #[test]
    fn empty_predicate_always_true() {
        let p = SelectionPredicate::decompose(vec![]);
        assert!(p.anchor.is_none() && p.residual.is_none() && !p.unsatisfiable);
        assert!(p.full_expr().is_none());
    }
}
