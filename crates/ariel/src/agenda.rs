//! Conflict resolution (Fig. 1): select one rule to fire from the set of
//! eligible rules.

use ariel_network::RuleId;

/// Conflict-resolution strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConflictStrategy {
    /// Highest priority; ties broken by most recent match, then rule name
    /// (OPS5-style recency).
    #[default]
    PriorityRecency,
    /// Highest priority; ties broken by rule name only (fully
    /// deterministic regardless of match history).
    PriorityName,
}

/// One eligible rule instantiation set presented to conflict resolution.
#[derive(Debug, Clone, PartialEq)]
pub struct Eligible {
    /// Network identifier of the rule.
    pub id: RuleId,
    /// Rule name (final tie-break).
    pub name: String,
    /// Rule priority (higher fires first).
    pub priority: f64,
    /// Tick of the most recent transition that added matches for this rule.
    pub last_matched: u64,
}

/// Pick the next rule to fire, or `None` when the agenda is empty.
pub fn select(strategy: ConflictStrategy, eligible: &[Eligible]) -> Option<&Eligible> {
    eligible.iter().max_by(|a, b| {
        let prio = a.priority.total_cmp(&b.priority);
        if prio != std::cmp::Ordering::Equal {
            return prio;
        }
        match strategy {
            ConflictStrategy::PriorityRecency => {
                let rec = a.last_matched.cmp(&b.last_matched);
                if rec != std::cmp::Ordering::Equal {
                    return rec;
                }
            }
            ConflictStrategy::PriorityName => {}
        }
        // name ascending → max_by wants "greater wins", so reverse
        b.name.cmp(&a.name)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(id: u64, name: &str, priority: f64, last: u64) -> Eligible {
        Eligible {
            id: RuleId(id),
            name: name.into(),
            priority,
            last_matched: last,
        }
    }

    #[test]
    fn empty_agenda() {
        assert!(select(ConflictStrategy::default(), &[]).is_none());
    }

    #[test]
    fn highest_priority_wins() {
        let rules = vec![e(1, "a", 1.0, 5), e(2, "b", 10.0, 0), e(3, "c", -3.0, 9)];
        assert_eq!(
            select(ConflictStrategy::default(), &rules).unwrap().id,
            RuleId(2)
        );
    }

    #[test]
    fn recency_breaks_priority_ties() {
        let rules = vec![e(1, "a", 1.0, 3), e(2, "b", 1.0, 7)];
        assert_eq!(
            select(ConflictStrategy::PriorityRecency, &rules)
                .unwrap()
                .id,
            RuleId(2)
        );
    }

    #[test]
    fn name_breaks_remaining_ties() {
        let rules = vec![e(1, "zeta", 1.0, 7), e(2, "alpha", 1.0, 7)];
        assert_eq!(
            select(ConflictStrategy::PriorityRecency, &rules)
                .unwrap()
                .name,
            "alpha"
        );
        let rules = vec![e(1, "zeta", 1.0, 3), e(2, "alpha", 1.0, 7)];
        assert_eq!(
            select(ConflictStrategy::PriorityName, &rules).unwrap().name,
            "alpha",
            "PriorityName ignores recency"
        );
    }

    #[test]
    fn negative_priorities() {
        let rules = vec![e(1, "a", -1.0, 0), e(2, "b", -2.0, 0)];
        assert_eq!(
            select(ConflictStrategy::default(), &rules).unwrap().id,
            RuleId(1)
        );
    }
}
