//! Δ-sets and logical-event token generation (§2.2.2, §4.3.1).
//!
//! Ariel triggers rules on **logical** rather than physical events: the
//! life of a tuple within one transition collapses to a net effect. The
//! `[I, M]` Δ-sets identify, per relation, which tuples were inserted this
//! transition (`I`) and which pre-existing tuples were modified (`M`,
//! remembering their start-of-transition value — the value `previous`
//! refers to). Each physical [`Change`] is then translated into the exact
//! token sequence of the paper's four cases:
//!
//! | case | history      | net effect | tokens per operation |
//! |------|--------------|-----------|-----------------------|
//! | 1    | `i m*`       | insert    | insert⁺; each modify: insert⁻, insert⁺ |
//! | 2    | `i m* d`     | nothing   | as case 1; final delete: insert⁻ |
//! | 3    | `m⁺`         | modify    | first: bare ⁻ then Δ⁺; later: Δ⁻, Δ⁺ |
//! | 4    | `m* d`       | delete    | as case 3; final delete: Δ⁻ then delete⁻ |
//!
//! Every Δ⁺ token lands in the α-memories as an insert *under the same
//! TID* as the value it supersedes, which is what drives the join-index
//! rebucket path in `ariel_network::alpha`: the node unhooks the old
//! entry's key from its hash bucket before indexing the new one.

use ariel_network::{EventSpecifier, Token};
use ariel_query::Change;
use ariel_storage::Tuple;
use std::collections::HashMap;

#[derive(Debug, Default)]
struct RelDelta {
    /// `I`: tuples inserted during this transition.
    inserted: HashMap<u64, ()>,
    /// `M`: pre-existing tuples modified this transition → their value at
    /// the start of the transition and the union of replaced attribute
    /// positions so far.
    modified: HashMap<u64, (Tuple, Vec<usize>)>,
}

/// Per-transition Δ-set tracker.
#[derive(Debug, Default)]
pub struct DeltaTracker {
    rels: HashMap<String, RelDelta>,
}

impl DeltaTracker {
    /// New empty tracker (start of a transition).
    pub fn new() -> Self {
        DeltaTracker::default()
    }

    /// Reset for the next transition.
    pub fn reset(&mut self) {
        self.rels.clear();
    }

    /// Translate one physical change into its token sequence, updating the
    /// Δ-sets.
    pub fn tokens_for(&mut self, change: &Change) -> Vec<Token> {
        match change {
            Change::Inserted { rel, tid, new } => {
                let d = self.rels.entry(rel.clone()).or_default();
                d.inserted.insert(tid.0, ());
                vec![Token::plus(
                    rel.clone(),
                    *tid,
                    new.clone(),
                    EventSpecifier::Append,
                )]
            }
            Change::Updated {
                rel,
                tid,
                old,
                new,
                attrs,
            } => {
                let d = self.rels.entry(rel.clone()).or_default();
                if d.inserted.contains_key(&tid.0) {
                    // case 1: a modify of a tuple inserted this transition
                    // nets to an insertion of the new value
                    vec![
                        Token::minus(rel.clone(), *tid, old.clone(), EventSpecifier::Append),
                        Token::plus(rel.clone(), *tid, new.clone(), EventSpecifier::Append),
                    ]
                } else if let Some((orig, seen_attrs)) = d.modified.get_mut(&tid.0) {
                    // case 3, subsequent modify: replace the standing pair
                    let orig = orig.clone();
                    for a in attrs {
                        if !seen_attrs.contains(a) {
                            seen_attrs.push(*a);
                        }
                    }
                    let all_attrs = seen_attrs.clone();
                    vec![
                        Token::delta_minus(
                            rel.clone(),
                            *tid,
                            old.clone(),
                            orig.clone(),
                            EventSpecifier::Replace(all_attrs.clone()),
                        ),
                        Token::delta_plus(
                            rel.clone(),
                            *tid,
                            new.clone(),
                            orig,
                            EventSpecifier::Replace(all_attrs),
                        ),
                    ]
                } else {
                    // case 3, first modify of a pre-existing tuple: the
                    // bare − (no event specifier) removes the old value
                    // from pattern memories, then Δ⁺ asserts the pair
                    d.modified.insert(tid.0, (old.clone(), attrs.clone()));
                    vec![
                        Token::bare_minus(rel.clone(), *tid, old.clone()),
                        Token::delta_plus(
                            rel.clone(),
                            *tid,
                            new.clone(),
                            old.clone(),
                            EventSpecifier::Replace(attrs.clone()),
                        ),
                    ]
                }
            }
            Change::Deleted { rel, tid, old } => {
                let d = self.rels.entry(rel.clone()).or_default();
                if d.inserted.remove(&tid.0).is_some() {
                    // case 2: net effect nothing; the insert⁻ undoes the
                    // insertion and no delete event fires
                    vec![Token::minus(
                        rel.clone(),
                        *tid,
                        old.clone(),
                        EventSpecifier::Append,
                    )]
                } else if let Some((orig, attrs)) = d.modified.remove(&tid.0) {
                    // case 4 after modifications: Δ⁻ removes the standing
                    // pair, then delete⁻ matches on-delete conditions
                    vec![
                        Token::delta_minus(
                            rel.clone(),
                            *tid,
                            old.clone(),
                            orig,
                            EventSpecifier::Replace(attrs),
                        ),
                        Token::minus(rel.clone(), *tid, old.clone(), EventSpecifier::Delete),
                    ]
                } else {
                    // case 4 with zero modifications
                    vec![Token::minus(
                        rel.clone(),
                        *tid,
                        old.clone(),
                        EventSpecifier::Delete,
                    )]
                }
            }
        }
    }

    /// Translate a batch of changes, concatenating the token sequences.
    pub fn tokens_for_all(&mut self, changes: &[Change]) -> Vec<Token> {
        changes.iter().flat_map(|c| self.tokens_for(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariel_network::TokenKind;
    use ariel_storage::{Tid, Value};

    fn tup(v: i64) -> Tuple {
        Tuple::new(vec![Value::Int(v)])
    }

    fn ins(tid: u64, v: i64) -> Change {
        Change::Inserted {
            rel: "r".into(),
            tid: Tid(tid),
            new: tup(v),
        }
    }

    fn upd(tid: u64, old: i64, new: i64) -> Change {
        Change::Updated {
            rel: "r".into(),
            tid: Tid(tid),
            old: tup(old),
            new: tup(new),
            attrs: vec![0],
        }
    }

    fn del(tid: u64, old: i64) -> Change {
        Change::Deleted {
            rel: "r".into(),
            tid: Tid(tid),
            old: tup(old),
        }
    }

    fn kinds_events(tokens: &[Token]) -> Vec<(TokenKind, Option<EventSpecifier>)> {
        tokens.iter().map(|t| (t.kind, t.event.clone())).collect()
    }

    #[test]
    fn case1_insert_then_modify() {
        // i m m: insert⁺, then (insert⁻, insert⁺) per modify
        let mut d = DeltaTracker::new();
        let t1 = d.tokens_for(&ins(1, 10));
        assert_eq!(
            kinds_events(&t1),
            vec![(TokenKind::Plus, Some(EventSpecifier::Append))]
        );
        let t2 = d.tokens_for(&upd(1, 10, 20));
        assert_eq!(
            kinds_events(&t2),
            vec![
                (TokenKind::Minus, Some(EventSpecifier::Append)),
                (TokenKind::Plus, Some(EventSpecifier::Append)),
            ]
        );
        let t3 = d.tokens_for(&upd(1, 20, 30));
        assert_eq!(
            kinds_events(&t3),
            vec![
                (TokenKind::Minus, Some(EventSpecifier::Append)),
                (TokenKind::Plus, Some(EventSpecifier::Append)),
            ]
        );
        // the final insert⁺ carries the newest value
        assert_eq!(t3[1].tuple, tup(30));
    }

    #[test]
    fn case2_insert_modify_delete_nets_to_nothing() {
        let mut d = DeltaTracker::new();
        d.tokens_for(&ins(1, 10));
        d.tokens_for(&upd(1, 10, 20));
        let t = d.tokens_for(&del(1, 20));
        // a single insert⁻, and crucially NO delete event
        assert_eq!(
            kinds_events(&t),
            vec![(TokenKind::Minus, Some(EventSpecifier::Append))]
        );
    }

    #[test]
    fn case3_modify_preexisting() {
        let mut d = DeltaTracker::new();
        // first modify: bare − then Δ⁺
        let t1 = d.tokens_for(&upd(1, 10, 20));
        assert_eq!(
            kinds_events(&t1),
            vec![
                (TokenKind::Minus, None),
                (TokenKind::DeltaPlus, Some(EventSpecifier::Replace(vec![0]))),
            ]
        );
        assert_eq!(t1[1].old, Some(tup(10)));
        // second modify: Δ⁻ removing the (20, 10) pair, then Δ⁺ (30, 10)
        let t2 = d.tokens_for(&upd(1, 20, 30));
        assert_eq!(t2[0].kind, TokenKind::DeltaMinus);
        assert_eq!(t2[0].tuple, tup(20));
        assert_eq!(t2[0].old, Some(tup(10)), "previous = start of transition");
        assert_eq!(t2[1].kind, TokenKind::DeltaPlus);
        assert_eq!(t2[1].tuple, tup(30));
        assert_eq!(t2[1].old, Some(tup(10)), "previous = start of transition");
    }

    #[test]
    fn case4_modify_then_delete() {
        let mut d = DeltaTracker::new();
        d.tokens_for(&upd(1, 10, 20));
        let t = d.tokens_for(&del(1, 20));
        assert_eq!(t[0].kind, TokenKind::DeltaMinus);
        assert_eq!(t[1].kind, TokenKind::Minus);
        assert_eq!(t[1].event, Some(EventSpecifier::Delete));
        assert_eq!(t[1].tuple, tup(20), "delete− carries the final value");
    }

    #[test]
    fn case4_plain_delete() {
        let mut d = DeltaTracker::new();
        let t = d.tokens_for(&del(1, 10));
        assert_eq!(
            kinds_events(&t),
            vec![(TokenKind::Minus, Some(EventSpecifier::Delete))]
        );
    }

    #[test]
    fn replace_attrs_accumulate_across_transition() {
        let mut d = DeltaTracker::new();
        let c1 = Change::Updated {
            rel: "r".into(),
            tid: Tid(1),
            old: tup(1),
            new: tup(2),
            attrs: vec![0],
        };
        let c2 = Change::Updated {
            rel: "r".into(),
            tid: Tid(1),
            old: tup(2),
            new: tup(3),
            attrs: vec![2],
        };
        d.tokens_for(&c1);
        let t = d.tokens_for(&c2);
        // the net logical event replaced both attrs 0 and 2
        assert_eq!(t[1].event, Some(EventSpecifier::Replace(vec![0, 2])));
    }

    #[test]
    fn reset_starts_new_transition() {
        let mut d = DeltaTracker::new();
        d.tokens_for(&upd(1, 10, 20));
        d.reset();
        // after reset, the same tuple is "untouched" again: bare − + Δ⁺
        // with previous = 20 (its value at the start of the new transition)
        let t = d.tokens_for(&upd(1, 20, 30));
        assert_eq!(t[0].kind, TokenKind::Minus);
        assert_eq!(t[0].event, None);
        assert_eq!(t[1].old, Some(tup(20)));
    }

    #[test]
    fn relations_tracked_independently() {
        let mut d = DeltaTracker::new();
        d.tokens_for(&ins(1, 10));
        let other = Change::Deleted {
            rel: "s".into(),
            tid: Tid(1),
            old: tup(5),
        };
        let t = d.tokens_for(&other);
        // same tid in a different relation is not "inserted this transition"
        assert_eq!(t[0].event, Some(EventSpecifier::Delete));
    }

    #[test]
    fn nobobs_block_scenario() {
        // §2.2.2: append then replace inside one do-block nets to a single
        // logical append of the final value — the NoBobs rule fires.
        let mut d = DeltaTracker::new();
        d.tokens_for(&ins(1, 100)); // append emp(name="Sue"…)
        let t = d.tokens_for(&upd(1, 100, 200)); // replace emp(name="Bob")
                                                 // the logical event is still an append (insert−, insert+), so an
                                                 // on-append rule sees the final value
        assert_eq!(t[1].kind, TokenKind::Plus);
        assert_eq!(t[1].event, Some(EventSpecifier::Append));
        assert_eq!(t[1].tuple, tup(200));
    }

    #[test]
    fn batch_translation() {
        let mut d = DeltaTracker::new();
        let tokens = d.tokens_for_all(&[ins(1, 1), ins(2, 2), del(1, 1)]);
        assert_eq!(tokens.len(), 3);
        assert_eq!(tokens[2].event, Some(EventSpecifier::Append), "case 2");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use ariel_network::{EventSpecifier, TokenKind};
    use ariel_storage::{Tid, Value};
    use proptest::prelude::*;

    /// Net effect of one tuple's life within a transition (§2.2.2's table).
    #[derive(Debug, Clone, Copy, PartialEq)]
    enum NetEffect {
        Insert,
        Modify,
        Delete,
        Nothing,
    }

    #[derive(Debug, Clone, Copy)]
    enum TupleOp {
        Insert,
        Modify,
        Delete,
    }

    fn history() -> impl Strategy<Value = (bool, Vec<TupleOp>)> {
        (
            any::<bool>(),
            proptest::collection::vec(
                prop_oneof![
                    Just(TupleOp::Insert),
                    Just(TupleOp::Modify),
                    Just(TupleOp::Delete)
                ],
                1..7,
            ),
        )
    }

    /// Minimal models of the three α-memory families, driven per Fig. 5.
    #[derive(Debug, Default)]
    struct Memories {
        /// pattern memory: tid → current value (primed from existing data)
        pattern: Option<i64>,
        /// on-append memory: present iff an un-retracted append token stands
        on_append: Option<i64>,
        /// transition memory: (new, old) pair while one stands
        trans: Option<(i64, i64)>,
        /// on-delete matches observed
        delete_events: usize,
    }

    impl Memories {
        fn apply(&mut self, t: &Token) {
            let v = t.tuple.get(0).as_i64().unwrap();
            match t.kind {
                TokenKind::Plus => {
                    self.pattern = Some(v);
                    if t.event == Some(EventSpecifier::Append) {
                        self.on_append = Some(v);
                    }
                }
                TokenKind::Minus => {
                    self.pattern = None;
                    if t.event == Some(EventSpecifier::Append) {
                        self.on_append = None;
                    }
                    if t.event == Some(EventSpecifier::Delete) {
                        self.delete_events += 1;
                    }
                }
                TokenKind::DeltaPlus => {
                    // Fig. 5: pattern memories insert newt; trans memories
                    // insert the pair
                    self.pattern = Some(v);
                    self.trans = Some((v, t.old.as_ref().unwrap().get(0).as_i64().unwrap()));
                }
                TokenKind::DeltaMinus => {
                    self.pattern = None;
                    self.trans = None;
                }
            }
        }
    }

    /// Replay a legal prefix of `ops`, returning the model's net effect,
    /// the memory states, the final value, and the start-of-transition
    /// value.
    fn replay(preexisting: bool, ops: &[TupleOp]) -> (NetEffect, Memories, i64, i64) {
        let mut tracker = DeltaTracker::new();
        let mut alive = preexisting;
        // the paper's table is per-tuple: once deleted, a tuple never comes
        // back (a re-insert would be a different tuple with a fresh TID)
        let mut ever_died = false;
        let start_value = 0i64;
        let mut value = start_value;
        let mut mems = Memories {
            pattern: if preexisting { Some(start_value) } else { None },
            ..Default::default()
        };
        let mut effect = NetEffect::Nothing;
        let tup = |v: i64| Tuple::new(vec![Value::Int(v)]);
        for op in ops {
            let change = match (op, alive) {
                (TupleOp::Insert, false) if !ever_died => {
                    alive = true;
                    value += 1;
                    effect = NetEffect::Insert;
                    Change::Inserted {
                        rel: "r".into(),
                        tid: Tid(1),
                        new: tup(value),
                    }
                }
                (TupleOp::Modify, true) => {
                    let old = value;
                    value += 1;
                    if effect != NetEffect::Insert {
                        effect = NetEffect::Modify;
                    }
                    Change::Updated {
                        rel: "r".into(),
                        tid: Tid(1),
                        old: tup(old),
                        new: tup(value),
                        attrs: vec![0],
                    }
                }
                (TupleOp::Delete, true) => {
                    alive = false;
                    ever_died = true;
                    effect = if effect == NetEffect::Insert {
                        NetEffect::Nothing
                    } else {
                        NetEffect::Delete
                    };
                    Change::Deleted {
                        rel: "r".into(),
                        tid: Tid(1),
                        old: tup(value),
                    }
                }
                _ => continue, // illegal op for current state: skip
            };
            for t in tracker.tokens_for(&change) {
                mems.apply(&t);
            }
        }
        (effect, mems, value, start_value)
    }

    proptest! {
        /// Composing the Δ-set token generation with Fig. 5's memory
        /// actions leaves every memory family expressing exactly the net
        /// effect of the tuple's update sequence.
        #[test]
        fn memories_express_net_effect((preexisting, ops) in history()) {
            let (effect, mems, value, start) = replay(preexisting, &ops);
            match effect {
                NetEffect::Insert => {
                    prop_assert_eq!(mems.pattern, Some(value), "pattern sees final value");
                    prop_assert_eq!(mems.on_append, Some(value), "on-append sees final value");
                    prop_assert_eq!(mems.trans, None, "no transition pair");
                    prop_assert_eq!(mems.delete_events, 0);
                }
                NetEffect::Modify => {
                    prop_assert_eq!(mems.pattern, Some(value));
                    prop_assert_eq!(mems.on_append, None, "not an append");
                    prop_assert_eq!(
                        mems.trans,
                        Some((value, start)),
                        "pair = (final, start-of-transition)"
                    );
                    prop_assert_eq!(mems.delete_events, 0);
                }
                NetEffect::Delete => {
                    prop_assert_eq!(mems.pattern, None, "value retracted");
                    prop_assert_eq!(mems.on_append, None);
                    prop_assert_eq!(mems.trans, None, "pair retracted");
                    prop_assert_eq!(mems.delete_events, 1, "exactly one delete event");
                }
                NetEffect::Nothing => {
                    // either never touched, or insert+delete cancelled out
                    if preexisting {
                        prop_assert_eq!(mems.pattern, Some(start), "untouched value intact");
                    } else {
                        prop_assert_eq!(mems.pattern, None);
                    }
                    prop_assert_eq!(mems.on_append, None);
                    prop_assert_eq!(mems.trans, None);
                    prop_assert_eq!(mems.delete_events, 0, "net-nothing fires no delete");
                }
            }
        }
    }
}
