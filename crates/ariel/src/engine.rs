//! The Ariel engine: command dispatch, transitions, and the recognize-act
//! cycle (Fig. 1).

use crate::action::ActionPlanner;
use crate::agenda::{self, ConflictStrategy, Eligible};
use crate::catalog::RuleCatalog;
use crate::delta::DeltaTracker;
use crate::error::{ArielError, ArielResult};
use crate::obs::{self, EngineObs};
use crate::rule::RuleState;
use ariel_network::{
    MatchObs, Network, NetworkStats, ReteMode, ReteNetwork, RuleId, RuleStats, RuleTopology, Token,
    TraceEventKind, TraceRecord, TraceRecorder, TraceSource, VirtualPolicy, DEFAULT_TRACE_CAPACITY,
};
use ariel_query::{
    execute as execute_query, modify_action, parse_command, parse_script, CmdOutput, Command,
    Notification, Pnode, QueryResult, Resolver, RuleDef,
};
use ariel_storage::wal::{Durability, WalWriter};
use ariel_storage::{AttrDef, Catalog, Schema};
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::Arc;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Which eligible α-memories become virtual (§4.2).
    pub virtual_policy: VirtualPolicy,
    /// Conflict-resolution strategy.
    pub conflict: ConflictStrategy,
    /// Upper bound on rule firings per recognize-act cycle (runaway guard).
    pub max_firings: usize,
    /// `false` = always-reoptimize rule-action plans (§5.3, the paper's
    /// choice); `true` = cache plans at first firing.
    pub cache_action_plans: bool,
    /// Enable the gated timing tier (per-phase histograms) from the start.
    /// The always-on counters are collected regardless; this flag only
    /// controls wall-clock timing capture. See `docs/OBSERVABILITY.md`.
    pub observability: bool,
    /// Build hash join indexes over stored/dynamic α-memories on equi-join
    /// attributes and probe them (plus base-relation indexes under virtual
    /// nodes) during β-joins. `false` = pure nested-loop joins, kept as the
    /// comparison baseline for the fig10/fig11 benchmarks.
    pub join_indexing: bool,
    /// Enable the flight-recorder trace tier (bounded ring of causal
    /// trace events; the third observability tier) from the start. Off by
    /// default — when off, the recorder is never allocated and every
    /// trace hook is a single `Option` check. See `docs/OBSERVABILITY.md`.
    pub tracing: bool,
    /// When join indexing is on, compile composite (multi-attribute) join
    /// keys so multi-conjunct equi-joins probe one index instead of
    /// probing one attribute and re-testing the rest. `false` falls back
    /// to PR 2's single-attribute indexes, kept as the fig13 comparison
    /// baseline.
    pub composite_join_keys: bool,
    /// `Some(mode)` runs the engine on the Rete comparison network
    /// (β-memories materialized) in the given join mode instead of
    /// A-TREAT. The Rete backend compiles pattern-based conditions only —
    /// activating an event or transition rule fails. `None` (the default)
    /// is the paper's A-TREAT network.
    pub rete_mode: Option<ReteMode>,
    /// Fan β-join probe work across a worker-thread pool (A-TREAT backend
    /// only; the Rete backends stay sequential). Off by default. Results
    /// are identical to the sequential path — see `docs/CONCURRENCY.md`
    /// for the visibility discipline that makes this hold.
    pub parallel_match: bool,
    /// Worker threads for the parallel match path; 0 (the default) means
    /// one per available core. Only meaningful with `parallel_match` on.
    pub match_threads: usize,
    /// Intern string values on relation writes, replacing owned strings
    /// with `Copy` symbol handles so the match path compares and hashes
    /// strings as integers. On by default; `false` keeps the legacy owned
    /// representation (the BENCH_mem comparison baseline). Equality,
    /// ordering and display semantics are identical either way.
    pub intern_strings: bool,
    /// Upper bound on the number of client requests the server front-end
    /// (`ariel-server`) coalesces into one transition when consecutive
    /// pending requests are all plain appends. Batching feeds
    /// [`Ariel::execute_transition`] long positive token runs — exactly
    /// the shape the parallel match path carves into parallel jobs — at
    /// the cost of merging concurrent clients' appends into a single
    /// logical event set (see `docs/SERVER.md`). `1` disables
    /// cross-request coalescing. The engine itself never reads this; it
    /// is plumbed through [`EngineOptions`] so a server and its engine
    /// are configured in one place.
    pub serve_batch: usize,
    /// Write-ahead-log fsync policy used once durability is switched on by
    /// [`Ariel::checkpoint`] (or the CLI's `--durability` / `\checkpoint`).
    /// [`Durability::Off`] (the default) attaches no log writer at all, so
    /// transitions cost nothing extra. See `docs/DURABILITY.md`.
    pub durability: Durability,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            virtual_policy: VirtualPolicy::AllStored,
            conflict: ConflictStrategy::default(),
            max_firings: 10_000,
            cache_action_plans: false,
            observability: false,
            tracing: false,
            join_indexing: true,
            composite_join_keys: true,
            rete_mode: None,
            parallel_match: false,
            match_threads: 0,
            intern_strings: true,
            serve_batch: 64,
            durability: Durability::Off,
        }
    }
}

/// The discrimination network behind the engine: the paper's A-TREAT
/// network, or the Rete comparison baseline when
/// [`EngineOptions::rete_mode`] is set. Every method forwards to the
/// active backend; the engine (and the observability surface) drives both
/// uniformly.
#[derive(Debug)]
pub enum EngineNetwork {
    /// The A-TREAT network (`ariel_network::Network`).
    Treat(Network),
    /// The Rete baseline (`ariel_network::ReteNetwork`).
    Rete(ReteNetwork),
}

impl EngineNetwork {
    fn add_rule(
        &mut self,
        id: RuleId,
        cond: &ariel_query::ResolvedCondition,
        policy: &VirtualPolicy,
        catalog: &Catalog,
    ) -> QueryResult<()> {
        match self {
            EngineNetwork::Treat(n) => n.add_rule(id, cond, policy, catalog),
            // the Rete backend takes its policy at construction but uses
            // the catalog for the same selectivity estimate as TREAT
            EngineNetwork::Rete(n) => n.add_rule(id, cond, catalog),
        }
    }

    fn prime(&mut self, id: RuleId, catalog: &Catalog) -> QueryResult<()> {
        match self {
            EngineNetwork::Treat(n) => n.prime(id, catalog),
            EngineNetwork::Rete(n) => n.prime(id, catalog),
        }
    }

    fn remove_rule(&mut self, id: RuleId) {
        match self {
            EngineNetwork::Treat(n) => n.remove_rule(id),
            EngineNetwork::Rete(n) => n.remove_rule(id),
        }
    }

    fn process_batch(&mut self, tokens: &[Token], catalog: &Catalog) -> QueryResult<()> {
        match self {
            EngineNetwork::Treat(n) => n.process_batch(tokens, catalog),
            EngineNetwork::Rete(n) => n.process_batch(tokens, catalog),
        }
    }

    fn flush_transition_state(&mut self) {
        match self {
            EngineNetwork::Treat(n) => n.flush_transition_state(),
            EngineNetwork::Rete(n) => n.flush_transition_state(),
        }
    }

    fn drain_pnode(&mut self, id: RuleId) -> Vec<Vec<ariel_query::BoundVar>> {
        match self {
            EngineNetwork::Treat(n) => n.drain_pnode(id),
            EngineNetwork::Rete(n) => n.drain_pnode(id),
        }
    }

    /// Replace a rule's P-node rows wholesale (the crash-recovery path:
    /// priming rebuilds α/β state from relations, but consumed matches
    /// are history the snapshot alone knows).
    pub fn set_pnode_rows(&mut self, id: RuleId, rows: Vec<Vec<ariel_query::BoundVar>>) {
        match self {
            EngineNetwork::Treat(n) => n.set_pnode_rows(id, rows),
            EngineNetwork::Rete(n) => n.set_pnode_rows(id, rows),
        }
    }

    fn rules_with_matches(&self) -> Vec<RuleId> {
        match self {
            EngineNetwork::Treat(n) => n.rules_with_matches(),
            EngineNetwork::Rete(n) => n.rules_with_matches(),
        }
    }

    /// The P-node of an active rule.
    pub fn pnode(&self, id: RuleId) -> Option<&Pnode> {
        match self {
            EngineNetwork::Treat(n) => n.pnode(id),
            EngineNetwork::Rete(n) => n.pnode(id),
        }
    }

    /// Aggregate network statistics.
    pub fn stats(&self) -> NetworkStats {
        match self {
            EngineNetwork::Treat(n) => n.stats(),
            EngineNetwork::Rete(n) => n.stats(),
        }
    }

    /// Memory statistics of one active rule.
    pub fn rule_stats(&self, id: RuleId) -> Option<RuleStats> {
        match self {
            EngineNetwork::Treat(n) => n.rule_stats(id),
            EngineNetwork::Rete(n) => n.rule_stats(id),
        }
    }

    fn set_observing(&mut self, on: bool) {
        match self {
            EngineNetwork::Treat(n) => n.set_observing(on),
            EngineNetwork::Rete(n) => n.set_observing(on),
        }
    }

    /// The active timing session, if any.
    pub fn obs(&self) -> Option<&MatchObs> {
        match self {
            EngineNetwork::Treat(n) => n.obs(),
            EngineNetwork::Rete(n) => n.obs(),
        }
    }

    fn swap_obs(&mut self, obs: Option<MatchObs>) -> Option<MatchObs> {
        match self {
            EngineNetwork::Treat(n) => n.swap_obs(obs),
            EngineNetwork::Rete(n) => n.swap_obs(obs),
        }
    }

    fn set_trace(&mut self, trace: Option<TraceRecorder>) -> Option<TraceRecorder> {
        match self {
            EngineNetwork::Treat(n) => n.set_trace(trace),
            EngineNetwork::Rete(n) => n.set_trace(trace),
        }
    }

    /// The active flight recorder, if tracing is on.
    pub fn trace(&self) -> Option<&TraceRecorder> {
        match self {
            EngineNetwork::Treat(n) => n.trace(),
            EngineNetwork::Rete(n) => n.trace(),
        }
    }

    fn rule_topology(&self, id: RuleId) -> Option<RuleTopology> {
        match self {
            EngineNetwork::Treat(n) => n.rule_topology(id),
            EngineNetwork::Rete(n) => n.rule_topology(id),
        }
    }

    /// Whether α-memory join indexing is on: the TREAT switch, or (Rete)
    /// whether the backend runs in [`ReteMode::Indexed`].
    pub fn join_indexing(&self) -> bool {
        match self {
            EngineNetwork::Treat(n) => n.join_indexing(),
            EngineNetwork::Rete(n) => n.mode() == ReteMode::Indexed,
        }
    }

    /// Whether composite join keys are compiled (same Rete mapping as
    /// [`EngineNetwork::join_indexing`]).
    pub fn composite_keys(&self) -> bool {
        match self {
            EngineNetwork::Treat(n) => n.composite_keys(),
            EngineNetwork::Rete(n) => n.mode() == ReteMode::Indexed,
        }
    }

    /// The Rete join mode, when the Rete backend is active.
    pub fn rete_mode(&self) -> Option<ReteMode> {
        match self {
            EngineNetwork::Treat(_) => None,
            EngineNetwork::Rete(n) => Some(n.mode()),
        }
    }

    /// Whether the parallel match path is enabled (always `false` on the
    /// sequential Rete backends).
    pub fn parallel_match(&self) -> bool {
        match self {
            EngineNetwork::Treat(n) => n.parallel_match(),
            EngineNetwork::Rete(_) => false,
        }
    }

    fn set_parallel_match(&mut self, on: bool) -> bool {
        match self {
            EngineNetwork::Treat(n) => {
                n.set_parallel_match(on);
                true
            }
            EngineNetwork::Rete(_) => !on, // can't turn it on, off is a no-op
        }
    }

    /// Configured worker thread count for the parallel path (0 = auto).
    pub fn match_threads(&self) -> usize {
        match self {
            EngineNetwork::Treat(n) => n.match_threads(),
            EngineNetwork::Rete(_) => 0,
        }
    }

    fn set_match_threads(&mut self, threads: usize) {
        if let EngineNetwork::Treat(n) = self {
            n.set_match_threads(threads);
        }
    }
}

/// Cumulative engine statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Transitions processed (commands, blocks, and rule actions).
    pub transitions: u64,
    /// Tokens pushed through the discrimination network.
    pub tokens: u64,
    /// Rule firings.
    pub firings: u64,
}

/// Per-memory byte breakdown of the live match state (see
/// [`Ariel::memory_stats`]). All byte figures are the same approximations
/// the network's `heap_size` accounting produces; symbol-table and arena
/// figures are process-global (the table and the per-thread scratch pools
/// are shared by every engine in the process).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Entries across stored/dynamic α-memories.
    pub alpha_entries: usize,
    /// Bytes held by α-memory entries and their join/range indexes.
    pub alpha_bytes: usize,
    /// Bytes held in β-memories (Rete backends only; 0 under A-TREAT).
    pub beta_bytes: usize,
    /// Matched instantiations across all P-nodes.
    pub pnode_rows: usize,
    /// Bytes held by P-nodes.
    pub pnode_bytes: usize,
    /// Bytes in the selection network's interval indexes.
    pub selnet_bytes: usize,
    /// Distinct strings in the global symbol table.
    pub symbols: usize,
    /// Bytes held by the symbol table (payload + per-entry bookkeeping).
    pub symbol_bytes: usize,
    /// Scratch buffers handed out by the per-thread arenas.
    pub arena_takes: u64,
    /// Hand-outs served by recycling rather than fresh allocation.
    pub arena_reuses: u64,
    /// Peak bytes retained across all arena pools ("peak scratch").
    pub arena_high_water_bytes: u64,
}

impl MemoryStats {
    /// Average α-memory bytes per stored entry (0.0 when empty) — the
    /// headline figure the interning/flat-key work reduces.
    pub fn alpha_bytes_per_entry(&self) -> f64 {
        if self.alpha_entries == 0 {
            0.0
        } else {
            self.alpha_bytes as f64 / self.alpha_entries as f64
        }
    }
}

/// The Ariel active DBMS.
///
/// ```
/// use ariel::Ariel;
///
/// let mut db = Ariel::new();
/// db.execute("create emp (name = string, sal = float)").unwrap();
/// db.execute(
///     "define rule NoBobs on append emp if emp.name = \"Bob\" then delete emp",
/// )
/// .unwrap();
/// db.execute("append emp (name = \"Bob\", sal = 10000)").unwrap();
/// let out = db.query("retrieve (emp.name)").unwrap();
/// assert!(out.rows.is_empty(), "the rule deleted Bob");
/// ```
#[derive(Debug)]
pub struct Ariel {
    pub(crate) catalog: Catalog,
    pub(crate) rules: RuleCatalog,
    pub(crate) network: EngineNetwork,
    planner: ActionPlanner,
    pub(crate) options: EngineOptions,
    /// Query-modified action per active rule.
    actions: HashMap<u64, Vec<Command>>,
    /// Relations referenced by each active rule's condition.
    cond_rels: HashMap<u64, HashSet<String>>,
    /// Recency bookkeeping for conflict resolution.
    pub(crate) last_matched: HashMap<u64, u64>,
    pub(crate) prev_sizes: HashMap<u64, usize>,
    pub(crate) tick: u64,
    pub(crate) stats: EngineStats,
    /// Action executions per rule id (the `ariel_rule_firings_total`
    /// Prometheus family). Unlike [`EngineStats::firings`] this is not
    /// snapshotted: it counts since engine start or recovery.
    pub(crate) firings_by_rule: HashMap<u64, u64>,
    /// Pending asynchronous notifications (§8 future work: alert monitors,
    /// stock tickers). Consumers drain with [`Ariel::drain_notifications`].
    notifications: std::collections::VecDeque<Notification>,
    /// Engine-side timing store (None = observability off, the default).
    obs: Option<EngineObs>,
    /// Ring capacity used when tracing is (re-)enabled; `\trace limit`.
    trace_limit: usize,
    /// Attached write-ahead-log writer (None until [`Ariel::checkpoint`]
    /// enables durability, and always None under [`Durability::Off`]).
    pub(crate) wal: Option<WalWriter>,
    /// Durability directory of the last checkpoint/recovery, if any.
    pub(crate) wal_dir: Option<PathBuf>,
    /// WAL telemetry folded out of writers detached at checkpoints,
    /// durability-mode changes and recovery (see [`Ariel::wal_metrics`]).
    pub(crate) wal_totals: crate::obs::WalTotals,
}

impl Default for Ariel {
    fn default() -> Self {
        Self::new()
    }
}

impl Ariel {
    /// New engine with default options.
    pub fn new() -> Self {
        Self::with_options(EngineOptions::default())
    }

    /// New engine with explicit options.
    pub fn with_options(options: EngineOptions) -> Self {
        let network = match options.rete_mode {
            None => {
                let mut n = Network::new();
                n.set_join_indexing(options.join_indexing);
                n.set_composite_keys(options.composite_join_keys);
                n.set_parallel_match(options.parallel_match);
                n.set_match_threads(options.match_threads);
                EngineNetwork::Treat(n)
            }
            Some(mode) => {
                let mut n = ReteNetwork::with_policy(options.virtual_policy.clone());
                n.set_mode(mode);
                EngineNetwork::Rete(n)
            }
        };
        let mut catalog = Catalog::new();
        catalog.set_intern_strings(options.intern_strings);
        let mut engine = Ariel {
            catalog,
            rules: RuleCatalog::new(),
            network,
            planner: ActionPlanner::new(options.cache_action_plans),
            options,
            actions: HashMap::new(),
            cond_rels: HashMap::new(),
            last_matched: HashMap::new(),
            prev_sizes: HashMap::new(),
            tick: 0,
            stats: EngineStats::default(),
            firings_by_rule: HashMap::new(),
            notifications: std::collections::VecDeque::new(),
            obs: None,
            trace_limit: DEFAULT_TRACE_CAPACITY,
            wal: None,
            wal_dir: None,
            wal_totals: crate::obs::WalTotals::default(),
        };
        if engine.options.observability {
            engine.set_observability(true);
        }
        if engine.options.tracing {
            engine.set_tracing(true);
        }
        engine
    }

    /// Execute a script of one or more commands; returns one output per
    /// top-level command.
    pub fn execute(&mut self, src: &str) -> ArielResult<Vec<CmdOutput>> {
        let cmds = parse_script(src)?;
        let mut outputs = Vec::with_capacity(cmds.len());
        for cmd in &cmds {
            outputs.push(self.execute_command(cmd)?);
        }
        Ok(outputs)
    }

    /// Execute a single command given as source text and return its output
    /// (convenience for `retrieve`).
    pub fn query(&mut self, src: &str) -> ArielResult<CmdOutput> {
        let cmd = parse_command(src)?;
        self.execute_command(&cmd)
    }

    /// Execute one parsed command.
    pub fn execute_command(&mut self, cmd: &Command) -> ArielResult<CmdOutput> {
        match cmd {
            Command::Halt => Ok(CmdOutput::default()), // meaningful inside actions only
            Command::Block(cmds) => self.run_transition(cmds),
            Command::Append { .. }
            | Command::Delete { .. }
            | Command::Replace { .. }
            | Command::Retrieve { .. }
            | Command::Notify { .. } => self.run_transition(std::slice::from_ref(cmd)),
            // schema / rule-lifecycle commands: logged to the WAL whether
            // they succeeded or failed — a failure can still leave effects
            // behind (a `define rule` whose activation fails stays
            // installed), and replaying the command reproduces the same
            // outcome deterministically.
            ddl => {
                let result = self.execute_ddl(ddl);
                self.wal_log_command(ddl)?;
                result
            }
        }
    }

    /// Schema and rule-lifecycle commands (everything but DML, blocks and
    /// `halt`, which [`Ariel::execute_command`] routes elsewhere).
    fn execute_ddl(&mut self, cmd: &Command) -> ArielResult<CmdOutput> {
        match cmd {
            Command::CreateRelation { name, attrs } => {
                let schema = Schema::new(
                    attrs
                        .iter()
                        .map(|(n, t)| AttrDef::new(n.clone(), *t))
                        .collect(),
                )?;
                self.catalog.create(name, Arc::new(schema))?;
                Ok(CmdOutput::default())
            }
            Command::DestroyRelation { name } => {
                // an active rule watching the relation blocks destruction
                for (rule_key, rels) in &self.cond_rels {
                    if rels.contains(name) {
                        let rule = self
                            .rules
                            .by_id(RuleId(*rule_key))
                            .map(|r| r.name.clone())
                            .unwrap_or_default();
                        return Err(ArielError::RelationInUse {
                            relation: name.clone(),
                            rule,
                        });
                    }
                }
                self.catalog.destroy(name)?;
                Ok(CmdOutput::default())
            }
            Command::CreateIndex { rel, attr, kind } => {
                let rel_ref = self.catalog.require(rel)?;
                rel_ref.borrow_mut().create_index(attr, *kind)?;
                Ok(CmdOutput::default())
            }
            Command::DefineRule(def) => {
                // `define rule` installs and activates in one step; the
                // lower-level API keeps the phases separate (as the paper's
                // measurements do).
                let name = self.install_rule(def.clone())?;
                self.activate_rule(&name)?;
                Ok(CmdOutput::default())
            }
            Command::DropRule { name } => {
                if self.rules.require(name)?.is_active() {
                    self.deactivate_rule(name)?;
                }
                self.rules.remove(name)?;
                Ok(CmdOutput::default())
            }
            Command::ActivateRule { name } => {
                self.activate_rule(name)?;
                Ok(CmdOutput::default())
            }
            Command::DeactivateRule { name } => {
                self.deactivate_rule(name)?;
                Ok(CmdOutput::default())
            }
            other => unreachable!("execute_ddl called with `{}`", other.kind_name()),
        }
    }

    // ----- rule lifecycle ----------------------------------------------------

    /// Install a rule: store its syntax tree in the rule catalog (§6's
    /// *installation* phase). Returns the rule name.
    pub fn install_rule(&mut self, def: RuleDef) -> ArielResult<String> {
        let name = def.name.clone();
        self.rules.install(def)?;
        Ok(name)
    }

    /// Install a rule given as `define rule …` source text.
    pub fn install_rule_src(&mut self, src: &str) -> ArielResult<String> {
        match parse_command(src)? {
            Command::DefineRule(def) => self.install_rule(def),
            other => Err(ArielError::Query(ariel_query::QueryError::Semantic(
                format!("expected `define rule`, found `{}`", other.kind_name()),
            ))),
        }
    }

    /// Activate an installed rule (§6's *activation* phase): resolve the
    /// condition, build and prime the discrimination network, and store the
    /// query-modified action. Pre-existing matching data is loaded into the
    /// P-node; it is acted on at the next transition's recognize-act cycle
    /// (activation itself does not fire rules — matching the paper's
    /// measurement methodology). Call [`Ariel::run_rules`] to fire
    /// immediately.
    pub fn activate_rule(&mut self, name: &str) -> ArielResult<()> {
        let rule = self.rules.require(name)?;
        if rule.is_active() {
            return Err(ArielError::AlreadyActive(name.to_string()));
        }
        let id = rule.id;
        let def = rule.def.clone();
        let resolved = Resolver::new(&self.catalog).resolve_condition(
            def.on.as_ref(),
            def.condition.as_ref(),
            &def.cond_from,
        )?;
        let shared: HashSet<String> = resolved.spec.vars.iter().map(|v| v.name.clone()).collect();
        let rels: HashSet<String> = resolved.spec.vars.iter().map(|v| v.rel.clone()).collect();
        let modified = modify_action(&def.action, &shared);
        self.network
            .add_rule(id, &resolved, &self.options.virtual_policy, &self.catalog)?;
        if let Err(e) = self.network.prime(id, &self.catalog) {
            self.network.remove_rule(id);
            return Err(e.into());
        }
        self.actions.insert(id.0, modified);
        self.cond_rels.insert(id.0, rels);
        self.rules.get_mut(name).expect("installed").state = RuleState::Active;
        self.note_matches();
        Ok(())
    }

    /// Deactivate an active rule: tear down its network structures. The
    /// definition stays installed.
    pub fn deactivate_rule(&mut self, name: &str) -> ArielResult<()> {
        let rule = self.rules.require(name)?;
        if !rule.is_active() {
            return Err(ArielError::NotActive(name.to_string()));
        }
        let id = rule.id;
        self.network.remove_rule(id);
        self.planner.invalidate(id.0);
        self.actions.remove(&id.0);
        self.cond_rels.remove(&id.0);
        self.last_matched.remove(&id.0);
        self.prev_sizes.remove(&id.0);
        self.rules.get_mut(name).expect("installed").state = RuleState::Installed;
        Ok(())
    }

    // ----- transitions & the recognize-act cycle ------------------------------

    /// Run a transition: execute the commands (a single command, or the
    /// body of a `do…end` block), push the resulting tokens through the
    /// discrimination network, then run the recognize-act cycle to
    /// quiescence. Returns the commands' outputs merged into one.
    fn run_transition(&mut self, cmds: &[Command]) -> ArielResult<CmdOutput> {
        let outputs = self.run_transition_outputs(cmds)?;
        let mut merged = CmdOutput::default();
        for out in outputs {
            merged.changes.extend(out.changes);
            merged.notifications.extend(out.notifications);
            if !out.columns.is_empty() {
                if merged.columns == out.columns {
                    // several retrieves with the same shape (e.g. the same
                    // `retrieve` repeated in a do…end block) accumulate
                    merged.rows.extend(out.rows);
                } else {
                    merged.columns = out.columns;
                    merged.rows = out.rows;
                }
            }
        }
        Ok(merged)
    }

    /// Execute several DML commands as **one transition** — one Δ-set per
    /// command, one recognize-act cycle at the end, exactly the semantics
    /// of a `do … end` block — but return one [`CmdOutput`] per command
    /// instead of a merged one. This is the server front-end's
    /// write-batching entry point: requests coalesced across client
    /// sessions still need their own change counts and result rows acked
    /// back to the session that issued them. Only DML (`append`,
    /// `delete`, `replace`, `retrieve`, `notify`) is allowed, as inside a
    /// `do…end` block.
    pub fn execute_transition(&mut self, cmds: &[Command]) -> ArielResult<Vec<CmdOutput>> {
        if cmds.is_empty() {
            return Ok(Vec::new());
        }
        self.run_transition_outputs(cmds)
    }

    /// Shared transition body: per-command outputs, one recognize-act
    /// cycle at the end.
    fn run_transition_outputs(&mut self, cmds: &[Command]) -> ArielResult<Vec<CmdOutput>> {
        let mut delta = DeltaTracker::new();
        let mut outputs = Vec::with_capacity(cmds.len());
        self.tick += 1;
        self.stats.transitions += 1;
        if let Some(tr) = self.network.trace() {
            tr.begin_transition(self.tick, 0, None);
            let text = cmds
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join("; ");
            tr.record(TraceEventKind::TransitionBegin {
                source: TraceSource::Command(text),
            });
        }
        let mut transition_tokens = 0u64;
        let mut failed: Option<ArielError> = None;
        for cmd in cmds {
            let out = match self.apply_dml(cmd) {
                Ok(out) => out,
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            };
            let tokens = delta.tokens_for_all(&out.changes);
            self.stats.tokens += tokens.len() as u64;
            transition_tokens += tokens.len() as u64;
            let batch_start = self.obs.as_ref().map(|_| std::time::Instant::now());
            let batch = self.network.process_batch(&tokens, &self.catalog);
            if let (Some(obs), Some(t0)) = (self.obs.as_mut(), batch_start) {
                obs.match_batch.record(t0.elapsed().as_nanos() as u64);
            }
            self.notifications.extend(out.notifications.iter().cloned());
            outputs.push(out);
            if let Err(e) = batch {
                failed = Some(e.into());
                break;
            }
        }
        // a mid-transition error must not leave a dangling TransitionBegin
        // in the flight recorder: close the span either way
        if let Some(tr) = self.network.trace() {
            tr.record(TraceEventKind::TransitionEnd {
                tokens: transition_tokens,
            });
        }
        // the commands' effects (even partial, on error) are already in the
        // relations and there is no rollback: log the transition before
        // acking or firing rules, so replay reproduces exactly this state —
        // a failing command fails identically on replay
        self.wal_log_transition(cmds)?;
        if let Some(e) = failed {
            return Err(e);
        }
        self.note_matches();
        self.recognize_act()?;
        Ok(outputs)
    }

    /// Resolve and execute one DML command (no rule processing).
    fn apply_dml(&mut self, cmd: &Command) -> ArielResult<CmdOutput> {
        match cmd {
            Command::Append { .. }
            | Command::Delete { .. }
            | Command::Replace { .. }
            | Command::Retrieve { .. }
            | Command::Notify { .. } => {
                let rcmd = Resolver::new(&self.catalog).resolve_command(cmd)?;
                Ok(execute_query(&rcmd, &mut self.catalog, None)?)
            }
            Command::Halt => Ok(CmdOutput::default()),
            other => Err(ArielError::Query(ariel_query::QueryError::Semantic(
                format!(
                    "`{}` is not allowed inside a do…end block",
                    other.kind_name()
                ),
            ))),
        }
    }

    /// Run the recognize-act cycle until no rules are eligible, a rule
    /// executes `halt`, or the firing limit is hit (Fig. 1).
    pub fn run_rules(&mut self) -> ArielResult<()> {
        let result = self.recognize_act();
        // firings mutate relations; a marker record replays the cycle
        self.wal_log_run_rules()?;
        result
    }

    fn recognize_act(&mut self) -> ArielResult<()> {
        let result = self.recognize_act_inner();
        // per-transition bindings are broken at quiescence (§4.3.2),
        // including on the error path
        self.network.flush_transition_state();
        self.resync_sizes();
        result
    }

    fn recognize_act_inner(&mut self) -> ArielResult<()> {
        let mut firings = 0usize;
        loop {
            // match: the discrimination network maintained the P-nodes
            let eligible: Vec<Eligible> = self
                .network
                .rules_with_matches()
                .into_iter()
                .filter_map(|id| {
                    let rule = self.rules.by_id(id)?;
                    Some(Eligible {
                        id,
                        name: rule.name.clone(),
                        priority: rule.priority,
                        last_matched: self.last_matched.get(&id.0).copied().unwrap_or(0),
                    })
                })
                .collect();
            // conflict resolution
            let Some(chosen) = agenda::select(self.options.conflict, &eligible).cloned() else {
                return Ok(());
            };
            if let Some(tr) = self.network.trace() {
                tr.record(TraceEventKind::AgendaSchedule {
                    rule: chosen.id.0,
                    eligible: eligible.len() as u64,
                });
            }
            // act
            if firings >= self.options.max_firings {
                return Err(ArielError::RunawayRules {
                    limit: self.options.max_firings,
                });
            }
            firings += 1;
            self.stats.firings += 1;
            *self.firings_by_rule.entry(chosen.id.0).or_insert(0) += 1;
            let rows = self.network.drain_pnode(chosen.id);
            let drained = rows.len() as u64;
            let cols = self
                .network
                .pnode(chosen.id)
                .expect("active rule")
                .cols()
                .to_vec();
            let mut pnode = Pnode::new(cols);
            for r in rows {
                pnode.push(r);
            }
            let action = self.actions.get(&chosen.id.0).expect("active rule").clone();
            let action_start = self.obs.as_ref().map(|_| std::time::Instant::now());
            let outcome = self
                .planner
                .execute_action(chosen.id.0, &action, &pnode, &mut self.catalog)
                .map_err(|e| ArielError::RuleAction {
                    rule: chosen.name.clone(),
                    source: Box::new(e.into()),
                })?;
            let action_ns = action_start.map(|t0| t0.elapsed().as_nanos() as u64);
            if let (Some(obs), Some(ns)) = (self.obs.as_mut(), action_ns) {
                obs.record_action(chosen.id.0, ns);
            }
            // the firing's provenance (depth, cascade parent) comes from
            // the rule's most recent instantiation, recorded in the network
            let firing_ctx = self
                .network
                .trace()
                .map(|tr| tr.record_firing(chosen.id.0, drained, action_ns));
            self.notifications
                .extend(outcome.notifications.iter().cloned());
            // the action is itself a transition
            self.tick += 1;
            self.stats.transitions += 1;
            if let (Some(tr), Some((fseq, fdepth))) = (self.network.trace(), firing_ctx) {
                tr.begin_transition(self.tick, fdepth + 1, Some(fseq));
                tr.record(TraceEventKind::TransitionBegin {
                    source: TraceSource::RuleAction {
                        rule: chosen.id.0,
                        firing: fseq,
                    },
                });
            }
            let mut delta = DeltaTracker::new();
            let tokens = delta.tokens_for_all(&outcome.changes);
            self.stats.tokens += tokens.len() as u64;
            let batch_start = self.obs.as_ref().map(|_| std::time::Instant::now());
            self.network.process_batch(&tokens, &self.catalog)?;
            if let (Some(obs), Some(t0)) = (self.obs.as_mut(), batch_start) {
                obs.match_batch.record(t0.elapsed().as_nanos() as u64);
            }
            if let (Some(tr), Some((fseq, _))) = (self.network.trace(), firing_ctx) {
                tr.record(TraceEventKind::CascadeDelta {
                    firing: fseq,
                    tokens: tokens.len() as u64,
                });
                tr.record(TraceEventKind::TransitionEnd {
                    tokens: tokens.len() as u64,
                });
            }
            self.note_matches();
            if outcome.halted {
                return Ok(());
            }
        }
    }

    /// Record which rules gained matches this tick (recency for conflict
    /// resolution).
    fn note_matches(&mut self) {
        for id in self.network.rules_with_matches() {
            let len = self.network.pnode(id).map(|p| p.len()).unwrap_or(0);
            let prev = self.prev_sizes.get(&id.0).copied().unwrap_or(0);
            if len > prev {
                self.last_matched.insert(id.0, self.tick);
            }
            self.prev_sizes.insert(id.0, len);
        }
    }

    pub(crate) fn resync_sizes(&mut self) {
        for (key, size) in self.prev_sizes.iter_mut() {
            *size = self
                .network
                .pnode(RuleId(*key))
                .map(|p| p.len())
                .unwrap_or(0);
        }
    }

    // ----- token-level access (benchmarks) -------------------------------------

    /// Push tokens through the discrimination network without running the
    /// recognize-act cycle — the paper's *token test* measurement in §6.
    pub fn match_tokens(&mut self, tokens: &[Token]) -> ArielResult<()> {
        self.network.process_batch(tokens, &self.catalog)?;
        Ok(())
    }

    // ----- inspection -----------------------------------------------------------

    /// The relation catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable relation catalog (data loading in tests/benches).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// The rule catalog.
    pub fn rules(&self) -> &RuleCatalog {
        &self.rules
    }

    /// The discrimination network (A-TREAT, or Rete under
    /// [`EngineOptions::rete_mode`]).
    pub fn network(&self) -> &EngineNetwork {
        &self.network
    }

    /// Aggregate network statistics.
    pub fn network_stats(&self) -> NetworkStats {
        self.network.stats()
    }

    /// Memory statistics of one active rule.
    pub fn rule_stats(&self, name: &str) -> ArielResult<RuleStats> {
        let rule = self.rules.require(name)?;
        self.network
            .rule_stats(rule.id)
            .ok_or_else(|| ArielError::NotActive(name.to_string()))
    }

    /// Cumulative engine statistics.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Engine options.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// Pending match count of a rule (P-node size).
    pub fn pending_matches(&self, name: &str) -> ArielResult<usize> {
        let rule = self.rules.require(name)?;
        Ok(self.network.pnode(rule.id).map(|p| p.len()).unwrap_or(0))
    }

    /// Activate every installed-but-inactive rule in a ruleset. Returns
    /// the names activated (rulesets are a grouping convenience, §2.1).
    pub fn activate_ruleset(&mut self, ruleset: &str) -> ArielResult<Vec<String>> {
        let names: Vec<String> = self
            .rules
            .iter()
            .filter(|r| r.ruleset == ruleset && !r.is_active())
            .map(|r| r.name.clone())
            .collect();
        for n in &names {
            self.activate_rule(n)?;
        }
        Ok(names)
    }

    /// Deactivate every active rule in a ruleset. Returns the names
    /// deactivated.
    pub fn deactivate_ruleset(&mut self, ruleset: &str) -> ArielResult<Vec<String>> {
        let names: Vec<String> = self
            .rules
            .iter()
            .filter(|r| r.ruleset == ruleset && r.is_active())
            .map(|r| r.name.clone())
            .collect();
        for n in &names {
            self.deactivate_rule(n)?;
        }
        Ok(names)
    }

    /// Drain all pending asynchronous notifications, oldest first.
    pub fn drain_notifications(&mut self) -> Vec<Notification> {
        self.notifications.drain(..).collect()
    }

    /// Number of pending notifications.
    pub fn pending_notifications(&self) -> usize {
        self.notifications.len()
    }

    /// Render an installed rule's stored definition back to ARL source
    /// (the rule catalog keeps the syntax tree; this pretty-prints it).
    pub fn show_rule(&self, name: &str) -> ArielResult<String> {
        let rule = self.rules.require(name)?;
        Ok(rule.def.to_string())
    }

    /// Produce the optimizer's plan for a DML command without executing it
    /// (an `EXPLAIN`; Fig. 8 of the paper shows such a plan for a rule
    /// action). Returns the rendered plan tree.
    pub fn explain(&self, src: &str) -> ArielResult<String> {
        let cmd = parse_command(src)?;
        let rcmd = Resolver::new(&self.catalog).resolve_command(&cmd)?;
        match ariel_query::plan_command(&rcmd, &self.catalog, None)? {
            Some(plan) => Ok(plan.to_string()),
            None => Ok("(no plan: command binds no tuple variables)\n".to_string()),
        }
    }

    /// Produce the plans for every command of an active rule's
    /// (query-modified) action, bound against its current P-node — what the
    /// always-reoptimize strategy would run at the next firing (Fig. 8).
    pub fn explain_rule_action(&self, name: &str) -> ArielResult<String> {
        let rule = self.rules.require(name)?;
        if !rule.is_active() {
            return Err(ArielError::NotActive(name.to_string()));
        }
        let action = self.actions.get(&rule.id.0).expect("active rule");
        let pnode = self.network.pnode(rule.id).expect("active rule");
        let mut out = String::new();
        for (i, cmd) in action.iter().enumerate() {
            out.push_str(&format!("-- action command {}: {}\n", i + 1, cmd));
            match cmd {
                Command::Halt => out.push_str("(halt)\n"),
                _ => {
                    let rcmd = Resolver::with_pnode(&self.catalog, pnode).resolve_command(cmd)?;
                    match ariel_query::plan_command(&rcmd, &self.catalog, Some(pnode))? {
                        Some(plan) => out.push_str(&plan.to_string()),
                        None => out.push_str("(no tuple variables)\n"),
                    }
                }
            }
        }
        Ok(out)
    }

    // ----- observability --------------------------------------------------------

    /// Enable or disable the gated timing tier: per-phase wall-clock
    /// histograms in the network plus action-execution timing in the
    /// engine. Enabling starts fresh sessions; disabling discards them.
    /// The always-on counters (see [`NetworkStats`]) are unaffected.
    pub fn set_observability(&mut self, on: bool) {
        self.network.set_observing(on);
        self.obs = if on { Some(EngineObs::new()) } else { None };
    }

    /// Whether the gated timing tier is active.
    pub fn observing(&self) -> bool {
        self.obs.is_some()
    }

    // ----- parallel match -------------------------------------------------------

    /// Enable or disable the parallel match path (`\parallel on|off`).
    /// Returns an error on the Rete backends, which stay sequential.
    /// While a flight recorder is installed the network takes the
    /// sequential path even with this on (see `docs/CONCURRENCY.md`).
    pub fn set_parallel_match(&mut self, on: bool) -> ArielResult<()> {
        if !self.network.set_parallel_match(on) {
            return Err(ArielError::Query(ariel_query::QueryError::Semantic(
                "parallel match requires the A-TREAT backend (Rete is sequential)".into(),
            )));
        }
        self.options.parallel_match = on;
        Ok(())
    }

    /// Whether the parallel match path is enabled.
    pub fn parallel_match(&self) -> bool {
        self.network.parallel_match()
    }

    /// Set the worker thread count for the parallel match path
    /// (`\parallel threads <n>`; 0 = one per available core). Takes
    /// effect on the next transition.
    pub fn set_match_threads(&mut self, threads: usize) {
        self.options.match_threads = threads;
        self.network.set_match_threads(threads);
    }

    /// Configured worker thread count (0 = auto).
    pub fn match_threads(&self) -> usize {
        self.network.match_threads()
    }

    /// Permute how the parallel path deals join seeds to worker deques
    /// with a seeded shuffle (no-op on the Rete backends). Results are
    /// scheduling-independent; this hook exists for the stress tests that
    /// prove it.
    pub fn set_match_shard_seed(&mut self, seed: Option<u64>) {
        if let EngineNetwork::Treat(n) = &mut self.network {
            n.set_shard_seed(seed);
        }
    }

    // ----- tracing (flight recorder) --------------------------------------------

    /// Enable or disable the flight-recorder trace tier: a bounded ring
    /// of structured causal trace events (see `docs/OBSERVABILITY.md`).
    /// Enabling installs a fresh recorder with the configured
    /// [`Ariel::trace_limit`]; disabling discards the recorder (and its
    /// events). Independent of the timing tier — but when both are on,
    /// firing events carry measured action durations.
    pub fn set_tracing(&mut self, on: bool) {
        let trace = on.then(|| TraceRecorder::new(self.trace_limit));
        self.network.set_trace(trace);
    }

    /// Whether the flight recorder is active.
    pub fn tracing(&self) -> bool {
        self.network.trace().is_some()
    }

    /// Set the ring capacity (`\trace limit N`). Applies immediately to a
    /// live recorder (evicting oldest events when shrinking) and to any
    /// recorder installed later.
    pub fn set_trace_limit(&mut self, limit: usize) {
        self.trace_limit = limit.max(1);
        if let Some(tr) = self.network.trace() {
            tr.set_capacity(self.trace_limit);
        }
    }

    /// The configured ring capacity.
    pub fn trace_limit(&self) -> usize {
        self.trace_limit
    }

    /// Copy of the recorded trace events, oldest first (empty when
    /// tracing is off).
    pub fn trace_events(&self) -> Vec<TraceRecord> {
        self.network
            .trace()
            .map(|tr| tr.snapshot())
            .unwrap_or_default()
    }

    /// Events evicted from the ring so far (0 when tracing is off).
    pub fn trace_dropped(&self) -> u64 {
        self.network.trace().map(|tr| tr.dropped()).unwrap_or(0)
    }

    /// Discard recorded events, keeping tracing on and sequence numbers
    /// running.
    pub fn clear_trace(&self) {
        if let Some(tr) = self.network.trace() {
            tr.clear();
        }
    }

    /// Render the causal chain of a rule's recorded firings: originating
    /// command → tokens → matched TIDs → firing → cascaded updates, with
    /// cascade depths (`\why <rule>`). The rendering is identical across
    /// the A-TREAT and Rete backends. Errors if the rule is unknown;
    /// reports when tracing is off or no firing is in the ring.
    pub fn why(&self, name: &str) -> ArielResult<String> {
        let rule = self.rules.require(name)?;
        let Some(tr) = self.network.trace() else {
            return Ok("tracing is off — nothing recorded (enable with \\trace on)\n".to_string());
        };
        Ok(crate::trace::render_why(
            &tr.snapshot(),
            rule.id.0,
            name,
            &self.rule_names(),
        ))
    }

    /// Export the recorded trace as a Chrome `trace_event` JSON document
    /// (loadable in Perfetto / `chrome://tracing`). Transitions become
    /// complete (`ph:"X"`) spans on one track per cascade depth; firings
    /// with measured durations (timing tier on) become spans too; all
    /// other events are instants. Hand-rolled like
    /// [`Ariel::metrics_json`]; see `docs/OBSERVABILITY.md` for the
    /// schema.
    pub fn chrome_trace_json(&self) -> String {
        crate::trace::chrome_trace_json(&self.trace_events(), &self.rule_names())
    }

    /// Render the newest `limit` recorded events (all when `None`) as a
    /// human-readable listing (`\trace show`).
    pub fn render_trace(&self, limit: Option<usize>) -> String {
        crate::trace::render_show(
            &self.trace_events(),
            &self.rule_names(),
            limit,
            self.trace_dropped(),
        )
    }

    fn rule_names(&self) -> HashMap<u64, String> {
        self.rules
            .iter()
            .map(|r| (r.id.0, r.name.clone()))
            .collect()
    }

    /// Per-memory byte breakdown of the live match state (`\stats bytes`
    /// and the `BENCH_mem.json` ingredients): discrimination-network
    /// memories, the global symbol table, and the scratch arenas.
    pub fn memory_stats(&self) -> MemoryStats {
        let n = self.network.stats();
        let interner = ariel_storage::intern::stats();
        let arena = ariel_network::arena::stats();
        MemoryStats {
            alpha_entries: n.alpha_entries,
            alpha_bytes: n.alpha_bytes,
            beta_bytes: n.beta_bytes,
            pnode_rows: n.pnode_rows,
            pnode_bytes: n.pnode_bytes,
            selnet_bytes: n.selnet_bytes,
            symbols: interner.symbols,
            symbol_bytes: interner.bytes,
            arena_takes: arena.takes,
            arena_reuses: arena.reuses,
            arena_high_water_bytes: arena.high_water_bytes,
        }
    }

    /// Full metrics snapshot as a JSON document: engine counters, network
    /// counters, per-rule statistics, and — when observability is on —
    /// every timing histogram (`"timing": null` otherwise). The schema is
    /// documented in `docs/OBSERVABILITY.md`; the benchmark driver writes
    /// this into `BENCH_obs.json`.
    pub fn metrics_json(&self) -> String {
        obs::render_metrics_json(&self.metrics_input())
    }

    /// The engine half of the Prometheus text exposition: `ariel_engine_*`,
    /// `ariel_network_*`, `ariel_rule_*` and `ariel_wal_*` metric families
    /// (plus the timing histograms when observability is on), hand-rolled
    /// `# HELP`/`# TYPE` headers included. Served by `\metrics prom` in the
    /// REPL; the TCP server prepends its own `ariel_server_*` families for
    /// the `MetricsProm` opcode and the `GET /metrics` shim. The families
    /// are documented in `docs/OBSERVABILITY.md`.
    pub fn metrics_prometheus(&self) -> String {
        obs::render_metrics_prometheus(&self.metrics_input())
    }

    fn metrics_input(&self) -> obs::MetricsInput<'_> {
        let mut rules = Vec::new();
        let mut names = std::collections::BTreeMap::new();
        for rule in self.rules.iter() {
            names.insert(rule.id.0, rule.name.clone());
            if let Some(s) = self.network.rule_stats(rule.id) {
                let firings = self.firings_by_rule.get(&rule.id.0).copied().unwrap_or(0);
                rules.push((rule.name.clone(), firings, s));
            }
        }
        obs::MetricsInput {
            engine: self.stats,
            network: self.network.stats(),
            rules,
            wal: self.wal_metrics(),
            match_obs: self.network.obs(),
            engine_obs: self.obs.as_ref(),
            names,
        }
    }

    /// Execute a command (or script) under a scoped timing capture and
    /// render an annotated tree of the match work it caused: per α-node
    /// token counts, selectivities and test times, virtual-node scan
    /// costs, β-join fan-out and time, P-node inserts, and rule-action
    /// executions. Works whether or not the observability flag is on; the
    /// capture is folded into the cumulative session when it is.
    pub fn explain_analyze(&mut self, src: &str) -> ArielResult<String> {
        let prev_net = self.network.swap_obs(Some(MatchObs::new()));
        let prev_eng = self.obs.replace(EngineObs::new());
        let start = std::time::Instant::now();
        let result = self.execute(src);
        let total_ns = start.elapsed().as_nanos() as u64;
        let capture = self.network.swap_obs(prev_net).expect("capture installed");
        let engine_capture = std::mem::replace(&mut self.obs, prev_eng).expect("capture installed");
        if let Some(cumulative) = self.network.obs() {
            cumulative.merge(&capture);
        }
        if let Some(cumulative) = self.obs.as_mut() {
            cumulative.merge(&engine_capture);
        }
        result?;
        let mut rules = Vec::new();
        for rule in self.rules.iter().filter(|r| r.is_active()) {
            if let Some((vars, join_conjuncts)) = self.network.rule_topology(rule.id) {
                rules.push(obs::AnalyzedRule {
                    id: rule.id.0,
                    name: rule.name.clone(),
                    vars,
                    join_conjuncts,
                });
            }
        }
        rules.sort_by_key(|r| r.id);
        Ok(obs::render_explain_analyze(&obs::AnalyzeInput {
            src,
            total_ns,
            capture,
            engine_capture,
            rules,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options() {
        let opts = EngineOptions::default();
        assert!(matches!(opts.virtual_policy, VirtualPolicy::AllStored));
        assert_eq!(opts.max_firings, 10_000);
        assert!(!opts.cache_action_plans);
        assert!(opts.join_indexing, "join indexing is on by default");
        assert!(opts.composite_join_keys, "composite keys are on by default");
        assert!(!opts.tracing, "tracing is off by default");
        assert!(!opts.parallel_match, "parallel match is off by default");
        assert_eq!(opts.match_threads, 0, "thread count defaults to auto");
        assert!(opts.intern_strings, "string interning is on by default");
        assert_eq!(opts.durability, Durability::Off, "no logging by default");
        let db = Ariel::new();
        assert!(db.wal_dir().is_none(), "no durability dir until checkpoint");
        assert_eq!(db.wal_records(), 0);
        assert!(db.catalog().intern_strings());
        assert!(!db.parallel_match());
        assert!(!db.options().cache_action_plans);
        assert!(!db.tracing(), "no recorder allocated by default");
        assert_eq!(db.trace_limit(), DEFAULT_TRACE_CAPACITY);
    }

    #[test]
    fn memory_stats_reports_live_state() {
        let mut db = Ariel::new();
        db.execute("create emp (name = str, dno = int); create dept (dno = int, floor = int)")
            .unwrap();
        db.execute("define rule r1 if emp.dno = dept.dno then delete dept")
            .unwrap();
        db.execute("append to emp (name = \"alice\", dno = 1)")
            .unwrap();
        let m = db.memory_stats();
        assert!(m.alpha_entries >= 1, "stored α-memory holds the tuple");
        assert!(m.alpha_bytes > 0);
        assert!(m.symbols >= 1, "interned \"alice\" registers in the table");
        assert!(m.symbol_bytes > 0);
        assert!(m.arena_takes >= 1, "match path drew scratch buffers");
        assert!(m.alpha_bytes_per_entry() > 0.0);
        assert_eq!(MemoryStats::default().alpha_bytes_per_entry(), 0.0);
    }

    #[test]
    fn join_indexing_opt_out_reaches_network() {
        let db = Ariel::with_options(EngineOptions {
            join_indexing: false,
            ..Default::default()
        });
        assert!(!db.network().join_indexing());
        assert!(Ariel::new().network().join_indexing());
    }

    #[test]
    fn composite_keys_opt_out_reaches_network() {
        let db = Ariel::with_options(EngineOptions {
            composite_join_keys: false,
            ..Default::default()
        });
        assert!(!db.network().composite_keys());
        assert!(Ariel::new().network().composite_keys());
    }

    #[test]
    fn rete_mode_selects_backend() {
        let db = Ariel::new();
        assert!(db.network().rete_mode().is_none(), "A-TREAT by default");
        for mode in [ReteMode::Indexed, ReteMode::Nested] {
            let mut db = Ariel::with_options(EngineOptions {
                rete_mode: Some(mode),
                ..Default::default()
            });
            assert_eq!(db.network().rete_mode(), Some(mode));
            assert_eq!(
                db.network().join_indexing(),
                mode == ReteMode::Indexed,
                "indexing follows the Rete mode"
            );
            db.execute("create emp (sal = int, dno = int); create dept (dno = int, floor = int)")
                .unwrap();
            db.execute("create hit (sal = int)").unwrap();
            db.execute(
                "define rule r if emp.sal > 10 and emp.dno = dept.dno \
                 then append to hit(sal = emp.sal)",
            )
            .unwrap();
            db.execute("append dept (dno = 1, floor = 3)").unwrap();
            db.execute("append emp (sal = 50, dno = 1)").unwrap();
            assert_eq!(
                db.query("retrieve (hit.sal)").unwrap().rows.len(),
                1,
                "rule fired through the Rete backend ({mode:?})"
            );
            let stats = db.network_stats();
            assert!(stats.beta_bytes > 0, "Rete carries β state ({mode:?})");
        }
    }

    #[test]
    fn rete_backend_rejects_event_rules() {
        let mut db = Ariel::with_options(EngineOptions {
            rete_mode: Some(ReteMode::Indexed),
            ..Default::default()
        });
        db.execute("create t (x = int)").unwrap();
        assert!(
            db.execute("define rule r on append t then delete t")
                .is_err(),
            "event rules need A-TREAT"
        );
        assert_eq!(db.network_stats().rules, 0, "activation rolled back");
    }

    #[test]
    fn empty_engine_surface() {
        let mut db = Ariel::new();
        assert!(db.catalog().is_empty());
        assert!(db.rules().is_empty());
        assert_eq!(db.stats(), EngineStats::default());
        assert_eq!(db.network_stats().rules, 0);
        assert_eq!(db.pending_notifications(), 0);
        assert!(db.drain_notifications().is_empty());
        // quiescent cycle on an empty engine is a no-op
        db.run_rules().unwrap();
        // top-level halt is a no-op
        db.execute("halt").unwrap();
    }

    #[test]
    fn install_without_activate_is_passive() {
        let mut db = Ariel::new();
        db.execute("create t (x = int); create log (x = int)")
            .unwrap();
        db.install_rule_src("define rule r on append t then append to log(x = t.x)")
            .unwrap();
        assert_eq!(
            db.rules().require("r").unwrap().state,
            crate::rule::RuleState::Installed
        );
        db.execute("append t (x = 1)").unwrap();
        assert!(db.query("retrieve (log.all)").unwrap().rows.is_empty());
        // activation starts matching future transitions
        db.activate_rule("r").unwrap();
        db.execute("append t (x = 2)").unwrap();
        assert_eq!(db.query("retrieve (log.all)").unwrap().rows.len(), 1);
    }

    #[test]
    fn install_rule_src_rejects_non_rules() {
        let mut db = Ariel::new();
        assert!(db.install_rule_src("create t (x = int)").is_err());
        assert!(db.install_rule_src("not even a command").is_err());
    }

    #[test]
    fn activation_error_rolls_back_network() {
        let mut db = Ariel::new();
        db.execute("create t (x = int)").unwrap();
        // condition references a relation that doesn't exist: activation fails
        db.install_rule_src("define rule r if nothere.x > 0 then delete nothere")
            .unwrap();
        assert!(db.activate_rule("r").is_err());
        assert_eq!(db.network_stats().rules, 0, "no half-built network state");
        // the rule stays installed and can be repaired by creating the relation
        db.execute("create nothere (x = int)").unwrap();
        db.activate_rule("r").unwrap();
        assert_eq!(db.network_stats().rules, 1);
    }

    #[test]
    fn pending_matches_reports_pnode_size() {
        let mut db = Ariel::new();
        db.execute("create t (x = int)").unwrap();
        db.execute("append t (x = 5)").unwrap();
        // rule with an impossible action target would error when fired; we
        // only check pending counts, so give it a fine action
        db.execute("create log (x = int)").unwrap();
        db.install_rule_src("define rule r if t.x > 0 then append to log(x = t.x)")
            .unwrap();
        db.activate_rule("r").unwrap();
        assert_eq!(db.pending_matches("r").unwrap(), 1);
        db.run_rules().unwrap();
        assert_eq!(db.pending_matches("r").unwrap(), 0, "consumed by firing");
        assert!(db.pending_matches("nope").is_err());
    }
}
