//! The rule catalog: persistent home of installed rule definitions (§3).

use crate::error::{ArielError, ArielResult};
use crate::rule::Rule;
use ariel_network::RuleId;
use ariel_query::RuleDef;
use std::collections::BTreeMap;

/// Named collection of installed rules.
#[derive(Debug, Default)]
pub struct RuleCatalog {
    rules: BTreeMap<String, Rule>,
    next_id: u64,
}

impl RuleCatalog {
    /// New empty catalog.
    pub fn new() -> Self {
        RuleCatalog::default()
    }

    /// Install a rule definition (store its syntax tree). Errors on a
    /// duplicate name.
    pub fn install(&mut self, def: RuleDef) -> ArielResult<RuleId> {
        if self.rules.contains_key(&def.name) {
            return Err(ArielError::DuplicateRule(def.name));
        }
        let id = RuleId(self.next_id);
        self.next_id += 1;
        let name = def.name.clone();
        self.rules.insert(name, Rule::new(id, def));
        Ok(id)
    }

    /// Re-install a rule under its snapshotted id (the crash-recovery
    /// path). Errors on a duplicate name or a duplicate id; bumps the id
    /// counter past `id` so later installs never collide with restored
    /// rules (dropped rules leave gaps in the id space, which a snapshot
    /// preserves).
    pub fn restore(&mut self, def: RuleDef, id: RuleId) -> ArielResult<()> {
        if self.rules.contains_key(&def.name) {
            return Err(ArielError::DuplicateRule(def.name));
        }
        if self.by_id(id).is_some() {
            return Err(ArielError::Persist(format!(
                "duplicate rule id {} in snapshot",
                id.0
            )));
        }
        let name = def.name.clone();
        self.rules.insert(name, Rule::new(id, def));
        self.next_id = self.next_id.max(id.0 + 1);
        Ok(())
    }

    /// The id the next [`RuleCatalog::install`] will assign.
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// Raise the id counter to at least `next_id` (snapshot restore; never
    /// lowers it).
    pub fn set_next_id(&mut self, next_id: u64) {
        self.next_id = self.next_id.max(next_id);
    }

    /// Remove a rule by name, returning it.
    pub fn remove(&mut self, name: &str) -> ArielResult<Rule> {
        self.rules
            .remove(name)
            .ok_or_else(|| ArielError::UnknownRule(name.to_string()))
    }

    /// Look up a rule by name.
    pub fn get(&self, name: &str) -> Option<&Rule> {
        self.rules.get(name)
    }

    /// Mutable lookup by name.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Rule> {
        self.rules.get_mut(name)
    }

    /// Lookup by name, or a typed error.
    pub fn require(&self, name: &str) -> ArielResult<&Rule> {
        self.get(name)
            .ok_or_else(|| ArielError::UnknownRule(name.to_string()))
    }

    /// Find the rule carrying a network id.
    pub fn by_id(&self, id: RuleId) -> Option<&Rule> {
        self.rules.values().find(|r| r.id == id)
    }

    /// All rules, ordered by name.
    pub fn iter(&self) -> impl Iterator<Item = &Rule> {
        self.rules.values()
    }

    /// Rules in a ruleset, ordered by name.
    pub fn in_ruleset<'a>(&'a self, ruleset: &'a str) -> impl Iterator<Item = &'a Rule> + 'a {
        self.rules.values().filter(move |r| r.ruleset == ruleset)
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True iff no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariel_query::{parse_command, Command};

    fn def(name: &str, ruleset: Option<&str>) -> RuleDef {
        let rs = ruleset.map(|r| format!("in {r} ")).unwrap_or_default();
        match parse_command(&format!("define rule {name} {rs}if emp.x > 1 then halt")).unwrap() {
            Command::DefineRule(d) => d,
            _ => unreachable!(),
        }
    }

    #[test]
    fn install_assigns_unique_ids() {
        let mut c = RuleCatalog::new();
        let a = c.install(def("a", None)).unwrap();
        let b = c.install(def("b", None)).unwrap();
        assert_ne!(a, b);
        assert_eq!(c.len(), 2);
        assert_eq!(c.by_id(a).unwrap().name, "a");
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut c = RuleCatalog::new();
        c.install(def("a", None)).unwrap();
        assert!(matches!(
            c.install(def("a", None)),
            Err(ArielError::DuplicateRule(_))
        ));
    }

    #[test]
    fn remove_and_missing() {
        let mut c = RuleCatalog::new();
        c.install(def("a", None)).unwrap();
        assert!(c.remove("a").is_ok());
        assert!(matches!(c.remove("a"), Err(ArielError::UnknownRule(_))));
        assert!(c.require("a").is_err());
    }

    #[test]
    fn ruleset_filtering() {
        let mut c = RuleCatalog::new();
        c.install(def("a", Some("payroll"))).unwrap();
        c.install(def("b", None)).unwrap();
        c.install(def("c", Some("payroll"))).unwrap();
        let names: Vec<_> = c.in_ruleset("payroll").map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["a", "c"]);
        let names: Vec<_> = c
            .in_ruleset(crate::rule::DEFAULT_RULESET)
            .map(|r| r.name.as_str())
            .collect();
        assert_eq!(names, vec!["b"]);
    }
}
