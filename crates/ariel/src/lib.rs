//! # ariel
//!
//! A from-scratch reproduction of the **Ariel active DBMS** rule system
//! (Eric N. Hanson, *Rule Condition Testing and Action Execution in Ariel*,
//! SIGMOD 1992): a relational DBMS with a tightly-coupled production-rule
//! system.
//!
//! * **ARL rules** with pattern, event (`on append/delete/replace`) and
//!   transition (`previous`) conditions, rulesets and priorities;
//! * **logical events**: Δ-sets collapse each transition's physical updates
//!   into net-effect tokens (§2.2.2, §4.3.1);
//! * the **A-TREAT discrimination network**: an interval-skip-list
//!   selection-predicate index plus a TREAT join layer with **virtual
//!   α-memories** (§4);
//! * **set-oriented rule execution**: matched data (the P-node) is bound to
//!   the action by query modification and executed through the query
//!   optimizer, with `replace'`/`delete'` updating through TIDs (§5).
//!
//! ```
//! use ariel::Ariel;
//!
//! let mut db = Ariel::new();
//! db.execute("create emp (name = string, sal = float, dno = int)").unwrap();
//! db.execute("create salaryerror (name = string, oldsal = float, newsal = float)").unwrap();
//! // the paper's raiselimit rule (§2.3)
//! db.execute(
//!     "define rule raiselimit if emp.sal > 1.1 * previous emp.sal \
//!      then append to salaryerror(name = emp.name, oldsal = previous emp.sal, newsal = emp.sal)",
//! ).unwrap();
//! db.execute("append emp (name = \"sam\", sal = 100000, dno = 1)").unwrap();
//! db.execute("replace emp (sal = 150000) where emp.name = \"sam\"").unwrap();
//! let log = db.query("retrieve (salaryerror.all)").unwrap();
//! assert_eq!(log.rows.len(), 1, "a 50% raise trips the limit");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod action;
pub mod agenda;
pub mod catalog;
pub mod delta;
pub mod engine;
pub mod error;
pub mod obs;
pub mod persist;
pub mod rule;
mod trace;

pub use action::{ActionOutcome, ActionPlanner};
pub use agenda::ConflictStrategy;
pub use catalog::RuleCatalog;
pub use delta::DeltaTracker;
pub use engine::{Ariel, EngineNetwork, EngineOptions, EngineStats, MemoryStats};
pub use error::{ArielError, ArielResult};
pub use network::{
    TraceEventKind, TraceRecord, TraceRecorder, TraceSource, DEFAULT_TRACE_CAPACITY,
};
pub use obs::{EngineObs, WalMetrics, WalTotals};
pub use persist::RecoveryReport;
pub use query::{CmdOutput, Notification};
pub use rule::{Rule, RuleState, DEFAULT_RULESET};
pub use storage::wal::Durability;

// Re-export the layer crates so downstream users need only one dependency.
pub use ariel_islist as islist;
pub use ariel_network as network;
pub use ariel_query as query;
pub use ariel_storage as storage;
